# Validates a BENCH_DEVICE document (bench_e12_device): it must parse,
# declare schema 2 with a stats section, and carry rows that re-prove
# the device claims from the artifact alone, independent of the bench
# process's own exit code:
#   - each consumer workload (packet-ingest, storage-completion)
#     delivered events, serialized a non-empty device section, and
#     replay re-injected exactly every event with the parallel engine
#     bit-identical;
#   - the racy ground-truth twin reports at least one device race, the
#     clean twin none while still seeing (ordered) device edges.
# Run as: cmake -DJSON=<file> -P check_bench_device.cmake

if(NOT DEFINED JSON)
    message(FATAL_ERROR "pass -DJSON=<bench json file>")
endif()
file(READ "${JSON}" text)

if(CMAKE_VERSION VERSION_LESS 3.19)
    # No string(JSON) parser available: settle for shape checks.
    foreach(needle "\"schema\": 2" "device.events" "replay.injected"
            "replay.parallel_identical" "analyze.device_races"
            "\"stats\"")
        string(FIND "${text}" "${needle}" at)
        if(at EQUAL -1)
            message(FATAL_ERROR "${JSON}: missing ${needle}")
        endif()
    endforeach()
    return()
endif()

string(JSON schema ERROR_VARIABLE err GET "${text}" schema)
if(err)
    message(FATAL_ERROR "${JSON}: not parseable bench JSON: ${err}")
endif()
if(NOT schema EQUAL 2)
    message(FATAL_ERROR "${JSON}: schema is ${schema}, expected 2")
endif()

string(JSON kind ERROR_VARIABLE err TYPE "${text}" stats)
if(err OR NOT kind STREQUAL "OBJECT")
    message(FATAL_ERROR "${JSON}: schema 2 requires a stats object")
endif()

string(JSON n ERROR_VARIABLE err LENGTH "${text}" results)
if(err OR n LESS 1)
    message(FATAL_ERROR "${JSON}: no result rows")
endif()

# Collect every (workload, metric) -> value into variables named
# v_<workload>_<metric> with non-alphanumerics mapped to _.
math(EXPR last "${n} - 1")
foreach(i RANGE ${last})
    string(JSON workload GET "${text}" results ${i} workload)
    string(JSON metric GET "${text}" results ${i} metric)
    string(JSON value ERROR_VARIABLE err GET "${text}" results ${i}
           value)
    if(err)
        message(FATAL_ERROR
                "${JSON}: row ${i} (${workload}) has no value")
    endif()
    string(REGEX REPLACE "[^a-zA-Z0-9]" "_" wkey "${workload}")
    string(REGEX REPLACE "[^a-zA-Z0-9]" "_" mkey "${metric}")
    set(v_${wkey}_${mkey} "${value}")
endforeach()

# --- consumers: logging + replay injection ---------------------------
foreach(w packet_ingest storage_completion)
    foreach(m device_events device_stream_bytes replay_injected
            replay_parallel_identical)
        if(NOT DEFINED v_${w}_${m})
            message(FATAL_ERROR "${JSON}: missing ${m} row for ${w}")
        endif()
    endforeach()
    if(v_${w}_device_events LESS_EQUAL 0)
        message(FATAL_ERROR "${JSON}: ${w} delivered no device events")
    endif()
    if(v_${w}_device_stream_bytes LESS_EQUAL 0)
        message(FATAL_ERROR
                "${JSON}: ${w} serialized an empty device section")
    endif()
    if(NOT v_${w}_replay_injected EQUAL v_${w}_device_events)
        message(FATAL_ERROR "${JSON}: ${w} injected "
                "${v_${w}_replay_injected} of "
                "${v_${w}_device_events} recorded events")
    endif()
    if(NOT v_${w}_replay_parallel_identical EQUAL 1)
        message(FATAL_ERROR
                "${JSON}: ${w} parallel replay not bit-identical")
    endif()
endforeach()

# --- ground-truth twins: the device pass -----------------------------
foreach(w device_race_racy device_race_clean)
    if(NOT DEFINED v_${w}_analyze_device_races)
        message(FATAL_ERROR
                "${JSON}: missing analyze.device_races row for ${w}")
    endif()
endforeach()
if(v_device_race_racy_analyze_device_races LESS 1)
    message(FATAL_ERROR
            "${JSON}: racy twin reports no device race")
endif()
if(NOT v_device_race_clean_analyze_device_races EQUAL 0)
    message(FATAL_ERROR "${JSON}: clean twin reports "
            "${v_device_race_clean_analyze_device_races} device races")
endif()
if(NOT DEFINED v_device_race_clean_analyze_device_edges OR
   v_device_race_clean_analyze_device_edges LESS 1)
    message(FATAL_ERROR "${JSON}: clean twin shows no device edges")
endif()

message(STATUS "${JSON}: device rows consistent -- "
        "packet-ingest ${v_packet_ingest_device_events} events / "
        "${v_packet_ingest_device_stream_bytes} B, "
        "storage-completion ${v_storage_completion_device_events} "
        "events, racy twin "
        "${v_device_race_racy_analyze_device_races} race(s), "
        "clean twin 0")
