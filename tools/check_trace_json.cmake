# Validates a Chrome trace-event JSON file emitted by `qrec trace`:
# it must parse as JSON, carry a non-empty "traceEvents" array whose
# rows have the name/ph keys Perfetto requires, and identify itself in
# the metadata. Run as: cmake -DJSON=<file> -P check_trace_json.cmake

if(NOT DEFINED JSON)
    message(FATAL_ERROR "pass -DJSON=<trace file>")
endif()
file(READ "${JSON}" text)

if(CMAKE_VERSION VERSION_LESS 3.19)
    # No string(JSON) parser available: settle for shape checks.
    foreach(needle "\"traceEvents\"" "\"ph\"" "\"displayTimeUnit\"")
        string(FIND "${text}" "${needle}" at)
        if(at EQUAL -1)
            message(FATAL_ERROR "${JSON}: missing ${needle}")
        endif()
    endforeach()
    return()
endif()

string(JSON kind ERROR_VARIABLE err TYPE "${text}" traceEvents)
if(err)
    message(FATAL_ERROR "${JSON}: not parseable JSON: ${err}")
endif()
if(NOT kind STREQUAL "ARRAY")
    message(FATAL_ERROR "${JSON}: traceEvents is ${kind}, not ARRAY")
endif()

string(JSON n LENGTH "${text}" traceEvents)
if(n LESS 1)
    message(FATAL_ERROR "${JSON}: traceEvents is empty")
endif()

# Every row needs a name and a phase; spot-check first and last.
math(EXPR last "${n} - 1")
foreach(i 0 ${last})
    string(JSON name ERROR_VARIABLE err GET "${text}" traceEvents ${i}
           name)
    if(err)
        message(FATAL_ERROR "${JSON}: event ${i} has no name: ${err}")
    endif()
    string(JSON ph ERROR_VARIABLE err GET "${text}" traceEvents ${i} ph)
    if(err)
        message(FATAL_ERROR "${JSON}: event ${i} has no ph: ${err}")
    endif()
endforeach()

string(JSON unit ERROR_VARIABLE err GET "${text}" displayTimeUnit)
if(err OR NOT unit STREQUAL "ms")
    message(FATAL_ERROR "${JSON}: bad displayTimeUnit")
endif()
string(JSON tool ERROR_VARIABLE err GET "${text}" metadata tool)
if(err OR NOT tool STREQUAL "qrec trace")
    message(FATAL_ERROR "${JSON}: bad metadata.tool")
endif()
message(STATUS "${JSON}: ${n} trace events, valid")
