#!/bin/sh
# Memory- and UB-check the simulator: configure an Address+Undefined-
# Sanitizer build, compile, and run the full test suite. Any reported
# leak, overflow, or undefined behavior fails the script.
#
# Usage: tools/run_asan.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"

cmake -B "$BUILD" -S . -DQR_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error turns the first finding into a test failure instead of
# a log line; detect_leaks catches missing frees in the tools.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"

cd "$BUILD"
ctest --output-on-failure

echo "asan/ubsan: no findings across the test suite"
