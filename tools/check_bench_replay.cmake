# Validates a BENCH_E9/BENCH_REPLAY bench-JSON document: it must parse,
# declare schema 2 (stats attached), carry at least one result row, and
# pair every workload's replay.modeled_speedup with a
# replay.measured_speedup row (and vice versa) -- the two are distinct
# claims and publishing one without the other is a harness bug. Values
# must be non-negative numbers; modeled speedups are >= 1 by
# construction (a DAG schedule never loses to its own critical path).
# Run as: cmake -DJSON=<file> -P check_bench_replay.cmake

if(NOT DEFINED JSON)
    message(FATAL_ERROR "pass -DJSON=<bench json file>")
endif()
file(READ "${JSON}" text)

if(CMAKE_VERSION VERSION_LESS 3.19)
    # No string(JSON) parser available: settle for shape checks.
    foreach(needle "\"schema\": 2" "replay.modeled_speedup"
            "replay.measured_speedup" "\"stats\"")
        string(FIND "${text}" "${needle}" at)
        if(at EQUAL -1)
            message(FATAL_ERROR "${JSON}: missing ${needle}")
        endif()
    endforeach()
    return()
endif()

string(JSON schema ERROR_VARIABLE err GET "${text}" schema)
if(err)
    message(FATAL_ERROR "${JSON}: not parseable bench JSON: ${err}")
endif()
if(NOT schema EQUAL 2)
    message(FATAL_ERROR "${JSON}: schema is ${schema}, expected 2")
endif()

string(JSON kind ERROR_VARIABLE err TYPE "${text}" stats)
if(err OR NOT kind STREQUAL "OBJECT")
    message(FATAL_ERROR "${JSON}: schema 2 requires a stats object")
endif()

string(JSON n ERROR_VARIABLE err LENGTH "${text}" results)
if(err OR n LESS 1)
    message(FATAL_ERROR "${JSON}: no result rows")
endif()

set(modeled "")
set(measured "")
math(EXPR last "${n} - 1")
foreach(i RANGE ${last})
    string(JSON workload GET "${text}" results ${i} workload)
    string(JSON metric GET "${text}" results ${i} metric)
    string(JSON value ERROR_VARIABLE err GET "${text}" results ${i}
           value)
    if(err)
        message(FATAL_ERROR
                "${JSON}: row ${i} (${workload}) has no value")
    endif()
    if(metric STREQUAL "replay.modeled_speedup")
        list(APPEND modeled "${workload}")
        if(value LESS 1)
            message(FATAL_ERROR "${JSON}: ${workload}: modeled speedup "
                    "${value} < 1 -- schedule model is broken")
        endif()
    elseif(metric STREQUAL "replay.measured_speedup")
        list(APPEND measured "${workload}")
        if(value LESS 0)
            message(FATAL_ERROR "${JSON}: ${workload}: negative "
                    "measured speedup ${value}")
        endif()
    endif()
endforeach()

if(NOT modeled)
    message(FATAL_ERROR "${JSON}: no replay.modeled_speedup rows")
endif()
foreach(w ${modeled})
    list(FIND measured "${w}" at)
    if(at EQUAL -1)
        message(FATAL_ERROR "${JSON}: ${w}: has replay.modeled_speedup "
                "but no replay.measured_speedup")
    endif()
endforeach()
foreach(w ${measured})
    list(FIND modeled "${w}" at)
    if(at EQUAL -1)
        message(FATAL_ERROR "${JSON}: ${w}: has replay.measured_speedup "
                "but no replay.modeled_speedup")
    endif()
endforeach()

list(LENGTH modeled nw)
message(STATUS
        "${JSON}: ${nw} workloads, modeled and measured speedups paired")
