# Validates a BENCH_STREAM document: it must parse, declare schema 2,
# attach the streaming analyzer's resource accounting as stats, and
# carry the 1x/10x/100x sweep rows. The flat-memory claim is re-derived
# from the rows themselves -- the 100x sphere must hold >= 100x the
# chunks of the 1x sphere while analyze.peak_resident_bytes stays
# within 2x -- so the artifact proves the bar, independent of the bench
# process's own exit code.
# Run as: cmake -DJSON=<file> -P check_bench_stream.cmake

if(NOT DEFINED JSON)
    message(FATAL_ERROR "pass -DJSON=<bench json file>")
endif()
file(READ "${JSON}" text)

if(CMAKE_VERSION VERSION_LESS 3.19)
    # No string(JSON) parser available: settle for shape checks.
    foreach(needle "\"schema\": 2" "analyze.peak_resident_bytes"
            "analyze.chunks" "analyze.mem_ratio_100x" "\"stats\"")
        string(FIND "${text}" "${needle}" at)
        if(at EQUAL -1)
            message(FATAL_ERROR "${JSON}: missing ${needle}")
        endif()
    endforeach()
    return()
endif()

string(JSON schema ERROR_VARIABLE err GET "${text}" schema)
if(err)
    message(FATAL_ERROR "${JSON}: not parseable bench JSON: ${err}")
endif()
if(NOT schema EQUAL 2)
    message(FATAL_ERROR "${JSON}: schema is ${schema}, expected 2")
endif()

string(JSON kind ERROR_VARIABLE err TYPE "${text}" stats)
if(err OR NOT kind STREQUAL "OBJECT")
    message(FATAL_ERROR "${JSON}: schema 2 requires a stats object")
endif()
string(JSON peak ERROR_VARIABLE err GET "${text}" stats
       analyze.peak_resident_bytes)
if(err)
    message(FATAL_ERROR
            "${JSON}: stats lack analyze.peak_resident_bytes")
endif()

string(JSON n ERROR_VARIABLE err LENGTH "${text}" results)
if(err OR n LESS 1)
    message(FATAL_ERROR "${JSON}: no result rows")
endif()

# Collect the per-scale chunk counts and peak resident bytes.
math(EXPR last "${n} - 1")
foreach(i RANGE ${last})
    string(JSON workload GET "${text}" results ${i} workload)
    string(JSON metric GET "${text}" results ${i} metric)
    string(JSON value ERROR_VARIABLE err GET "${text}" results ${i}
           value)
    if(err)
        message(FATAL_ERROR
                "${JSON}: row ${i} (${workload}) has no value")
    endif()
    foreach(scale 1x 10x 100x)
        if(workload STREQUAL "${scale}")
            if(metric STREQUAL "analyze.chunks")
                set(chunks_${scale} "${value}")
            elseif(metric STREQUAL "analyze.peak_resident_bytes")
                set(peak_${scale} "${value}")
            endif()
        endif()
    endforeach()
endforeach()

foreach(scale 1x 10x 100x)
    if(NOT DEFINED chunks_${scale} OR NOT DEFINED peak_${scale})
        message(FATAL_ERROR "${JSON}: missing analyze.chunks / "
                "analyze.peak_resident_bytes rows for scale ${scale}")
    endif()
    if(chunks_${scale} LESS_EQUAL 0 OR peak_${scale} LESS_EQUAL 0)
        message(FATAL_ERROR
                "${JSON}: non-positive measurement at ${scale}")
    endif()
endforeach()

# chunks(100x) >= 100 * chunks(1x): the sweep really scaled the sphere.
math(EXPR chunk_floor "100 * ${chunks_1x}")
if(chunks_100x LESS ${chunk_floor})
    message(FATAL_ERROR "${JSON}: 100x sphere has ${chunks_100x} chunks "
            "< 100 * ${chunks_1x} -- the sweep did not scale")
endif()

# peak(100x) <= 2 * peak(1x): resident memory stayed flat.
math(EXPR peak_ceiling "2 * ${peak_1x}")
if(peak_100x GREATER ${peak_ceiling})
    message(FATAL_ERROR "${JSON}: peak resident ${peak_100x} B at 100x "
            "exceeds 2 * ${peak_1x} B -- memory is not flat")
endif()

message(STATUS "${JSON}: chunks ${chunks_1x} -> ${chunks_100x}, "
        "peak resident ${peak_1x} B -> ${peak_100x} B (flat)")
