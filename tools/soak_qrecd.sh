#!/bin/sh
# Soak-test the qrecd record service end to end: sustained multi-sphere
# recording under an injected-fault chaos plan, a live /metrics scrape
# mid-run, a hard SIGKILL mid-flight, a restart in repair-only mode,
# and then the zero-silent-loss invariant over whatever the store
# retained:
#
#   - no leftover temp files;
#   - every retained *.qrec artifact verifies clean (`qrec verify`) or
#     replays to a consistent prefix in degraded mode;
#   - `qrec verify --sarif` over the whole fleet validates against the
#     SARIF checker;
#   - the restart's final snapshot exports service.unaccounted = 0
#     (the closed submission ledger).
#
# Usage: tools/soak_qrecd.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
QREC="$BUILD/tools/qrec"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
STORE="$DIR/spheres"

FAULTS='io-torn@0.05,io-enospc@0.05,io-short@0.05,drain-fail@0.1,cbuf-drop@0.02'

# --- Phase 1: chaos traffic, killed hard mid-flight ---------------------
# --seconds is generous; the SIGKILL below ends the run long before.
"$QREC" serve -d "$STORE" --seconds 30 --workers 2 --retain 32 \
    --faults "$FAULTS" --port 0 > "$DIR/serve1.out" 2>&1 &
PID=$!

# The daemon prints its ephemeral metrics URL on startup.
PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n 's|^metrics: http://127\.0\.0\.1:\([0-9]*\)/metrics$|\1|p' \
        "$DIR/serve1.out")"
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "soak: qrecd never announced its metrics endpoint" >&2
    cat "$DIR/serve1.out" >&2
    exit 1
fi

# Let traffic flow, then validate a live Prometheus scrape.
sleep 2
"$QREC" stats --scrape "$PORT" -o "$DIR/scrape.prom"
grep -q '^qr_service_submitted ' "$DIR/scrape.prom"
grep -q '^# TYPE qr_service_saved counter' "$DIR/scrape.prom"
grep -q '^qr_service_unaccounted ' "$DIR/scrape.prom"

# SIGKILL: no drain, no seal, no goodbye. Whatever was mid-write is
# now torn on disk; the next start has to heal it.
sleep 1
kill -9 "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true

# --- Phase 2: restart in repair-only mode -------------------------------
# --seconds 0 submits nothing: rescan the store, sweep temps, salvage
# torn artifacts, enforce retention, print the final snapshot, exit.
"$QREC" serve -d "$STORE" --seconds 0 --retain 32 \
    > "$DIR/serve2.out" 2>&1
grep -q '"service.unaccounted": 0' "$DIR/serve2.out" || {
    echo "soak: restart snapshot does not close the ledger" >&2
    cat "$DIR/serve2.out" >&2
    exit 1
}

# --- Phase 3: the recovery invariant over the retained fleet ------------
TEMPS="$(find "$STORE" -name '*.tmp' | wc -l)"
if [ "$TEMPS" -ne 0 ]; then
    echo "soak: $TEMPS leftover temp file(s) after repair" >&2
    exit 1
fi

COUNT=0
RECOVERED=0
for f in "$STORE"/*.qrec; do
    [ -e "$f" ] || { echo "soak: store retained nothing" >&2; exit 1; }
    COUNT=$((COUNT + 1))
    if "$QREC" verify "$f" > /dev/null 2>&1; then
        continue
    fi
    # Not pristine: it must still replay as a consistent (possibly
    # gap-marked or salvaged-prefix) sphere in degraded mode.
    if ! "$QREC" replay --degraded -i "$f" > /dev/null 2>&1; then
        echo "soak: retained artifact neither verifies nor replays" \
             "degraded: $f" >&2
        "$QREC" verify "$f" >&2 || true
        exit 1
    fi
    RECOVERED=$((RECOVERED + 1))
done

# The whole fleet through the SARIF emitter, validated structurally.
# shellcheck disable=SC2046
"$QREC" verify --sarif -o "$DIR/fleet.sarif" "$STORE"/*.qrec || true
cmake -DSARIF="$DIR/fleet.sarif" -P tools/check_sarif.cmake > /dev/null

echo "soak: $COUNT retained artifact(s): every one verifies clean or" \
     "replays degraded ($RECOVERED via salvaged prefix); ledger closed"
