#!/bin/sh
# Ordering-rationale gate for relaxed atomics.
#
# Every std::memory_order_relaxed in src/ must carry a comment saying
# WHY relaxed is safe: on the same line, or on a // line earlier in
# the same contiguous statement block (scanning upward stops at the
# first blank line). The point is that a relaxed operation is a claim
# about the algorithm -- "no other ordering rides on this access" --
# and that claim belongs next to the code, where the next edit can
# falsify it.
#
# Usage: tools/check_atomics.sh [dir...]   (default: src)
set -eu

cd "$(dirname "$0")/.."
DIRS="${*:-src}"

# shellcheck disable=SC2086
FILES="$(grep -rl 'memory_order_relaxed' $DIRS --include='*.cc' \
             --include='*.hh' 2>/dev/null | sort || true)"

if [ -z "$FILES" ]; then
    echo "check_atomics: no relaxed atomics under: $DIRS"
    exit 0
fi

STATUS=0
TOTAL=0
for f in $FILES; do
    BAD="$(awk '
        /^[[:space:]]*$/ { block_comment = 0; next }
        { line_comment = ($0 ~ /\/\//) }
        /memory_order_relaxed/ {
            if (!line_comment && !block_comment)
                printf "%s:%d: %s\n", FILENAME, FNR, $0
        }
        { if (line_comment) block_comment = 1 }
    ' "$f")"
    TOTAL=$((TOTAL + $(grep -c 'memory_order_relaxed' "$f")))
    if [ -n "$BAD" ]; then
        echo "$BAD"
        STATUS=1
    fi
done

if [ "$STATUS" -ne 0 ]; then
    echo "check_atomics: FAIL -- relaxed atomics above lack an" \
         "ordering-rationale comment (same line or a // line in the" \
         "same statement block)" >&2
    exit 1
fi
echo "check_atomics: OK ($TOTAL relaxed site(s) documented)"
