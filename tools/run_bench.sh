#!/bin/sh
# Run the perf-trajectory benchmark set (M1 micro, M2 throughput,
# E3 overhead) and merge their JSON outputs into BENCH_RECORD.json at
# the repo root.
#
# Usage: tools/run_bench.sh [build-dir]
#
# Environment knobs forwarded to the benches (see bench/common.hh):
#   QR_BENCH_SCALE, QR_BENCH_WORKLOADS, QR_BENCH_MIN_SECS
# Optional extra steps:
#   QR_BENCH_REPLAY=1   emit BENCH_REPLAY.json (modeled vs measured
#                       parallel replay speedup, schema v2)
#   QR_BENCH_ANALYZE=1  emit ANALYZE_RECORD.json (offline race audit)
#   QR_BENCH_STREAM=1   emit BENCH_STREAM.json (streaming mmap analysis
#                       at 1x/10x/100x the largest suite sphere; the
#                       flat-memory bar is checked before publication)
#
# Every published artifact is validated at schema v2: a regeneration
# that silently dropped the stats section would otherwise go unnoticed
# until a consumer looked for it.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-${QR_BUILD_DIR:-$ROOT/build}}

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
    cmake -B "$BUILD" -S "$ROOT"
fi
cmake --build "$BUILD" -j --target \
    bench_m1_micro bench_m2_throughput bench_e3_overhead bench_json_util

OUT="$BUILD/bench"
QR_BENCH_JSON_DIR="$OUT"
export QR_BENCH_JSON_DIR

echo "== M1: component microbenchmarks =="
"$BUILD/bench/bench_m1_micro" \
    --benchmark_out_format=json \
    --benchmark_out="$OUT/BENCH_M1.raw.json"

# google-benchmark emits its own JSON layout; flatten it to schema v1
# (one ns_per_op row per benchmark) so it can join the merge. Skipped
# (with a warning) if python3 is unavailable.
M1_JSON=""
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/BENCH_M1.raw.json" "$OUT/BENCH_M1.json" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
doc = {"bench": "M1", "schema": 1, "results": [
    {"bench": "M1", "workload": b["name"], "metric": "ns_per_op",
     "value": float(b["real_time"])}
    for b in raw.get("benchmarks", [])
    if b.get("run_type", "iteration") == "iteration"]}
json.dump(doc, open(sys.argv[2], "w"), indent=2)
EOF
    M1_JSON="$OUT/BENCH_M1.json"
else
    echo "warning: python3 not found; BENCH_RECORD.json will omit M1" >&2
fi

echo "== M2: host throughput =="
"$BUILD/bench/bench_m2_throughput"

echo "== E3: recording overhead =="
"$BUILD/bench/bench_e3_overhead"

# shellcheck disable=SC2086  # M1_JSON is intentionally word-split
"$BUILD/tools/bench_json_util" merge RECORD "$ROOT/BENCH_RECORD.json" \
    $M1_JSON "$OUT/BENCH_M2.json" "$OUT/BENCH_E3.json"
"$BUILD/tools/bench_json_util" validate --min-schema 2 \
    "$ROOT/BENCH_RECORD.json"

# Optional (QR_BENCH_ANALYZE=1): offline race/precision analysis over
# the whole suite. Records every workload with exact shadow sets, runs
# qrec analyze on each sphere -- log input only, no replay -- and
# merges the per-workload rows (races, Bloom false-conflict rate,
# termination histogram) into ANALYZE_RECORD.json at the repo root.
# Optional (QR_BENCH_REPLAY=1): the replay-speed experiment. Runs E9
# (record + sequential oracle + parallel chunk-graph replay at 2/4
# jobs over the whole suite) and publishes BENCH_REPLAY.json at the
# repo root: schema v2, with replay.modeled_speedup (DAG schedule
# model) and replay.measured_speedup (wall clock) as distinct rows per
# workload plus the geomeans. The measured number only exceeds 1.0
# when the host gives the workers real cores.
if [ "${QR_BENCH_REPLAY:-0}" = "1" ]; then
    echo "== REPLAY: parallel replay speed (modeled vs measured) =="
    cmake --build "$BUILD" -j --target bench_e9_replay bench_json_util
    "$BUILD/bench/bench_e9_replay"
    "$BUILD/tools/bench_json_util" merge REPLAY \
        "$ROOT/BENCH_REPLAY.json" "$OUT/BENCH_E9.json"
    "$BUILD/tools/bench_json_util" validate --min-schema 2 \
        "$ROOT/BENCH_REPLAY.json"
fi

# Optional (QR_BENCH_STREAM=1): the streaming-analysis scale sweep.
# E10 records spheres at 1x/10x/100x the largest suite sphere's chunk
# count, analyzes each through the mmap + SphereCursor pipeline, and
# BENCH_STREAM.json carries the flat-memory proof: analyze.chunks must
# grow >= 100x while analyze.peak_resident_bytes stays within 2x.
if [ "${QR_BENCH_STREAM:-0}" = "1" ]; then
    echo "== STREAM: streaming mmap analysis at scale =="
    cmake --build "$BUILD" -j --target bench_e10_stream bench_json_util
    "$BUILD/bench/bench_e10_stream"
    cmake -DJSON="$OUT/BENCH_STREAM.json" \
        -P "$ROOT/tools/check_bench_stream.cmake"
    "$BUILD/tools/bench_json_util" validate --min-schema 2 \
        "$OUT/BENCH_STREAM.json"
    cp "$OUT/BENCH_STREAM.json" "$ROOT/BENCH_STREAM.json"
fi

if [ "${QR_BENCH_ANALYZE:-0}" = "1" ]; then
    echo "== ANALYZE: offline race + recording-precision audit =="
    cmake --build "$BUILD" -j --target qrec bench_json_util
    ANALYZE_JSON=""
    for w in barnes fft fmm lu ocean radiosity radix raytrace \
             water-nsq water-sp; do
        "$BUILD/tools/qrec" record "$w" -t 4 --exact-shadow \
            -o "$OUT/analyze_$w.qrec" > /dev/null
        # analyze exits nonzero when it finds races; that is a finding,
        # not a harness failure.
        "$BUILD/tools/qrec" analyze -i "$OUT/analyze_$w.qrec" \
            --json "$OUT/ANALYZE_$w.json" > /dev/null || true
        ANALYZE_JSON="$ANALYZE_JSON $OUT/ANALYZE_$w.json"
    done
    # shellcheck disable=SC2086  # intentionally word-split
    "$BUILD/tools/bench_json_util" merge ANALYZE \
        "$ROOT/ANALYZE_RECORD.json" $ANALYZE_JSON
    "$BUILD/tools/bench_json_util" validate --min-schema 2 \
        "$ROOT/ANALYZE_RECORD.json"
fi
