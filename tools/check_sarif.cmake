# Validates a SARIF 2.1.0 log emitted by `qrec verify --sarif`: it
# must parse as JSON, declare version 2.1.0, identify the qrec-verify
# driver with its full QRV rule table, and carry well-formed results
# (ruleId + level + message + one physical location each). Run as:
#   cmake -DSARIF=<file> [-DMIN_RESULTS=<n>] -P tools/check_sarif.cmake

if(NOT DEFINED SARIF)
    message(FATAL_ERROR "pass -DSARIF=<sarif file>")
endif()
if(NOT DEFINED MIN_RESULTS)
    set(MIN_RESULTS 0)
endif()
file(READ "${SARIF}" text)

if(CMAKE_VERSION VERSION_LESS 3.19)
    # No string(JSON) parser available: settle for shape checks.
    foreach(needle "\"2.1.0\"" "\"qrec-verify\"" "\"runs\"" "\"rules\""
            "\"results\"" "sarif-2.1.0")
        string(FIND "${text}" "${needle}" at)
        if(at EQUAL -1)
            message(FATAL_ERROR "${SARIF}: missing ${needle}")
        endif()
    endforeach()
    return()
endif()

string(JSON ver ERROR_VARIABLE err GET "${text}" version)
if(err OR NOT ver STREQUAL "2.1.0")
    message(FATAL_ERROR "${SARIF}: version is not 2.1.0: ${err}")
endif()
string(JSON schema ERROR_VARIABLE err GET "${text}" \$schema)
if(err)
    message(FATAL_ERROR "${SARIF}: missing \$schema: ${err}")
endif()

string(JSON kind ERROR_VARIABLE err TYPE "${text}" runs)
if(err OR NOT kind STREQUAL "ARRAY")
    message(FATAL_ERROR "${SARIF}: runs is not an array: ${err}")
endif()
string(JSON nruns LENGTH "${text}" runs)
if(nruns LESS 1)
    message(FATAL_ERROR "${SARIF}: runs is empty")
endif()

string(JSON driver ERROR_VARIABLE err GET "${text}" runs 0 tool driver
       name)
if(err OR NOT driver STREQUAL "qrec-verify")
    message(FATAL_ERROR "${SARIF}: tool.driver.name != qrec-verify")
endif()

# The full QRV rule table must be embedded so a SARIF viewer can
# explain any code without the qrec binary at hand.
string(JSON nrules ERROR_VARIABLE err LENGTH "${text}" runs 0 tool
       driver rules)
if(err OR nrules LESS 16)
    message(FATAL_ERROR
            "${SARIF}: expected the 16-entry QRV rule table, got"
            " '${nrules}' (${err})")
endif()
math(EXPR lastrule "${nrules} - 1")
foreach(i 0 ${lastrule})
    string(JSON rid ERROR_VARIABLE err GET "${text}" runs 0 tool driver
           rules ${i} id)
    if(err OR NOT rid MATCHES "^QRV[0-9][0-9][0-9]$")
        message(FATAL_ERROR "${SARIF}: rule ${i} has bad id '${rid}'")
    endif()
    string(JSON lvl ERROR_VARIABLE err GET "${text}" runs 0 tool driver
           rules ${i} defaultConfiguration level)
    if(err OR NOT lvl MATCHES "^(error|warning)$")
        message(FATAL_ERROR "${SARIF}: rule ${rid} has bad level")
    endif()
endforeach()

string(JSON kind ERROR_VARIABLE err TYPE "${text}" runs 0 results)
if(err OR NOT kind STREQUAL "ARRAY")
    message(FATAL_ERROR "${SARIF}: results is not an array: ${err}")
endif()
string(JSON nres LENGTH "${text}" runs 0 results)
if(nres LESS MIN_RESULTS)
    message(FATAL_ERROR
            "${SARIF}: ${nres} result(s), expected >= ${MIN_RESULTS}")
endif()

if(nres GREATER 0)
    # Every result needs a rule binding and a location; spot-check the
    # first and last like the other artifact validators do.
    math(EXPR lastres "${nres} - 1")
    foreach(i 0 ${lastres})
        string(JSON rid ERROR_VARIABLE err GET "${text}" runs 0 results
               ${i} ruleId)
        if(err OR NOT rid MATCHES "^QRV[0-9][0-9][0-9]$")
            message(FATAL_ERROR
                    "${SARIF}: result ${i} has bad ruleId '${rid}'")
        endif()
        string(JSON msg ERROR_VARIABLE err GET "${text}" runs 0 results
               ${i} message text)
        if(err OR msg STREQUAL "")
            message(FATAL_ERROR "${SARIF}: result ${i} has no message")
        endif()
        string(JSON uri ERROR_VARIABLE err GET "${text}" runs 0 results
               ${i} locations 0 physicalLocation artifactLocation uri)
        if(err OR uri STREQUAL "")
            message(FATAL_ERROR "${SARIF}: result ${i} has no artifact"
                    " location")
        endif()
    endforeach()
endif()
message(STATUS
        "${SARIF}: valid (${nrules} rules, ${nres} result(s))")
