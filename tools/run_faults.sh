#!/bin/sh
# Drive the fault-injection degradation curve: run bench_a7_faults
# (recording under swept cbuf-drop rates, degraded replay of every
# damaged sphere) and schema-validate the BENCH_A7.json it emits.
#
# Usage: tools/run_faults.sh [build-dir]
#
# Environment (passed through to the bench):
#   QR_BENCH_SCALE      problem-size multiplier (default 4)
#   QR_BENCH_JSON_DIR   where BENCH_A7.json is written (default: the
#                       bench build directory)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake --build "$BUILD" -j "$(nproc)" \
    --target bench_a7_faults bench_json_util

JSON_DIR="${QR_BENCH_JSON_DIR:-$BUILD/bench}"
export QR_BENCH_JSON_DIR="$JSON_DIR"

"$BUILD/bench/bench_a7_faults"
"$BUILD/tools/bench_json_util" validate "$JSON_DIR/BENCH_A7.json"

echo "faults: degradation curve in $JSON_DIR/BENCH_A7.json"
