#!/bin/sh
# Docs lint: the README must cover the whole user-facing surface.
#
# Fails (nonzero exit, one line per gap) when
#   - a qrec subcommand dispatched in tools/qrec.cc, or
#   - a QR_* knob (getenv in C++, $QR_* in the shell harnesses, or a
#     -DQR_* CMake cache option)
# is not mentioned anywhere in README.md. Run from the repo root or
# via CTest (the docs_lint entry); tools/ci.sh runs it on every gate.
set -eu

cd "$(dirname "$0")/.."
fail=0

subcommands=$(grep -oE 'cmd == "[a-z-]+"' tools/qrec.cc \
    | sed 's/.*"\(.*\)"/\1/' | sort -u)
for sub in $subcommands; do
    if ! grep -q "qrec $sub" README.md; then
        echo "docs-lint: qrec subcommand '$sub' is not in README.md"
        fail=1
    fi
done

cpp_vars=$(grep -rhoE 'getenv\("QR_[A-Z0-9_]+"\)' src tools bench \
    | grep -oE 'QR_[A-Z0-9_]+')
sh_vars=$(grep -rhoE '\$\{?QR_[A-Z0-9_]+' tools/*.sh \
    | grep -oE 'QR_[A-Z0-9_]+')
cmake_vars=$(grep -rhoE '\-DQR_[A-Z0-9_]+' tools/*.sh \
    | grep -oE 'QR_[A-Z0-9_]+')
for var in $(printf '%s\n%s\n%s\n' "$cpp_vars" "$sh_vars" \
    "$cmake_vars" | sort -u); do
    if ! grep -q "$var" README.md; then
        echo "docs-lint: environment knob $var is not in README.md"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "docs-lint: README.md covers every subcommand and QR_* knob"
fi
exit $fail
