#!/bin/sh
# Docs lint: the README and the architecture guide must cover the
# whole user-facing surface.
#
# Fails (nonzero exit, one line per gap) when
#   - a qrec subcommand dispatched in tools/qrec.cc,
#   - a documented exit-code contract (a "exit 0 =" line in the qrec
#     usage text) missing from that subcommand's README CLI row,
#   - a --device* flag parsed by tools/qrec.cc,
#   - a QR_* knob (getenv in C++, $QR_* in the shell harnesses, or a
#     -DQR_* CMake cache option), or
#   - a src/<subsystem>/ directory or a src/*/README.md absent from
#     docs/ARCHITECTURE.md (the subsystem list is derived from the
#     source tree, so a new subsystem fails the lint until the guide
#     names it)
# is not documented. Run from the repo root or via CTest (the
# docs_lint entry); tools/ci.sh runs it on every gate.
set -eu

cd "$(dirname "$0")/.."
fail=0

subcommands=$(grep -oE 'cmd == "[a-z-]+"' tools/qrec.cc \
    | sed 's/.*"\(.*\)"/\1/' | sort -u)
for sub in $subcommands; do
    if ! grep -q "qrec $sub" README.md; then
        echo "docs-lint: qrec subcommand '$sub' is not in README.md"
        fail=1
    fi
done

# Exit-code contracts: a subcommand whose usage text documents an
# "exit 0 = ..." line must spell the same contract out in its README
# CLI row ("Exit codes: 0 ... 1 ... 2 ...").
contract_subs=$(awk '
    match($0, /qrec [a-z-]+/) {
        cmd = substr($0, RSTART + 5, RLENGTH - 5)
    }
    /exit 0 =/ && cmd != "" { print cmd; cmd = "" }
' tools/qrec.cc | sort -u)
for sub in $contract_subs; do
    if ! grep "qrec $sub" README.md | grep -q "Exit codes: 0"; then
        echo "docs-lint: 'qrec $sub' documents an exit-code contract" \
             "in its usage text but its README.md row has no" \
             "'Exit codes: 0 ...' entry"
        fail=1
    fi
done

# Every --device* flag the CLI parses must appear in the README's
# flag tables.
device_flags=$(grep -oE '"--device[a-z-]*"' tools/qrec.cc \
    | tr -d '"' | sort -u)
for flag in $device_flags; do
    if ! grep -q -- "$flag" README.md; then
        echo "docs-lint: qrec flag '$flag' is not in README.md"
        fail=1
    fi
done

# The architecture guide must name every subsystem directory and link
# every per-subsystem README. The list is derived from the tree:
# adding src/<new>/ without touching the guide fails here.
for dir in src/*/; do
    sys=$(basename "$dir")
    if ! grep -q "src/$sys/" docs/ARCHITECTURE.md; then
        echo "docs-lint: subsystem src/$sys/ is not in" \
             "docs/ARCHITECTURE.md"
        fail=1
    fi
    if [ -f "src/$sys/README.md" ] && \
       ! grep -q "src/$sys/README.md" docs/ARCHITECTURE.md; then
        echo "docs-lint: docs/ARCHITECTURE.md does not link" \
             "src/$sys/README.md"
        fail=1
    fi
done

cpp_vars=$(grep -rhoE 'getenv\("QR_[A-Z0-9_]+"\)' src tools bench \
    | grep -oE 'QR_[A-Z0-9_]+')
sh_vars=$(grep -rhoE '\$\{?QR_[A-Z0-9_]+' tools/*.sh \
    | grep -oE 'QR_[A-Z0-9_]+')
cmake_vars=$(grep -rhoE '\-DQR_[A-Z0-9_]+' tools/*.sh \
    | grep -oE 'QR_[A-Z0-9_]+')
for var in $(printf '%s\n%s\n%s\n' "$cpp_vars" "$sh_vars" \
    "$cmake_vars" | sort -u); do
    if ! grep -q "$var" README.md; then
        echo "docs-lint: environment knob $var is not in README.md"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "docs-lint: README.md covers every subcommand, exit-code" \
         "contract, --device flag, and QR_* knob;" \
         "docs/ARCHITECTURE.md covers every subsystem"
fi
exit $fail
