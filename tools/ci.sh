#!/bin/sh
# Single CI gate: everything a change must pass before it merges.
# Runs, in order,
#
#   1. the tier-1 suite (configure + build + full ctest, which now
#      includes the fault-injection, corpus, fault_smoke_* and
#      trace_smoke_* entries),
#   2. the AddressSanitizer/UBSan sweep    (tools/run_asan.sh),
#   3. the ThreadSanitizer gate (tools/run_tsan.sh): the full
#      parallel-replay differential suite -- differential, stress,
#      degraded-fault and scheduler-property tests plus an end-to-end
#      qrec differential replay -- with any race report fatal,
#   4. clang-tidy                          (tools/run_lint.sh),
#   5. a fault-pipeline smoke: record under injection, salvage the
#      torn artifact, replay it degraded with parallel jobs,
#   6. an observability smoke: record with the event tracer armed,
#      export and validate the Chrome trace JSON, dump stats in both
#      formats,
#   7. a streaming-analysis smoke: a tiny E10 sweep records 1x/10x/
#      100x spheres, analyzes them through the mmap + cursor pipeline,
#      and the BENCH_STREAM.json artifact must prove the flat-memory
#      bar (check_bench_stream.cmake) at schema v2,
#   8. the artifact-verification gate: `qrec verify` must map every
#      checked-in corpus corruption to its distinct QRV diagnostic,
#      emit schema-valid SARIF for the lot (tools/check_sarif.cmake),
#      and `qrec analyze --predict` must still flag the masked race
#      the elided twin workload plants,
#   9. the device-nondeterminism gate: the device ground-truth twins
#      recorded with their NIC agent armed must verify clean and
#      replay bit-identically at 1/2/4/8 jobs (strict and degraded);
#      `qrec analyze` must flag exactly the racy twin's planted line
#      (exit 1) and nothing on the clean twin (exit 0); and a tiny E12
#      run must produce a BENCH_DEVICE.json that passes
#      check_bench_device.cmake plus schema validation,
#  10. the docs lint (tools/check_docs.sh): every qrec subcommand,
#      exit-code contract, --device flag, and QR_* knob must be
#      documented in README.md, and docs/ARCHITECTURE.md must cover
#      every subsystem,
#  11. the qrecd soak (tools/soak_qrecd.sh): a short `qrec serve` run
#      under injected faults with a live /metrics scrape, a hard
#      SIGKILL, and a repair-mode restart, after which every retained
#      artifact must verify clean or replay degraded, the fleet SARIF
#      must validate, and the submission ledger must close
#      (qr_service_unaccounted = 0).
#
# The first failing stage aborts the script with a nonzero exit.
#
# Usage: tools/ci.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== ci 1/11: tier-1 suite ==="
cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD" -j "$(nproc)"
(cd "$BUILD" && ctest --output-on-failure)

echo "=== ci 2/11: asan/ubsan ==="
tools/run_asan.sh

echo "=== ci 3/11: tsan ==="
tools/run_tsan.sh

echo "=== ci 4/11: clang-tidy ==="
tools/run_lint.sh "$BUILD"

echo "=== ci 5/11: fault pipeline smoke ==="
QREC="$BUILD/tools/qrec"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$QREC" record counter-racy -t 4 -s 2 --cbuf-entries 64 \
    --faults cbuf-drop@0.9,io-torn@tick:0 --fault-seed 10 \
    -o "$SMOKE_DIR/smoke.qrec"
"$QREC" recover -i "$SMOKE_DIR/smoke.qrec" \
    -o "$SMOKE_DIR/smoke_rec.qrec"
"$QREC" replay --degraded --replay-jobs 4 \
    -i "$SMOKE_DIR/smoke_rec.qrec" \
    | grep -q "identical to sequential"

echo "=== ci 6/11: observability smoke ==="
"$QREC" record fft -t 4 -s 1 --trace -o "$SMOKE_DIR/trace.qrec" \
    | grep -q "traced"
"$QREC" trace -i "$SMOKE_DIR/trace.qrec" -o "$SMOKE_DIR/trace.json"
cmake -DJSON="$SMOKE_DIR/trace.json" -P tools/check_trace_json.cmake
"$QREC" stats -i "$SMOKE_DIR/trace.qrec" | grep -q '"rnr.chunks":'
"$QREC" stats --prom -i "$SMOKE_DIR/trace.qrec" \
    | grep -q "# TYPE qr_rnr_chunks counter"

echo "=== ci 7/11: streaming analysis smoke ==="
QR_BENCH_SCALE=1 QR_BENCH_WORKLOADS=radix QR_BENCH_MIN_SECS=0 \
    QR_BENCH_JSON_DIR="$SMOKE_DIR" "$BUILD/bench/bench_e10_stream" \
    > /dev/null
cmake -DJSON="$SMOKE_DIR/BENCH_STREAM.json" \
    -P tools/check_bench_stream.cmake
"$BUILD/tools/bench_json_util" validate --min-schema 2 \
    "$SMOKE_DIR/BENCH_STREAM.json"

echo "=== ci 8/11: artifact verification gate ==="
# Every suite sphere (fresh recordings) and the intact corpus sphere
# lint clean...
SUITE="$("$QREC" list | sed -n '/SPLASH/,/micro/p' | grep '^  ' \
    | tr -d ' ')"
for w in $SUITE; do
    "$QREC" record "$w" -t 4 -s 1 --exact-shadow \
        -o "$SMOKE_DIR/suite_$w.qrec" > /dev/null
done
# shellcheck disable=SC2046
"$QREC" verify $(ls "$SMOKE_DIR"/suite_*.qrec) tests/corpus/intact.qrs
"$QREC" verify "$SMOKE_DIR/trace.qrec" | grep -q "clean:"
# ...and every checked-in corruption maps to its own diagnostic.
check_qrv() {
    OUT="$("$QREC" verify "tests/corpus/$1.qrs" || true)"
    echo "$OUT" | grep -q "$2" || {
        echo "ci: verify $1.qrs missed $2:" >&2
        echo "$OUT" >&2
        exit 1
    }
}
check_qrv empty QRV001
check_qrv torn_tail QRV003
check_qrv truncated_midseg QRV004
check_qrv bad_segment QRV005
check_qrv bad_trailer QRV006
check_qrv dup_segment QRV007
"$QREC" verify --sarif -o "$SMOKE_DIR/verify.sarif" \
    tests/corpus/*.qrs "$SMOKE_DIR/trace.qrec" || true
cmake -DSARIF="$SMOKE_DIR/verify.sarif" -DMIN_RESULTS=6 \
    -P tools/check_sarif.cmake
# The predictive pass still recovers the masked race the elided twin
# plants (and the schedule masks): the tentpole end to end.
"$QREC" record masked-race-elided -t 2 -s 1 --exact-shadow \
    -o "$SMOKE_DIR/masked.qrec" > /dev/null
"$QREC" analyze --predict -i "$SMOKE_DIR/masked.qrec" \
    | grep -q "1 predicted" || {
    echo "ci: analyze --predict lost the planted masked race" >&2
    exit 1
}

echo "=== ci 9/11: device nondeterminism gate ==="
# The device ground-truth twins end to end: record with the NIC agent
# armed, lint the artifacts, and prove replay digest identity on both
# engines at every job count, strict and degraded.
"$QREC" record device-race-racy -t 2 --exact-shadow --device nic \
    -o "$SMOKE_DIR/dev_racy.qrec" > /dev/null
"$QREC" record device-race-clean -t 2 --exact-shadow --device nic \
    -o "$SMOKE_DIR/dev_clean.qrec" > /dev/null
"$QREC" verify "$SMOKE_DIR/dev_racy.qrec" "$SMOKE_DIR/dev_clean.qrec"
for f in dev_racy dev_clean; do
    for j in 1 2 4 8; do
        "$QREC" replay --replay-jobs "$j" -i "$SMOKE_DIR/$f.qrec" \
            | grep -q "identical to sequential"
        "$QREC" replay --degraded --replay-jobs "$j" \
            -i "$SMOKE_DIR/$f.qrec" \
            | grep -q "identical to sequential"
    done
done
# The analyzer's exit-code contract on both twins: the racy one flags
# exactly the planted line (one device race) and exits 1, the clean
# one reports zero device races and exits 0.
if RACY_OUT="$("$QREC" analyze -i "$SMOKE_DIR/dev_racy.qrec")"; then
    echo "ci: analyze did not exit 1 on the racy device twin" >&2
    exit 1
fi
echo "$RACY_OUT" \
    | grep -q "device races: 1 unordered device/core access(es)" || {
    echo "ci: racy device twin did not report exactly one race:" >&2
    echo "$RACY_OUT" >&2
    exit 1
}
echo "$RACY_OUT" | grep -q "device race agent 0 event 0 line" || {
    echo "ci: racy device twin race is not the planted read:" >&2
    echo "$RACY_OUT" >&2
    exit 1
}
CLEAN_OUT="$("$QREC" analyze -i "$SMOKE_DIR/dev_clean.qrec")"
echo "$CLEAN_OUT" \
    | grep -q "device races: 0 unordered device/core access(es)" || {
    echo "ci: clean device twin reported a device race:" >&2
    echo "$CLEAN_OUT" >&2
    exit 1
}
# A tiny E12 run, then re-derive its claims from the JSON artifact.
QR_BENCH_SCALE=1 QR_BENCH_MIN_SECS=0 QR_BENCH_JSON_DIR="$SMOKE_DIR" \
    "$BUILD/bench/bench_e12_device" > /dev/null
cmake -DJSON="$SMOKE_DIR/BENCH_DEVICE.json" \
    -P tools/check_bench_device.cmake
"$BUILD/tools/bench_json_util" validate --min-schema 2 \
    "$SMOKE_DIR/BENCH_DEVICE.json"

echo "=== ci 10/11: docs lint ==="
tools/check_docs.sh

echo "=== ci 11/11: qrecd soak ==="
tools/soak_qrecd.sh "$BUILD"

echo "ci: all gates green"
