#!/bin/sh
# Single CI gate: everything a change must pass before it merges.
# Runs, in order,
#
#   1. the tier-1 suite (configure + build + full ctest, which now
#      includes the fault-injection, corpus, and fault_smoke_* entries),
#   2. the AddressSanitizer/UBSan sweep    (tools/run_asan.sh),
#   3. the ThreadSanitizer replay sweep    (tools/run_tsan.sh),
#   4. clang-tidy                          (tools/run_lint.sh),
#   5. a fault-pipeline smoke: record under injection, salvage the
#      torn artifact, replay it degraded with parallel jobs.
#
# The first failing stage aborts the script with a nonzero exit.
#
# Usage: tools/ci.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== ci 1/5: tier-1 suite ==="
cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD" -j "$(nproc)"
(cd "$BUILD" && ctest --output-on-failure)

echo "=== ci 2/5: asan/ubsan ==="
tools/run_asan.sh

echo "=== ci 3/5: tsan ==="
tools/run_tsan.sh

echo "=== ci 4/5: clang-tidy ==="
tools/run_lint.sh "$BUILD"

echo "=== ci 5/5: fault pipeline smoke ==="
QREC="$BUILD/tools/qrec"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$QREC" record counter-racy -t 4 -s 2 --cbuf-entries 64 \
    --faults cbuf-drop@0.9,io-torn@tick:0 --fault-seed 10 \
    -o "$SMOKE_DIR/smoke.qrec"
"$QREC" recover -i "$SMOKE_DIR/smoke.qrec" \
    -o "$SMOKE_DIR/smoke_rec.qrec"
"$QREC" replay --degraded --replay-jobs 4 \
    -i "$SMOKE_DIR/smoke_rec.qrec" \
    | grep -q "identical to sequential"

echo "ci: all gates green"
