#!/bin/sh
# Race-check the concurrent engines: configure a ThreadSanitizer
# build, compile, and run the FULL parallel-replay differential suite
# -- the parallel/sequential differential tests, the concurrent-replay
# stress tests (seeded QR_REPLAY_STRESS schedule perturbation), the
# degraded fault differentials, the scheduler-primitive property tests
# -- plus the device-injection differentials (worker threads
# committing bus-agent events behind the same fences as chunks), the
# qrecd record-service suite (worker shards, repair loop, /metrics
# server), end-to-end qrec differential replays at 4 jobs (one
# core-only, one with a device stream), and a short chaos `qrec serve`
# run. This is a hard ci.sh gate: any reported race fails the script.
#
# Usage: tools/run_tsan.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DQR_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)" \
    --target test_parallel_replay test_replay test_property \
             test_concurrent_replay test_fault test_service \
             test_retention test_device qrec

# halt_on_error makes the first race fail the run instead of just
# printing; ctest then reports it as a test failure.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

(
    cd "$BUILD"
    ctest --output-on-failure -R \
        'ParallelReplay|ConcurrentReplay|RandomizedDifferential|DegradedReplay|ReadyQueue|CommitFence|DeviceReplay|DeviceFaults|Service\.|ArtifactStore\.|Retention\.|Recovery\.'
)

# End-to-end differential under TSan: the real CLI path (record, then
# sequential + parallel replay with digest comparison), stressed.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD/tools/qrec" record counter-racy -t 4 -s 2 \
    -o "$SMOKE_DIR/tsan.qrec" > /dev/null
QR_REPLAY_STRESS=7 "$BUILD/tools/qrec" replay --replay-jobs 4 \
    -i "$SMOKE_DIR/tsan.qrec" | grep -q "identical to sequential"

# Same differential with a device stream in the sphere: the workers
# inject bus-agent events behind commit fences, TSan watching.
"$BUILD/tools/qrec" record packet-ingest -t 4 -s 2 --device nic \
    -o "$SMOKE_DIR/tsan_dev.qrec" > /dev/null
QR_REPLAY_STRESS=7 "$BUILD/tools/qrec" replay --replay-jobs 4 \
    -i "$SMOKE_DIR/tsan_dev.qrec" | grep -q "identical to sequential"

# The record service's full thread zoo (worker shards, repair loop,
# /metrics accept loop, interrupted drain) under chaos, TSan watching.
"$BUILD/tools/qrec" serve -d "$SMOKE_DIR/spheres" --seconds 2 \
    --workers 2 --retain 8 --port 0 \
    --faults 'io-torn@0.05,drain-fail@0.1,cbuf-drop@0.02' > /dev/null

echo "tsan: no races detected in the parallel replayer or qrecd"
