#!/bin/sh
# Race-check the parallel replayer: configure a ThreadSanitizer build,
# compile, and run the replay-focused tests (the parallel differential
# suite plus the sequential replay and property suites that drive the
# same ReplayCore). Any reported race fails the script.
#
# Usage: tools/run_tsan.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DQR_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)" \
    --target test_parallel_replay test_replay test_property qrec

# halt_on_error makes the first race fail the run instead of just
# printing; ctest then reports it as a test failure.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

cd "$BUILD"
ctest --output-on-failure -R 'ParallelReplay|RandomizedDifferential'

echo "tsan: no races detected in the parallel replayer"
