/**
 * @file
 * qrec -- the QuickRec command-line driver.
 *
 *   qrec list
 *       Show the available workloads.
 *   qrec run <workload> [-t threads] [-s scale] [--record] [--stats]
 *       Execute a workload (optionally under recording) and report.
 *   qrec record <workload> [-t threads] [-s scale] -o <file>
 *       Record a run and persist the sphere (with replay metadata).
 *   qrec replay -i <file> [--replay-jobs N]
 *       Rebuild the workload from the file's metadata, replay the
 *       sphere, and verify the stored digests. With --replay-jobs,
 *       additionally run the parallel chunk-graph replayer with N
 *       worker threads, check it against the sequential oracle, and
 *       report the replay-speed fields.
 *   qrec inspect -i <file>
 *       Summarize a recorded sphere's logs.
 *   qrec analyze -i <file> [--json out.json]
 *       Offline happens-before race analysis over the recorded chunk
 *       logs: no replay, works on the sphere alone. Reports races
 *       (with line addresses when the sphere was recorded with
 *       --exact-shadow), the recording-precision audit, and the
 *       termination histograms; --json additionally emits the
 *       machine-readable rows (bench_json schema).
 *
 * The .qrec container wraps the sphere byte stream with the workload
 * identity and the recorded digests so a replay is self-validating.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analyze/race_analyzer.hh"
#include "capo/log_store.hh"
#include "isa/disassembler.hh"
#include "core/session.hh"
#include "replay/log_reader.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

/** Everything qrec persists next to the sphere bytes. */
struct Container
{
    std::string workload;
    int threads = 4;
    int scale = 1;
    Digests digests;
    SphereLogs logs;
};

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

std::string
getString(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    std::uint64_t n = getVarint(in, pos);
    if (n > in.size() - pos)
        parseFail("truncated string in container");
    std::string s(reinterpret_cast<const char *>(in.data()) +
                      static_cast<std::ptrdiff_t>(pos),
                  n);
    pos += n;
    return s;
}

void
saveContainer(const Container &c, const std::string &path)
{
    std::vector<std::uint8_t> out = {'Q', 'R', 'C', '1'};
    putString(out, c.workload);
    putVarint(out, static_cast<std::uint64_t>(c.threads));
    putVarint(out, static_cast<std::uint64_t>(c.scale));
    putVarint(out, c.digests.memory);
    putVarint(out, c.digests.output);
    putVarint(out, c.digests.exits.size());
    for (const auto &[tid, info] : c.digests.exits) {
        putVarint(out, static_cast<std::uint64_t>(tid));
        putVarint(out, info.regDigest);
        putVarint(out, info.instrs);
        putVarint(out, info.exitCode);
    }
    std::vector<std::uint8_t> sphere = c.logs.serialize();
    putVarint(out, sphere.size());
    out.insert(out.end(), sphere.begin(), sphere.end());

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s\n", out.size(), path.c_str());
}

Container
loadContainer(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot read '%s'", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> in(static_cast<std::size_t>(size));
    if (std::fread(in.data(), 1, in.size(), f) != in.size())
        fatal("short read from '%s'", path.c_str());
    std::fclose(f);

    if (in.size() < 4 || std::memcmp(in.data(), "QRC1", 4) != 0)
        fatal("'%s' is not a qrec container", path.c_str());
    // A corrupted container is user input, not a bug: surface every
    // parse failure as a fatal error message instead of an abort.
    try {
        std::size_t pos = 4;
        Container c;
        c.workload = getString(in, pos);
        c.threads = static_cast<int>(getVarint(in, pos));
        c.scale = static_cast<int>(getVarint(in, pos));
        c.digests.memory = getVarint(in, pos);
        c.digests.output = getVarint(in, pos);
        std::uint64_t nexits = getVarint(in, pos);
        for (std::uint64_t i = 0; i < nexits; ++i) {
            Tid tid = static_cast<Tid>(getVarint(in, pos));
            ThreadExitInfo info;
            info.regDigest = getVarint(in, pos);
            info.instrs = getVarint(in, pos);
            info.exitCode = static_cast<Word>(getVarint(in, pos));
            c.digests.exits.emplace(tid, info);
        }
        std::uint64_t nsphere = getVarint(in, pos);
        if (nsphere > in.size() - pos)
            parseFail("container truncated: sphere log needs %llu "
                      "bytes, %llu remain",
                      static_cast<unsigned long long>(nsphere),
                      static_cast<unsigned long long>(in.size() - pos));
        if (nsphere != in.size() - pos)
            parseFail("trailing bytes in container");
        std::vector<std::uint8_t> sphere(in.begin() +
                                             static_cast<long>(pos),
                                         in.end());
        c.logs = SphereLogs::deserialize(sphere);
        return c;
    } catch (const ParseError &e) {
        fatal("'%s' is corrupt: %s", path.c_str(), e.what());
    }
}

Workload
buildWorkload(const std::string &name, int threads, int scale)
{
    for (const auto &spec : splash2Suite())
        if (spec.name == name)
            return spec.make(threads, scale);
    // Micro-workloads reachable by name for experimentation.
    if (name == "counter-racy")
        return makeRacyCounter(threads, 500 * scale, false);
    if (name == "counter-locked")
        return makeRacyCounter(threads, 500 * scale, true);
    if (name == "pingpong")
        return makePingPong(300 * scale);
    if (name == "false-sharing")
        return makeFalseSharing(threads, 400 * scale);
    if (name == "prodcons")
        return makeProdCons(threads, 100 * scale);
    if (name == "nondet-mix")
        return makeNondetMix(threads, 100 * scale);
    if (name == "signal-stress")
        return makeSignalStress(8 * scale);
    if (name == "race-demo-racy")
        return makeRaceDemo(threads, 200 * scale, true);
    if (name == "race-demo-clean")
        return makeRaceDemo(threads, 200 * scale, false);
    fatal("unknown workload '%s' (try 'qrec list')", name.c_str());
}

int
cmdList()
{
    std::printf("SPLASH-2 analog suite:\n");
    for (const auto &spec : splash2Suite())
        std::printf("  %s\n", spec.name.c_str());
    std::printf("micro-workloads:\n");
    for (const char *n : {"counter-racy", "counter-locked", "pingpong",
                          "false-sharing", "prodcons", "nondet-mix",
                          "signal-stress", "race-demo-racy",
                          "race-demo-clean"})
        std::printf("  %s\n", n);
    return 0;
}

struct Args
{
    std::string workload;
    std::string file;
    int threads = 4;
    int scale = 1;
    int replayJobs = 0; //!< 0 = flag not given (sequential only)
    bool record = false;
    bool stats = false;
    bool exactShadow = false;
    std::string jsonFile;
};

Args
parseArgs(int argc, char **argv, int first, bool wants_workload)
{
    Args a;
    int i = first;
    if (wants_workload) {
        if (i >= argc)
            fatal("missing workload name");
        a.workload = argv[i++];
    }
    for (; i < argc; ++i) {
        std::string s = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", s.c_str());
            return argv[++i];
        };
        if (s == "-t" || s == "--threads")
            a.threads = std::atoi(next());
        else if (s == "-s" || s == "--scale")
            a.scale = std::atoi(next());
        else if (s == "-o" || s == "--out" || s == "-i" ||
                 s == "--in")
            a.file = next();
        else if (s == "-j" || s == "--replay-jobs") {
            const char *v = next();
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 4096)
                fatal("%s expects a positive integer, got '%s'",
                      s.c_str(), v);
            a.replayJobs = static_cast<int>(n);
        }
        else if (s == "--record")
            a.record = true;
        else if (s == "--stats")
            a.stats = true;
        else if (s == "--exact-shadow")
            a.exactShadow = true;
        else if (s == "--json")
            a.jsonFile = next();
        else
            fatal("unknown option '%s'", s.c_str());
    }
    return a;
}

int
cmdRun(const Args &a)
{
    Workload w = buildWorkload(a.workload, a.threads, a.scale);
    RunMetrics m;
    if (a.record) {
        RecordResult rec = recordProgram(w.program);
        m = rec.metrics;
    } else {
        m = runBaseline(w.program);
    }
    std::printf("%s (%s): %s\n", w.name.c_str(), w.params.c_str(),
                m.summary().c_str());
    if (a.stats)
        std::fputs(m.statsText().c_str(), stdout);
    return 0;
}

int
cmdRecord(const Args &a)
{
    if (a.file.empty())
        fatal("record needs -o <file>");
    Workload w = buildWorkload(a.workload, a.threads, a.scale);
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = a.exactShadow;
    RecordResult rec = recordProgram(w.program, {}, rcfg);
    std::printf("recorded %s: %s\n", w.name.c_str(),
                rec.metrics.summary().c_str());
    Container c{w.name, a.threads, a.scale, rec.metrics.digests,
                std::move(rec.logs)};
    saveContainer(c, a.file);
    return 0;
}

int
cmdReplay(const Args &a)
{
    if (a.file.empty())
        fatal("replay needs -i <file>");
    Container c = loadContainer(a.file);
    std::printf("replaying %s (threads=%d scale=%d) from %s\n",
                c.workload.c_str(), c.threads, c.scale,
                a.file.c_str());
    Workload w = buildWorkload(c.workload, c.threads, c.scale);
    ReplayResult rep = replaySphere(w.program, c.logs);
    if (!rep.ok) {
        std::printf("DIVERGED: %s\n", rep.divergence.c_str());
        return 1;
    }
    VerifyReport v = verifyDigests(c.digests, rep.digests);
    if (!v.ok) {
        std::printf("DIGEST MISMATCH:\n%s", v.str().c_str());
        return 1;
    }
    std::printf("deterministic: %llu chunks, %llu instructions, "
                "%llu injected records -- all digests match\n",
                (unsigned long long)rep.replayedChunks,
                (unsigned long long)rep.replayedInstrs,
                (unsigned long long)rep.injectedRecords);

    if (a.replayJobs >= 1) {
        // Differential parallel replay: the chunk-graph engine must
        // reproduce the sequential oracle bit for bit.
        ParallelReplayResult par =
            replaySphereParallel(w.program, c.logs, a.replayJobs);
        if (!par.replay.ok) {
            std::printf("PARALLEL DIVERGED: %s\n",
                        par.replay.divergence.c_str());
            return 1;
        }
        VerifyReport pv = verifyDigests(rep.digests, par.replay.digests);
        if (!pv.ok) {
            std::printf("PARALLEL DIGEST MISMATCH vs sequential:\n%s",
                        pv.str().c_str());
            return 1;
        }
        std::printf("parallel replay: jobs=%d identical to sequential "
                    "(%llu chunks, %llu edges in the dependence graph)\n",
                    a.replayJobs,
                    (unsigned long long)par.graphNodes,
                    (unsigned long long)par.graphEdges);
        std::printf("%s\n", par.speed.summary().c_str());
    }
    return 0;
}

int
cmdInspect(const Args &a)
{
    if (a.file.empty())
        fatal("inspect needs -i <file>");
    Container c = loadContainer(a.file);
    std::printf("workload: %s  threads=%d scale=%d\n",
                c.workload.c_str(), c.threads, c.scale);
    LogSizes sizes = measureLogs(c.logs);
    std::printf("logs: %llu chunk records (%llu B packed), "
                "%llu input records (%llu B packed)\n",
                (unsigned long long)sizes.chunkRecords,
                (unsigned long long)sizes.memoryBytes,
                (unsigned long long)sizes.inputRecords,
                (unsigned long long)sizes.inputBytes);
    Table t({"tid", "chunks", "instrs", "inputs", "first ts",
             "last ts"});
    for (const auto &[tid, logs] : c.logs.threads) {
        std::uint64_t instrs = 0;
        for (const auto &rec : logs.chunks)
            instrs += rec.size;
        t.row().cell(static_cast<std::int64_t>(tid))
            .cell(logs.chunks.size()).cell(instrs)
            .cell(logs.input.size())
            .cell(logs.chunks.empty() ? 0 : logs.chunks.front().ts)
            .cell(logs.chunks.empty() ? 0 : logs.chunks.back().ts);
    }
    t.print();
    return 0;
}

int
cmdAnalyze(const Args &a)
{
    if (a.file.empty())
        fatal("analyze needs -i <file>");
    Container c = loadContainer(a.file);
    std::printf("analyzing %s (threads=%d scale=%d) from %s\n",
                c.workload.c_str(), c.threads, c.scale,
                a.file.c_str());
    RaceReport rep;
    try {
        rep = analyzeSphere(c.logs);
    } catch (const ParseError &e) {
        fatal("'%s' is corrupt: %s", a.file.c_str(), e.what());
    }
    std::fputs(rep.str().c_str(), stdout);

    if (!a.jsonFile.empty()) {
        BenchDoc doc = rep.toBenchDoc(c.workload);
        std::FILE *f = std::fopen(a.jsonFile.c_str(), "wb");
        if (!f)
            fatal("cannot write '%s'", a.jsonFile.c_str());
        std::string text = doc.str();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", a.jsonFile.c_str());
    }
    return rep.races.empty() ? 0 : 1;
}

int
cmdDisasm(const Args &a)
{
    Workload w = buildWorkload(a.workload, a.threads, a.scale);
    std::printf("; %s (%s): %zu instructions, %zu data-init words\n",
                w.name.c_str(), w.params.c_str(), w.program.code.size(),
                w.program.dataInit.size());
    for (const auto &[name, addr] : w.program.labels)
        std::printf("; %-24s = %u\n", name.c_str(), addr);
    for (Word pc = 0; pc < w.program.code.size(); ++pc)
        std::printf("%5u: %s\n", pc,
                    disassemble(w.program.code[pc]).c_str());
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: qrec "
                 "<list|run|record|replay|inspect|analyze|disasm> ...\n"
                 "  qrec run <workload> [-t N] [-s S] [--record] "
                 "[--stats]\n"
                 "  qrec record <workload> [-t N] [-s S] "
                 "[--exact-shadow] -o file.qrec\n"
                 "  qrec replay -i file.qrec [--replay-jobs N]\n"
                 "  qrec inspect -i file.qrec\n"
                 "  qrec analyze -i file.qrec [--json out.json]\n"
                 "  qrec disasm <workload> [-t N] [-s S]\n");
    return 2;
}

} // namespace
} // namespace qr

int
main(int argc, char **argv)
{
    using namespace qr;
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(parseArgs(argc, argv, 2, true));
    if (cmd == "record")
        return cmdRecord(parseArgs(argc, argv, 2, true));
    if (cmd == "replay")
        return cmdReplay(parseArgs(argc, argv, 2, false));
    if (cmd == "inspect")
        return cmdInspect(parseArgs(argc, argv, 2, false));
    if (cmd == "analyze")
        return cmdAnalyze(parseArgs(argc, argv, 2, false));
    if (cmd == "disasm")
        return cmdDisasm(parseArgs(argc, argv, 2, true));
    return usage();
}
