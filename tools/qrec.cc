/**
 * @file
 * qrec -- the QuickRec command-line driver.
 *
 *   qrec list
 *       Show the available workloads.
 *   qrec run <workload> [-t threads] [-s scale] [--record] [--stats]
 *       Execute a workload (optionally under recording) and report.
 *   qrec record <workload> [-t threads] [-s scale] -o <file>
 *       Record a run and persist the sphere (with replay metadata).
 *       With --faults <spec> [--fault-seed N], injects deterministic
 *       faults (see fault/fault_plan.hh) into the recording hardware
 *       and the log write; an injected write failure leaves a torn
 *       artifact for `qrec recover` and is reported, not fatal.
 *       --device nic|disk [--device-rate R] arms the DMA-style bus
 *       agent a device workload declares (bus/bus_agent.hh): its
 *       asynchronous guest-memory writes are snooped, logged as a
 *       per-agent event stream in the sphere, and replay-injected at
 *       their recorded anchors. Device workloads poll the agent's
 *       doorbell, so recording one without --device is refused (it
 *       would deadlock); --device on a deviceless workload is refused
 *       too. R overrides the workload's delivery cadence in ticks.
 *   qrec replay -i <file> [--replay-jobs N] [--degraded]
 *       Rebuild the workload from the file's metadata, replay the
 *       sphere, and verify the stored digests. With --replay-jobs,
 *       additionally run the parallel chunk-graph replayer with N
 *       worker threads, check it against the sequential oracle, and
 *       report the replay-speed fields. --degraded replays spheres
 *       with gap markers or salvaged prefixes to completion and
 *       reports the degradation summary instead of aborting.
 *       --faults with dev-drop/dev-torn/dev-late sites perturbs the
 *       loaded device streams before replay (dropped, torn, and late
 *       completions); strict replay reports the resulting divergence,
 *       degraded replay completes and counts it.
 *   qrec recover -i <torn> -o <file>
 *       Salvage a torn container: every intact segment, then every
 *       parseable thread-log prefix, rewritten as a sealed container.
 *   qrec inspect -i <file>
 *       Summarize a recorded sphere's logs.
 *   qrec analyze -i <file> [--predict] [--window N] [--json out.json]
 *       Offline happens-before race analysis over the recorded chunk
 *       logs: no replay, works on the sphere alone. Sealed containers
 *       are analyzed straight off the mmapped file through the
 *       streaming analyzer, so memory stays flat in the chunk count;
 *       --window (or QR_ANALYZE_WINDOW) sets the streaming batch size
 *       in chunks -- a pure memory/bookkeeping knob that never changes
 *       the results. Reports races (with line addresses when the
 *       sphere was recorded with --exact-shadow), the recording-
 *       precision audit, and the termination histograms; --json
 *       additionally emits the machine-readable rows plus the
 *       analyze.* resource stats (bench_json schema 2). --predict
 *       runs the predictive second pass (analyze/predict.hh): every
 *       cross-thread conflict the witnessed analysis found benign is
 *       re-judged against a sync-preserving partial order plus an
 *       Eraser-style lockset test over the recorded futex handoffs,
 *       surfacing races the observed schedule masked. Exit codes:
 *       0 = no races, 1 = witnessed or predicted races found,
 *       2 = the artifact could not be analyzed.
 *   qrec verify <file...> [--sarif] [-o out]
 *       Replay-free sphere artifact linter (analyze/verify.hh): checks
 *       container integrity, stream well-formedness, and recording
 *       invariants (sync pairing, clock floors, shadow geometry) from
 *       the bytes alone, with one stable QRVnnn code per rule. Accepts
 *       raw sphere artifacts (.qrs) and .qrec containers (the wrapped
 *       sphere is extracted and linted). --sarif renders SARIF 2.1.0
 *       for CI upload instead of compiler-style text. Exit codes:
 *       0 = all artifacts clean, 1 = findings, 2 = usage/IO error.
 *   qrec trace -i <file> [-o trace.json]
 *       Export the recording's structured event timeline as Chrome
 *       trace-event JSON (load in chrome://tracing or Perfetto).
 *       Uses the timeline embedded by `record --trace`; without one,
 *       synthesizes chunk spans from the sphere's chunk records, so
 *       any .qrec file can be visualized.
 *   qrec stats -i <file> [--prom] [--replay-jobs N] [-o out]
 *       Export the unified stats snapshot derived from the sphere
 *       (chunk/RSW histograms, termination reasons, log sizes) as
 *       JSON, or as Prometheus text with --prom. With --replay-jobs,
 *       run the differential replay and add the replay.modeled_speedup
 *       and replay.measured_speedup gauges (modeled schedule ratio vs.
 *       wall-clock ratio -- distinct numbers by design).
 *
 * The .qrec container wraps the sphere byte stream with the workload
 * identity and the recorded digests so a replay is self-validating;
 * `record --trace` appends an optional event-timeline section after
 * the sphere (older readers of the pre-trace layout never see it,
 * and containers without it parse exactly as before). On disk the
 * container payload rides in the same crash-consistent segmented
 * format spheres use (log_store.hh); legacy unsegmented files remain
 * readable.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analyze/predict.hh"
#include "analyze/race_analyzer.hh"
#include "analyze/verify.hh"
#include "capo/log_store.hh"
#include "fault/fault_plan.hh"
#include "isa/disassembler.hh"
#include "core/artifact.hh"
#include "core/session.hh"
#include "service/service.hh"
#include "obs/event_trace.hh"
#include "obs/profile.hh"
#include "obs/stats_export.hh"
#include "replay/log_reader.hh"
#include "sim/logging.hh"
#include "sim/table.hh"
#include "workloads/device.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace qr
{
namespace
{

/**
 * The container type and its (de)serializers live in
 * core/artifact.hh now, shared with the record service; the CLI keeps
 * only its fatal()-on-failure wrapper, with the exact messages it has
 * always printed.
 */
SphereArtifact
loadContainer(const std::string &path)
{
    ArtifactLoadResult r = loadArtifact(path);
    if (r)
        return std::move(r.artifact);
    switch (r.kind) {
      case ArtifactError::Io:
        // detail is "cannot read '<path>'" / "short read from ...".
        fatal("%s", r.detail.c_str());
      case ArtifactError::Torn:
        fatal("'%s' is corrupt: %s; 'qrec recover' can salvage "
              "the intact prefix",
              path.c_str(), r.detail.c_str());
      case ArtifactError::NotContainer:
        fatal("'%s' is not a qrec container", path.c_str());
      case ArtifactError::Corrupt:
      case ArtifactError::None:
        break;
    }
    fatal("'%s' is corrupt: %s", path.c_str(), r.detail.c_str());
}

Workload
buildWorkload(const std::string &name, int threads, int scale)
{
    for (const auto &spec : splash2Suite())
        if (spec.name == name)
            return spec.make(threads, scale);
    // Micro-workloads reachable by name for experimentation.
    if (name == "counter-racy")
        return makeRacyCounter(threads, 500 * scale, false);
    if (name == "counter-locked")
        return makeRacyCounter(threads, 500 * scale, true);
    if (name == "pingpong")
        return makePingPong(300 * scale);
    if (name == "false-sharing")
        return makeFalseSharing(threads, 400 * scale);
    if (name == "prodcons")
        return makeProdCons(threads, 100 * scale);
    if (name == "nondet-mix")
        return makeNondetMix(threads, 100 * scale);
    if (name == "signal-stress")
        return makeSignalStress(8 * scale);
    if (name == "race-demo-racy")
        return makeRaceDemo(threads, 200 * scale, true);
    if (name == "race-demo-clean")
        return makeRaceDemo(threads, 200 * scale, false);
    if (name == "masked-race-elided")
        return makeMaskedRaceDemo(threads, 50 * scale, true);
    if (name == "masked-race-clean")
        return makeMaskedRaceDemo(threads, 50 * scale, false);
    if (name == "packet-ingest")
        return makePacketIngest(threads, scale);
    if (name == "storage-completion")
        return makeStorageCompletion(threads, scale);
    if (name == "device-race-racy")
        return makeDeviceRaceDemo(threads, true);
    if (name == "device-race-clean")
        return makeDeviceRaceDemo(threads, false);
    fatal("unknown workload '%s' (try 'qrec list')", name.c_str());
}

int
cmdList()
{
    std::printf("SPLASH-2 analog suite:\n");
    for (const auto &spec : splash2Suite())
        std::printf("  %s\n", spec.name.c_str());
    std::printf("micro-workloads:\n");
    for (const char *n : {"counter-racy", "counter-locked", "pingpong",
                          "false-sharing", "prodcons", "nondet-mix",
                          "signal-stress", "race-demo-racy",
                          "race-demo-clean", "masked-race-elided",
                          "masked-race-clean"})
        std::printf("  %s\n", n);
    std::printf("device workloads (need record --device):\n");
    for (const char *n : {"packet-ingest", "storage-completion",
                          "device-race-racy", "device-race-clean"})
        std::printf("  %s\n", n);
    return 0;
}

struct Args
{
    std::string workload;
    std::string file;    //!< -i: input container
    std::string outFile; //!< -o: output container
    int threads = 4;
    int scale = 1;
    int replayJobs = 0; //!< 0 = flag not given (sequential only)
    bool record = false;
    bool stats = false;
    bool exactShadow = false;
    bool degraded = false;
    bool trace = false; //!< arm the structured event tracer
    bool prom = false;  //!< stats: Prometheus text instead of JSON
    std::string faults; //!< fault-injection spec (empty = none)
    std::uint64_t faultSeed = 1;
    std::string device; //!< record: arm the workload's bus agent
    std::uint32_t deviceRate = 0; //!< 0 = use the workload's cadence
    std::uint32_t cbufEntries = 0; //!< 0 = keep the default capacity
    std::uint32_t window = 0; //!< analyze: streaming batch (0 = default)
    bool predict = false; //!< analyze: run the predictive race pass
    int scrapePort = -1;  //!< stats: scrape a live /metrics endpoint
    std::string jsonFile;
};

Args
parseArgs(int argc, char **argv, int first, bool wants_workload)
{
    Args a;
    int i = first;
    if (wants_workload) {
        if (i >= argc)
            fatal("missing workload name");
        a.workload = argv[i++];
    }
    for (; i < argc; ++i) {
        std::string s = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", s.c_str());
            return argv[++i];
        };
        if (s == "-t" || s == "--threads")
            a.threads = std::atoi(next());
        else if (s == "-s" || s == "--scale")
            a.scale = std::atoi(next());
        else if (s == "-o" || s == "--out")
            a.outFile = next();
        else if (s == "-i" || s == "--in")
            a.file = next();
        else if (s == "-j" || s == "--replay-jobs") {
            const char *v = next();
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 4096)
                fatal("%s expects a positive integer, got '%s'",
                      s.c_str(), v);
            a.replayJobs = static_cast<int>(n);
        }
        else if (s == "--record")
            a.record = true;
        else if (s == "--stats")
            a.stats = true;
        else if (s == "--exact-shadow")
            a.exactShadow = true;
        else if (s == "--degraded")
            a.degraded = true;
        else if (s == "--trace")
            a.trace = true;
        else if (s == "--prom")
            a.prom = true;
        else if (s == "--faults")
            a.faults = next();
        else if (s == "--device")
            a.device = next();
        else if (s == "--device-rate") {
            const char *v = next();
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 1 << 20)
                fatal("%s expects a positive integer, got '%s'",
                      s.c_str(), v);
            a.deviceRate = static_cast<std::uint32_t>(n);
        }
        else if (s == "--fault-seed") {
            const char *v = next();
            char *end = nullptr;
            unsigned long long n = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0')
                fatal("%s expects an integer, got '%s'", s.c_str(), v);
            a.faultSeed = n;
        }
        else if (s == "--cbuf-entries") {
            const char *v = next();
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 4)
                fatal("%s expects an integer >= 4, got '%s'",
                      s.c_str(), v);
            a.cbufEntries = static_cast<std::uint32_t>(n);
        }
        else if (s == "--window") {
            const char *v = next();
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 1 << 30)
                fatal("%s expects a positive integer, got '%s'",
                      s.c_str(), v);
            a.window = static_cast<std::uint32_t>(n);
        }
        else if (s == "--predict")
            a.predict = true;
        else if (s == "--scrape") {
            const char *v = next();
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 65535)
                fatal("%s expects a port number, got '%s'",
                      s.c_str(), v);
            a.scrapePort = static_cast<int>(n);
        }
        else if (s == "--json")
            a.jsonFile = next();
        else
            fatal("unknown option '%s'", s.c_str());
    }
    return a;
}

int
cmdRun(const Args &a)
{
    Workload w = buildWorkload(a.workload, a.threads, a.scale);
    if (w.device.present())
        fatal("workload '%s' polls a device doorbell; only 'qrec "
              "record --device %s' arms the bus agent",
              w.name.c_str(), deviceKindName(w.device.kind));
    RunMetrics m;
    if (a.record) {
        RecordResult rec = recordProgram(w.program);
        m = rec.metrics;
    } else {
        m = runBaseline(w.program);
    }
    std::printf("%s (%s): %s\n", w.name.c_str(), w.params.c_str(),
                m.summary().c_str());
    if (a.stats)
        std::fputs(m.statsText().c_str(), stdout);
    return 0;
}

int
cmdRecord(const Args &a)
{
    if (a.outFile.empty())
        fatal("record needs -o <file>");
    Workload w = buildWorkload(a.workload, a.threads, a.scale);
    RecorderConfig rcfg;
    rcfg.rnr.exactShadow = a.exactShadow;
    rcfg.faults.spec = a.faults;
    rcfg.faults.seed = a.faultSeed;
    if (a.cbufEntries)
        rcfg.cbuf.entries = a.cbufEntries;
    if (!a.device.empty()) {
        DeviceKind kind = deviceKindFromName(a.device);
        if (kind == DeviceKind::None)
            fatal("--device expects nic|disk, got '%s'",
                  a.device.c_str());
        if (!w.device.present())
            fatal("workload '%s' declares no device ring; drop "
                  "--device or pick one from 'qrec list'",
                  w.name.c_str());
        if (kind != w.device.kind)
            fatal("workload '%s' expects --device %s, not %s",
                  w.name.c_str(), deviceKindName(w.device.kind),
                  a.device.c_str());
        BusAgentConfig acfg;
        acfg.agentId = 0;
        acfg.kind = w.device.kind;
        acfg.ringBase = w.device.ringBase;
        acfg.slotWords = w.device.slotWords;
        acfg.slots = w.device.slots;
        acfg.doorbell = w.device.doorbell;
        acfg.count = w.device.count;
        acfg.rate = a.deviceRate ? a.deviceRate : w.device.rate;
        rcfg.devices.push_back(acfg);
    } else if (w.device.present()) {
        fatal("workload '%s' polls a device doorbell and deadlocks "
              "without its agent; record it with --device %s",
              w.name.c_str(), deviceKindName(w.device.kind));
    }
    if (a.trace)
        eventTrace().arm();
    RecordResult rec = recordProgram(w.program, {}, rcfg);
    std::printf("recorded %s: %s\n", w.name.c_str(),
                rec.metrics.summary().c_str());
    if (rec.metrics.deviceEvents)
        std::printf("device: %llu completion(s) delivered "
                    "(%llu bus transactions)\n",
                    (unsigned long long)rec.metrics.deviceEvents,
                    (unsigned long long)rec.metrics.deviceBusTxns);
    if (rec.metrics.gapChunks || rec.metrics.droppedChunks)
        std::printf("faults: dropped %llu chunk(s) behind %llu gap "
                    "marker(s); replay with --degraded\n",
                    (unsigned long long)rec.metrics.droppedChunks,
                    (unsigned long long)rec.metrics.gapChunks);
    SphereArtifact c{w.name, a.threads, a.scale, rec.metrics.digests,
                     std::move(rec.logs), {}};
    if (!rec.timeline.events.empty() || rec.timeline.dropped) {
        c.trace = rec.timeline.serialize();
        std::printf("traced %zu event(s)%s\n",
                    rec.timeline.events.size(),
                    rec.timeline.dropped
                        ? csprintf(" (%llu dropped)",
                                   (unsigned long long)
                                       rec.timeline.dropped)
                              .c_str()
                        : "");
    }

    // The I/O layer rolls its own plan: per-site Rng streams make it
    // deterministic whether or not the recorder consumed draws.
    FaultPlan ioPlan;
    FaultPlan *iop = nullptr;
    if (!a.faults.empty()) {
        ioPlan = FaultPlan::parse(a.faults, a.faultSeed);
        iop = &ioPlan;
    }
    SegmentedWriteResult saved = saveArtifact(c, a.outFile, iop);
    if (saved) {
        std::printf("wrote %llu bytes to %s\n",
                    (unsigned long long)saved.bytes,
                    a.outFile.c_str());
    } else if (saved.injected) {
        // An injected crash is the expected product of a fault run:
        // report what is on disk and leave salvage to `qrec recover`.
        std::printf("injected I/O fault while writing %s: %s "
                    "(%llu bytes on disk)\n",
                    a.outFile.c_str(), saved.error.c_str(),
                    (unsigned long long)saved.bytes);
    } else {
        fatal("cannot write '%s': %s", a.outFile.c_str(),
              saved.error.c_str());
    }
    return 0;
}

int
cmdRecover(const Args &a)
{
    if (a.file.empty())
        fatal("recover needs -i <file>");
    if (a.outFile.empty())
        fatal("recover needs -o <file>");

    ArtifactRecoverResult r = recoverArtifact(a.file, a.outFile);
    if (!r) {
        switch (r.stage) {
          case RecoverStage::Empty:
            if (r.detail == "file is empty")
                fatal("'%s' is empty; nothing to salvage",
                      a.file.c_str());
            // I/O failure: detail is "cannot read ..." verbatim.
            fatal("%s", r.detail.c_str());
          case RecoverStage::NotContainer:
            fatal("'%s' is not a qrec container (no intact header "
                  "segment)", a.file.c_str());
          case RecoverStage::Meta:
            fatal("'%s' is unrecoverable (torn inside the container "
                  "meta): %s", a.file.c_str(), r.detail.c_str());
          case RecoverStage::Sphere:
            fatal("'%s' is unrecoverable (unusable sphere header): "
                  "%s", a.file.c_str(), r.detail.c_str());
          case RecoverStage::Write:
          case RecoverStage::Ok:
            break;
        }
        fatal("cannot write '%s': %s", a.outFile.c_str(),
              r.detail.c_str());
    }

    std::printf("salvaged %s: %llu intact segment(s), %llu thread "
                "log(s) complete, %llu kept as a prefix\n",
                a.file.c_str(), (unsigned long long)r.segments,
                (unsigned long long)r.threadsSalvaged,
                (unsigned long long)r.threadsPartial);
    if (r.complete) {
        std::printf("file was intact; full sphere recovered\n");
    } else {
        if (!r.tornNote.empty())
            std::printf("container: %s\n", r.tornNote.c_str());
        if (!r.sphereNote.empty())
            std::printf("sphere: %s\n", r.sphereNote.c_str());
    }
    std::printf("wrote %llu bytes to %s\n",
                (unsigned long long)r.bytes, a.outFile.c_str());
    if (!r.complete)
        std::printf("replay with: qrec replay --degraded -i %s\n",
                    a.outFile.c_str());
    return 0;
}

int
cmdReplay(const Args &a)
{
    if (a.file.empty())
        fatal("replay needs -i <file>");
    SphereArtifact c = loadContainer(a.file);
    std::printf("replaying %s (threads=%d scale=%d) from %s\n",
                c.workload.c_str(), c.threads, c.scale,
                a.file.c_str());
    Workload w = buildWorkload(c.workload, c.threads, c.scale);
    if (!a.faults.empty() && !c.logs.devices.empty()) {
        // Device-completion faults are a *replay-side* perturbation:
        // mutate the loaded streams once, up front, so the sequential
        // oracle and every parallel job count see identical streams.
        FaultPlan devPlan = FaultPlan::parse(a.faults, a.faultSeed);
        DeviceFaultSummary df =
            applyDeviceReplayFaults(c.logs.devices, devPlan);
        if (df.any())
            std::printf("%s\n", df.summary().c_str());
    }
    ReplayMode mode =
        a.degraded ? ReplayMode::Degraded : ReplayMode::Strict;
    ReplayResult rep = replaySphere(w.program, c.logs, mode);
    if (!rep.ok) {
        std::printf("DIVERGED: %s\n", rep.divergence.c_str());
        return 1;
    }
    if (a.degraded) {
        std::printf("%s\n", rep.degraded.summary().c_str());
        // A degraded sphere lost state, so the recorded digests are
        // informational: report the comparison but do not fail on it.
        VerifyReport v = verifyDigests(c.digests, rep.digests);
        std::printf(v.ok ? "digests match the recorded run\n"
                         : "digests differ from the recorded run "
                           "(expected after data loss)\n");
    } else {
        VerifyReport v = verifyDigests(c.digests, rep.digests);
        if (!v.ok) {
            std::printf("DIGEST MISMATCH:\n%s", v.str().c_str());
            return 1;
        }
        std::printf("deterministic: %llu chunks, %llu instructions, "
                    "%llu injected records -- all digests match\n",
                    (unsigned long long)rep.replayedChunks,
                    (unsigned long long)rep.replayedInstrs,
                    (unsigned long long)rep.injectedRecords);
    }
    if (rep.injectedDeviceEvents)
        std::printf("device injection: %llu event(s) replayed at "
                    "their recorded anchors\n",
                    (unsigned long long)rep.injectedDeviceEvents);

    if (a.replayJobs >= 1) {
        // Differential parallel replay: the chunk-graph engine must
        // reproduce the sequential oracle bit for bit -- in degraded
        // mode too, including the degradation summary.
        ParallelReplayResult par =
            replaySphereParallel(w.program, c.logs, a.replayJobs, mode);
        // The sequential run above is the oracle: its exec wall time
        // completes the speed accounting (measured-speedup).
        par.speed.seqExecMicros = rep.execMicros;
        if (!par.replay.ok) {
            std::printf("PARALLEL DIVERGED: %s\n",
                        par.replay.divergence.c_str());
            return 1;
        }
        VerifyReport pv = verifyDigests(rep.digests, par.replay.digests);
        if (!pv.ok) {
            std::printf("PARALLEL DIGEST MISMATCH vs sequential:\n%s",
                        pv.str().c_str());
            return 1;
        }
        if (a.degraded &&
            par.replay.degraded.summary() != rep.degraded.summary()) {
            std::printf("PARALLEL DEGRADED SUMMARY MISMATCH:\n"
                        "  sequential: %s\n  parallel:   %s\n",
                        rep.degraded.summary().c_str(),
                        par.replay.degraded.summary().c_str());
            return 1;
        }
        std::printf("parallel replay: jobs=%d identical to sequential "
                    "(%llu chunks, %llu edges in the dependence graph)\n",
                    a.replayJobs,
                    (unsigned long long)par.graphNodes,
                    (unsigned long long)par.graphEdges);
        std::printf("%s\n", par.speed.summary().c_str());
    }
    return 0;
}

int
cmdInspect(const Args &a)
{
    if (a.file.empty())
        fatal("inspect needs -i <file>");
    SphereArtifact c = loadContainer(a.file);
    std::printf("workload: %s  threads=%d scale=%d\n",
                c.workload.c_str(), c.threads, c.scale);
    LogSizes sizes = measureLogs(c.logs);
    std::printf("logs: %llu chunk records (%llu B packed), "
                "%llu input records (%llu B packed)\n",
                (unsigned long long)sizes.chunkRecords,
                (unsigned long long)sizes.memoryBytes,
                (unsigned long long)sizes.inputRecords,
                (unsigned long long)sizes.inputBytes);
    Table t({"tid", "chunks", "instrs", "inputs", "first ts",
             "last ts"});
    for (const auto &[tid, logs] : c.logs.threads) {
        std::uint64_t instrs = 0;
        for (const auto &rec : logs.chunks)
            instrs += rec.size;
        t.row().cell(static_cast<std::int64_t>(tid))
            .cell(logs.chunks.size()).cell(instrs)
            .cell(logs.input.size())
            .cell(logs.chunks.empty() ? 0 : logs.chunks.front().ts)
            .cell(logs.chunks.empty() ? 0 : logs.chunks.back().ts);
    }
    t.print();
    for (const DeviceStream &d : c.logs.devices)
        std::printf("device %u (%s): %zu event(s), ts %llu..%llu\n",
                    d.agentId, deviceKindName(d.kind),
                    d.events.size(),
                    d.events.empty()
                        ? 0ull
                        : (unsigned long long)d.events.front().ts,
                    d.events.empty()
                        ? 0ull
                        : (unsigned long long)d.events.back().ts);
    return 0;
}

/** Streaming-analyze batch size: --window beats QR_ANALYZE_WINDOW. */
std::uint32_t
analyzeWindow(const Args &a)
{
    if (a.window)
        return a.window;
    // The CLI is single-threaded up to this point and never setenvs.
    if (const char *s = std::getenv("QR_ANALYZE_WINDOW")) { // NOLINT(concurrency-mt-unsafe)
        char *end = nullptr;
        long n = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || n < 1 || n > 1 << 30)
            fatal("QR_ANALYZE_WINDOW expects a positive integer, "
                  "got '%s'", s);
        return static_cast<std::uint32_t>(n);
    }
    return 0; // analyzer default
}

/**
 * Analyze exit codes are part of the CLI contract (CI scripts branch
 * on them): 0 = no races, 1 = races found (witnessed, or predicted
 * under --predict), 2 = the artifact could not be analyzed. Errors
 * therefore print and return 2 here instead of calling fatal() (which
 * exits 1 -- indistinguishable from "races found").
 */
int
analyzeError(const std::string &msg)
{
    std::fprintf(stderr, "qrec analyze: %s\n", msg.c_str());
    return 2;
}

int
cmdAnalyze(const Args &a)
{
    if (a.file.empty())
        return analyzeError("analyze needs -i <file>");

    StreamOptions opt;
    opt.window = analyzeWindow(a);
    // qrec only prints and counts races; the O(chunks) conflict list
    // is retained only when the predictive pass will re-judge it.
    opt.keepConflicts = a.predict;
    StreamStats streamStats;
    bool streamed = false;

    RaceReport rep;
    PredictReport pred;
    std::string workload;
    int threads = 0;
    int scale = 0;

    // Fast path: a sealed regular container streams straight off the
    // mapping -- the sphere is never materialized as SphereLogs and
    // analyzer memory stays flat in the chunk count.
    MappedSphereFile map;
    bool openOk = map.open(a.file);
    if (map.isContainer() && openOk && map.canStream()) {
        std::string why = map.verifyAll();
        if (!why.empty())
            return analyzeError(csprintf(
                "'%s' is corrupt: %s; 'qrec recover' can salvage "
                "the intact prefix", a.file.c_str(), why.c_str()));
        PayloadView pv = map.payload();
        try {
            if (pv.size() < 4 || pv[0] != 'Q' || pv[1] != 'R' ||
                pv[2] != 'C' || pv[3] != '1')
                parseFail("not a qrec container");
            std::size_t pos = 4;
            SphereArtifact meta = parseArtifactMeta(pv, pos);
            workload = meta.workload;
            threads = meta.threads;
            scale = meta.scale;
            std::uint64_t nsphere = getVarintFrom(pv, pos);
            if (nsphere > pv.size() - pos)
                parseFail("container truncated: sphere log needs "
                          "%llu bytes, %llu remain",
                          static_cast<unsigned long long>(nsphere),
                          static_cast<unsigned long long>(pv.size() -
                                                          pos));
            PayloadView sphere =
                pv.subview(pos, static_cast<std::size_t>(nsphere));
            pos += static_cast<std::size_t>(nsphere);
            if (pos != pv.size()) {
                // Optional trace section; validated, not needed here.
                std::uint64_t ntrace = getVarintFrom(pv, pos);
                if (ntrace != pv.size() - pos)
                    parseFail("trailing bytes in container");
            }
            std::printf("analyzing %s (threads=%d scale=%d) from "
                        "%s\n", workload.c_str(), threads, scale,
                        a.file.c_str());
            SphereCursor cur{sphere};
            rep = analyzeSphereStreaming(cur, opt, &streamStats);
            streamed = true;
            if (a.predict) {
                // Second streaming pass over the same mapped bytes:
                // the predictive judge wants its own cursor so both
                // passes stay window-bounded.
                SphereCursor pcur{sphere};
                pred = predictRaces(pcur, rep);
            }
        } catch (const ParseError &e) {
            return analyzeError(csprintf("'%s' is corrupt: %s",
                                         a.file.c_str(), e.what()));
        }
    } else if (map.isContainer() && !openOk) {
        return analyzeError(csprintf(
            "'%s' is corrupt: %s; 'qrec recover' can salvage "
            "the intact prefix", a.file.c_str(), map.error().c_str()));
    } else {
        // Legacy unsegmented or irregular hand-crafted container:
        // buffered load, eager analysis, identical output.
        std::FILE *probe = std::fopen(a.file.c_str(), "rb");
        if (!probe)
            return analyzeError(csprintf("cannot read '%s'",
                                         a.file.c_str()));
        std::fclose(probe);
        SphereArtifact c = loadContainer(a.file);
        workload = c.workload;
        threads = c.threads;
        scale = c.scale;
        std::printf("analyzing %s (threads=%d scale=%d) from %s\n",
                    workload.c_str(), threads, scale, a.file.c_str());
        try {
            std::vector<std::uint8_t> bytes = c.logs.serialize();
            SphereCursor cur{PayloadView(bytes)};
            rep = analyzeSphereStreaming(cur, opt, &streamStats);
            streamed = true;
            if (a.predict) {
                SphereCursor pcur{PayloadView(bytes)};
                pred = predictRaces(pcur, rep);
            }
        } catch (const ParseError &e) {
            return analyzeError(csprintf("'%s' is corrupt: %s",
                                         a.file.c_str(), e.what()));
        }
    }
    std::fputs(rep.str().c_str(), stdout);
    if (a.predict)
        std::fputs(pred.str().c_str(), stdout);

    if (!a.jsonFile.empty()) {
        BenchDoc doc = rep.toBenchDoc(workload);
        if (a.predict)
            pred.benchInto(doc, workload);
        // v2 stats section: analyzer resource accounting plus the
        // analyze profile phase.
        StatsSnapshot snap;
        if (streamed)
            streamStats.statsInto(snap);
        if (a.predict)
            pred.statsInto(snap);
        snap.counter("analyze.fixpoint_capped",
                     rep.fixpointCapped ? 1 : 0,
                     "1 when the race fixpoint was cut off by its "
                     "round cap (eager path only)");
        profileSnapshotInto(snap);
        for (const StatScalar &s : snap.scalars) {
            if (s.name.rfind("analyze.", 0) == 0 ||
                s.name.rfind("profile.analyze.", 0) == 0) {
                doc.stats.push_back({s.name, s.value});
                doc.schema = 2;
            }
        }
        std::FILE *f = std::fopen(a.jsonFile.c_str(), "wb");
        if (!f)
            return analyzeError(csprintf("cannot write '%s'",
                                         a.jsonFile.c_str()));
        std::string text = doc.str();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", a.jsonFile.c_str());
    }
    bool racy = !rep.races.empty() || !rep.deviceRaces.empty() ||
                (a.predict && pred.predicted);
    return racy ? 1 : 0;
}

/**
 * `qrec verify` takes a positional file list (unlike the other
 * subcommands), so it parses its own arguments. Exit codes mirror
 * analyze: 0 = every artifact clean, 1 = findings (any severity),
 * 2 = usage or I/O error.
 */
int
cmdVerify(int argc, char **argv, int first)
{
    std::vector<std::string> files;
    bool sarif = false;
    std::string outFile;
    for (int i = first; i < argc; ++i) {
        std::string s = argv[i];
        if (s == "--sarif") {
            sarif = true;
        } else if (s == "-o" || s == "--out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "qrec verify: missing value "
                             "for %s\n", s.c_str());
                return 2;
            }
            outFile = argv[++i];
        } else if (!s.empty() && s[0] == '-') {
            std::fprintf(stderr, "qrec verify: unknown option "
                         "'%s'\n", s.c_str());
            return 2;
        } else {
            files.push_back(s);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "qrec verify: no artifacts given\n"
                     "usage: qrec verify <file...> [--sarif] "
                     "[-o out]\n");
        return 2;
    }

    std::vector<LintReport> reports;
    for (const std::string &path : files) {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f) {
            std::fprintf(stderr, "qrec verify: cannot read '%s'\n",
                         path.c_str());
            return 2;
        }
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        std::vector<std::uint8_t> raw(
            size > 0 ? static_cast<std::size_t>(size) : 0);
        if (std::fread(raw.data(), 1, raw.size(), f) != raw.size()) {
            std::fclose(f);
            std::fprintf(stderr, "qrec verify: short read from "
                         "'%s'\n", path.c_str());
            return 2;
        }
        std::fclose(f);

        // A .qrec container wraps the sphere in the QRC1 meta block;
        // unwrap a sealed one so the linter sees the sphere stream it
        // understands. Anything else (raw .qrs artifacts, torn or
        // non-container files) goes to the linter as-is -- damaged
        // bytes are its subject, not an error here.
        if (isSegmented(raw)) {
            SegmentedReadResult seg = readSegmented(raw);
            if (seg.ok && seg.sealed && seg.payload.size() >= 4 &&
                std::memcmp(seg.payload.data(), "QRC1", 4) == 0) {
                try {
                    std::size_t pos = 4;
                    parseArtifactMeta(seg.payload, pos);
                    std::uint64_t nsphere =
                        getVarint(seg.payload, pos);
                    if (nsphere > seg.payload.size() - pos)
                        parseFail("container truncated");
                    std::vector<std::uint8_t> sphere(
                        seg.payload.begin() + static_cast<long>(pos),
                        seg.payload.begin() +
                            static_cast<long>(pos + nsphere));
                    LintReport r = lintSphereBytes(sphere, path);
                    // The wrapper we just unwrapped was a sealed
                    // segmented container; report it as such.
                    r.container = true;
                    r.sealed = true;
                    reports.push_back(std::move(r));
                    continue;
                } catch (const ParseError &) {
                    // Corrupt meta: lint the raw bytes below.
                }
            }
        }
        reports.push_back(lintSphereBytes(raw, path));
    }

    std::string text;
    if (sarif) {
        text = lintSarif(reports);
    } else {
        for (const LintReport &r : reports)
            text += r.str();
    }
    if (outFile.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        std::FILE *f = std::fopen(outFile.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "qrec verify: cannot write '%s'\n",
                         outFile.c_str());
            return 2;
        }
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", outFile.c_str());
    }
    for (const LintReport &r : reports)
        if (!r.clean())
            return 1;
    return 0;
}

/** Write @p text to @p path, or to stdout when @p path is empty. */
void
writeTextOut(const std::string &text, const std::string &path)
{
    if (path.empty()) {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

int
cmdTrace(const Args &a)
{
    if (a.file.empty())
        fatal("trace needs -i <file>");
    SphereArtifact c = loadContainer(a.file);
    TraceTimeline timeline;
    bool embedded = !c.trace.empty();
    if (embedded) {
        try {
            timeline = TraceTimeline::deserialize(c.trace);
        } catch (const ParseError &e) {
            fatal("'%s' has a corrupt trace section: %s",
                  a.file.c_str(), e.what());
        }
    } else {
        timeline = timelineFromSphere(c.logs);
    }
    std::fprintf(stderr,
                 "%s: %zu event(s) (%s)%s\n", a.file.c_str(),
                 timeline.events.size(),
                 embedded ? "recorded timeline"
                          : "synthesized from chunk records",
                 timeline.dropped
                     ? csprintf(", %llu dropped at the ring",
                                (unsigned long long)timeline.dropped)
                           .c_str()
                     : "");
    writeTextOut(timeline.chromeJson(), a.outFile);
    return 0;
}

int
cmdStats(const Args &a)
{
    if (a.scrapePort > 0) {
        // Live-fleet mode: pull the Prometheus text straight off a
        // running qrecd's loopback /metrics endpoint.
        std::string err;
        std::string text = httpGetLocal(a.scrapePort, "/metrics", err);
        if (!err.empty())
            fatal("cannot scrape 127.0.0.1:%d/metrics: %s",
                  a.scrapePort, err.c_str());
        writeTextOut(text, a.outFile);
        return 0;
    }
    if (a.file.empty())
        fatal("stats needs -i <file>");
    SphereArtifact c = loadContainer(a.file);
    StatsSnapshot snap = snapshotSphere(c.logs);
    if (a.replayJobs >= 1) {
        // Differential replay under the hood so the snapshot reports
        // the modeled schedule number *and* the measured wall-clock
        // ratio as distinct gauges.
        Workload w = buildWorkload(c.workload, c.threads, c.scale);
        ReplayMode mode =
            a.degraded ? ReplayMode::Degraded : ReplayMode::Strict;
        ReplayComparison cmp =
            compareReplay(w.program, c.logs, a.replayJobs, mode);
        if (!cmp.identical)
            fatal("stats --replay-jobs: parallel replay mismatch (%s)",
                  cmp.mismatch.c_str());
        const ReplaySpeed &sp = cmp.parallel.speed;
        snap.gauge("replay.jobs", sp.jobs,
                   "worker threads in the parallel replay");
        snap.gauge("replay.modeled_speedup", sp.modeledSpeedup(),
                   "modeled sequential / parallel replay cycles");
        snap.gauge("replay.measured_speedup", sp.measuredSpeedup(),
                   "measured sequential / parallel exec wall-clock");
        snap.gauge("replay.seq_exec_micros", sp.seqExecMicros,
                   "sequential oracle exec wall-clock (us)");
        snap.gauge("replay.exec_micros", sp.execMicros,
                   "parallel worker-pool exec wall-clock (us)");
    }
    std::string text =
        a.prom ? snap.prometheus() : snap.json() + "\n";
    writeTextOut(text, a.outFile);
    return 0;
}

int
cmdDisasm(const Args &a)
{
    Workload w = buildWorkload(a.workload, a.threads, a.scale);
    std::printf("; %s (%s): %zu instructions, %zu data-init words\n",
                w.name.c_str(), w.params.c_str(), w.program.code.size(),
                w.program.dataInit.size());
    for (const auto &[name, addr] : w.program.labels)
        std::printf("; %-24s = %u\n", name.c_str(), addr);
    for (Word pc = 0; pc < w.program.code.size(); ++pc)
        std::printf("%5u: %s\n", pc,
                    disassemble(w.program.code[pc]).c_str());
    return 0;
}

/**
 * SIGTERM/SIGINT latch for `qrec serve`: the submission loop polls it
 * and falls into the graceful-shutdown path -- admission closes,
 * queued and in-flight spheres drain under a bounded deadline, and
 * every open QSG1 segment is sealed (or left for the next start's
 * repair sweep if the process dies harder than a signal).
 */
volatile std::sig_atomic_t gStopSignal = 0;

void
onStopSignal(int sig)
{
    gStopSignal = sig;
}

/**
 * `qrec serve` has its own flag set (budgets, retention, chaos), so
 * like verify it parses its own arguments.
 */
int
cmdServe(int argc, char **argv, int first)
{
    ServiceConfig cfg;
    cfg.dir.clear();
    double seconds = 5;
    std::string workloads =
        "counter-racy,pingpong,prodcons,false-sharing";
    int threads = 4;
    int scale = 1;

    for (int i = first; i < argc; ++i) {
        std::string s = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", s.c_str());
            return argv[++i];
        };
        auto nextU64 = [&]() -> std::uint64_t {
            const char *v = next();
            char *end = nullptr;
            unsigned long long n = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0')
                fatal("%s expects an integer, got '%s'", s.c_str(), v);
            return n;
        };
        if (s == "-d" || s == "--dir")
            cfg.dir = next();
        else if (s == "--seconds") {
            const char *v = next();
            char *end = nullptr;
            seconds = std::strtod(v, &end);
            if (end == v || *end != '\0' || seconds < 0)
                fatal("%s expects a duration in seconds, got '%s'",
                      s.c_str(), v);
        }
        else if (s == "--workers")
            cfg.workers = static_cast<int>(nextU64());
        else if (s == "--max-active")
            cfg.budgets.maxActive = nextU64();
        else if (s == "--max-queued")
            cfg.budgets.maxQueued = nextU64();
        else if (s == "--byte-budget")
            cfg.budgets.retainedByteBudget = nextU64();
        else if (s == "--cbuf-budget")
            cfg.budgets.degradedCbufEntries =
                static_cast<std::uint32_t>(nextU64());
        else if (s == "--retain")
            cfg.retention.maxArtifacts = nextU64();
        else if (s == "--retain-bytes")
            cfg.retention.maxBytes = nextU64();
        else if (s == "--faults")
            cfg.faultSpec = next();
        else if (s == "--fault-seed")
            cfg.faultSeed = nextU64();
        else if (s == "--port")
            cfg.metricsPort = static_cast<int>(nextU64());
        else if (s == "--drain-ms")
            cfg.drainDeadlineMs = static_cast<int>(nextU64());
        else if (s == "--workloads")
            workloads = next();
        else if (s == "-t" || s == "--threads")
            threads = std::atoi(next());
        else if (s == "-s" || s == "--scale")
            scale = std::atoi(next());
        else
            fatal("unknown option '%s'", s.c_str());
    }
    if (cfg.dir.empty())
        fatal("serve needs -d <dir>");
    // The CLI is single-threaded up to this point and never setenvs.
    if (const char *v = std::getenv("QR_SERVE_REPAIR_MS")) { // NOLINT(concurrency-mt-unsafe)
        char *end = nullptr;
        long n = std::strtol(v, &end, 10);
        if (end == v || *end != '\0' || n < 1)
            fatal("QR_SERVE_REPAIR_MS expects a positive integer, "
                  "got '%s'", v);
        cfg.repairIntervalMs = static_cast<int>(n);
    }

    // Resolve the fleet before arming anything: an unknown workload
    // name must fail fast, not after spheres have landed.
    std::vector<Workload> fleet;
    std::size_t pos = 0;
    while (pos < workloads.size()) {
        std::size_t comma = workloads.find(',', pos);
        if (comma == std::string::npos)
            comma = workloads.size();
        std::string name = workloads.substr(pos, comma - pos);
        if (!name.empty())
            fleet.push_back(buildWorkload(name, threads, scale));
        pos = comma + 1;
    }
    if (fleet.empty() && seconds > 0)
        fatal("serve needs at least one workload");

    RecordService svc(cfg);
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    svc.start();

    std::printf("qrecd: %d worker shard(s), store %s\n", cfg.workers,
                cfg.dir.c_str());
    if (cfg.metricsPort >= 0 && svc.metricsPort() > 0)
        std::printf("metrics: http://127.0.0.1:%d/metrics\n",
                    svc.metricsPort());
    std::fflush(stdout);

    if (seconds > 0) {
        auto endTime =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
        std::size_t i = 0;
        while (std::chrono::steady_clock::now() < endTime &&
               !gStopSignal) {
            const Workload &w = fleet[i++ % fleet.size()];
            SphereRequest req;
            req.workload = w.name;
            req.threads = threads;
            req.scale = scale;
            req.program = w.program;
            svc.submit(std::move(req));
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (gStopSignal)
            std::printf("qrecd: caught signal %d, draining\n",
                        static_cast<int>(gStopSignal));
    }

    svc.shutdown();
    ServiceCounters c = svc.counters();
    std::printf("qrecd: %llu submitted, %llu saved, %llu shed, "
                "%llu degraded, %llu interrupted, %llu recovered, "
                "%llu retained (%llu bytes)\n",
                (unsigned long long)c.submitted,
                (unsigned long long)c.saved,
                (unsigned long long)(c.shedQueueFull +
                                     c.shedByteBudget +
                                     c.shedShutdown),
                (unsigned long long)c.admittedDegraded,
                (unsigned long long)c.interrupted,
                (unsigned long long)c.repairRecovered,
                (unsigned long long)svc.store().retainedCount(),
                (unsigned long long)svc.store().retainedBytes());
    std::printf("%s\n", svc.snapshot().json().c_str());
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: qrec <list|run|record|replay|recover|inspect|"
                 "analyze|verify|trace|stats|serve|disasm> ...\n"
                 "  qrec run <workload> [-t N] [-s S] [--record] "
                 "[--stats]\n"
                 "  qrec record <workload> [-t N] [-s S] "
                 "[--exact-shadow] [--trace]\n"
                 "              [--device nic|disk] [--device-rate R]"
                 "\n"
                 "              [--faults spec] [--fault-seed N] "
                 "[--cbuf-entries N] -o file.qrec\n"
                 "  qrec replay -i file.qrec [--replay-jobs N] "
                 "[--degraded] [--faults spec]\n"
                 "  qrec recover -i torn.qrec -o salvaged.qrec\n"
                 "  qrec inspect -i file.qrec\n"
                 "  qrec analyze -i file.qrec [--predict] "
                 "[--window N] [--json out.json]\n"
                 "      exit 0 = no races, 1 = witnessed or predicted "
                 "races, 2 = bad artifact\n"
                 "  qrec verify <file...> [--sarif] [-o out]\n"
                 "      exit 0 = clean, 1 = findings, 2 = usage/IO "
                 "error\n"
                 "  qrec trace -i file.qrec [-o trace.json]\n"
                 "  qrec stats -i file.qrec [--prom] "
                 "[--replay-jobs N] [-o out]\n"
                 "  qrec stats --scrape PORT [-o out]\n"
                 "  qrec serve -d dir [--seconds S] [--workers N] "
                 "[--max-active N]\n"
                 "             [--max-queued N] [--byte-budget B] "
                 "[--cbuf-budget N]\n"
                 "             [--retain N] [--retain-bytes B] "
                 "[--faults spec]\n"
                 "             [--fault-seed N] [--port P] "
                 "[--drain-ms MS]\n"
                 "             [--workloads a,b,c] [-t N] [-s S]\n"
                 "  qrec disasm <workload> [-t N] [-s S]\n");
    return 2;
}

} // namespace
} // namespace qr

int
main(int argc, char **argv)
{
    using namespace qr;
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(parseArgs(argc, argv, 2, true));
    if (cmd == "record")
        return cmdRecord(parseArgs(argc, argv, 2, true));
    if (cmd == "replay")
        return cmdReplay(parseArgs(argc, argv, 2, false));
    if (cmd == "recover")
        return cmdRecover(parseArgs(argc, argv, 2, false));
    if (cmd == "inspect")
        return cmdInspect(parseArgs(argc, argv, 2, false));
    if (cmd == "analyze")
        return cmdAnalyze(parseArgs(argc, argv, 2, false));
    if (cmd == "verify")
        return cmdVerify(argc, argv, 2);
    if (cmd == "trace")
        return cmdTrace(parseArgs(argc, argv, 2, false));
    if (cmd == "stats")
        return cmdStats(parseArgs(argc, argv, 2, false));
    if (cmd == "serve")
        return cmdServe(argc, argv, 2);
    if (cmd == "disasm")
        return cmdDisasm(parseArgs(argc, argv, 2, true));
    return usage();
}
