#!/bin/sh
# Lint the sources with clang-tidy against the checked-in .clang-tidy
# configuration. Warnings are errors (WarningsAsErrors: '*'), so any
# finding fails the script.
#
# Usage: tools/run_lint.sh [build-dir]
#
# Needs a compile_commands.json; the script configures the build dir
# with CMAKE_EXPORT_COMPILE_COMMANDS if one is missing.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# Relaxed-atomics rationale gate runs first: it is pure shell, so it
# holds even on hosts without clang-tidy.
tools/check_atomics.sh src

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
    echo "run_lint.sh: clang-tidy not found in PATH; skipping" >&2
    exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
    cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# Lint the library and tool sources (tests inherit the same headers;
# linting them too roughly doubles the runtime for little new signal).
FILES="$(find src tools -name '*.cc' | sort)"

echo "clang-tidy: $(echo "$FILES" | wc -l) files"
# shellcheck disable=SC2086
"$TIDY" -p "$BUILD" --quiet $FILES

echo "clang-tidy: clean"
