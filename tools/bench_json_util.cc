/**
 * @file
 * Command-line helper for BENCH_<id>.json files:
 *
 *   bench_json_util validate [--min-schema N] FILE...
 *                                           parse + schema-check each file
 *   bench_json_util merge ID OUT FILE...    merge into one document "ID"
 *
 * Used by tools/run_bench.sh to assemble BENCH_RECORD.json and by the
 * CTest smoke entry to prove that bench binaries emit parseable JSON.
 * --min-schema N rejects documents declaring an older schema than N:
 * regenerated artifacts must not silently regress to v1 (no stats
 * section), and checked-in artifacts are validated at their expected
 * version.
 *
 * Beyond the generic schema check, validate enforces the replay-speed
 * pairing rule: a workload reporting either replay.modeled_speedup or
 * replay.measured_speedup must report both. The two are different
 * claims (DAG schedule model vs. wall clock) and a document carrying
 * only one invites misreading the modeled number as measured.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/bench_json.hh"

namespace
{

/** Empty string when the pairing rule holds, else the offender. */
std::string
checkSpeedupPairing(const qr::BenchDoc &doc)
{
    std::map<std::string, unsigned> seen; // workload -> bit 0/1 flags
    for (const qr::BenchResult &r : doc.results) {
        if (r.metric == "replay.modeled_speedup")
            seen[r.workload] |= 1;
        else if (r.metric == "replay.measured_speedup")
            seen[r.workload] |= 2;
    }
    for (const auto &[workload, flags] : seen)
        if (flags != 3)
            return workload + ": has replay." +
                   (flags == 1 ? "modeled" : "measured") +
                   "_speedup but not its " +
                   (flags == 1 ? "measured" : "modeled") +
                   " counterpart";
    return "";
}

bool
readFile(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "r");
    if (!f)
        return false;
    char buf[4096];
    std::size_t n;
    out.clear();
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_json_util validate [--min-schema N] "
                 "FILE...\n"
                 "       bench_json_util merge ID OUT FILE...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qr;
    if (argc < 2)
        return usage();

    if (std::strcmp(argv[1], "validate") == 0) {
        int first = 2;
        int minSchema = 1;
        if (first < argc &&
            std::strcmp(argv[first], "--min-schema") == 0) {
            if (first + 1 >= argc)
                return usage();
            char *end = nullptr;
            long n = std::strtol(argv[first + 1], &end, 10);
            if (end == argv[first + 1] || *end || n < 1) {
                std::fprintf(stderr,
                             "--min-schema expects a positive integer, "
                             "got '%s'\n", argv[first + 1]);
                return 2;
            }
            minSchema = static_cast<int>(n);
            first += 2;
        }
        if (first >= argc)
            return usage();
        for (int i = first; i < argc; ++i) {
            std::string text, err;
            BenchDoc doc;
            if (!readFile(argv[i], text)) {
                std::fprintf(stderr, "%s: cannot read\n", argv[i]);
                return 1;
            }
            if (!parseBenchJson(text, doc, err)) {
                std::fprintf(stderr, "%s: invalid: %s\n", argv[i],
                             err.c_str());
                return 1;
            }
            if (doc.schema < minSchema) {
                std::fprintf(stderr,
                             "%s: invalid: schema %d is older than the "
                             "required minimum %d (stale artifact -- "
                             "regenerate with tools/run_bench.sh)\n",
                             argv[i], doc.schema, minSchema);
                return 1;
            }
            std::string pairErr = checkSpeedupPairing(doc);
            if (!pairErr.empty()) {
                std::fprintf(stderr, "%s: invalid: %s\n", argv[i],
                             pairErr.c_str());
                return 1;
            }
            std::printf("%s: ok (bench %s, %zu results)\n", argv[i],
                        doc.bench.c_str(), doc.results.size());
        }
        return 0;
    }

    if (std::strcmp(argv[1], "merge") == 0) {
        if (argc < 5)
            return usage();
        std::vector<BenchDoc> docs;
        for (int i = 4; i < argc; ++i) {
            std::string text, err;
            BenchDoc doc;
            if (!readFile(argv[i], text) ||
                !parseBenchJson(text, doc, err)) {
                std::fprintf(stderr, "%s: %s\n", argv[i],
                             err.empty() ? "cannot read" : err.c_str());
                return 1;
            }
            docs.push_back(std::move(doc));
        }
        BenchDoc merged = mergeBenchDocs(argv[2], docs);
        std::string text = merged.str();
        // Round-trip the merged document through the parser before
        // writing: the merger must never emit what validate rejects.
        std::string err;
        BenchDoc check;
        if (!parseBenchJson(text, check, err)) {
            std::fprintf(stderr, "internal error: merged doc invalid: %s\n",
                         err.c_str());
            return 1;
        }
        std::FILE *f = std::fopen(argv[3], "w");
        if (!f || std::fwrite(text.data(), 1, text.size(), f) !=
                      text.size() ||
            std::fclose(f) != 0) {
            std::fprintf(stderr, "%s: cannot write\n", argv[3]);
            return 1;
        }
        std::printf("wrote %s (%zu results from %d files)\n", argv[3],
                    merged.results.size(), argc - 4);
        return 0;
    }

    return usage();
}
