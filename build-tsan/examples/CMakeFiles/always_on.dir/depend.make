# Empty dependencies file for always_on.
# This may be replaced when dependencies are built.
