file(REMOVE_RECURSE
  "CMakeFiles/always_on.dir/always_on.cpp.o"
  "CMakeFiles/always_on.dir/always_on.cpp.o.d"
  "always_on"
  "always_on.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/always_on.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
