# Empty compiler generated dependencies file for debug_race.
# This may be replaced when dependencies are built.
