# Empty dependencies file for debug_race.
# This may be replaced when dependencies are built.
