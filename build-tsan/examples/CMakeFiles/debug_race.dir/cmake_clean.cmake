file(REMOVE_RECURSE
  "CMakeFiles/debug_race.dir/debug_race.cpp.o"
  "CMakeFiles/debug_race.dir/debug_race.cpp.o.d"
  "debug_race"
  "debug_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
