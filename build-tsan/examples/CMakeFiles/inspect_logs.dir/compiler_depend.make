# Empty compiler generated dependencies file for inspect_logs.
# This may be replaced when dependencies are built.
