file(REMOVE_RECURSE
  "CMakeFiles/inspect_logs.dir/inspect_logs.cpp.o"
  "CMakeFiles/inspect_logs.dir/inspect_logs.cpp.o.d"
  "inspect_logs"
  "inspect_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
