# Empty dependencies file for quickrec.
# This may be replaced when dependencies are built.
