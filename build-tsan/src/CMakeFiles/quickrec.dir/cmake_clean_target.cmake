file(REMOVE_RECURSE
  "libquickrec.a"
)
