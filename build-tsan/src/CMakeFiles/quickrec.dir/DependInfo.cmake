
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capo/cost_model.cc" "src/CMakeFiles/quickrec.dir/capo/cost_model.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/capo/cost_model.cc.o.d"
  "/root/repo/src/capo/input_log.cc" "src/CMakeFiles/quickrec.dir/capo/input_log.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/capo/input_log.cc.o.d"
  "/root/repo/src/capo/log_store.cc" "src/CMakeFiles/quickrec.dir/capo/log_store.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/capo/log_store.cc.o.d"
  "/root/repo/src/capo/rsm.cc" "src/CMakeFiles/quickrec.dir/capo/rsm.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/capo/rsm.cc.o.d"
  "/root/repo/src/capo/sphere.cc" "src/CMakeFiles/quickrec.dir/capo/sphere.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/capo/sphere.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/quickrec.dir/core/config.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/core/config.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/CMakeFiles/quickrec.dir/core/machine.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/core/machine.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/quickrec.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/quickrec.dir/core/session.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/core/session.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/quickrec.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/store_buffer.cc" "src/CMakeFiles/quickrec.dir/cpu/store_buffer.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/cpu/store_buffer.cc.o.d"
  "/root/repo/src/guest/runtime.cc" "src/CMakeFiles/quickrec.dir/guest/runtime.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/guest/runtime.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/quickrec.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/disassembler.cc" "src/CMakeFiles/quickrec.dir/isa/disassembler.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/isa/disassembler.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/quickrec.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/isa/instruction.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/quickrec.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/scheduler.cc" "src/CMakeFiles/quickrec.dir/kernel/scheduler.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/kernel/scheduler.cc.o.d"
  "/root/repo/src/kernel/thread.cc" "src/CMakeFiles/quickrec.dir/kernel/thread.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/kernel/thread.cc.o.d"
  "/root/repo/src/mem/bus.cc" "src/CMakeFiles/quickrec.dir/mem/bus.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/mem/bus.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/quickrec.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/quickrec.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/mem/memory.cc.o.d"
  "/root/repo/src/replay/chunk_graph.cc" "src/CMakeFiles/quickrec.dir/replay/chunk_graph.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/replay/chunk_graph.cc.o.d"
  "/root/repo/src/replay/log_reader.cc" "src/CMakeFiles/quickrec.dir/replay/log_reader.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/replay/log_reader.cc.o.d"
  "/root/repo/src/replay/parallel_replayer.cc" "src/CMakeFiles/quickrec.dir/replay/parallel_replayer.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/replay/parallel_replayer.cc.o.d"
  "/root/repo/src/replay/replayer.cc" "src/CMakeFiles/quickrec.dir/replay/replayer.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/replay/replayer.cc.o.d"
  "/root/repo/src/replay/verifier.cc" "src/CMakeFiles/quickrec.dir/replay/verifier.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/replay/verifier.cc.o.d"
  "/root/repo/src/rnr/bloom.cc" "src/CMakeFiles/quickrec.dir/rnr/bloom.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/rnr/bloom.cc.o.d"
  "/root/repo/src/rnr/cbuf.cc" "src/CMakeFiles/quickrec.dir/rnr/cbuf.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/rnr/cbuf.cc.o.d"
  "/root/repo/src/rnr/chunk_record.cc" "src/CMakeFiles/quickrec.dir/rnr/chunk_record.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/rnr/chunk_record.cc.o.d"
  "/root/repo/src/rnr/rnr_unit.cc" "src/CMakeFiles/quickrec.dir/rnr/rnr_unit.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/rnr/rnr_unit.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/quickrec.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/quickrec.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/quickrec.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/quickrec.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/sim/table.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/quickrec.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/sim/trace.cc.o.d"
  "/root/repo/src/workloads/barnes.cc" "src/CMakeFiles/quickrec.dir/workloads/barnes.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/barnes.cc.o.d"
  "/root/repo/src/workloads/extended.cc" "src/CMakeFiles/quickrec.dir/workloads/extended.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/extended.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/quickrec.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/fmm.cc" "src/CMakeFiles/quickrec.dir/workloads/fmm.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/fmm.cc.o.d"
  "/root/repo/src/workloads/lu.cc" "src/CMakeFiles/quickrec.dir/workloads/lu.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/lu.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/quickrec.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/ocean.cc" "src/CMakeFiles/quickrec.dir/workloads/ocean.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/ocean.cc.o.d"
  "/root/repo/src/workloads/radiosity.cc" "src/CMakeFiles/quickrec.dir/workloads/radiosity.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/radiosity.cc.o.d"
  "/root/repo/src/workloads/radix.cc" "src/CMakeFiles/quickrec.dir/workloads/radix.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/radix.cc.o.d"
  "/root/repo/src/workloads/raytrace.cc" "src/CMakeFiles/quickrec.dir/workloads/raytrace.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/raytrace.cc.o.d"
  "/root/repo/src/workloads/water.cc" "src/CMakeFiles/quickrec.dir/workloads/water.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/water.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/quickrec.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/quickrec.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
