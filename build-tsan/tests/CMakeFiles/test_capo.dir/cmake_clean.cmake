file(REMOVE_RECURSE
  "CMakeFiles/test_capo.dir/test_capo.cc.o"
  "CMakeFiles/test_capo.dir/test_capo.cc.o.d"
  "test_capo"
  "test_capo.pdb"
  "test_capo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
