# Empty compiler generated dependencies file for test_capo.
# This may be replaced when dependencies are built.
