file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_replay.dir/test_parallel_replay.cc.o"
  "CMakeFiles/test_parallel_replay.dir/test_parallel_replay.cc.o.d"
  "test_parallel_replay"
  "test_parallel_replay.pdb"
  "test_parallel_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
