# Empty compiler generated dependencies file for test_parallel_replay.
# This may be replaced when dependencies are built.
