# Empty compiler generated dependencies file for test_core_facade.
# This may be replaced when dependencies are built.
