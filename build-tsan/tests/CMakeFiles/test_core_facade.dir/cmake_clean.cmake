file(REMOVE_RECURSE
  "CMakeFiles/test_core_facade.dir/test_core_facade.cc.o"
  "CMakeFiles/test_core_facade.dir/test_core_facade.cc.o.d"
  "test_core_facade"
  "test_core_facade.pdb"
  "test_core_facade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
