# Empty compiler generated dependencies file for test_suite_determinism.
# This may be replaced when dependencies are built.
