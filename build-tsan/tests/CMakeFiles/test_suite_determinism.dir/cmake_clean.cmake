file(REMOVE_RECURSE
  "CMakeFiles/test_suite_determinism.dir/test_suite_determinism.cc.o"
  "CMakeFiles/test_suite_determinism.dir/test_suite_determinism.cc.o.d"
  "test_suite_determinism"
  "test_suite_determinism.pdb"
  "test_suite_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
