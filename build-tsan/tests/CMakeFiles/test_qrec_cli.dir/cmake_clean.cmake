file(REMOVE_RECURSE
  "CMakeFiles/test_qrec_cli.dir/test_qrec_cli.cc.o"
  "CMakeFiles/test_qrec_cli.dir/test_qrec_cli.cc.o.d"
  "test_qrec_cli"
  "test_qrec_cli.pdb"
  "test_qrec_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qrec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
