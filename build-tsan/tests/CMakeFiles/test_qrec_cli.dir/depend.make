# Empty dependencies file for test_qrec_cli.
# This may be replaced when dependencies are built.
