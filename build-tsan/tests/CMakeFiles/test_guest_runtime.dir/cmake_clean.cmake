file(REMOVE_RECURSE
  "CMakeFiles/test_guest_runtime.dir/test_guest_runtime.cc.o"
  "CMakeFiles/test_guest_runtime.dir/test_guest_runtime.cc.o.d"
  "test_guest_runtime"
  "test_guest_runtime.pdb"
  "test_guest_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
