# Empty dependencies file for test_guest_runtime.
# This may be replaced when dependencies are built.
