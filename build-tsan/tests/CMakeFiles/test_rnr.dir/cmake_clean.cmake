file(REMOVE_RECURSE
  "CMakeFiles/test_rnr.dir/test_rnr.cc.o"
  "CMakeFiles/test_rnr.dir/test_rnr.cc.o.d"
  "test_rnr"
  "test_rnr.pdb"
  "test_rnr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
