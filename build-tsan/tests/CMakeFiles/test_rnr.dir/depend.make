# Empty dependencies file for test_rnr.
# This may be replaced when dependencies are built.
