# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_smoke[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_isa[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mem[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cpu[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_rnr[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_kernel[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_capo[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_replay[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_config[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core_facade[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_property[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_parallel_replay[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_guest_runtime[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_suite_determinism[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_qrec_cli[1]_include.cmake")
