# Empty dependencies file for qrec.
# This may be replaced when dependencies are built.
