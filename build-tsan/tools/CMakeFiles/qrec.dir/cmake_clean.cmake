file(REMOVE_RECURSE
  "CMakeFiles/qrec.dir/qrec.cc.o"
  "CMakeFiles/qrec.dir/qrec.cc.o.d"
  "qrec"
  "qrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
