file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_chunksize.dir/bench_e6_chunksize.cc.o"
  "CMakeFiles/bench_e6_chunksize.dir/bench_e6_chunksize.cc.o.d"
  "bench_e6_chunksize"
  "bench_e6_chunksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_chunksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
