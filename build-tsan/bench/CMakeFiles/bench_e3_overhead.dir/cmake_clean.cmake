file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_overhead.dir/bench_e3_overhead.cc.o"
  "CMakeFiles/bench_e3_overhead.dir/bench_e3_overhead.cc.o.d"
  "bench_e3_overhead"
  "bench_e3_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
