# Empty dependencies file for bench_e3_overhead.
# This may be replaced when dependencies are built.
