# Empty dependencies file for bench_a1_bloom.
# This may be replaced when dependencies are built.
