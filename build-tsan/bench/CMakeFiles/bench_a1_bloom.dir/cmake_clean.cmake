file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_bloom.dir/bench_a1_bloom.cc.o"
  "CMakeFiles/bench_a1_bloom.dir/bench_a1_bloom.cc.o.d"
  "bench_a1_bloom"
  "bench_a1_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
