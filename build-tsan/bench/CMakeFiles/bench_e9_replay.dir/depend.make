# Empty dependencies file for bench_e9_replay.
# This may be replaced when dependencies are built.
