# Empty dependencies file for bench_a3_rsw_depth.
# This may be replaced when dependencies are built.
