file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_rsw_depth.dir/bench_a3_rsw_depth.cc.o"
  "CMakeFiles/bench_a3_rsw_depth.dir/bench_a3_rsw_depth.cc.o.d"
  "bench_a3_rsw_depth"
  "bench_a3_rsw_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_rsw_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
