file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_platform.dir/bench_e1_platform.cc.o"
  "CMakeFiles/bench_e1_platform.dir/bench_e1_platform.cc.o.d"
  "bench_e1_platform"
  "bench_e1_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
