# Empty dependencies file for bench_a6_timeslice.
# This may be replaced when dependencies are built.
