file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_timeslice.dir/bench_a6_timeslice.cc.o"
  "CMakeFiles/bench_a6_timeslice.dir/bench_a6_timeslice.cc.o.d"
  "bench_a6_timeslice"
  "bench_a6_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
