file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_rsw.dir/bench_e8_rsw.cc.o"
  "CMakeFiles/bench_e8_rsw.dir/bench_e8_rsw.cc.o.d"
  "bench_e8_rsw"
  "bench_e8_rsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_rsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
