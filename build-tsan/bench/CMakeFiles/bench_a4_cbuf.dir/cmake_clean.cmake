file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_cbuf.dir/bench_a4_cbuf.cc.o"
  "CMakeFiles/bench_a4_cbuf.dir/bench_a4_cbuf.cc.o.d"
  "bench_a4_cbuf"
  "bench_a4_cbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_cbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
