# Empty compiler generated dependencies file for bench_a4_cbuf.
# This may be replaced when dependencies are built.
