# Empty dependencies file for bench_e7_termination.
# This may be replaced when dependencies are built.
