file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_termination.dir/bench_e7_termination.cc.o"
  "CMakeFiles/bench_e7_termination.dir/bench_e7_termination.cc.o.d"
  "bench_e7_termination"
  "bench_e7_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
