file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_lograte.dir/bench_e5_lograte.cc.o"
  "CMakeFiles/bench_e5_lograte.dir/bench_e5_lograte.cc.o.d"
  "bench_e5_lograte"
  "bench_e5_lograte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_lograte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
