# Empty compiler generated dependencies file for bench_e5_lograte.
# This may be replaced when dependencies are built.
