file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_breakdown.dir/bench_e4_breakdown.cc.o"
  "CMakeFiles/bench_e4_breakdown.dir/bench_e4_breakdown.cc.o.d"
  "bench_e4_breakdown"
  "bench_e4_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
