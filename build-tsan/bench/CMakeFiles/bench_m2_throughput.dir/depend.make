# Empty dependencies file for bench_m2_throughput.
# This may be replaced when dependencies are built.
