file(REMOVE_RECURSE
  "CMakeFiles/bench_m2_throughput.dir/bench_m2_throughput.cc.o"
  "CMakeFiles/bench_m2_throughput.dir/bench_m2_throughput.cc.o.d"
  "bench_m2_throughput"
  "bench_m2_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m2_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
