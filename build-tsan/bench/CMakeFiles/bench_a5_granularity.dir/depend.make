# Empty dependencies file for bench_a5_granularity.
# This may be replaced when dependencies are built.
