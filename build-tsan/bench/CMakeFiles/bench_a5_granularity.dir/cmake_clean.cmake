file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_granularity.dir/bench_a5_granularity.cc.o"
  "CMakeFiles/bench_a5_granularity.dir/bench_a5_granularity.cc.o.d"
  "bench_a5_granularity"
  "bench_a5_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
