# Empty compiler generated dependencies file for bench_a2_chunklimit.
# This may be replaced when dependencies are built.
