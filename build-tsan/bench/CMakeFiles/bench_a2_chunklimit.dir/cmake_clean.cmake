file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_chunklimit.dir/bench_a2_chunklimit.cc.o"
  "CMakeFiles/bench_a2_chunklimit.dir/bench_a2_chunklimit.cc.o.d"
  "bench_a2_chunklimit"
  "bench_a2_chunklimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_chunklimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
