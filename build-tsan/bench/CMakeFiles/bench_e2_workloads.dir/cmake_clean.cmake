file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_workloads.dir/bench_e2_workloads.cc.o"
  "CMakeFiles/bench_e2_workloads.dir/bench_e2_workloads.cc.o.d"
  "bench_e2_workloads"
  "bench_e2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
