# Empty compiler generated dependencies file for quickrec.
# This may be replaced when dependencies are built.
