/**
 * @file
 * Guest runtime library: structured QR-ISA emission helpers.
 *
 * Provides the synchronization and threading idioms the SPLASH-2-analog
 * workloads are written with -- test-and-test-and-set spin locks,
 * hybrid spin/futex locks, sense-reversing barriers, and the standard
 * fork/join scaffold (main spawns workers, runs the body itself as
 * worker 0, joins, then emits output and exits).
 *
 * Register conventions used by the helpers:
 *  - lock/barrier helpers take explicit scratch registers and clobber
 *    only those (plus a0..a2/a7 for the futex/syscall variants);
 *  - the worker body is entered with a0 = worker index and must not
 *    clobber ra (all runtime helpers except scaffold calls are inline).
 */

#ifndef QR_GUEST_RUNTIME_HH
#define QR_GUEST_RUNTIME_HH

#include <functional>
#include <string>

#include "isa/assembler.hh"
#include "kernel/syscall.hh"

namespace qr
{

/** Assembler with guest-runtime idioms. */
class GuestBuilder : public Assembler
{
  public:
    using Assembler::Assembler;

    /** Fresh unique label with a readable stem. */
    std::string newLabel(const std::string &stem);

    // --- syscall shims ----------------------------------------------------
    /** Emit a syscall with the number loaded into a7. */
    void sys(Sys num);

    /** exit(code). */
    void sysExit(Word code = 0);

    /** write(1, buf, len) with compile-time constants. */
    void sysWrite(Addr buf, Word len_bytes);

    /** yield(). */
    void sysYield();

    // --- spin synchronization (no kernel interaction) -----------------------
    /**
     * Acquire the ticket spin lock at (addr_reg). Layout: two words,
     * [next-ticket, now-serving]. Ticket locks are FIFO-fair, which
     * matters on a fully deterministic machine: an unfair
     * test-and-set lock can starve one contender forever when probe
     * patterns align (real hardware breaks such cycles with timing
     * noise; our simulator will not). Clobbers @p tmp and @p tmp2.
     */
    void spinLockAcquire(Reg addr_reg, Reg tmp, Reg tmp2);

    /** Release a ticket lock (bump now-serving). Clobbers @p tmp. */
    void spinLockRelease(Reg addr_reg, Reg tmp);

    // --- hybrid spin/futex lock (kernel interaction on contention) --------
    /**
     * Acquire the hybrid lock at (addr_reg): spin @p spins times, then
     * futex-wait. Clobbers @p tmp, @p tmp2, a0, a1, a7.
     */
    void hybridLockAcquire(Reg addr_reg, Reg tmp, Reg tmp2, int spins = 32);

    /**
     * Release the hybrid lock and wake one waiter.
     * Clobbers @p tmp, a0, a1, a7.
     */
    void hybridLockRelease(Reg addr_reg, Reg tmp);

    /**
     * Sense-reversing barrier for @p n_threads at @p base (two aligned
     * words: [count, generation]). Clobbers the four scratch registers.
     */
    void barrierWait(Addr base, int n_threads, Reg t_addr, Reg t_old,
                     Reg t_gen, Reg t_one);

    /** Reserve and initialize a barrier (returns its base address). */
    Addr barrierAlloc();

    /** Reserve a cache-line-aligned lock (two words: ticket lock
     *  [next, serving]; the hybrid futex lock uses word 0 only). */
    Addr lockAlloc();

    /**
     * Emit an @p n-iteration register-only compute loop that mixes
     * @p val (clobbers @p counter). Models the local floating-point
     * work real SPLASH-2 codes do between shared accesses, keeping
     * the sharing density -- and therefore the chunk sizes -- honest.
     */
    void computePad(Reg val, Reg counter, int n);

    // --- fork/join scaffold ------------------------------------------------
    /**
     * Emit the whole program scaffold at the current position (normally
     * index 0): main spawns @p n_threads - 1 workers on private static
     * stacks, calls @p body_label with a0 = 0, joins every child, runs
     * @p epilogue (checksum output etc.), and exits. Spawned workers
     * enter a stub that calls @p body_label with a0 = worker index and
     * exits. The body must preserve ra and use only inline helpers.
     */
    void emitWorkerScaffold(int n_threads, const std::string &body_label,
                            const std::function<void()> &epilogue,
                            std::uint32_t stack_bytes = 16384);

  private:
    unsigned labelCounter = 0;
};

} // namespace qr

#endif // QR_GUEST_RUNTIME_HH
