#include "guest/runtime.hh"

#include "sim/logging.hh"

namespace qr
{

std::string
GuestBuilder::newLabel(const std::string &stem)
{
    return csprintf("_%s_%u", stem.c_str(), labelCounter++);
}

void
GuestBuilder::sys(Sys num)
{
    li(a7, static_cast<Word>(num));
    syscall();
}

void
GuestBuilder::sysExit(Word code)
{
    li(a0, code);
    sys(Sys::Exit);
}

void
GuestBuilder::sysWrite(Addr buf, Word len_bytes)
{
    li(a0, 1);
    li(a1, buf);
    li(a2, len_bytes);
    sys(Sys::Write);
}

void
GuestBuilder::sysYield()
{
    sys(Sys::Yield);
}

void
GuestBuilder::spinLockAcquire(Reg addr_reg, Reg tmp, Reg tmp2)
{
    std::string spin = newLabel("lk_spin");
    std::string done = newLabel("lk_done");

    // Take a ticket, then spin until now-serving reaches it.
    li(tmp2, 1);
    fetchadd(tmp, addr_reg, tmp2); // tmp = my ticket
    label(spin);
    lw(tmp2, addr_reg, 4);
    beq(tmp2, tmp, done);
    pause();
    j(spin);
    label(done);
}

void
GuestBuilder::spinLockRelease(Reg addr_reg, Reg tmp)
{
    // Bump now-serving with a plain store: earlier critical-section
    // stores drain first (FIFO store buffer), and only the holder
    // writes this word.
    lw(tmp, addr_reg, 4);
    addi(tmp, tmp, 1);
    sw(tmp, addr_reg, 4);
}

void
GuestBuilder::hybridLockAcquire(Reg addr_reg, Reg tmp, Reg tmp2, int spins)
{
    std::string outer = newLabel("hlk_outer");
    std::string spin = newLabel("hlk_spin");
    std::string try_ = newLabel("hlk_try");
    std::string done = newLabel("hlk_done");

    // Three-state futex mutex (0 free, 1 held, 2 held-with-waiters),
    // the classic glibc/Drepper shape: the kernel is entered only
    // under contention, release syscalls only when a waiter may
    // exist, and -- crucially -- a thread that has ever slept
    // re-acquires with swap(2) so the waiters flag is never lost
    // while other sleepers remain.
    std::string contended = newLabel("hlk_cont");
    label(outer);
    li(tmp2, static_cast<Word>(spins));
    label(spin);
    lw(tmp, addr_reg, 0);
    beq(tmp, zero, try_);
    pause();
    addi(tmp2, tmp2, -1);
    bne(tmp2, zero, spin);
    label(contended);
    // Acquire-or-flag: if the swap finds the lock free we own it
    // (with a spurious waiters flag, which only costs one wake).
    li(tmp, 2);
    swap(tmp, addr_reg);
    beq(tmp, zero, done);
    mv(a0, addr_reg);
    li(a1, 2);
    sys(Sys::FutexWait);
    j(contended);
    label(try_);
    // Uncontended fast path: CAS 0 -> 1 so an existing waiters flag
    // (2) is never overwritten.
    li(tmp, 0);
    li(tmp2, 1);
    cas(tmp, addr_reg, tmp2);
    beq(tmp, zero, done);
    j(outer);
    label(done);
}

void
GuestBuilder::hybridLockRelease(Reg addr_reg, Reg tmp)
{
    std::string nowake = newLabel("hlk_nowake");
    li(tmp, 0);
    swap(tmp, addr_reg); // old state in tmp; the lock is now free
    addi(tmp, tmp, -2);
    bne(tmp, zero, nowake);
    mv(a0, addr_reg);
    li(a1, 1);
    sys(Sys::FutexWake);
    label(nowake);
}

Addr
GuestBuilder::barrierAlloc()
{
    return alignedBlock(2, 0);
}

Addr
GuestBuilder::lockAlloc()
{
    return alignedBlock(2, 0);
}

void
GuestBuilder::computePad(Reg val, Reg counter, int n)
{
    std::string loop = newLabel("pad");
    li(counter, static_cast<Word>(n));
    label(loop);
    mul(val, val, val);
    addi(val, val, 0x9e3779b9);
    addi(counter, counter, -1);
    bne(counter, zero, loop);
}

void
GuestBuilder::barrierWait(Addr base, int n_threads, Reg t_addr, Reg t_old,
                          Reg t_gen, Reg t_one)
{
    std::string wait = newLabel("bar_wait");
    std::string done = newLabel("bar_done");

    li(t_addr, base);
    lw(t_gen, t_addr, 4); // my generation, read before arriving
    li(t_one, 1);
    fetchadd(t_old, t_addr, t_one); // arrive; t_old = previous count
    li(t_one, static_cast<Word>(n_threads - 1));
    bne(t_old, t_one, wait);
    // Last arriver: reset the count, then advance the generation. The
    // FIFO store buffer drains the reset before the generation bump.
    sw(zero, t_addr, 0);
    lw(t_old, t_addr, 4);
    addi(t_old, t_old, 1);
    sw(t_old, t_addr, 4);
    j(done);
    label(wait);
    lw(t_old, t_addr, 4);
    bne(t_old, t_gen, done);
    pause();
    j(wait);
    label(done);
}

void
GuestBuilder::emitWorkerScaffold(int n_threads,
                                 const std::string &body_label,
                                 const std::function<void()> &epilogue,
                                 std::uint32_t stack_bytes)
{
    qr_assert(n_threads >= 1 && n_threads <= 64,
              "scaffold supports 1..64 threads, got %d", n_threads);
    qr_assert(stack_bytes % 64 == 0, "stack size must be line aligned");

    // Static per-child stacks and the tid array for joins.
    Addr tid_arr = n_threads > 1
        ? block(static_cast<std::uint32_t>(n_threads - 1)) : 0;
    std::vector<Addr> stack_tops;
    for (int i = 1; i < n_threads; ++i) {
        Addr base = alignedBlock(stack_bytes / 4);
        stack_tops.push_back(base + stack_bytes);
    }

    std::string entry = newLabel("worker_entry");

    // main: spawn children on their stacks.
    for (int i = 1; i < n_threads; ++i) {
        liLabel(a0, entry);
        li(a1, stack_tops[static_cast<std::size_t>(i - 1)]);
        li(a2, static_cast<Word>(i));
        sys(Sys::Spawn);
        li(t0, tid_arr + static_cast<Addr>(i - 1) * 4);
        sw(a0, t0, 0);
    }
    // main runs the body as worker 0.
    li(a0, 0);
    call(body_label);
    // join every child.
    for (int i = 1; i < n_threads; ++i) {
        li(t0, tid_arr + static_cast<Addr>(i - 1) * 4);
        lw(a0, t0, 0);
        sys(Sys::Join);
    }
    epilogue();
    sysExit(0);

    // Spawned workers: body(a0 = index), then exit.
    label(entry);
    call(body_label);
    sysExit(0);
}

} // namespace qr
