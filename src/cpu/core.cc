#include "cpu/core.hh"

#include <algorithm>

#include "isa/exec.hh"
#include "sim/logging.hh"

namespace qr
{

Core::Core(CoreId id, const CoreParams &params, const Program &prog_,
           Memory &mem_, L1Cache &cache_, RnrUnit &rnr_)
    : coreId(id), _params(params), prog(prog_), mem(mem_), cache(cache_),
      rnr(rnr_), sb(params.sbDepth)
{
    rnr.setSbSource(this);
}

void
Core::install(ThreadContext *new_ctx, Tick now)
{
    qr_assert(ctx == nullptr, "core %d: install over a running thread",
              coreId);
    ctx = new_ctx;
    sliceStart = now;
    sliceArmed = false;
}

ThreadContext *
Core::uninstall()
{
    qr_assert(ctx != nullptr, "core %d: uninstall with no thread", coreId);
    qr_assert(sb.empty(), "core %d: uninstall with buffered stores",
              coreId);
    ThreadContext *old = ctx;
    ctx = nullptr;
    return old;
}

void
Core::addStall(Tick now, Tick cycles)
{
    stallUntil = std::max(stallUntil, now) + cycles;
}

Tick
Core::drainOne(Tick now)
{
    StoreBuffer::Entry e = sb.pop();
    CacheAccess acc = cache.write(e.addr, rnr.clock(), now);
    mem.write(e.addr, e.data);
    if (acc.usedBus)
        rnr.mergeResponse(acc.observerTs);
    rnr.onStoreDrain(e.addr, now);
    return acc.latency;
}

void
Core::drainStoreBuffer(Tick now)
{
    Tick total = 0;
    while (!sb.empty())
        total += drainOne(now);
    if (total)
        addStall(now, total);
}

Word
Core::readAsThread(Addr addr, Tick now)
{
    qr_assert(sb.empty(), "kernel read with buffered stores");
    CacheAccess acc = cache.read(addr, rnr.clock(), now);
    if (acc.usedBus)
        rnr.mergeResponse(acc.observerTs);
    rnr.onLoad(addr, now);
    return mem.read(addr);
}

void
Core::writeAsThread(Addr addr, Word value, Tick now)
{
    CacheAccess acc = cache.write(addr, rnr.clock(), now);
    mem.write(addr, value);
    if (acc.usedBus)
        rnr.mergeResponse(acc.observerTs);
    rnr.onStoreDrain(addr, now);
}

std::pair<Word, Tick>
Core::loadWord(Addr addr, Tick now)
{
    if (auto fwd = sb.forward(addr)) {
        _stats.fwdLoads++;
        rnr.onLoad(addr, now);
        return {*fwd, 0};
    }
    CacheAccess acc = cache.read(addr, rnr.clock(), now);
    if (acc.usedBus)
        rnr.mergeResponse(acc.observerTs);
    rnr.onLoad(addr, now);
    return {mem.read(addr), acc.latency};
}

void
Core::tick(Tick now)
{
    if (!sb.empty() && now >= sbNextDrainAt) {
        Tick lat = drainOne(now);
        sbNextDrainAt = now + std::max(_params.sbDrainInterval, lat);
    }

    if (!ctx) {
        _stats.idleCycles++;
        return;
    }
    if (now < stallUntil) {
        _stats.stallCycles++;
        return;
    }
    if (!sliceArmed) {
        // First issue opportunity after dispatch: start the slice now
        // so switch/recording charges cannot consume it entirely.
        sliceStart = now;
        sliceArmed = true;
    }
    if (trapHandler && now - sliceStart >= _params.timeslice) {
        trapHandler->onTimeslice(*this, now);
        if (!ctx || now < stallUntil)
            return;
    }
    executeOne(now);
}

void
Core::executeOne(Tick now)
{
    qr_assert(ctx->pc < prog.code.size(),
              "tid %d: pc 0x%x past end of program (missing exit?)",
              ctx->tid, ctx->pc);
    const Instruction &in = prog.code[ctx->pc];
    Word nextPc = ctx->pc + 1;
    Tick cost = 1;

    auto rs1 = [&] { return ctx->reg(in.rs1); };
    auto rs2 = [&] { return ctx->reg(in.rs2); };

    if (execPure(in, *ctx, nextPc)) {
        if (in.op == Opcode::Mul)
            cost = _params.mulLatency;
        else if (in.op == Opcode::Divu || in.op == Opcode::Remu)
            cost = _params.divLatency;
        ctx->pc = nextPc;
        ctx->instrs++;
        _stats.instrs++;
        _stats.busyCycles++;
        rnr.onRetire(now);
        addStall(now, cost);
        return;
    }

    switch (in.op) {
      case Opcode::Lw: {
        Addr addr = rs1() + in.imm;
        auto [val, lat] = loadWord(addr, now);
        ctx->setReg(in.rd, val);
        ctx->mixMem(addr, val);
        cost += lat;
        _stats.loads++;
        break;
      }
      case Opcode::Sw: {
        Addr addr = rs1() + in.imm;
        qr_assert(addr % 4 == 0, "tid %d: misaligned store to 0x%x",
                  ctx->tid, addr);
        if (sb.full()) {
            // Structural hazard: drain the oldest entry synchronously.
            cost += drainOne(now);
            _stats.sbFullStalls++;
        }
        sb.push(addr, rs2());
        ctx->mixMem(addr, rs2());
        _stats.stores++;
        break;
      }
      case Opcode::Cas:
      case Opcode::FetchAdd:
      case Opcode::Swap: {
        // Locked RMW: serialize the store buffer, then read-modify-write
        // with exclusive ownership; globally visible immediately.
        while (!sb.empty())
            cost += drainOne(now);
        Addr addr = rs1();
        qr_assert(addr % 4 == 0, "tid %d: misaligned atomic to 0x%x",
                  ctx->tid, addr);
        CacheAccess acc = cache.write(addr, rnr.clock(), now);
        if (acc.usedBus)
            rnr.mergeResponse(acc.observerTs);
        Word old = mem.read(addr);
        if (in.op == Opcode::Cas) {
            if (old == ctx->reg(in.rd))
                mem.write(addr, rs2());
        } else if (in.op == Opcode::FetchAdd) {
            mem.write(addr, old + rs2());
        } else {
            mem.write(addr, ctx->reg(in.rd));
        }
        rnr.onLoad(addr, now);
        rnr.onStoreDrain(addr, now);
        ctx->setReg(in.rd, old);
        ctx->mixMem(addr, old);
        cost += acc.latency + _params.atomicLatency;
        _stats.atomics++;
        break;
      }
      case Opcode::Fence:
        while (!sb.empty())
            cost += drainOne(now);
        _stats.fences++;
        break;

      case Opcode::Syscall: {
        ctx->pc = nextPc;
        ctx->instrs++;
        _stats.instrs++;
        _stats.syscalls++;
        _stats.busyCycles++;
        rnr.onRetire(now);
        addStall(now, cost);
        qr_assert(trapHandler != nullptr, "syscall with no kernel");
        trapHandler->onSyscall(*this, now);
        return;
      }
      case Opcode::Rdtsc:
      case Opcode::Rdrand:
      case Opcode::Cpuid: {
        qr_assert(trapHandler != nullptr, "nondet instr with no kernel");
        Word v = trapHandler->onNondet(*this, in.op, now);
        ctx->setReg(in.rd, v);
        break;
      }
      default:
        panic("unhandled opcode %s at pc 0x%x", opcodeName(in.op),
              ctx->pc);
    }

    ctx->pc = nextPc;
    ctx->instrs++;
    _stats.instrs++;
    _stats.busyCycles++;
    rnr.onRetire(now);
    addStall(now, cost);
}

} // namespace qr
