/**
 * @file
 * Architectural state of one guest thread.
 */

#ifndef QR_CPU_THREAD_CONTEXT_HH
#define QR_CPU_THREAD_CONTEXT_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace qr
{

/** Registers + pc of a guest thread; owned by the kernel's TCB. */
struct ThreadContext
{
    Tid tid = invalidTid;
    std::array<Word, numRegs> regs{};
    Word pc = 0;
    /** User instructions retired by this thread. */
    std::uint64_t instrs = 0;
    /**
     * Running digest of every load value and store (address + data)
     * this thread issued, in program order. Maintained identically by
     * the recording core and the replayer, and folded into digest():
     * replay must reproduce not just the final state but the entire
     * per-thread memory-access value stream.
     */
    std::uint64_t memDigest = 0xcbf29ce484222325ull;

    /** Fold one memory access into memDigest. */
    void
    mixMem(Addr addr, Word value)
    {
        std::uint64_t h = memDigest;
        h ^= (static_cast<std::uint64_t>(addr) << 32) | value;
        h *= 0x100000001b3ull;
        memDigest = h;
    }

    Word reg(int r) const { return regs[static_cast<std::size_t>(r)]; }

    void
    setReg(int r, Word v)
    {
        if (r != 0) // r0 is hardwired zero
            regs[static_cast<std::size_t>(r)] = v;
    }

    /** FNV-1a digest of the architectural state (for replay checking). */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        auto mixIn = [&h](std::uint64_t v) {
            h ^= v;
            h *= 0x100000001b3ull;
        };
        for (Word r : regs)
            mixIn(r);
        mixIn(pc);
        mixIn(instrs);
        mixIn(static_cast<std::uint64_t>(tid));
        mixIn(memDigest);
        return h;
    }
};

} // namespace qr

#endif // QR_CPU_THREAD_CONTEXT_HH
