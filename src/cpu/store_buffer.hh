/**
 * @file
 * FIFO store buffer implementing TSO store-to-load forwarding.
 *
 * Retired stores sit here until they drain to the memory system, at
 * which point they become globally visible. The recording hardware
 * samples the occupancy at chunk termination as the RSW (reordered
 * store window) and inserts drained addresses into the then-current
 * chunk's write filter.
 */

#ifndef QR_CPU_STORE_BUFFER_HH
#define QR_CPU_STORE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/types.hh"

namespace qr
{

/** Per-core FIFO store buffer. */
class StoreBuffer
{
  public:
    /** One retired-but-not-globally-visible store. */
    struct Entry
    {
        Addr addr;
        Word data;
    };

    explicit StoreBuffer(std::uint32_t depth);

    bool empty() const { return entries.empty(); }
    bool full() const { return entries.size() >= depth; }
    std::uint32_t size() const
    { return static_cast<std::uint32_t>(entries.size()); }

    /** Enqueue a retired store. Must not be full. */
    void push(Addr addr, Word data);

    /** Dequeue the oldest store for drain. Must not be empty. */
    Entry pop();

    /**
     * TSO store-to-load forwarding: value of the youngest buffered
     * store to @p addr, if any.
     */
    std::optional<Word> forward(Addr addr) const;

    std::uint32_t capacity() const { return depth; }

  private:
    std::uint32_t depth;
    std::deque<Entry> entries;
};

} // namespace qr

#endif // QR_CPU_STORE_BUFFER_HH
