#include "cpu/store_buffer.hh"

#include "sim/logging.hh"

namespace qr
{

StoreBuffer::StoreBuffer(std::uint32_t depth_) : depth(depth_)
{
}

void
StoreBuffer::push(Addr addr, Word data)
{
    qr_assert(!full(), "store buffer overflow");
    entries.push_back({addr, data});
}

StoreBuffer::Entry
StoreBuffer::pop()
{
    qr_assert(!empty(), "store buffer underflow");
    Entry e = entries.front();
    entries.pop_front();
    return e;
}

std::optional<Word>
StoreBuffer::forward(Addr addr) const
{
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        if (it->addr == addr)
            return it->data;
    return std::nullopt;
}

} // namespace qr
