/**
 * @file
 * In-order core model executing QR-ISA with a TSO store buffer.
 *
 * The core stands in for one FPGA-emulated Pentium core of the QuickIA
 * platform. It executes at most one instruction per cycle, stalling for
 * memory latency, and drains its store buffer in the background. Every
 * architectural event the QuickRec hardware cares about is exposed to
 * the attached RnrUnit: instruction retirement, load addresses, store
 * drains (global visibility), and Lamport merges on bus responses.
 * Traps (syscalls, timeslice expiry, nondeterministic instructions) are
 * delegated to a TrapHandler implemented by the guest kernel.
 */

#ifndef QR_CPU_CORE_HH
#define QR_CPU_CORE_HH

#include <cstdint>

#include "cpu/store_buffer.hh"
#include "cpu/thread_context.hh"
#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "rnr/rnr_unit.hh"
#include "sim/types.hh"

namespace qr
{

class Core;

/** Kernel-side handler for traps raised by a core. */
class TrapHandler
{
  public:
    virtual ~TrapHandler() = default;

    /** A SYSCALL instruction retired; a7 holds the number. */
    virtual void onSyscall(Core &core, Tick now) = 0;

    /** The running thread's timeslice expired. */
    virtual void onTimeslice(Core &core, Tick now) = 0;

    /**
     * A nondeterministic instruction (Rdtsc/Rdrand/Cpuid) retired;
     * @return the value to write to its destination register.
     */
    virtual Word onNondet(Core &core, Opcode kind, Tick now) = 0;
};

/** Static core parameters. */
struct CoreParams
{
    std::uint32_t sbDepth = 8;   //!< store-buffer entries
    Tick sbDrainInterval = 2;    //!< min cycles between background drains
    Tick timeslice = 20000;      //!< cycles before the timer interrupt
    Tick mulLatency = 3;
    Tick divLatency = 12;
    Tick atomicLatency = 4;      //!< extra cycles for locked RMW ops
};

/** Per-core statistics. */
struct CoreStats
{
    std::uint64_t instrs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t fences = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t busyCycles = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t idleCycles = 0;
    std::uint64_t sbFullStalls = 0;
    std::uint64_t fwdLoads = 0;
};

/** One in-order core. */
class Core : public SbOccupancySource
{
  public:
    Core(CoreId id, const CoreParams &params, const Program &prog,
         Memory &mem, L1Cache &cache, RnrUnit &rnr);

    /** Attach the guest kernel. */
    void setTrapHandler(TrapHandler *h) { trapHandler = h; }

    /** Advance one cycle. */
    void tick(Tick now);

    // --- scheduling interface (used by the kernel) -----------------------
    /**
     * Begin executing @p ctx. The timeslice arms when the thread
     * actually issues its first instruction, not at install time, so
     * dispatch/recording charges can never eat the whole slice and
     * livelock the scheduler.
     */
    void install(ThreadContext *ctx, Tick now);

    /** Stop executing; the store buffer must already be drained. */
    ThreadContext *uninstall();

    ThreadContext *current() { return ctx; }
    bool idle() const { return ctx == nullptr; }

    /** Restart the timeslice without a context switch. */
    void
    resetSlice(Tick now)
    {
        sliceStart = now;
        sliceArmed = true;
    }

    /** Charge @p cycles of kernel/handler time to this core. */
    void addStall(Tick now, Tick cycles);

    /**
     * Synchronously drain the whole store buffer (kernel entry is
     * serializing), charging the accumulated latency.
     */
    void drainStoreBuffer(Tick now);

    /**
     * Kernel copy-to-user write attributed to the running thread: the
     * store becomes globally visible through this core's cache path and
     * enters the current chunk's write filter, so later remote readers
     * are ordered after the thread's next chunk (see rnr/README.md).
     */
    void writeAsThread(Addr addr, Word value, Tick now);

    /**
     * Kernel copy-from-user read attributed to the running thread: it
     * goes through this core's coherent path, enters the current
     * chunk's read filter and merges the Lamport clock, so the value
     * the kernel observed is ordered against every producer and every
     * later overwriter (see rnr/README.md).
     */
    Word readAsThread(Addr addr, Tick now);

    std::uint32_t sbSize() const { return sb.size(); }

    /** RSW sample for the recording unit (SbOccupancySource). */
    std::uint32_t sbOccupancy() const override { return sb.size(); }
    CoreId id() const { return coreId; }
    RnrUnit &rnrUnit() { return rnr; }
    const CoreStats &stats() const { return _stats; }
    const CoreParams &params() const { return _params; }

  private:
    void executeOne(Tick now);
    Tick drainOne(Tick now);

    /** Load a word respecting TSO forwarding; returns value + latency. */
    std::pair<Word, Tick> loadWord(Addr addr, Tick now);

    CoreId coreId;
    CoreParams _params;
    const Program &prog;
    Memory &mem;
    L1Cache &cache;
    RnrUnit &rnr;
    StoreBuffer sb;
    TrapHandler *trapHandler = nullptr;

    ThreadContext *ctx = nullptr;
    Tick stallUntil = 0;
    Tick sliceStart = 0;
    bool sliceArmed = false;
    Tick sbNextDrainAt = 0;
    CoreStats _stats;
};

} // namespace qr

#endif // QR_CPU_CORE_HH
