#include "obs/profile.hh"

#include "obs/stats_export.hh"
#include "sim/logging.hh"

namespace qr
{

const char *
profilePhaseName(ProfilePhase p)
{
    switch (p) {
      case ProfilePhase::Record: return "record";
      case ProfilePhase::CbufDrain: return "cbuf-drain";
      case ProfilePhase::GraphBuild: return "graph-build";
      case ProfilePhase::ReplayExec: return "replay-exec";
      case ProfilePhase::Analyze: return "analyze";
      case ProfilePhase::NumPhases: break;
    }
    return "?";
}

ProfilePhaseTotals
Profiler::totals(ProfilePhase p) const
{
    int i = static_cast<int>(p);
    ProfilePhaseTotals t;
    // Independent monotonic counters: readers tolerate cross-counter
    // skew, so relaxed reads are sufficient.
    t.calls = calls[i].load(std::memory_order_relaxed);
    t.wallMicros =
        wallNanos[i].load(std::memory_order_relaxed) / 1e3;
    t.modeledCycles = cycles[i].load(std::memory_order_relaxed);
    return t;
}

void
Profiler::reset()
{
    for (int i = 0; i < numProfilePhases; ++i) {
        // Reset is called from quiescent single-threaded phases only.
        calls[i].store(0, std::memory_order_relaxed);
        wallNanos[i].store(0, std::memory_order_relaxed);
        cycles[i].store(0, std::memory_order_relaxed);
    }
}

Profiler &
profiler()
{
    static Profiler p;
    return p;
}

void
profileSnapshotInto(StatsSnapshot &s)
{
    for (int i = 0; i < numProfilePhases; ++i) {
        auto p = static_cast<ProfilePhase>(i);
        ProfilePhaseTotals t = profiler().totals(p);
        if (!t.calls)
            continue;
        const char *name = profilePhaseName(p);
        s.counter(csprintf("profile.%s.calls", name), t.calls,
                  "spans accounted to the phase");
        s.gauge(csprintf("profile.%s.wall_micros", name), t.wallMicros,
                "wall-clock microseconds in the phase");
        s.counter(csprintf("profile.%s.modeled_cycles", name),
                  t.modeledCycles,
                  "modeled cycles attributed to the phase");
    }
}

} // namespace qr
