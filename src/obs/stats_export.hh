/**
 * @file
 * Unified stats export: one snapshot tree collecting the scalar
 * counters and histograms scattered across RunMetrics, the profiler,
 * and the sphere itself, exportable as JSON and Prometheus text.
 *
 * The snapshot is a flat, ordered list of dotted names (the same names
 * RunMetrics::statsText prints, e.g. "rnr.term.conflict-raw"), so the
 * three surfaces -- the human stats dump, `qrec stats` JSON/Prometheus,
 * and the stats section embedded in bench-JSON schema v2 -- agree on
 * every metric name.
 *
 * snapshotSphere() derives a snapshot from a serialized sphere alone
 * (chunk/RSW histograms rebuilt from the chunk records, log byte sizes
 * re-packed), which is what lets `qrec stats -i f.qrec` reproduce the
 * E6/E7/E8 numbers for any .qrec file without re-running the workload.
 */

#ifndef QR_OBS_STATS_EXPORT_HH
#define QR_OBS_STATS_EXPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace qr
{

struct RunMetrics;
struct SphereLogs;

/** One scalar statistic in a snapshot. */
struct StatScalar
{
    std::string name; //!< dotted path, e.g. "rnr.chunks"
    std::string help; //!< one-line description (Prometheus HELP)
    double value = 0;
    bool isCounter = true; //!< monotone counter vs. gauge
    bool integral = true;  //!< render without decimals
};

/** One histogram statistic in a snapshot. */
struct StatHistogram
{
    std::string name;
    std::string help;
    Histogram hist;
};

/** An ordered tree (by dotted name) of statistics. */
struct StatsSnapshot
{
    std::vector<StatScalar> scalars;
    std::vector<StatHistogram> histograms;

    /** Append a monotone integer counter. */
    void counter(const std::string &name, std::uint64_t v,
                 const std::string &help);

    /** Append a floating-point gauge. */
    void gauge(const std::string &name, double v,
               const std::string &help);

    /** Append a histogram. */
    void histogram(const std::string &name, const Histogram &h,
                   const std::string &help);

    /** @return the scalar named @p name, or nullptr. */
    const StatScalar *find(const std::string &name) const;

    /**
     * Export as a JSON object: scalars as "name": value members,
     * histograms as objects with count/sum/min/max/mean/p50/p90/p99.
     * @param indent number of spaces each line is indented by (so the
     *        object nests cleanly inside bench-JSON documents).
     */
    std::string json(int indent = 0) const;

    /**
     * Export in the Prometheus text exposition format: names prefixed
     * "qr_" and sanitized to [a-zA-Z0-9_], # HELP / # TYPE comments,
     * histograms as cumulative le-bucket series with _sum and _count.
     */
    std::string prometheus() const;
};

/** Sanitized Prometheus series name ("rnr.term.x" -> "qr_rnr_term_x"). */
std::string promName(const std::string &dotted);

/** Snapshot a finished run's RunMetrics (statsText names + histograms). */
StatsSnapshot snapshotMetrics(const RunMetrics &m);

/** Snapshot a sphere alone: everything derivable from its logs. */
StatsSnapshot snapshotSphere(const SphereLogs &logs);

} // namespace qr

#endif // QR_OBS_STATS_EXPORT_HH
