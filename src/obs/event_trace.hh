/**
 * @file
 * Structured event tracing: a binary timeline of recorder, replayer
 * and fault events, exportable as Chrome trace-event JSON.
 *
 * The tracer is a process-wide sink of fixed-size TraceEvents. Each
 * host thread writes into its own bounded ring (no locks on the emit
 * path; the registry mutex is taken only when a thread touches the
 * tracer for the first time and at flush), so the parallel replay
 * workers can emit concurrently without synchronizing. When the ring
 * fills, further events are dropped and counted -- a flight recorder
 * never blocks the flight.
 *
 * Arming is a single relaxed atomic load on the emit path and the
 * tracer only *observes*: recording with tracing armed produces
 * bit-identical spheres, digests and chunk boundaries to a disarmed
 * run (pinned by tests/test_obs.cc across the whole suite).
 *
 * Arm programmatically (eventTrace().arm()), via `qrec record
 * --trace`, or with the legacy QR_TRACE environment switch -- any
 * QR_TRACE flag arms both the stderr tracer and this one (sim/trace).
 *
 * Flush drains every ring into one timestamp-sorted timeline that
 * serializes to a compact "QTR1" byte stream (stored in the .qrec
 * container next to the sphere) and exports to the Chrome
 * `chrome://tracing` / Perfetto trace-event JSON format via
 * `qrec trace`.
 */

#ifndef QR_OBS_EVENT_TRACE_HH
#define QR_OBS_EVENT_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace qr
{

struct SphereLogs;

/** What happened; one enumerator per instrumented site. */
enum class TraceEventKind : std::uint16_t
{
    ChunkEnd,      //!< chunk terminated: a=size, b=reason, lane=tid
    CbufDrain,     //!< CBUF drained: a=records, b=forced, lane=core
    RsmSwitchIn,   //!< recording context restored: a=core, lane=tid
    RsmSwitchOut,  //!< recording context saved: a=core, lane=tid
    SyscallSpan,   //!< syscall logged: a=num, lane=tid
    ReplayInject,  //!< input record injected: a=kind, lane=tid
    ReplayChunk,   //!< chunk replayed: a=size, b=reason, lane=tid
    FaultFire,     //!< fault site fired: a=site, b=query index
    NumKinds,
};

/** Number of distinct event kinds. */
constexpr int numTraceEventKinds =
    static_cast<int>(TraceEventKind::NumKinds);

/** @return canonical name of an event kind (Chrome JSON event name). */
const char *traceEventKindName(TraceEventKind k);

/** One fixed-size timeline event. */
struct TraceEvent
{
    Tick tick = 0; //!< modeled time (cycles); replay uses Lamport ts
    Tick dur = 0;  //!< span length for duration kinds, 0 for instants
    std::uint64_t a = 0; //!< kind-specific payload (see TraceEventKind)
    std::uint64_t b = 0; //!< second payload slot
    std::int32_t lane = 0; //!< tid or core the event belongs to
    TraceEventKind kind = TraceEventKind::ChunkEnd;

    bool operator==(const TraceEvent &o) const = default;
};

/** A flushed timeline: sorted events plus ring-drop accounting. */
struct TraceTimeline
{
    std::vector<TraceEvent> events; //!< sorted by (tick, lane, kind)
    std::uint64_t dropped = 0;      //!< events lost to full rings

    /** Serialize to the compact "QTR1" byte stream. */
    std::vector<std::uint8_t> serialize() const;

    /** Parse a "QTR1" stream; throws ParseError on corruption. */
    static TraceTimeline deserialize(const std::vector<std::uint8_t> &in);

    /**
     * Export as Chrome trace-event JSON ("traceEvents" array format):
     * ChunkEnd/ReplayChunk/SyscallSpan become complete ("X") duration
     * events, everything else instant ("i") events, with process/
     * thread-name metadata rows so Perfetto labels the lanes.
     */
    std::string chromeJson() const;
};

/** The process-wide tracer. */
class EventTrace
{
  public:
    /** Default per-thread ring capacity (events). */
    static constexpr std::size_t defaultRingEvents = 1u << 16;

    /**
     * Arm the tracer. Subsequent emit() calls are kept, each host
     * thread in a ring of @p ring_events events. Re-arming clears any
     * buffered events.
     */
    void arm(std::size_t ring_events = defaultRingEvents);

    /** Disarm; buffered events stay until the next arm() or flush(). */
    void disarm();

    /** @return true if the tracer is collecting (emit path gate). */
    bool
    armed() const
    {
        // Advisory gate: a stale read races only against arm/disarm
        // transitions and at worst mis-gates one event.
        return _armed.load(std::memory_order_relaxed);
    }

    /**
     * Append one event to the calling thread's ring. A full ring drops
     * the event and counts it; a disarmed tracer returns immediately.
     */
    void
    emit(TraceEventKind kind, std::int32_t lane, Tick tick,
         std::uint64_t a = 0, std::uint64_t b = 0, Tick dur = 0)
    {
        if (!armed()) [[likely]]
            return;
        emitSlow(kind, lane, tick, a, b, dur);
    }

    /**
     * Drain every ring into one sorted timeline and clear the rings.
     * Call after the traced run completed (no concurrent emitters).
     */
    TraceTimeline flush();

    /** Events currently buffered across all rings (tests). */
    std::uint64_t bufferedEvents() const;

  private:
    struct Ring
    {
        std::vector<TraceEvent> events; //!< append-only up to capacity
        std::size_t capacity = 0;
        std::uint64_t dropped = 0;
    };

    void emitSlow(TraceEventKind kind, std::int32_t lane, Tick tick,
                  std::uint64_t a, std::uint64_t b, Tick dur);
    Ring *ringForThisThread();

    std::atomic<bool> _armed{false};
    std::size_t ringEvents = defaultRingEvents;
    /** Arm generation; thread-local ring handles from an earlier arm
     *  are stale and re-registered on first use. Atomic so the emit
     *  path can validate its cached handle without the mutex. */
    std::atomic<std::uint64_t> generation{0};
    mutable std::mutex mutex; //!< guards rings/generation, not emits
    std::vector<std::unique_ptr<Ring>> rings;
};

/** The global tracer every instrumented site emits into. */
EventTrace &eventTrace();

/**
 * Synthesize a timeline from a sphere alone (no recording-time trace):
 * every chunk record becomes a ChunkEnd span on its thread's lane,
 * timed by Lamport timestamps. Lets `qrec trace` render any .qrec
 * file, including ones recorded before tracing existed.
 */
TraceTimeline timelineFromSphere(const SphereLogs &logs);

} // namespace qr

#endif // QR_OBS_EVENT_TRACE_HH
