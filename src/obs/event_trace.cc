#include "obs/event_trace.hh"

#include <algorithm>
#include <cstring>

#include "capo/sphere.hh"
#include "fault/fault_plan.hh"
#include "rnr/chunk_record.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

/** Thread-local ring handle, validated against (owner, generation). */
thread_local void *tlOwner = nullptr;
thread_local void *tlRing = nullptr;
thread_local std::uint64_t tlGen = 0;

/** Chrome "pid" lanes group related event kinds into processes. */
enum JsonPid : int
{
    pidThreads = 1, //!< per-tid recording events
    pidCores = 2,   //!< per-core CBUF events
    pidFaults = 3,  //!< fault-injection firings
    pidReplay = 4,  //!< replay-side events
};

int
jsonPid(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::CbufDrain: return pidCores;
      case TraceEventKind::FaultFire: return pidFaults;
      case TraceEventKind::ReplayInject:
      case TraceEventKind::ReplayChunk: return pidReplay;
      default: return pidThreads;
    }
}

const char *
jsonPidName(int pid)
{
    switch (pid) {
      case pidThreads: return "record threads";
      case pidCores: return "record cores";
      case pidFaults: return "fault injection";
      case pidReplay: return "replay";
    }
    return "?";
}

/** True for kinds exported as complete ("X") duration events. */
bool
isSpanKind(TraceEventKind k)
{
    return k == TraceEventKind::ChunkEnd ||
           k == TraceEventKind::ReplayChunk ||
           k == TraceEventKind::SyscallSpan;
}

void
appendJsonCommon(std::string &out, const TraceEvent &e)
{
    out += csprintf("\"pid\": %d, \"tid\": %d, \"ts\": %llu",
                    jsonPid(e.kind), e.lane,
                    static_cast<unsigned long long>(e.tick));
}

} // namespace

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::ChunkEnd: return "chunk";
      case TraceEventKind::CbufDrain: return "cbuf-drain";
      case TraceEventKind::RsmSwitchIn: return "rsm-switch-in";
      case TraceEventKind::RsmSwitchOut: return "rsm-switch-out";
      case TraceEventKind::SyscallSpan: return "syscall";
      case TraceEventKind::ReplayInject: return "replay-inject";
      case TraceEventKind::ReplayChunk: return "replay-chunk";
      case TraceEventKind::FaultFire: return "fault";
      case TraceEventKind::NumKinds: break;
    }
    return "?";
}

// --- EventTrace ---------------------------------------------------------

void
EventTrace::arm(std::size_t ring_events)
{
    std::lock_guard<std::mutex> lock(mutex);
    rings.clear();
    generation.fetch_add(1, std::memory_order_release);
    ringEvents = ring_events ? ring_events : 1;
    // armed is advisory: a racing emitter at worst records or drops
    // one event at the transition edge, never corrupts a ring.
    _armed.store(true, std::memory_order_relaxed);
}

void
EventTrace::disarm()
{
    // Advisory flag, same rationale as arm().
    _armed.store(false, std::memory_order_relaxed);
}

EventTrace::Ring *
EventTrace::ringForThisThread()
{
    if (tlOwner == this && tlRing &&
        tlGen == generation.load(std::memory_order_acquire))
        return static_cast<Ring *>(tlRing);
    std::lock_guard<std::mutex> lock(mutex);
    rings.push_back(std::make_unique<Ring>());
    Ring *r = rings.back().get();
    r->capacity = ringEvents;
    tlOwner = this;
    tlRing = r;
    // Under the mutex; the fast-path acquire load above is the read
    // that orders against arm()'s release bump.
    tlGen = generation.load(std::memory_order_relaxed);
    return r;
}

void
EventTrace::emitSlow(TraceEventKind kind, std::int32_t lane, Tick tick,
                     std::uint64_t a, std::uint64_t b, Tick dur)
{
    Ring *r = ringForThisThread();
    if (r->events.size() >= r->capacity) {
        r->dropped++;
        return;
    }
    r->events.push_back(TraceEvent{tick, dur, a, b, lane, kind});
}

TraceTimeline
EventTrace::flush()
{
    std::lock_guard<std::mutex> lock(mutex);
    TraceTimeline t;
    for (const auto &ring : rings) {
        t.dropped += ring->dropped;
        t.events.insert(t.events.end(), ring->events.begin(),
                        ring->events.end());
    }
    rings.clear();
    generation.fetch_add(1, std::memory_order_release);
    std::sort(t.events.begin(), t.events.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  if (x.tick != y.tick)
                      return x.tick < y.tick;
                  if (x.lane != y.lane)
                      return x.lane < y.lane;
                  return static_cast<int>(x.kind) <
                         static_cast<int>(y.kind);
              });
    return t;
}

std::uint64_t
EventTrace::bufferedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t n = 0;
    for (const auto &ring : rings)
        n += ring->events.size();
    return n;
}

EventTrace &
eventTrace()
{
    static EventTrace trace;
    return trace;
}

// --- TraceTimeline ------------------------------------------------------

std::vector<std::uint8_t>
TraceTimeline::serialize() const
{
    std::vector<std::uint8_t> out = {'Q', 'T', 'R', '1'};
    putVarint(out, dropped);
    putVarint(out, events.size());
    for (const TraceEvent &e : events) {
        putVarint(out, static_cast<std::uint64_t>(e.kind));
        // Lanes include the -1 sentinel; bias keeps the varint small.
        putVarint(out, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(e.lane) + 1));
        putVarint(out, e.tick);
        putVarint(out, e.dur);
        putVarint(out, e.a);
        putVarint(out, e.b);
    }
    return out;
}

TraceTimeline
TraceTimeline::deserialize(const std::vector<std::uint8_t> &in)
{
    if (in.size() < 4 || std::memcmp(in.data(), "QTR1", 4) != 0)
        parseFail("not a QTR1 trace stream");
    TraceTimeline t;
    std::size_t pos = 4;
    t.dropped = getVarint(in, pos);
    std::uint64_t n = getVarint(in, pos);
    t.events.reserve(std::min<std::uint64_t>(n, 1u << 20));
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceEvent e;
        std::uint64_t kind = getVarint(in, pos);
        if (kind >= static_cast<std::uint64_t>(numTraceEventKinds))
            parseFail("trace event %llu: bad kind %llu",
                      static_cast<unsigned long long>(i),
                      static_cast<unsigned long long>(kind));
        e.kind = static_cast<TraceEventKind>(kind);
        e.lane = static_cast<std::int32_t>(
            static_cast<std::int64_t>(getVarint(in, pos)) - 1);
        e.tick = getVarint(in, pos);
        e.dur = getVarint(in, pos);
        e.a = getVarint(in, pos);
        e.b = getVarint(in, pos);
        t.events.push_back(e);
    }
    if (pos != in.size())
        parseFail("trailing bytes in QTR1 trace stream");
    return t;
}

std::string
TraceTimeline::chromeJson() const
{
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    auto row = [&](const std::string &body) {
        out += first ? "  {" : ",\n  {";
        out += body;
        out += "}";
        first = false;
    };

    // Metadata rows: name the processes and every lane we will use, so
    // Perfetto's track labels read "record threads / tid 2" instead of
    // bare numbers.
    std::vector<std::pair<int, std::int32_t>> lanes;
    for (const TraceEvent &e : events)
        lanes.emplace_back(jsonPid(e.kind), e.lane);
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    int lastPid = 0;
    for (const auto &[pid, lane] : lanes) {
        if (pid != lastPid) {
            row(csprintf("\"name\": \"process_name\", \"ph\": \"M\", "
                         "\"pid\": %d, \"args\": {\"name\": \"%s\"}",
                         pid, jsonPidName(pid)));
            lastPid = pid;
        }
        const char *what = pid == pidCores ? "core"
                           : pid == pidFaults ? "site" : "tid";
        row(csprintf("\"name\": \"thread_name\", \"ph\": \"M\", "
                     "\"pid\": %d, \"tid\": %d, "
                     "\"args\": {\"name\": \"%s %d\"}",
                     pid, lane, what, lane));
    }

    for (const TraceEvent &e : events) {
        std::string body = csprintf("\"name\": \"%s\", \"cat\": \"%s\", ",
                                    traceEventKindName(e.kind),
                                    jsonPidName(jsonPid(e.kind)));
        if (isSpanKind(e.kind)) {
            // Complete events need a nonzero duration to be clickable.
            body += csprintf("\"ph\": \"X\", \"dur\": %llu, ",
                             static_cast<unsigned long long>(
                                 e.dur ? e.dur : 1));
        } else {
            body += "\"ph\": \"i\", \"s\": \"t\", ";
        }
        appendJsonCommon(body, e);
        switch (e.kind) {
          case TraceEventKind::ChunkEnd:
          case TraceEventKind::ReplayChunk:
            body += csprintf(", \"args\": {\"size\": %llu, "
                             "\"reason\": \"%s\"}",
                             static_cast<unsigned long long>(e.a),
                             chunkReasonName(
                                 e.b < static_cast<std::uint64_t>(
                                           numChunkReasons)
                                     ? static_cast<ChunkReason>(e.b)
                                     : ChunkReason::Drain));
            break;
          case TraceEventKind::CbufDrain:
            body += csprintf(", \"args\": {\"records\": %llu, "
                             "\"forced\": %llu}",
                             static_cast<unsigned long long>(e.a),
                             static_cast<unsigned long long>(e.b));
            break;
          case TraceEventKind::RsmSwitchIn:
          case TraceEventKind::RsmSwitchOut:
            body += csprintf(", \"args\": {\"core\": %llu}",
                             static_cast<unsigned long long>(e.a));
            break;
          case TraceEventKind::SyscallSpan:
          case TraceEventKind::ReplayInject:
            body += csprintf(", \"args\": {\"num\": %llu}",
                             static_cast<unsigned long long>(e.a));
            break;
          case TraceEventKind::FaultFire:
            body += csprintf(
                ", \"args\": {\"site\": \"%s\", \"query\": %llu}",
                e.a < static_cast<std::uint64_t>(numFaultSites)
                    ? faultSiteName(static_cast<FaultSite>(e.a))
                    : "?",
                static_cast<unsigned long long>(e.b));
            break;
          case TraceEventKind::NumKinds:
            break;
        }
        row(body);
    }
    out += csprintf("\n], \"displayTimeUnit\": \"ms\", "
                    "\"metadata\": {\"tool\": \"qrec trace\", "
                    "\"droppedEvents\": %llu}}\n",
                    static_cast<unsigned long long>(dropped));
    return out;
}

TraceTimeline
timelineFromSphere(const SphereLogs &logs)
{
    TraceTimeline t;
    for (const auto &[tid, tl] : logs.threads) {
        Timestamp prev = 0;
        for (const ChunkRecord &rec : tl.chunks) {
            TraceEvent e;
            e.kind = TraceEventKind::ChunkEnd;
            e.lane = tid;
            // Lamport time: the span runs from the thread's previous
            // chunk boundary to this record's timestamp.
            e.tick = prev;
            e.dur = rec.ts > prev ? rec.ts - prev : 1;
            e.a = rec.size;
            e.b = static_cast<std::uint64_t>(rec.reason);
            t.events.push_back(e);
            prev = rec.ts;
        }
    }
    std::sort(t.events.begin(), t.events.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  if (x.tick != y.tick)
                      return x.tick < y.tick;
                  return x.lane < y.lane;
              });
    return t;
}

} // namespace qr
