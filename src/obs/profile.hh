/**
 * @file
 * Profiling scopes: cheap RAII wall-clock (+ optional modeled-cycle)
 * timers around the coarse phases of a qrec run -- the record hot
 * loop, the CBUF drain path, chunk-graph construction, and replay
 * execution -- accumulated into a process-wide table.
 *
 * Scopes are always on: they cost one steady_clock read at entry/exit
 * and a couple of relaxed fetch_adds, and they are placed around
 * phases (thousands of cycles each), never around per-instruction
 * work. The accumulators are atomics so parallel replay workers can
 * close scopes concurrently.
 *
 * The table exports into StatsSnapshot (profileSnapshotInto) and from
 * there into `qrec stats` and the bench-JSON schema-v2 "stats"
 * section, which is how BENCH_*.json attributes time per phase.
 */

#ifndef QR_OBS_PROFILE_HH
#define QR_OBS_PROFILE_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "sim/types.hh"

namespace qr
{

struct StatsSnapshot;

/** The coarse phases a run's time is attributed to. */
enum class ProfilePhase : int
{
    Record,     //!< Machine::run while recording (or baseline)
    CbufDrain,  //!< Capo3 drain interrupt handling
    GraphBuild, //!< chunk-dependence graph construction
    ReplayExec, //!< replay execution (sequential or worker pool)
    Analyze,    //!< offline race analysis
    NumPhases,
};

/** Number of profiled phases. */
constexpr int numProfilePhases =
    static_cast<int>(ProfilePhase::NumPhases);

/** @return short name of a phase ("record", "cbuf-drain", ...). */
const char *profilePhaseName(ProfilePhase p);

/** Accumulated totals for one phase. */
struct ProfilePhaseTotals
{
    std::uint64_t calls = 0;
    double wallMicros = 0;
    Tick modeledCycles = 0;
};

/** The process-wide phase-totals table. */
class Profiler
{
  public:
    /** Account one completed span. */
    void
    add(ProfilePhase p, double wall_micros, Tick modeled_cycles)
    {
        int i = static_cast<int>(p);
        // Independent monotonic counters; no cross-counter ordering
        // is promised to readers, so relaxed increments suffice.
        calls[i].fetch_add(1, std::memory_order_relaxed);
        wallNanos[i].fetch_add(
            static_cast<std::uint64_t>(wall_micros * 1e3),
            std::memory_order_relaxed);
        cycles[i].fetch_add(modeled_cycles, std::memory_order_relaxed);
    }

    /** Totals for one phase. */
    ProfilePhaseTotals totals(ProfilePhase p) const;

    /** Zero every accumulator (tests, bench repeat loops). */
    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, numProfilePhases> calls{};
    std::array<std::atomic<std::uint64_t>, numProfilePhases>
        wallNanos{};
    std::array<std::atomic<std::uint64_t>, numProfilePhases> cycles{};
};

/** The global profiler every scope reports into. */
Profiler &profiler();

/**
 * RAII span: measures wall time from construction to destruction and
 * adds it to the global profiler. Modeled cycles are attributed by
 * calling cycles() before the scope closes (phases that track modeled
 * time, e.g. the record loop, report the cycle delta they consumed).
 */
class ProfileScope
{
  public:
    explicit ProfileScope(ProfilePhase p)
        : phase(p), start(std::chrono::steady_clock::now())
    {}

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

    /** Attribute @p c modeled cycles to this span. */
    void cycles(Tick c) { modeledCycles = c; }

    ~ProfileScope()
    {
        auto end = std::chrono::steady_clock::now();
        double micros =
            std::chrono::duration<double, std::micro>(end - start)
                .count();
        profiler().add(phase, micros, modeledCycles);
    }

  private:
    ProfilePhase phase;
    std::chrono::steady_clock::time_point start;
    Tick modeledCycles = 0;
};

/**
 * Append the profiler's per-phase totals to @p s as
 * "profile.<phase>.{calls,wall_micros,modeled_cycles}" entries,
 * skipping phases that never ran.
 */
void profileSnapshotInto(StatsSnapshot &s);

} // namespace qr

#endif // QR_OBS_PROFILE_HH
