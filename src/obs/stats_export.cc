#include "obs/stats_export.hh"

#include <algorithm>

#include "capo/input_log.hh"
#include "capo/sphere.hh"
#include "core/metrics.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

/** Render a scalar value: integers exactly, gauges compactly. */
std::string
renderValue(const StatScalar &s)
{
    if (s.integral) {
        return csprintf("%llu", static_cast<unsigned long long>(
                                    s.value < 0 ? 0 : s.value + 0.5));
    }
    return csprintf("%.6g", s.value);
}

/** Inclusive upper bound of log2 bucket @p i (i >= 1). */
std::uint64_t
bucketUpper(int i)
{
    if (i >= 64)
        return ~0ull;
    return (1ull << i) - 1;
}

} // namespace

void
StatsSnapshot::counter(const std::string &name, std::uint64_t v,
                       const std::string &help)
{
    scalars.push_back(StatScalar{name, help,
                                 static_cast<double>(v), true, true});
}

void
StatsSnapshot::gauge(const std::string &name, double v,
                     const std::string &help)
{
    scalars.push_back(StatScalar{name, help, v, false, false});
}

void
StatsSnapshot::histogram(const std::string &name, const Histogram &h,
                         const std::string &help)
{
    histograms.push_back(StatHistogram{name, help, h});
}

const StatScalar *
StatsSnapshot::find(const std::string &name) const
{
    for (const StatScalar &s : scalars)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::string
StatsSnapshot::json(int indent) const
{
    const std::string pad(indent, ' ');
    const std::string pad1 = pad + "  ";
    std::string out = "{\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out += ",\n";
        first = false;
    };
    for (const StatScalar &s : scalars) {
        sep();
        out += csprintf("%s\"%s\": %s", pad1.c_str(), s.name.c_str(),
                        renderValue(s).c_str());
    }
    for (const StatHistogram &h : histograms) {
        sep();
        out += csprintf(
            "%s\"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"mean\": %.6g, "
            "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu}",
            pad1.c_str(), h.name.c_str(),
            static_cast<unsigned long long>(h.hist.count()),
            static_cast<unsigned long long>(h.hist.sum()),
            static_cast<unsigned long long>(h.hist.min()),
            static_cast<unsigned long long>(h.hist.max()),
            h.hist.mean(),
            static_cast<unsigned long long>(h.hist.quantile(0.5)),
            static_cast<unsigned long long>(h.hist.quantile(0.9)),
            static_cast<unsigned long long>(h.hist.quantile(0.99)));
    }
    out += "\n" + pad + "}";
    return out;
}

std::string
promName(const std::string &dotted)
{
    std::string out = "qr_";
    for (char c : dotted) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

std::string
StatsSnapshot::prometheus() const
{
    std::string out;
    for (const StatScalar &s : scalars) {
        std::string name = promName(s.name);
        out += csprintf("# HELP %s %s\n", name.c_str(), s.help.c_str());
        out += csprintf("# TYPE %s %s\n", name.c_str(),
                        s.isCounter ? "counter" : "gauge");
        out += csprintf("%s %s\n", name.c_str(),
                        renderValue(s).c_str());
    }
    for (const StatHistogram &h : histograms) {
        std::string name = promName(h.name);
        out += csprintf("# HELP %s %s\n", name.c_str(), h.help.c_str());
        out += csprintf("# TYPE %s histogram\n", name.c_str());
        const auto &buckets = h.hist.buckets();
        int top = 0;
        for (int i = 0; i < 65; ++i)
            if (buckets[i])
                top = i;
        std::uint64_t cum = 0;
        for (int i = 0; i <= top; ++i) {
            cum += buckets[i];
            out += csprintf("%s_bucket{le=\"%llu\"} %llu\n",
                            name.c_str(),
                            static_cast<unsigned long long>(
                                i == 0 ? 0 : bucketUpper(i)),
                            static_cast<unsigned long long>(cum));
        }
        out += csprintf("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                        static_cast<unsigned long long>(
                            h.hist.count()));
        out += csprintf("%s_sum %llu\n", name.c_str(),
                        static_cast<unsigned long long>(h.hist.sum()));
        out += csprintf("%s_count %llu\n", name.c_str(),
                        static_cast<unsigned long long>(
                            h.hist.count()));
    }
    return out;
}

StatsSnapshot
snapshotMetrics(const RunMetrics &m)
{
    StatsSnapshot s;
    s.counter("sim.cycles", m.cycles, "simulated cycles");
    s.counter("sim.instrs", m.instrs, "retired user instructions");
    s.gauge("sim.ipc",
            ratio(static_cast<double>(m.instrs),
                  static_cast<double>(m.cycles)),
            "aggregate instructions per cycle");
    s.counter("cpu.loads", m.loads, "retired loads");
    s.counter("cpu.stores", m.stores, "retired stores");
    s.counter("cpu.atomics", m.atomics, "locked read-modify-writes");
    s.counter("kernel.syscalls", m.syscalls, "system calls");
    s.counter("kernel.ctx_switches", m.contextSwitches,
              "context switches");
    s.counter("kernel.migrations", m.migrations,
              "cross-core migrations");
    s.counter("kernel.signals", m.signalsDelivered,
              "signals delivered");
    s.counter("mem.l1_hits", m.l1Hits, "L1 hits");
    s.counter("mem.l1_misses", m.l1Misses, "L1 misses");
    s.counter("mem.bus_txns", m.busTxns, "coherence transactions");
    s.counter("mem.invalidations", m.invalidations,
              "lines invalidated");
    s.counter("rnr.chunks", m.chunks, "chunk records logged");
    for (int r = 0; r < numChunkReasons; ++r) {
        s.counter(csprintf("rnr.term.%s",
                           chunkReasonName(static_cast<ChunkReason>(r))),
                  m.reasonCounts[r], "chunk terminations by cause");
    }
    s.counter("rnr.rsw_nonzero", m.rswNonZero, "chunks with RSW > 0");
    if (m.exactShadow) {
        s.counter("rnr.false_conflicts", m.falseConflicts,
                  "Bloom false-positive terminations");
    }
    s.counter("rnr.coalesced_accesses", m.coalescedAccesses,
              "accesses absorbed by the last-line caches");
    s.counter("rnr.cbuf_bytes", m.cbufBytes,
              "raw bytes written to CBUFs");
    s.counter("fault.dropped_chunks", m.droppedChunks,
              "chunk records lost at the CBUF");
    s.counter("fault.gap_chunks", m.gapChunks,
              "gap markers drained into the logs");
    s.counter("fault.lost_signals", m.lostCbufSignals,
              "CBUF drain signals suppressed");
    s.counter("fault.drain_retries", m.cbufDrainRetries,
              "failed RSM drain attempts");
    s.counter("fault.delayed_signals", m.delayedCbufSignals,
              "drain signals delivered late");
    if (m.deviceEvents || m.deviceBusTxns) {
        s.counter("device.events", m.deviceEvents,
                  "bus-agent completions delivered");
        s.counter("device.bus_txns", m.deviceBusTxns,
                  "bus-agent coherence transactions");
    }
    s.counter("capo.cbuf_drains", m.cbufDrains,
              "CBUF drain interrupts");
    s.counter("capo.cbuf_forced_drains", m.cbufForcedDrains,
              "drains forced by CBUF backpressure");
    s.counter("capo.input_records", m.inputRecords,
              "input-log records");
    s.counter("capo.overhead_cycles", m.recordingOverheadCycles,
              "software recording work");
    for (int c = 0; c < numOverheadCats; ++c) {
        s.counter(csprintf("capo.overhead.%s",
                           overheadCatName(static_cast<OverheadCat>(c))),
                  m.overheadCycles[c], "overhead by category");
    }
    s.counter("log.memory_bytes", m.logSizes.memoryBytes,
              "packed chunk-log bytes");
    s.counter("log.input_bytes", m.logSizes.inputBytes,
              "packed input-log bytes");
    s.gauge("log.mem_bytes_per_kinstr", m.memLogBytesPerKiloInstr(),
            "memory-log bytes per 1000 instructions");
    s.gauge("log.input_bytes_per_kinstr", m.inputLogBytesPerKiloInstr(),
            "input-log bytes per 1000 instructions");
    s.histogram("rnr.chunk_size", m.chunkSizes,
                "instructions per chunk");
    s.histogram("rnr.rsw", m.rswValues,
                "reordered store window at termination");
    return s;
}

StatsSnapshot
snapshotSphere(const SphereLogs &logs)
{
    StatsSnapshot s;
    std::uint64_t reasons[numChunkReasons] = {};
    Histogram sizes;
    Histogram rsw;
    std::uint64_t rswNonZero = 0;
    std::uint64_t inputRecords = 0;
    std::uint64_t syncPoints = 0;
    for (const auto &[tid, tl] : logs.threads) {
        for (const ChunkRecord &rec : tl.chunks) {
            int r = static_cast<int>(rec.reason);
            if (r >= 0 && r < numChunkReasons)
                reasons[r]++;
            sizes.sample(rec.size);
            rsw.sample(rec.rsw);
            if (rec.rsw)
                rswNonZero++;
        }
        inputRecords += tl.input.size();
        syncPoints += tl.syncs.size();
    }
    s.counter("sphere.id", logs.sphereId, "replay sphere identifier");
    s.counter("sphere.threads", logs.threads.size(),
              "threads in the sphere");
    s.counter("sphere.mem_bytes", logs.memBytes,
              "guest memory size of the recording");
    s.counter("sphere.sync_points", syncPoints,
              "kernel synchronization edges (v2 spheres)");
    s.counter("sphere.has_shadows", logs.hasShadows() ? 1 : 0,
              "1 when every thread carries exact shadow sets");
    s.counter("rnr.chunks", logs.totalChunks(),
              "chunk records logged");
    for (int r = 0; r < numChunkReasons; ++r) {
        s.counter(csprintf("rnr.term.%s",
                           chunkReasonName(static_cast<ChunkReason>(r))),
                  reasons[r], "chunk terminations by cause");
    }
    s.counter("rnr.rsw_nonzero", rswNonZero, "chunks with RSW > 0");
    s.counter("fault.gap_chunks",
              reasons[static_cast<int>(ChunkReason::Gap)],
              "gap markers in the logs");
    s.counter("capo.input_records", inputRecords,
              "input-log records");
    if (!logs.devices.empty()) {
        std::uint64_t devEvents = 0;
        for (const DeviceStream &d : logs.devices)
            devEvents += d.events.size();
        s.counter("sphere.device_streams", logs.devices.size(),
                  "bus-agent event streams (v3 spheres)");
        s.counter("device.events", devEvents,
                  "recorded bus-agent completions");
    }
    s.counter("log.memory_bytes", logs.memoryLogBytes(),
              "packed chunk-log bytes");
    s.counter("log.input_bytes", logs.inputLogBytes(),
              "packed input-log bytes");
    s.histogram("rnr.chunk_size", sizes, "instructions per chunk");
    s.histogram("rnr.rsw", rsw,
                "reordered store window at termination");
    return s;
}

} // namespace qr
