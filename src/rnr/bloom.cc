#include "rnr/bloom.hh"

#include "sim/logging.hh"

namespace qr
{

BloomFilter::BloomFilter(const BloomParams &params)
    : mask(params.bits - 1), nHashes(params.hashes),
      words((params.bits + 63) / 64, 0)
{
    qr_assert(params.bits >= 64 && (params.bits & (params.bits - 1)) == 0,
              "bloom filter bits must be a power of two >= 64");
    qr_assert(params.hashes >= 1 && params.hashes <= 8,
              "bloom filter needs 1..8 hash functions");
    dirty.reserve(words.size());
}

} // namespace qr
