#include "rnr/bloom.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace qr
{

BloomFilter::BloomFilter(const BloomParams &params_)
    : params(params_), mask(params_.bits - 1),
      bits((params_.bits + 63) / 64, 0)
{
    qr_assert(params.bits >= 64 && (params.bits & (params.bits - 1)) == 0,
              "bloom filter bits must be a power of two >= 64");
    qr_assert(params.hashes >= 1 && params.hashes <= 8,
              "bloom filter needs 1..8 hash functions");
}

std::uint64_t
BloomFilter::hash(Addr line_addr, int fn) const
{
    // Derive independent hash functions by mixing with the function
    // index; hardware would use distinct XOR-fold networks.
    return mix64((static_cast<std::uint64_t>(fn) << 32) ^ line_addr);
}

void
BloomFilter::insert(Addr line_addr)
{
    for (int f = 0; f < params.hashes; ++f) {
        std::uint32_t b = static_cast<std::uint32_t>(hash(line_addr, f)) &
                          mask;
        bits[b / 64] |= 1ull << (b % 64);
    }
    inserts++;
}

bool
BloomFilter::test(Addr line_addr) const
{
    for (int f = 0; f < params.hashes; ++f) {
        std::uint32_t b = static_cast<std::uint32_t>(hash(line_addr, f)) &
                          mask;
        if (!(bits[b / 64] & (1ull << (b % 64))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    for (auto &w : bits)
        w = 0;
    inserts = 0;
}

std::uint32_t
BloomFilter::popcount() const
{
    std::uint32_t n = 0;
    for (auto w : bits)
        n += static_cast<std::uint32_t>(std::popcount(w));
    return n;
}

} // namespace qr
