#include "rnr/rnr_unit.hh"

#include <algorithm>

#include "fault/fault_plan.hh"
#include "obs/event_trace.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace qr
{

RnrUnit::RnrUnit(CoreId core_id, const RnrParams &params_, Cbuf &cbuf_)
    : coreId(core_id), params(params_),
      lineMask(~static_cast<Addr>(params_.lineBytes - 1)), cbuf(cbuf_),
      rset(params_.bloom), wset(params_.bloom)
{
    qr_assert((params.lineBytes & (params.lineBytes - 1)) == 0,
              "line size must be a power of two");
    qr_assert(params.maxChunkInstrs > 0, "max chunk size must be nonzero");
}

void
RnrUnit::enable(Tid tid_)
{
    qr_assert(!_enabled, "core %d: enable while already recording", coreId);
    qr_assert(chunkSize == 0 && !filterActivity,
              "core %d: stale chunk state at enable", coreId);
    _enabled = true;
    tid = tid_;
}

void
RnrUnit::disable()
{
    qr_assert(chunkSize == 0 && !filterActivity,
              "core %d: disable with an open chunk", coreId);
    _enabled = false;
    tid = invalidTid;
}

void
RnrUnit::setClockFloor(Timestamp floor)
{
    _clock = std::max(_clock, floor);
}

void
RnrUnit::clearChunkState()
{
    rset.clear();
    wset.clear();
    chunkSize = 0;
    filterActivity = false;
    lastReadLine = noLine;
    lastWriteLine = noLine;
    if (params.exactShadow) [[unlikely]] {
        shadowReads.clear();
        shadowWrites.clear();
    }
}

void
RnrUnit::terminate(ChunkReason reason, Tick now)
{
    if (!_enabled)
        return;

    std::uint32_t rsw = sbSource ? sbSource->sbOccupancy() : 0;
    if (chunkSize == 0 && rsw == 0 && !filterActivity) {
        // Nothing observable happened since the last boundary; suppress
        // the record (see README: suppressing is only sound when the
        // filters saw no activity, because store drains and input
        // copies need a logged anchor chunk).
        _stats.emptyTerminations++;
        return;
    }

    ChunkRecord rec;
    rec.ts = _clock;
    rec.size = chunkSize;
    rec.rsw = static_cast<std::uint16_t>(rsw);
    rec.reason = reason;
    rec.tid = tid;
    _clock++; // per-core timestamps are strictly increasing

    if (traceEnabled(TraceFlag::Chunk)) [[unlikely]] {
        tracef(TraceFlag::Chunk,
               "core %d tid %d: chunk ts=%llu size=%u rsw=%u (%s)", coreId,
               tid, static_cast<unsigned long long>(rec.ts), rec.size,
               rec.rsw, chunkReasonName(reason));
    }

    if (faults && cbuf.full()) [[unlikely]] {
        // The buffer can only still be full here if an earlier Full
        // signal was lost: the hardware re-raises backpressure before
        // this append. The re-raise is itself subject to loss.
        if (!faults->fire(FaultSite::CbufDrop) && sink)
            sink->onCbufSignal(coreId, /*full=*/true, now);
        if (cbuf.full()) {
            // No room was made: the record is lost. The loss is
            // witnessed by a gap marker synthesized on the next drain;
            // the chunk does not enter the logged-chunk statistics.
            cbuf.noteDropped(rec);
            _stats.droppedChunks++;
            clearChunkState();
            return;
        }
    }

    Cbuf::Signal sig = cbuf.append(rec, now);

    _stats.chunks++;
    _stats.reasonCounts[static_cast<int>(reason)]++;
    _stats.chunkSizes.sample(rec.size);
    _stats.rswValues.sample(rec.rsw);
    if (rec.rsw)
        _stats.rswNonZero++;

    eventTrace().emit(TraceEventKind::ChunkEnd, tid, chunkStart,
                      rec.size, static_cast<std::uint64_t>(reason),
                      now > chunkStart ? now - chunkStart : 0);
    chunkStart = now;

    // Materialize the exact shadow sets before they are flash-cleared
    // with the rest of the chunk state; the sink (Capo3) persists them
    // into the sphere for the offline analyzer.
    ChunkShadow shadow;
    bool haveShadow = params.exactShadow && sink;
    if (haveShadow) [[unlikely]] {
        shadow.reads.assign(shadowReads.begin(), shadowReads.end());
        shadow.writes.assign(shadowWrites.begin(), shadowWrites.end());
        std::sort(shadow.reads.begin(), shadow.reads.end());
        std::sort(shadow.writes.begin(), shadow.writes.end());
    }

    clearChunkState();

    if (sink) {
        sink->onChunkLogged(rec, coreId, haveShadow ? &shadow : nullptr);
        if (sig != Cbuf::Signal::None) {
            if (faults && faults->fire(FaultSite::CbufDrop))
                [[unlikely]] {
                // The drain signal is lost in flight; software never
                // hears about it. A Full loss leaves the buffer at
                // capacity, to be re-raised (or dropped) at the next
                // append above.
                _stats.lostSignals++;
            } else {
                sink->onCbufSignal(coreId, sig == Cbuf::Signal::Full,
                                   now);
            }
        }
    } else if (sig == Cbuf::Signal::Full) {
        // No software stack attached (unit tests): discard by draining.
        cbuf.drain();
    }
}

void
RnrUnit::mergeResponse(Timestamp max_observer_ts)
{
    _clock = std::max(_clock, max_observer_ts + 1);
}

Timestamp
RnrUnit::observeRemote(const BusTxn &txn, Tick now)
{
    if (_enabled) {
        _stats.remoteTxnsChecked++;
        Addr line = lineOf(txn.lineAddr);
        // Remote read vs. our writes: RAW. Remote write intent vs. our
        // writes: WAW; vs. our reads only: WAR.
        ChunkReason reason = ChunkReason::NumReasons;
        if (txn.op == BusOp::BusRd) {
            if (wset.test(line))
                reason = ChunkReason::ConflictRaw;
        } else {
            if (wset.test(line))
                reason = ChunkReason::ConflictWaw;
            else if (rset.test(line))
                reason = ChunkReason::ConflictWar;
        }
        if (reason != ChunkReason::NumReasons) {
            if (params.exactShadow) [[unlikely]] {
                bool exact = txn.op == BusOp::BusRd
                    ? shadowWrites.count(line) > 0
                    : shadowWrites.count(line) > 0 ||
                      shadowReads.count(line) > 0;
                if (!exact)
                    _stats.falseConflicts++;
            }
            // Terminate with the pre-merge clock: the conflicting chunk
            // must be ordered strictly before the requester's current
            // chunk, whose eventual timestamp exceeds our merged clock.
            terminate(reason, now);
        }
    }
    // Lamport merge on every transaction, recording or not (the clock
    // is free-running hardware fed by the coherence fabric).
    _clock = std::max(_clock, txn.reqTs + 1);
    return _clock;
}

} // namespace qr
