/**
 * @file
 * Bloom-filter address-set hardware used by the QuickRec memory race
 * recorder to summarize the read and write sets of the current chunk.
 *
 * The filter admits false positives (which cause benign early chunk
 * terminations, inflating the log slightly) but never false negatives
 * (which would lose a dependence and break replay). Filters are
 * flash-cleared at every chunk boundary.
 *
 * Hot-path engineering (see src/rnr/README.md): insert() and test()
 * sit on the per-retired-access record path, and clear() runs at every
 * chunk boundary, so all three are engineered like the tiny hardware
 * state machine they model rather than a generic container:
 *
 *  - All k probe indices derive from a *single* mix64() call by double
 *    hashing (Kirsch-Mitzenmacher): index_f = h1 + f*h2 with h2 forced
 *    odd so every probe stride is coprime with the power-of-two filter
 *    size and the k probes never collapse onto one slot.
 *  - insert()/test() are inline in this header; the per-access cost is
 *    one multiply-shift mix and k masked word probes.
 *  - clear() is O(words actually touched): insert() appends each word
 *    index to a dirty list the first time it makes the word nonzero
 *    (bits are only ever set between clears, so "word != 0" is exactly
 *    "word is on the dirty list"). Chunks are short and filters are
 *    1024+ bits, so clearing only the handful of touched words beats
 *    the old O(bits/64) flash loop by a wide margin.
 */

#ifndef QR_RNR_BLOOM_HH
#define QR_RNR_BLOOM_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace qr
{

/** Geometry of one Bloom filter. */
struct BloomParams
{
    std::uint32_t bits = 1024; //!< filter size in bits (power of two)
    int hashes = 2;            //!< number of hash functions
};

/** A fixed-size Bloom filter over cache-line addresses. */
class BloomFilter
{
  public:
    explicit BloomFilter(const BloomParams &params);

    /** Insert a line address. */
    void
    insert(Addr line_addr)
    {
        std::uint64_t h = mix64(line_addr);
        std::uint32_t h1 = static_cast<std::uint32_t>(h);
        // Odd stride: coprime with the power-of-two filter size, so
        // the k probes land on k distinct slots.
        std::uint32_t h2 = static_cast<std::uint32_t>(h >> 32) | 1u;
        for (int f = 0; f < nHashes; ++f) {
            std::uint32_t b = h1 & mask;
            std::uint64_t &w = words[b >> 6];
            if (!w)
                dirty.push_back(b >> 6);
            w |= 1ull << (b & 63);
            h1 += h2;
        }
        inserts++;
    }

    /** Membership test (may report false positives). */
    bool
    test(Addr line_addr) const
    {
        std::uint64_t h = mix64(line_addr);
        std::uint32_t h1 = static_cast<std::uint32_t>(h);
        std::uint32_t h2 = static_cast<std::uint32_t>(h >> 32) | 1u;
        for (int f = 0; f < nHashes; ++f) {
            std::uint32_t b = h1 & mask;
            if (!(words[b >> 6] & (1ull << (b & 63))))
                return false;
            h1 += h2;
        }
        return true;
    }

    /**
     * Count an insertion that was coalesced away because the line is
     * already known to be present (the unit's last-line cache hit).
     * Keeps fill() -- and therefore the filterMaxFill safety valve --
     * bit-identical to the uncoalesced path without touching the bits.
     */
    void countDuplicate() { inserts++; }

    /** Flash-clear the filter: O(words actually set). */
    void
    clear()
    {
        for (std::uint32_t wi : dirty)
            words[wi] = 0;
        dirty.clear();
        inserts = 0;
    }

    /** Number of insert() calls since the last clear(). */
    std::uint32_t fill() const { return inserts; }

    /** Number of distinct set bits (hardware population count). */
    std::uint32_t
    popcount() const
    {
        std::uint32_t n = 0;
        for (std::uint32_t wi : dirty)
            n += static_cast<std::uint32_t>(std::popcount(words[wi]));
        return n;
    }

  private:
    std::uint32_t mask;
    int nHashes;
    std::vector<std::uint64_t> words;
    std::vector<std::uint32_t> dirty; //!< indices of nonzero words
    std::uint32_t inserts = 0;
};

} // namespace qr

#endif // QR_RNR_BLOOM_HH
