/**
 * @file
 * Bloom-filter address-set hardware used by the QuickRec memory race
 * recorder to summarize the read and write sets of the current chunk.
 *
 * The filter admits false positives (which cause benign early chunk
 * terminations, inflating the log slightly) but never false negatives
 * (which would lose a dependence and break replay). Filters are
 * flash-cleared at every chunk boundary.
 */

#ifndef QR_RNR_BLOOM_HH
#define QR_RNR_BLOOM_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace qr
{

/** Geometry of one Bloom filter. */
struct BloomParams
{
    std::uint32_t bits = 1024; //!< filter size in bits (power of two)
    int hashes = 2;            //!< number of hash functions
};

/** A fixed-size Bloom filter over cache-line addresses. */
class BloomFilter
{
  public:
    explicit BloomFilter(const BloomParams &params);

    /** Insert a line address. */
    void insert(Addr line_addr);

    /** Membership test (may report false positives). */
    bool test(Addr line_addr) const;

    /** Flash-clear the filter. */
    void clear();

    /** Number of insert() calls since the last clear(). */
    std::uint32_t fill() const { return inserts; }

    /** Number of distinct set bits (hardware population count). */
    std::uint32_t popcount() const;

  private:
    std::uint64_t hash(Addr line_addr, int fn) const;

    BloomParams params;
    std::uint32_t mask;
    std::vector<std::uint64_t> bits;
    std::uint32_t inserts = 0;
};

} // namespace qr

#endif // QR_RNR_BLOOM_HH
