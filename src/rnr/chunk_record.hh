/**
 * @file
 * The memory-log record emitted at every chunk termination, with both
 * the fixed 16-byte in-CBUF layout the hardware writes and the packed
 * variable-length encoding Capo3 uses when spilling logs to storage.
 */

#ifndef QR_RNR_CHUNK_RECORD_HH
#define QR_RNR_CHUNK_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace qr
{

/** Why a chunk was terminated. */
enum class ChunkReason : std::uint8_t
{
    ConflictRaw,   //!< remote read hit this chunk's write set
    ConflictWar,   //!< remote write hit this chunk's read set
    ConflictWaw,   //!< remote write hit this chunk's write set
    SizeOverflow,  //!< chunk-size counter saturated
    FilterFull,    //!< Bloom filter occupancy exceeded the safety bound
    Syscall,       //!< trap into the kernel (syscall/exception)
    ContextSwitch, //!< thread descheduled; recording context saved
    Drain,         //!< recording stopped / sphere detached
    Gap,           //!< marker: records lost here under fault injection
    Device,        //!< synthetic: bus-agent event in a replay schedule
    NumReasons,
};

/** Number of distinct termination reasons. */
constexpr int numChunkReasons = static_cast<int>(ChunkReason::NumReasons);

/** @return short name of a termination reason. */
const char *chunkReasonName(ChunkReason r);

/** @return true for the three conflict-induced reasons. */
bool isConflictReason(ChunkReason r);

/** One chunk record, as produced by the recording hardware. */
struct ChunkRecord
{
    Timestamp ts = 0;     //!< Lamport timestamp at termination
    std::uint32_t size = 0; //!< user instructions retired in the chunk
    std::uint16_t rsw = 0;  //!< reordered store window (TSO, CoreRacer)
    ChunkReason reason = ChunkReason::Drain;
    Tid tid = invalidTid; //!< thread (R-XID) the chunk belongs to

    bool operator==(const ChunkRecord &o) const = default;

    /** Size of the fixed in-CBUF layout the hardware writes. */
    static constexpr std::uint32_t cbufBytes = 16;

    /** Pack into the fixed 16-byte CBUF layout (4 words). */
    void packWords(Word out[4]) const;

    /** Unpack from the fixed CBUF layout. */
    static ChunkRecord unpackWords(const Word in[4]);
};

/**
 * Exact per-chunk address sets (cache-line granularity), captured by
 * the recording unit when RnrParams::exactShadow is on. Not hardware
 * state: this is the evaluation/analysis side channel the offline race
 * analyzer consumes (src/analyze/). Lines are sorted and deduplicated.
 */
struct ChunkShadow
{
    std::vector<Addr> reads;
    std::vector<Addr> writes;

    bool operator==(const ChunkShadow &o) const = default;
};

/**
 * Append the packed variable-length encoding of @p rec to @p out.
 * The timestamp is delta-encoded against @p prev_ts (the previous
 * record of the same thread log); sizes and deltas use LEB128 varints.
 */
void packCompact(const ChunkRecord &rec, Timestamp prev_ts,
                 std::vector<std::uint8_t> &out);

/**
 * Decode one compact record from @p in at offset @p pos (advanced).
 * @param prev_ts previous timestamp of this thread log.
 */
ChunkRecord unpackCompact(const std::vector<std::uint8_t> &in,
                          std::size_t &pos, Timestamp prev_ts, Tid tid);

/** LEB128 varint append (shared with the input-log encoder). */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t v);

/**
 * LEB128 varint decode at @p pos (advanced), generic over the byte
 * source. @p Bytes needs only size() and operator[]; this lets the
 * same decoder run over a heap buffer or a PayloadView backed by an
 * mmapped container without staging a copy.
 */
template <class Bytes>
std::uint64_t
getVarintFrom(const Bytes &in, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (pos >= in.size())
            parseFail("varint runs past end of log");
        std::uint8_t b = in[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            parseFail("varint too long");
    }
}

/** LEB128 varint decode at @p pos (advanced). */
std::uint64_t getVarint(const std::vector<std::uint8_t> &in,
                        std::size_t &pos);

/** Generic-source variant of unpackCompact(); see getVarintFrom(). */
template <class Bytes>
ChunkRecord
unpackCompactFrom(const Bytes &in, std::size_t &pos, Timestamp prev_ts,
                  Tid tid)
{
    if (pos >= in.size())
        parseFail("compact record runs past end of log");
    std::uint8_t hdr = in[pos++];
    ChunkRecord rec;
    rec.reason = static_cast<ChunkReason>(hdr & 0x0f);
    // Device records exist only in in-memory schedules (built from the
    // sphere's device section), never in packed thread logs -- so the
    // on-disk domain of the reason nibble is unchanged from v2.
    if (static_cast<int>(rec.reason) >= numChunkReasons ||
        rec.reason == ChunkReason::Device)
        parseFail("corrupt compact chunk record");
    rec.size = static_cast<std::uint32_t>(getVarintFrom(in, pos));
    rec.ts = prev_ts + getVarintFrom(in, pos);
    rec.rsw = (hdr & 0x10)
        ? static_cast<std::uint16_t>(getVarintFrom(in, pos)) : 0;
    rec.tid = tid;
    return rec;
}

} // namespace qr

#endif // QR_RNR_CHUNK_RECORD_HH
