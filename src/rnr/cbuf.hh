/**
 * @file
 * The per-core memory-backed chunk log buffer (CBUF).
 *
 * The recording hardware appends fixed 16-byte chunk records into a
 * physical-memory circular buffer whose base/size/head/tail live in
 * MSR-like registers. Appends steal a small amount of bus bandwidth
 * (modeled via Bus::occupyForLog). When occupancy crosses a programmable
 * threshold the unit raises a drain interrupt so Capo3 can spill the
 * records; if the buffer ever fills completely, the hardware asserts
 * backpressure and the kernel must drain synchronously.
 */

#ifndef QR_RNR_CBUF_HH
#define QR_RNR_CBUF_HH

#include <cstdint>
#include <map>
#include <vector>

#include "mem/memory.hh"
#include "rnr/chunk_record.hh"
#include "sim/types.hh"

namespace qr
{

class Bus;

/** CBUF configuration registers. */
struct CbufParams
{
    std::uint32_t entries = 16384;  //!< capacity in 16-byte records
    double drainThreshold = 0.75;   //!< raise interrupt at this occupancy
};

/** CBUF statistics. */
struct CbufStats
{
    std::uint64_t appends = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t thresholdEvents = 0;
    std::uint64_t fullEvents = 0; //!< backpressure (synchronous drain)
    std::uint64_t droppedRecords = 0; //!< records lost under fault injection
    std::uint64_t gapRecords = 0;     //!< gap markers synthesized on drain
};

/** One per-core CBUF. */
class Cbuf
{
  public:
    /**
     * @param base byte address of the buffer in guest physical memory
     * @param bus optional bus to charge append bandwidth to
     */
    Cbuf(const CbufParams &params, Memory &mem, Addr base, Bus *bus);

    /** Events reported by append(). */
    enum class Signal { None, Threshold, Full };

    /**
     * Hardware append of one record.
     * @return Threshold when this append crossed the drain threshold,
     *         Full when the buffer is now completely full.
     */
    Signal append(const ChunkRecord &rec, Tick now);

    /** Software drain: read and consume all pending records. */
    std::vector<ChunkRecord> drain();

    /**
     * Record that @p rec was lost because the buffer was full and the
     * backpressure signal did not reach software (fault injection).
     * The loss is advertised to the drain path as one explicit gap
     * marker per thread: a ChunkReason::Gap record carrying the first
     * lost record's timestamp and the count of records lost, emitted
     * with the next drain() batch.
     */
    void noteDropped(const ChunkRecord &rec);

    /** Records currently pending. */
    std::uint32_t occupancy() const
    { return static_cast<std::uint32_t>(head - tail); }

    bool full() const { return occupancy() == params.entries; }

    /** Size of the memory region backing this buffer, in bytes. */
    std::uint32_t regionBytes() const
    { return params.entries * ChunkRecord::cbufBytes; }

    Addr base() const { return _base; }
    const CbufStats &stats() const { return _stats; }

  private:
    Addr slotAddr(std::uint64_t index) const;

    CbufParams params;
    Memory &mem;
    Addr _base;
    Bus *bus;
    std::uint64_t head = 0; //!< next slot the hardware writes
    std::uint64_t tail = 0; //!< next slot the software reads
    CbufStats _stats;

    /** Per-thread loss accumulator for the next gap marker. */
    struct PendingGap
    {
        ChunkRecord first;      //!< first record lost in this window
        std::uint64_t count = 0;
    };
    std::map<Tid, PendingGap> pendingGaps;
};

} // namespace qr

#endif // QR_RNR_CBUF_HH
