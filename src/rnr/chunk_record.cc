#include "rnr/chunk_record.hh"

#include "sim/logging.hh"

namespace qr
{

const char *
chunkReasonName(ChunkReason r)
{
    switch (r) {
      case ChunkReason::ConflictRaw: return "conflict-raw";
      case ChunkReason::ConflictWar: return "conflict-war";
      case ChunkReason::ConflictWaw: return "conflict-waw";
      case ChunkReason::SizeOverflow: return "size-overflow";
      case ChunkReason::FilterFull: return "filter-full";
      case ChunkReason::Syscall: return "syscall";
      case ChunkReason::ContextSwitch: return "ctx-switch";
      case ChunkReason::Drain: return "drain";
      case ChunkReason::Gap: return "gap";
      case ChunkReason::Device: return "device";
      case ChunkReason::NumReasons: break;
    }
    return "?";
}

bool
isConflictReason(ChunkReason r)
{
    return r == ChunkReason::ConflictRaw || r == ChunkReason::ConflictWar ||
           r == ChunkReason::ConflictWaw;
}

void
ChunkRecord::packWords(Word out[4]) const
{
    out[0] = size;
    out[1] = (static_cast<Word>(tid & 0xff)) |
             (static_cast<Word>(reason) << 8) |
             (static_cast<Word>(rsw) << 16);
    out[2] = static_cast<Word>(ts);
    out[3] = static_cast<Word>(ts >> 32);
}

ChunkRecord
ChunkRecord::unpackWords(const Word in[4])
{
    ChunkRecord rec;
    rec.size = in[0];
    rec.tid = static_cast<Tid>(in[1] & 0xff);
    rec.reason = static_cast<ChunkReason>((in[1] >> 8) & 0xff);
    rec.rsw = static_cast<std::uint16_t>(in[1] >> 16);
    rec.ts = static_cast<Timestamp>(in[2]) |
             (static_cast<Timestamp>(in[3]) << 32);
    qr_assert(static_cast<int>(rec.reason) < numChunkReasons,
              "corrupt chunk record: bad reason");
    return rec;
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    return getVarintFrom(in, pos);
}

void
packCompact(const ChunkRecord &rec, Timestamp prev_ts,
            std::vector<std::uint8_t> &out)
{
    qr_assert(rec.ts >= prev_ts, "per-thread timestamps must be monotonic");
    // Header byte: reason in the low nibble, rsw-present flag in bit 4.
    std::uint8_t hdr = static_cast<std::uint8_t>(rec.reason) |
                       (rec.rsw ? 0x10 : 0);
    out.push_back(hdr);
    putVarint(out, rec.size);
    putVarint(out, rec.ts - prev_ts);
    if (rec.rsw)
        putVarint(out, rec.rsw);
}

ChunkRecord
unpackCompact(const std::vector<std::uint8_t> &in, std::size_t &pos,
              Timestamp prev_ts, Tid tid)
{
    return unpackCompactFrom(in, pos, prev_ts, tid);
}

} // namespace qr
