/**
 * @file
 * The per-core QuickRec recording unit: the MRR chunking hardware.
 *
 * Responsibilities:
 *  - accumulate the running chunk: retired-instruction count plus Bloom
 *    read/write sets over cache-line addresses;
 *  - observe every remote coherence transaction: check it against the
 *    filters (terminating the chunk on a hit, with the pre-merge clock)
 *    and merge the Lamport clock with the request timestamp;
 *  - at termination, capture the store-buffer occupancy as the RSW
 *    (reordered store window, per CoreRacer) and append a record to the
 *    per-core CBUF;
 *  - expose the MSR-style control surface Capo3 drives: enable/disable
 *    with an R-XID, and clock save/restore across context switches.
 *
 * Ordering soundness (proved in src/rnr/README.md): chunk timestamps
 * order every inter-thread dependence because (a) a conflict hit
 * terminates the snooped chunk before the clock merge, so the
 * requester's eventually-logged chunk is strictly later, and (b) clocks
 * merge on *every* bus transaction, so communication with an address
 * whose filter entry was already flash-cleared still raises the
 * consumer's clock above the producer's logged timestamps.
 *
 * Hot-path engineering (see src/rnr/README.md, "Hot-path engineering"):
 * onRetire/onLoad/onStoreDrain run for every retired instruction and
 * access, so they are inline and keep per-access work to a line mask,
 * one compare against the last-line coalescing cache, and (on a miss)
 * one Bloom insert. Coalescing is log-identical to the naive path:
 * re-inserting a line already in the set changes no filter bit, and the
 * skipped insert still counts toward fill() via countDuplicate(), so
 * conflict detection, FilterFull termination and every logged chunk are
 * bit-for-bit unchanged (tests/test_record_differential.cc proves this
 * per suite workload against the coalesce=false reference path).
 */

#ifndef QR_RNR_RNR_UNIT_HH
#define QR_RNR_RNR_UNIT_HH

#include <cstdint>
#include <unordered_set>

#include "mem/bus.hh"
#include "rnr/bloom.hh"
#include "rnr/cbuf.hh"
#include "rnr/chunk_record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qr
{

class FaultPlan;

/** Recipient of hardware recording events (implemented by Capo3's RSM). */
class ChunkSink
{
  public:
    virtual ~ChunkSink() = default;

    /**
     * A chunk record was appended to a CBUF. @p shadow is the chunk's
     * exact address sets when the unit runs with exactShadow (null
     * otherwise); it is only valid for the duration of the call.
     */
    virtual void onChunkLogged(const ChunkRecord &rec, CoreId core,
                               const ChunkShadow *shadow) = 0;

    /**
     * The CBUF crossed its drain threshold (@p full false: interrupt)
     * or filled completely (@p full true: backpressure; the handler
     * must drain before the next append).
     */
    virtual void onCbufSignal(CoreId core, bool full, Tick now) = 0;
};

/**
 * Provider of the owning core's store-buffer occupancy, sampled at
 * chunk termination as the RSW. A direct interface pointer keeps the
 * terminate path free of std::function dispatch overhead.
 */
class SbOccupancySource
{
  public:
    virtual ~SbOccupancySource() = default;

    /** Retired-but-not-globally-visible stores right now. */
    virtual std::uint32_t sbOccupancy() const = 0;
};

/** Configuration of one recording unit. */
struct RnrParams
{
    BloomParams bloom;
    std::uint32_t maxChunkInstrs = 65536; //!< chunk-size counter width
    std::uint32_t lineBytes = 64;         //!< conflict granularity
    /**
     * Terminate when a filter has absorbed this many insertions
     * (false-positive safety valve); 0 disables.
     */
    std::uint32_t filterMaxFill = 0;
    /**
     * Keep exact shadow address sets to classify conflict terminations
     * as true or false positives (evaluation aid; not hardware).
     */
    bool exactShadow = false;
    /**
     * Last-line coalescing caches (hardware line-granularity filter
     * front-end). Log output is bit-identical either way; false selects
     * the reference path for differential testing.
     */
    bool coalesce = true;
};

/** Per-unit statistics. */
struct RnrStats
{
    std::uint64_t chunks = 0;
    std::uint64_t reasonCounts[numChunkReasons] = {};
    Histogram chunkSizes;
    Histogram rswValues; //!< sampled over all logged chunks
    std::uint64_t rswNonZero = 0;
    std::uint64_t loadsObserved = 0;
    std::uint64_t drainsObserved = 0;
    std::uint64_t remoteTxnsChecked = 0;
    std::uint64_t falseConflicts = 0; //!< only with exactShadow
    std::uint64_t emptyTerminations = 0; //!< suppressed empty chunks
    std::uint64_t coalescedLoads = 0;  //!< loads absorbed by the caches
    std::uint64_t coalescedDrains = 0; //!< drains absorbed by the caches
    std::uint64_t droppedChunks = 0; //!< records lost to injected faults
    std::uint64_t lostSignals = 0;   //!< drain signals lost to faults
};

/** The per-core recording unit. */
class RnrUnit : public BusObserver
{
  public:
    RnrUnit(CoreId core_id, const RnrParams &params, Cbuf &cbuf);

    // --- software control surface (MSR writes from Capo3) --------------
    /** Start recording the thread identified by @p tid (the R-XID). */
    void enable(Tid tid);

    /** Stop recording. Any open chunk must be terminated first. */
    void disable();

    bool enabled() const { return _enabled; }

    /** Current Lamport clock (saved into the recording context). */
    Timestamp clock() const { return _clock; }

    /**
     * Restore a thread's recording context: raise the clock to at least
     * @p floor so the next chunk is ordered after everything the thread
     * did on other cores.
     */
    void setClockFloor(Timestamp floor);

    /** Hook the owning core's store-buffer occupancy. */
    void setSbSource(const SbOccupancySource *s) { sbSource = s; }

    /** Attach the software stack. */
    void setSink(ChunkSink *s) { sink = s; }

    /**
     * Attach a fault plan (null: perfect hardware). With a plan, the
     * CbufDrop site models lost drain signals: the Full signal may be
     * suppressed, a later append against a still-full buffer re-raises
     * backpressure, and if the re-raise is also lost the record is
     * dropped with a gap marker advertised on the next drain.
     */
    void setFaultPlan(FaultPlan *p) { faults = p; }

    // --- core-side event hooks ------------------------------------------
    /** One user instruction retired. May terminate on size overflow. */
    void
    onRetire(Tick now)
    {
        if (!_enabled)
            return;
        if (++chunkSize >= params.maxChunkInstrs)
            terminate(ChunkReason::SizeOverflow, now);
    }

    /** A load retired to @p addr (any byte address). */
    void
    onLoad(Addr addr, Tick now)
    {
        if (!_enabled)
            return;
        _stats.loadsObserved++;
        Addr line = addr & lineMask;
        if (params.coalesce && line == lastReadLine) {
            // Same line as the previous load of this chunk: the filter
            // bits cannot change; only the insertion count advances.
            _stats.coalescedLoads++;
            rset.countDuplicate();
        } else {
            lastReadLine = line;
            rset.insert(line);
            filterActivity = true;
            if (params.exactShadow) [[unlikely]]
                shadowReads.insert(line);
        }
        if (params.filterMaxFill) [[unlikely]] {
            if (rset.fill() >= params.filterMaxFill)
                terminate(ChunkReason::FilterFull, now);
        }
    }

    /**
     * A store became globally visible (store-buffer drain, atomic, or
     * kernel copy-to-user attributed to this thread). Inserted into the
     * *current* chunk's write set even when the store retired in an
     * earlier chunk -- the CoreRacer rule that makes RSW replayable.
     */
    void
    onStoreDrain(Addr addr, Tick now)
    {
        if (!_enabled)
            return;
        _stats.drainsObserved++;
        Addr line = addr & lineMask;
        if (params.coalesce && line == lastWriteLine) {
            _stats.coalescedDrains++;
            wset.countDuplicate();
        } else {
            lastWriteLine = line;
            wset.insert(line);
            filterActivity = true;
            if (params.exactShadow) [[unlikely]]
                shadowWrites.insert(line);
        }
        if (params.filterMaxFill) [[unlikely]] {
            if (wset.fill() >= params.filterMaxFill)
                terminate(ChunkReason::FilterFull, now);
        }
    }

    /** Merge the clock with the response of a bus transaction we issued. */
    void mergeResponse(Timestamp max_observer_ts);

    /** Explicit termination from the software stack (trap/switch/drain). */
    void terminate(ChunkReason reason, Tick now);

    // --- bus observer ----------------------------------------------------
    Timestamp observeRemote(const BusTxn &txn, Tick now) override;
    CoreId observerId() const override { return coreId; }

    /** Instructions accumulated in the open chunk. */
    std::uint32_t openChunkSize() const { return chunkSize; }

    const RnrStats &stats() const { return _stats; }

  private:
    /** Line address of @p addr. The mask is widened to Addr before the
     *  complement so the upper address bits survive if Addr outgrows
     *  the 32-bit lineBytes parameter. */
    Addr lineOf(Addr addr) const { return addr & lineMask; }
    void clearChunkState();

    /** No line has this value: real lines are 64-byte aligned. */
    static constexpr Addr noLine = ~static_cast<Addr>(0);

    CoreId coreId;
    RnrParams params;
    Addr lineMask;
    Cbuf &cbuf;
    BloomFilter rset;
    BloomFilter wset;
    bool _enabled = false;
    Tid tid = invalidTid;
    std::uint32_t chunkSize = 0;
    bool filterActivity = false;
    Addr lastReadLine = noLine;  //!< coalescing cache over rset
    Addr lastWriteLine = noLine; //!< coalescing cache over wset
    Timestamp _clock = 0;
    /** Cycle the open chunk started at (event tracing only; never
     *  affects the logged records). */
    Tick chunkStart = 0;
    const SbOccupancySource *sbSource = nullptr;
    ChunkSink *sink = nullptr;
    FaultPlan *faults = nullptr;
    std::unordered_set<Addr> shadowReads;
    std::unordered_set<Addr> shadowWrites;
    RnrStats _stats;
};

} // namespace qr

#endif // QR_RNR_RNR_UNIT_HH
