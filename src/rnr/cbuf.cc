#include "rnr/cbuf.hh"

#include "mem/bus.hh"
#include "sim/logging.hh"

namespace qr
{

Cbuf::Cbuf(const CbufParams &params_, Memory &mem_, Addr base, Bus *bus_)
    : params(params_), mem(mem_), _base(base), bus(bus_)
{
    qr_assert(params.entries >= 4, "CBUF too small");
    qr_assert(base % 4 == 0, "CBUF base must be word aligned");
    qr_assert(params.drainThreshold > 0.0 && params.drainThreshold <= 1.0,
              "CBUF drain threshold must be in (0,1]");
}

Addr
Cbuf::slotAddr(std::uint64_t index) const
{
    return _base + static_cast<Addr>((index % params.entries) *
                                     ChunkRecord::cbufBytes);
}

Cbuf::Signal
Cbuf::append(const ChunkRecord &rec, Tick now)
{
    qr_assert(!full(), "CBUF overflow: backpressure was not honored");

    Word words[4];
    rec.packWords(words);
    Addr slot = slotAddr(head);
    for (int i = 0; i < 4; ++i)
        mem.write(slot + static_cast<Addr>(i) * 4, words[i]);
    head++;

    _stats.appends++;
    _stats.bytesWritten += ChunkRecord::cbufBytes;
    if (bus)
        bus->occupyForLog(now, 1);

    std::uint32_t occ = occupancy();
    if (occ == params.entries) {
        _stats.fullEvents++;
        return Signal::Full;
    }
    auto thresh = static_cast<std::uint32_t>(params.drainThreshold *
                                             params.entries);
    if (occ == thresh) {
        _stats.thresholdEvents++;
        return Signal::Threshold;
    }
    return Signal::None;
}

std::vector<ChunkRecord>
Cbuf::drain()
{
    std::vector<ChunkRecord> out;
    out.reserve(occupancy());
    while (tail != head) {
        Word words[4];
        Addr slot = slotAddr(tail);
        for (int i = 0; i < 4; ++i)
            words[i] = mem.read(slot + static_cast<Addr>(i) * 4);
        out.push_back(ChunkRecord::unpackWords(words));
        tail++;
    }
    return out;
}

} // namespace qr
