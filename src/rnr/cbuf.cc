#include "rnr/cbuf.hh"

#include "mem/bus.hh"
#include "sim/logging.hh"

namespace qr
{

Cbuf::Cbuf(const CbufParams &params_, Memory &mem_, Addr base, Bus *bus_)
    : params(params_), mem(mem_), _base(base), bus(bus_)
{
    qr_assert(params.entries >= 4, "CBUF too small");
    qr_assert(base % 4 == 0, "CBUF base must be word aligned");
    qr_assert(params.drainThreshold > 0.0 && params.drainThreshold <= 1.0,
              "CBUF drain threshold must be in (0,1]");
}

Addr
Cbuf::slotAddr(std::uint64_t index) const
{
    return _base + static_cast<Addr>((index % params.entries) *
                                     ChunkRecord::cbufBytes);
}

Cbuf::Signal
Cbuf::append(const ChunkRecord &rec, Tick now)
{
    qr_assert(!full(), "CBUF overflow: backpressure was not honored");

    Word words[4];
    rec.packWords(words);
    Addr slot = slotAddr(head);
    for (int i = 0; i < 4; ++i)
        mem.write(slot + static_cast<Addr>(i) * 4, words[i]);
    head++;

    _stats.appends++;
    _stats.bytesWritten += ChunkRecord::cbufBytes;
    if (bus)
        bus->occupyForLog(now, 1);

    std::uint32_t occ = occupancy();
    if (occ == params.entries) {
        _stats.fullEvents++;
        return Signal::Full;
    }
    auto thresh = static_cast<std::uint32_t>(params.drainThreshold *
                                             params.entries);
    if (occ == thresh) {
        _stats.thresholdEvents++;
        return Signal::Threshold;
    }
    return Signal::None;
}

std::vector<ChunkRecord>
Cbuf::drain()
{
    std::vector<ChunkRecord> out;
    out.reserve(occupancy());
    while (tail != head) {
        Word words[4];
        Addr slot = slotAddr(tail);
        for (int i = 0; i < 4; ++i)
            words[i] = mem.read(slot + static_cast<Addr>(i) * 4);
        out.push_back(ChunkRecord::unpackWords(words));
        tail++;
    }
    // Surface any records lost since the last drain as explicit gap
    // markers so the log itself witnesses the loss. The marker takes
    // the first lost record's (unique) timestamp, keeping per-thread
    // monotonicity, and its size field carries the loss count.
    for (const auto &[tid, gap] : pendingGaps) {
        ChunkRecord marker;
        marker.ts = gap.first.ts;
        marker.tid = tid;
        marker.size = static_cast<std::uint32_t>(gap.count);
        marker.rsw = 0;
        marker.reason = ChunkReason::Gap;
        out.push_back(marker);
        _stats.gapRecords++;
    }
    pendingGaps.clear();
    return out;
}

void
Cbuf::noteDropped(const ChunkRecord &rec)
{
    qr_assert(full(), "CBUF drop without backpressure");
    PendingGap &gap = pendingGaps[rec.tid];
    if (gap.count == 0)
        gap.first = rec;
    gap.count++;
    _stats.droppedRecords++;
}

} // namespace qr
