#include "mem/cache.hh"

#include "sim/logging.hh"

namespace qr
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

L1Cache::L1Cache(CoreId core_id, const CacheParams &params, Bus &bus_)
    : coreId(core_id), _params(params), bus(bus_),
      lineMask(params.lineBytes - 1),
      lines(static_cast<std::size_t>(params.sets) * params.ways)
{
    qr_assert(isPow2(params.sets) && isPow2(params.lineBytes),
              "cache geometry must be powers of two");
    qr_assert(params.ways >= 1, "cache needs at least one way");
}

std::uint32_t
L1Cache::setIndex(Addr addr) const
{
    return (addr / _params.lineBytes) & (_params.sets - 1);
}

int
L1Cache::findWay(Addr addr) const
{
    Addr tag = lineAlign(addr);
    std::uint32_t base = setIndex(addr) * _params.ways;
    for (std::uint32_t w = 0; w < _params.ways; ++w) {
        const Line &l = lines[base + w];
        if (l.state != CState::Invalid && l.tag == tag)
            return static_cast<int>(base + w);
    }
    return -1;
}

int
L1Cache::allocWay(Addr addr, Tick now)
{
    std::uint32_t base = setIndex(addr) * _params.ways;
    int victim = static_cast<int>(base);
    Tick oldest = ~Tick(0);
    for (std::uint32_t w = 0; w < _params.ways; ++w) {
        Line &l = lines[base + w];
        if (l.state == CState::Invalid)
            return static_cast<int>(base + w);
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = static_cast<int>(base + w);
        }
    }
    if (lines[static_cast<std::size_t>(victim)].state == CState::Modified)
        _stats.writebacks++;
    lines[static_cast<std::size_t>(victim)].state = CState::Invalid;
    (void)now;
    return victim;
}

CacheAccess
L1Cache::read(Addr addr, Timestamp req_ts, Tick now)
{
    CacheAccess acc;
    int way = findWay(addr);
    if (way >= 0) {
        lines[static_cast<std::size_t>(way)].lastUse = now;
        acc.latency = _params.hitLatency;
        _stats.readHits++;
        return acc;
    }

    _stats.readMisses++;
    acc.miss = true;
    acc.usedBus = true;
    int victim = allocWay(addr, now);
    BusTxn txn{BusOp::BusRd, lineAlign(addr), coreId, req_ts};
    BusResult res = bus.transact(txn, now);
    acc.latency = _params.hitLatency + res.latency;
    acc.observerTs = res.maxObserverTs;

    Line &l = lines[static_cast<std::size_t>(victim)];
    l.tag = lineAlign(addr);
    l.state = (res.sharedInOthers || res.dirtyInOthers) ? CState::Shared
                                                        : CState::Exclusive;
    l.lastUse = now;
    return acc;
}

CacheAccess
L1Cache::write(Addr addr, Timestamp req_ts, Tick now)
{
    CacheAccess acc;
    int way = findWay(addr);
    if (way >= 0) {
        Line &l = lines[static_cast<std::size_t>(way)];
        l.lastUse = now;
        switch (l.state) {
          case CState::Modified:
            acc.latency = _params.hitLatency;
            _stats.writeHits++;
            return acc;
          case CState::Exclusive:
            // Silent E->M upgrade: no other cache can hold the line.
            l.state = CState::Modified;
            acc.latency = _params.hitLatency;
            _stats.writeHits++;
            return acc;
          case CState::Shared: {
            // Invalidate remote sharers.
            _stats.upgrades++;
            acc.usedBus = true;
            BusTxn txn{BusOp::BusUpgr, lineAlign(addr), coreId, req_ts};
            BusResult res = bus.transact(txn, now);
            acc.latency = _params.hitLatency + res.latency;
            acc.observerTs = res.maxObserverTs;
            l.state = CState::Modified;
            return acc;
          }
          case CState::Invalid:
            panic("valid way in Invalid state");
        }
    }

    _stats.writeMisses++;
    acc.miss = true;
    acc.usedBus = true;
    int victim = allocWay(addr, now);
    BusTxn txn{BusOp::BusRdX, lineAlign(addr), coreId, req_ts};
    BusResult res = bus.transact(txn, now);
    acc.latency = _params.hitLatency + res.latency;
    acc.observerTs = res.maxObserverTs;

    Line &l = lines[static_cast<std::size_t>(victim)];
    l.tag = lineAlign(addr);
    l.state = CState::Modified;
    l.lastUse = now;
    return acc;
}

CState
L1Cache::lineState(Addr addr) const
{
    int way = findWay(addr);
    return way < 0 ? CState::Invalid
                   : lines[static_cast<std::size_t>(way)].state;
}

SnoopReply
L1Cache::snoop(const BusTxn &txn)
{
    SnoopReply reply;
    int way = findWay(txn.lineAddr);
    if (way < 0)
        return reply;

    Line &l = lines[static_cast<std::size_t>(way)];
    reply.hadLine = true;
    reply.hadDirty = l.state == CState::Modified;

    switch (txn.op) {
      case BusOp::BusRd:
        // Supply/demote: M and E drop to S (an M line's data is already
        // in functional memory; the dirty reply models cache-to-cache
        // transfer latency).
        l.state = CState::Shared;
        break;
      case BusOp::BusRdX:
      case BusOp::BusUpgr:
        l.state = CState::Invalid;
        _stats.invalidations++;
        break;
    }
    return reply;
}

} // namespace qr
