/**
 * @file
 * Snooping coherence bus with Lamport-clock piggybacking.
 *
 * This is the fabric the QuickRec recording hardware taps. Two kinds of
 * agents attach:
 *
 *  - SnoopClient: the L1 caches, which update MESI state in response to
 *    remote transactions and report whether they held the line.
 *  - BusObserver: the per-core RnR units. Every transaction is presented
 *    to every observer except the requester's own; the observer merges
 *    its Lamport clock with the request timestamp (after performing its
 *    conflict check against the pre-merge clock) and returns its clock,
 *    which the requester merges in turn.
 *
 * The merge-on-every-transaction rule -- not just on filter hits -- is
 * what makes chunk ordering sound after Bloom filters are flash-cleared
 * at chunk boundaries: any later communication through a line raises the
 * reader's clock above the writer's already-logged chunk timestamps.
 */

#ifndef QR_MEM_BUS_HH
#define QR_MEM_BUS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace qr
{

/** Coherence transaction types on the snooping bus. */
enum class BusOp : std::uint8_t
{
    BusRd,   //!< read miss: fetch a line for sharing
    BusRdX,  //!< write miss: fetch a line for exclusive ownership
    BusUpgr, //!< write hit in Shared: invalidate other sharers
};

/** @return mnemonic for a bus operation. */
const char *busOpName(BusOp op);

/** One coherence transaction as broadcast to snoopers and observers. */
struct BusTxn
{
    BusOp op;
    Addr lineAddr;      //!< line-aligned byte address
    CoreId requester;
    Timestamp reqTs;    //!< requester's Lamport clock at issue
};

/** What a snooped cache reports back about a transaction. */
struct SnoopReply
{
    bool hadLine = false;  //!< line was valid here (any of M/E/S)
    bool hadDirty = false; //!< line was Modified here (cache-to-cache)
};

/** Interface for coherence participants (L1 caches). */
class SnoopClient
{
  public:
    virtual ~SnoopClient() = default;

    /** Process a remote transaction; update MESI state; report. */
    virtual SnoopReply snoop(const BusTxn &txn) = 0;

    /** Core this cache belongs to (the bus skips the requester). */
    virtual CoreId snoopId() const = 0;
};

/** Interface for transaction observers (the per-core RnR units). */
class BusObserver
{
  public:
    virtual ~BusObserver() = default;

    /**
     * Observe a remote transaction: perform the chunk conflict check
     * against the pre-merge clock, then merge with txn.reqTs.
     * @return this observer's (post-merge) Lamport clock.
     */
    virtual Timestamp observeRemote(const BusTxn &txn, Tick now) = 0;

    /** Core this observer belongs to. */
    virtual CoreId observerId() const = 0;
};

/** Result of a bus transaction, as seen by the requester. */
struct BusResult
{
    Tick latency = 0;        //!< total cycles incl. queueing + data return
    bool sharedInOthers = false;
    bool dirtyInOthers = false;
    /** Max observer clock returned; requester merges its clock with it. */
    Timestamp maxObserverTs = 0;
};

/** Timing parameters of the bus and the levels behind it. */
struct BusParams
{
    Tick occupancy = 4;     //!< cycles the bus is busy per transaction
    Tick memLatency = 30;   //!< line fill from DRAM
    Tick cacheToCache = 12; //!< line supplied by a remote M owner
};

/** Aggregate bus statistics. */
struct BusStats
{
    std::uint64_t txns[3] = {0, 0, 0}; //!< indexed by BusOp
    std::uint64_t queueCycles = 0;     //!< total cycles spent waiting
    std::uint64_t cbufWrites = 0;      //!< log-buffer append transactions
};

/**
 * The snooping bus. Transactions complete atomically within a call;
 * timing is modeled by a busy-until pointer that creates queueing delay
 * under contention.
 */
class Bus
{
  public:
    explicit Bus(const BusParams &params);

    /** Attach a coherence participant. */
    void attachSnooper(SnoopClient *client);

    /** Attach an RnR observer. */
    void attachObserver(BusObserver *observer);

    /**
     * Broadcast a transaction; snoop caches; notify observers. Either
     * broadcast loop is skipped when no remote agent is attached (zero
     * agents, or only the requester itself) -- in particular, machines
     * with recording disabled attach no observers, removing the
     * observer dispatch from the baseline simulate path.
     */
    BusResult transact(const BusTxn &txn, Tick now);

    /**
     * Occupy the bus for a non-coherent transfer (hardware log-buffer
     * append). Charges bandwidth without snooping.
     * @return queueing delay suffered.
     */
    Tick occupyForLog(Tick now, Tick cycles);

    const BusStats &stats() const { return _stats; }
    const BusParams &params() const { return _params; }

  private:
    BusParams _params;
    std::vector<SnoopClient *> snoopers;
    std::vector<BusObserver *> observers;
    Tick busyUntil = 0;
    BusStats _stats;
};

} // namespace qr

#endif // QR_MEM_BUS_HH
