/**
 * @file
 * Flat functional guest memory.
 *
 * QuickRec's simulator splits value storage from timing/coherence: all
 * data lives here and is updated at global-visibility time (store-buffer
 * drain), while the caches and bus model coherence state, latency, and --
 * crucially for the recorder -- the coherence transactions that the RnR
 * hardware snoops. This mirrors a functional-first simulator organization
 * (cf. gem5 atomic memory) and keeps TSO visibility exact: the only
 * reordering TSO permits is the store buffer, which is modeled in the CPU.
 */

#ifndef QR_MEM_MEMORY_HH
#define QR_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace qr
{

/** Byte-addressed guest physical memory with word-granularity access. */
class Memory
{
  public:
    /** Construct zero-filled memory of @p bytes (rounded up to words). */
    explicit Memory(std::uint64_t bytes);

    /** Read the aligned word at @p addr. */
    Word read(Addr addr) const;

    /** Write the aligned word at @p addr. */
    void write(Addr addr, Word value);

    /** Size in bytes. */
    std::uint64_t size() const { return words.size() * 4ull; }

    /**
     * FNV-1a digest of all words in [0, limit). The machine passes a
     * limit that excludes the hardware CBUF regions so that the log
     * itself does not perturb record-vs-replay memory comparison.
     */
    std::uint64_t digest(Addr limit) const;

  private:
    std::vector<Word> words;
};

} // namespace qr

#endif // QR_MEM_MEMORY_HH
