/**
 * @file
 * Private per-core L1 cache with MESI coherence over the snooping bus.
 *
 * The cache tracks tags and MESI state only; data lives in the
 * functional Memory (see memory.hh). Its jobs are (a) producing the
 * correct stream of coherence transactions -- which the recording
 * hardware observes for conflict detection and timestamp merging -- and
 * (b) modeling access latency.
 */

#ifndef QR_MEM_CACHE_HH
#define QR_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/bus.hh"
#include "sim/types.hh"

namespace qr
{

/** MESI line states. */
enum class CState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry and latency of an L1 cache. */
struct CacheParams
{
    std::uint32_t sets = 128;     //!< 128 sets x 4 ways x 64 B = 32 KB
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 64;
    Tick hitLatency = 0;          //!< extra cycles beyond the base cycle
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t upgrades = 0;     //!< S->M transitions via BusUpgr
    std::uint64_t writebacks = 0;   //!< dirty evictions
    std::uint64_t invalidations = 0; //!< lines lost to remote writes
};

/** Outcome of a CPU-side cache access. */
struct CacheAccess
{
    Tick latency = 0;       //!< cycles beyond the instruction base cost
    bool miss = false;
    bool usedBus = false;
    /** Valid iff usedBus; max observer clock for the Lamport merge. */
    Timestamp observerTs = 0;
};

/**
 * One private L1. The owning core calls read()/write(); the bus calls
 * snoop() for remote transactions.
 */
class L1Cache : public SnoopClient
{
  public:
    L1Cache(CoreId core_id, const CacheParams &params, Bus &bus);

    /**
     * CPU-side load of the line containing @p addr.
     * @param req_ts requester Lamport clock to piggyback on a miss.
     */
    CacheAccess read(Addr addr, Timestamp req_ts, Tick now);

    /**
     * CPU-side store (at store-buffer drain or atomic execution) to the
     * line containing @p addr. Acquires ownership (M) of the line.
     */
    CacheAccess write(Addr addr, Timestamp req_ts, Tick now);

    /** @return current MESI state of the line containing @p addr. */
    CState lineState(Addr addr) const;

    SnoopReply snoop(const BusTxn &txn) override;
    CoreId snoopId() const override { return coreId; }

    const CacheStats &stats() const { return _stats; }
    const CacheParams &params() const { return _params; }

  private:
    struct Line
    {
        Addr tag = 0;
        CState state = CState::Invalid;
        Tick lastUse = 0;
    };

    Addr lineAlign(Addr addr) const { return addr & ~(lineMask); }
    std::uint32_t setIndex(Addr addr) const;

    /** Find the way holding @p addr in its set, or -1. */
    int findWay(Addr addr) const;

    /** Choose an LRU victim way in the set of @p addr; write back if M. */
    int allocWay(Addr addr, Tick now);

    CoreId coreId;
    CacheParams _params;
    Bus &bus;
    Addr lineMask;
    std::vector<Line> lines; //!< sets * ways, set-major
    CacheStats _stats;
};

} // namespace qr

#endif // QR_MEM_CACHE_HH
