#include "mem/bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace qr
{

const char *
busOpName(BusOp op)
{
    switch (op) {
      case BusOp::BusRd: return "BusRd";
      case BusOp::BusRdX: return "BusRdX";
      case BusOp::BusUpgr: return "BusUpgr";
    }
    return "?";
}

Bus::Bus(const BusParams &params) : _params(params)
{
}

void
Bus::attachSnooper(SnoopClient *client)
{
    snoopers.push_back(client);
}

void
Bus::attachObserver(BusObserver *observer)
{
    observers.push_back(observer);
}

BusResult
Bus::transact(const BusTxn &txn, Tick now)
{
    BusResult res;

    // Queueing under contention. The stat update only touches memory
    // when a transaction actually queued.
    Tick start = now;
    if (busyUntil > now) {
        start = busyUntil;
        res.latency = start - now;
        _stats.queueCycles += res.latency;
    }
    busyUntil = start + _params.occupancy;
    res.latency += _params.occupancy;
    _stats.txns[static_cast<int>(txn.op)]++;

    // Broadcast loops are skipped outright when no *remote* agent can
    // respond: with zero agents, or a single agent that is the
    // requester itself, the loop body would never run. Baseline
    // (non-recording) machines attach no observers at all, so the
    // observer broadcast disappears from the simulate path entirely.
    const std::size_t ns = snoopers.size();
    if (ns > 1 || (ns == 1 && snoopers[0]->snoopId() != txn.requester)) {
        // Snoop every other cache.
        for (SnoopClient *c : snoopers) {
            if (c->snoopId() == txn.requester)
                continue;
            SnoopReply r = c->snoop(txn);
            res.sharedInOthers |= r.hadLine;
            res.dirtyInOthers |= r.hadDirty;
        }
    }

    const std::size_t no = observers.size();
    if (no > 1 || (no == 1 && observers[0]->observerId() != txn.requester)) {
        // Notify every other observer; collect their clocks for the
        // requester-side Lamport merge.
        for (BusObserver *o : observers) {
            if (o->observerId() == txn.requester)
                continue;
            res.maxObserverTs = std::max(res.maxObserverTs,
                                         o->observeRemote(txn, now));
        }
    }

    // Data return latency for fills.
    if (txn.op != BusOp::BusUpgr) {
        res.latency += res.dirtyInOthers ? _params.cacheToCache
                                         : _params.memLatency;
    }
    return res;
}

Tick
Bus::occupyForLog(Tick now, Tick cycles)
{
    Tick start = std::max(now, busyUntil);
    Tick wait = start - now;
    busyUntil = start + cycles;
    _stats.cbufWrites++;
    _stats.queueCycles += wait;
    return wait;
}

} // namespace qr
