#include "mem/memory.hh"

#include "sim/logging.hh"

namespace qr
{

Memory::Memory(std::uint64_t bytes) : words((bytes + 3) / 4, 0)
{
    qr_assert(bytes > 0, "memory size must be nonzero");
}

Word
Memory::read(Addr addr) const
{
    qr_assert(addr % 4 == 0, "misaligned read at 0x%x", addr);
    std::uint64_t idx = addr / 4;
    qr_assert(idx < words.size(), "read past end of memory: 0x%x", addr);
    return words[idx];
}

void
Memory::write(Addr addr, Word value)
{
    qr_assert(addr % 4 == 0, "misaligned write at 0x%x", addr);
    std::uint64_t idx = addr / 4;
    qr_assert(idx < words.size(), "write past end of memory: 0x%x", addr);
    words[idx] = value;
}

std::uint64_t
Memory::digest(Addr limit) const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    std::uint64_t n = std::min<std::uint64_t>(limit / 4, words.size());
    for (std::uint64_t i = 0; i < n; ++i) {
        h ^= words[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace qr
