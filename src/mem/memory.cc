#include "mem/memory.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace qr
{

Memory::Memory(std::uint64_t bytes) : words((bytes + 3) / 4, 0)
{
    qr_assert(bytes > 0, "memory size must be nonzero");
}

Word
Memory::read(Addr addr) const
{
    qr_assert(addr % 4 == 0, "misaligned read at 0x%x", addr);
    std::uint64_t idx = addr / 4;
    qr_assert(idx < words.size(), "read past end of memory: 0x%x", addr);
    return words[idx];
}

void
Memory::write(Addr addr, Word value)
{
    qr_assert(addr % 4 == 0, "misaligned write at 0x%x", addr);
    std::uint64_t idx = addr / 4;
    qr_assert(idx < words.size(), "write past end of memory: 0x%x", addr);
    words[idx] = value;
}

std::uint64_t
Memory::digest(Addr limit) const
{
    // Only digest *equality* is ever consumed (record-vs-replay
    // verification), so the hash is free to favor host speed as long
    // as it stays a pure function of [0, limit) contents. Two layers:
    //
    //  - All-zero 32-byte blocks are skipped after a cheap OR test.
    //    Guest memory is mostly untouched zeros, and the scan is then
    //    load-bandwidth-bound instead of multiply-latency-bound. The
    //    block index is folded into the hash of every *nonzero* block,
    //    so the positions of the skipped zero blocks remain encoded
    //    and the result depends only on memory contents (never on
    //    write history, which record and replay do not share).
    //  - Nonzero blocks feed four independent FNV-1a lanes over 64-bit
    //    packs, breaking the serial xor-multiply dependence chain of
    //    the scalar loop; mix64 folds the lanes so no input bit is
    //    confined to one lane's output bits.
    constexpr std::uint64_t prime = 0x100000001b3ull;
    const std::uint64_t n = std::min<std::uint64_t>(limit / 4,
                                                    words.size());
    const Word *w = words.data();
    std::uint64_t h0 = 0xcbf29ce484222325ull;
    std::uint64_t h1 = 0x9e3779b97f4a7c15ull;
    std::uint64_t h2 = 0x517cc1b727220a95ull;
    std::uint64_t h3 = 0x2545f4914f6cdd1dull;
    std::uint64_t i = 0;
    auto pack = [&](std::uint64_t j) {
        return w[j] | static_cast<std::uint64_t>(w[j + 1]) << 32;
    };
    for (; i + 8 <= n; i += 8) {
        const std::uint64_t p0 = pack(i), p1 = pack(i + 2);
        const std::uint64_t p2 = pack(i + 4), p3 = pack(i + 6);
        if ((p0 | p1 | p2 | p3) == 0)
            continue;
        h0 = (h0 ^ (p0 + i)) * prime;
        h1 = (h1 ^ p1) * prime;
        h2 = (h2 ^ p2) * prime;
        h3 = (h3 ^ p3) * prime;
    }
    for (; i < n; ++i)
        h0 = (h0 ^ (static_cast<std::uint64_t>(w[i]) + i)) * prime;
    return mix64(h0) ^ mix64(h1) ^ mix64(h2) ^ mix64(h3);
}

} // namespace qr
