#include "isa/assembler.hh"

#include "sim/logging.hh"

namespace qr
{

Assembler::Assembler(Addr data_base) : dataPtr(data_base)
{
    qr_assert(data_base % 4 == 0, "data base %u not word aligned", data_base);
}

void
Assembler::label(const std::string &name)
{
    auto [it, inserted] = labels.emplace(name, here());
    (void)it;
    qr_assert(inserted, "label '%s' defined twice", name.c_str());
}

Word
Assembler::labelAddr(const std::string &name) const
{
    auto it = labels.find(name);
    qr_assert(it != labels.end(), "label '%s' not defined", name.c_str());
    return it->second;
}

Addr
Assembler::word(Word init)
{
    Addr addr = dataPtr;
    dataPtr += 4;
    if (init != 0)
        dataInit.emplace_back(addr, init);
    return addr;
}

Addr
Assembler::block(std::uint32_t words, Word init)
{
    Addr addr = dataPtr;
    dataPtr += words * 4;
    if (init != 0)
        for (std::uint32_t i = 0; i < words; ++i)
            dataInit.emplace_back(addr + i * 4, init);
    return addr;
}

Addr
Assembler::alignedBlock(std::uint32_t words, Word init)
{
    dataPtr = (dataPtr + 63u) & ~63u;
    return block(words, init);
}

void
Assembler::poke(Addr byte_addr, Word value)
{
    qr_assert(byte_addr % 4 == 0 && byte_addr < dataPtr,
              "poke outside reserved data: 0x%x", byte_addr);
    dataInit.emplace_back(byte_addr, value);
}

void
Assembler::emitB(Opcode op, Reg rs1, Reg rs2, const std::string &target)
{
    fixups.emplace_back(here(), target);
    Reg rd = zero;
    if (op == Opcode::Jal) {
        // emitB encodes jumps as (rd=rs1) for j/call; rs fields unused.
        rd = rs1;
        rs1 = zero;
        rs2 = zero;
    }
    emit({op, rd, rs1, rs2, 0});
}

Program
Assembler::finish()
{
    qr_assert(!finished, "Assembler::finish called twice");
    finished = true;
    for (const auto &[idx, name] : fixups)
        code[idx].imm = labelAddr(name);

    Program prog;
    prog.code = std::move(code);
    prog.dataInit = std::move(dataInit);
    prog.dataEnd = (dataPtr + 63u) & ~63u;
    prog.labels = std::move(labels);
    return prog;
}

} // namespace qr
