/**
 * @file
 * QR-ISA disassembler: renders decoded instructions as assembly text.
 * Used by the log-inspection example and by test failure diagnostics.
 */

#ifndef QR_ISA_DISASSEMBLER_HH
#define QR_ISA_DISASSEMBLER_HH

#include <string>

#include "isa/instruction.hh"

namespace qr
{

/** Render a single instruction as assembly text. */
std::string disassemble(const Instruction &inst);

} // namespace qr

#endif // QR_ISA_DISASSEMBLER_HH
