/**
 * @file
 * Shared semantics of environment-free QR-ISA instructions.
 *
 * Both the recording core (cpu/core.cc) and the replayer execute pure
 * ALU/branch/jump instructions through this single implementation, so
 * record-side and replay-side semantics cannot drift apart. Memory
 * operations, syscalls and nondeterministic instructions are handled by
 * the caller (they differ fundamentally between record and replay).
 */

#ifndef QR_ISA_EXEC_HH
#define QR_ISA_EXEC_HH

#include "cpu/thread_context.hh"
#include "isa/instruction.hh"
#include "sim/types.hh"

namespace qr
{

/**
 * Execute @p in against @p ctx if it is a pure (environment-free)
 * instruction; set @p next_pc accordingly (defaults to pc + 1).
 *
 * @return true when the instruction was handled; false when it needs
 *         the environment (memory, kernel, or nondeterminism).
 */
inline bool
execPure(const Instruction &in, ThreadContext &ctx, Word &next_pc)
{
    next_pc = ctx.pc + 1;
    Word r1 = ctx.reg(in.rs1);
    Word r2 = ctx.reg(in.rs2);
    auto s1 = static_cast<SWord>(r1);
    auto s2 = static_cast<SWord>(r2);
    auto simm = static_cast<SWord>(in.imm);

    switch (in.op) {
      case Opcode::Nop:
      case Opcode::Pause:
        return true;
      case Opcode::Add: ctx.setReg(in.rd, r1 + r2); return true;
      case Opcode::Sub: ctx.setReg(in.rd, r1 - r2); return true;
      case Opcode::Mul: ctx.setReg(in.rd, r1 * r2); return true;
      case Opcode::Divu:
        ctx.setReg(in.rd, r2 ? r1 / r2 : ~Word(0));
        return true;
      case Opcode::Remu:
        ctx.setReg(in.rd, r2 ? r1 % r2 : r1);
        return true;
      case Opcode::And: ctx.setReg(in.rd, r1 & r2); return true;
      case Opcode::Or: ctx.setReg(in.rd, r1 | r2); return true;
      case Opcode::Xor: ctx.setReg(in.rd, r1 ^ r2); return true;
      case Opcode::Sll: ctx.setReg(in.rd, r1 << (r2 & 31)); return true;
      case Opcode::Srl: ctx.setReg(in.rd, r1 >> (r2 & 31)); return true;
      case Opcode::Sra:
        ctx.setReg(in.rd, static_cast<Word>(s1 >> (r2 & 31)));
        return true;
      case Opcode::Slt: ctx.setReg(in.rd, s1 < s2 ? 1 : 0); return true;
      case Opcode::Sltu: ctx.setReg(in.rd, r1 < r2 ? 1 : 0); return true;
      case Opcode::Addi: ctx.setReg(in.rd, r1 + in.imm); return true;
      case Opcode::Andi: ctx.setReg(in.rd, r1 & in.imm); return true;
      case Opcode::Ori: ctx.setReg(in.rd, r1 | in.imm); return true;
      case Opcode::Xori: ctx.setReg(in.rd, r1 ^ in.imm); return true;
      case Opcode::Slli:
        ctx.setReg(in.rd, r1 << (in.imm & 31));
        return true;
      case Opcode::Srli:
        ctx.setReg(in.rd, r1 >> (in.imm & 31));
        return true;
      case Opcode::Srai:
        ctx.setReg(in.rd, static_cast<Word>(s1 >> (in.imm & 31)));
        return true;
      case Opcode::Slti: ctx.setReg(in.rd, s1 < simm ? 1 : 0); return true;
      case Opcode::Sltiu:
        ctx.setReg(in.rd, r1 < in.imm ? 1 : 0);
        return true;
      case Opcode::Li: ctx.setReg(in.rd, in.imm); return true;

      case Opcode::Beq: if (r1 == r2) next_pc = in.imm; return true;
      case Opcode::Bne: if (r1 != r2) next_pc = in.imm; return true;
      case Opcode::Blt: if (s1 < s2) next_pc = in.imm; return true;
      case Opcode::Bge: if (s1 >= s2) next_pc = in.imm; return true;
      case Opcode::Bltu: if (r1 < r2) next_pc = in.imm; return true;
      case Opcode::Bgeu: if (r1 >= r2) next_pc = in.imm; return true;
      case Opcode::Jal:
        ctx.setReg(in.rd, ctx.pc + 1);
        next_pc = in.imm;
        return true;
      case Opcode::Jalr: {
        Word target = r1 + in.imm;
        ctx.setReg(in.rd, ctx.pc + 1);
        next_pc = target;
        return true;
      }
      default:
        return false;
    }
}

} // namespace qr

#endif // QR_ISA_EXEC_HH
