#include "isa/instruction.hh"

#include "sim/logging.hh"

namespace qr
{

std::uint64_t
Instruction::encode() const
{
    return (static_cast<std::uint64_t>(op) << 56) |
           (static_cast<std::uint64_t>(rd & 0x3f) << 50) |
           (static_cast<std::uint64_t>(rs1 & 0x3f) << 44) |
           (static_cast<std::uint64_t>(rs2 & 0x3f) << 38) |
           static_cast<std::uint64_t>(imm);
}

Instruction
Instruction::decode(std::uint64_t bits)
{
    Instruction inst;
    auto op = static_cast<std::uint8_t>(bits >> 56);
    qr_assert(op < static_cast<std::uint8_t>(Opcode::NumOpcodes),
              "bad opcode %u in encoded instruction", op);
    inst.op = static_cast<Opcode>(op);
    inst.rd = static_cast<std::uint8_t>((bits >> 50) & 0x3f);
    inst.rs1 = static_cast<std::uint8_t>((bits >> 44) & 0x3f);
    inst.rs2 = static_cast<std::uint8_t>((bits >> 38) & 0x3f);
    inst.imm = static_cast<std::uint32_t>(bits);
    return inst;
}

bool
isMemOp(Opcode op)
{
    switch (op) {
      case Opcode::Lw:
      case Opcode::Sw:
      case Opcode::Cas:
      case Opcode::FetchAdd:
      case Opcode::Swap:
        return true;
      default:
        return false;
    }
}

bool
isAtomic(Opcode op)
{
    switch (op) {
      case Opcode::Cas:
      case Opcode::FetchAdd:
      case Opcode::Swap:
        return true;
      default:
        return false;
    }
}

bool
isNondet(Opcode op)
{
    switch (op) {
      case Opcode::Rdtsc:
      case Opcode::Rdrand:
      case Opcode::Cpuid:
        return true;
      default:
        return false;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Divu: return "divu";
      case Opcode::Remu: return "remu";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Srai: return "srai";
      case Opcode::Slti: return "slti";
      case Opcode::Sltiu: return "sltiu";
      case Opcode::Li: return "li";
      case Opcode::Lw: return "lw";
      case Opcode::Sw: return "sw";
      case Opcode::Cas: return "cas";
      case Opcode::FetchAdd: return "fetchadd";
      case Opcode::Swap: return "swap";
      case Opcode::Fence: return "fence";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Syscall: return "syscall";
      case Opcode::Rdtsc: return "rdtsc";
      case Opcode::Rdrand: return "rdrand";
      case Opcode::Cpuid: return "cpuid";
      case Opcode::Pause: return "pause";
      case Opcode::NumOpcodes: break;
    }
    return "???";
}

const char *
regName(int reg)
{
    static const char *names[numRegs] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "t3", "t4",
        "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
        "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
        "t5", "t6", "t7", "t8",
    };
    if (reg < 0 || reg >= numRegs)
        return "r??";
    return names[reg];
}

} // namespace qr
