/**
 * @file
 * Programmatic QR-ISA assembler and the Program container it produces.
 *
 * Guest programs (the SPLASH-2-analog workloads, the guest runtime, the
 * test kernels) are generated at simulator start-up by emitting
 * instructions through this class. Labels provide forward references for
 * branches and jumps; finish() resolves all fixups and returns an
 * immutable Program.
 */

#ifndef QR_ISA_ASSEMBLER_HH
#define QR_ISA_ASSEMBLER_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace qr
{

/**
 * An assembled guest program: decoded text plus static data image.
 *
 * The text is Harvard-style (instruction indices, not data addresses);
 * dataInit seeds guest data memory before the machine starts.
 */
struct Program
{
    /** Decoded instruction stream; the pc indexes this vector. */
    std::vector<Instruction> code;

    /** Initial data image: (byte address, word value) pairs. */
    std::vector<std::pair<Addr, Word>> dataInit;

    /** Entry point of the main thread (instruction index). */
    Word entry = 0;

    /** First free data byte above the static image (heap base). */
    Addr dataEnd = 0;

    /** Resolved label map, kept for debugging and the disassembler. */
    std::map<std::string, Word> labels;
};

/**
 * Instruction emitter with label fixups.
 *
 * Methods append one instruction each and are named after mnemonics.
 * Branch/jump targets are label strings resolved in finish(); data is
 * reserved with word()/block(), which allocate from a bump pointer
 * starting at dataBase.
 */
class Assembler
{
  public:
    explicit Assembler(Addr data_base = 0x1000);

    /** Current instruction index (the address of the next emission). */
    Word here() const { return static_cast<Word>(code.size()); }

    /** Bind a label to the current instruction index. */
    void label(const std::string &name);

    /** Look up a bound label. Must already be defined. */
    Word labelAddr(const std::string &name) const;

    // --- data allocation -------------------------------------------------
    /** Reserve one initialized data word; @return its byte address. */
    Addr word(Word init = 0);

    /** Reserve @p words consecutive words; @return base byte address. */
    Addr block(std::uint32_t words, Word init = 0);

    /**
     * Reserve a cache-line-aligned block (64-byte alignment), used for
     * synchronization variables that must not exhibit false sharing.
     */
    Addr alignedBlock(std::uint32_t words, Word init = 0);

    /** Set one word of previously reserved data. */
    void poke(Addr byte_addr, Word value);

    /** First free data byte (current heap base). */
    Addr dataTop() const { return dataPtr; }

    // --- ALU -------------------------------------------------------------
    void add(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Add, rd, rs1, rs2); }
    void sub(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sub, rd, rs1, rs2); }
    void mul(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Mul, rd, rs1, rs2); }
    void divu(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Divu, rd, rs1, rs2); }
    void remu(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Remu, rd, rs1, rs2); }
    void and_(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::And, rd, rs1, rs2); }
    void or_(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Or, rd, rs1, rs2); }
    void xor_(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Xor, rd, rs1, rs2); }
    void sll(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sll, rd, rs1, rs2); }
    void srl(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Srl, rd, rs1, rs2); }
    void sra(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sra, rd, rs1, rs2); }
    void slt(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Slt, rd, rs1, rs2); }
    void sltu(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Sltu, rd, rs1, rs2); }

    void addi(Reg rd, Reg rs1, std::int32_t imm)
    { emitI(Opcode::Addi, rd, rs1, static_cast<std::uint32_t>(imm)); }
    void andi(Reg rd, Reg rs1, Word imm) { emitI(Opcode::Andi, rd, rs1, imm); }
    void ori(Reg rd, Reg rs1, Word imm) { emitI(Opcode::Ori, rd, rs1, imm); }
    void xori(Reg rd, Reg rs1, Word imm) { emitI(Opcode::Xori, rd, rs1, imm); }
    void slli(Reg rd, Reg rs1, Word sh) { emitI(Opcode::Slli, rd, rs1, sh); }
    void srli(Reg rd, Reg rs1, Word sh) { emitI(Opcode::Srli, rd, rs1, sh); }
    void srai(Reg rd, Reg rs1, Word sh) { emitI(Opcode::Srai, rd, rs1, sh); }
    void slti(Reg rd, Reg rs1, std::int32_t imm)
    { emitI(Opcode::Slti, rd, rs1, static_cast<std::uint32_t>(imm)); }
    void sltiu(Reg rd, Reg rs1, Word imm)
    { emitI(Opcode::Sltiu, rd, rs1, imm); }

    /** Load a full 32-bit immediate. */
    void li(Reg rd, Word imm) { emitI(Opcode::Li, rd, zero, imm); }

    /** Load a code label's instruction index (for indirect calls/spawn). */
    void
    liLabel(Reg rd, const std::string &target)
    {
        fixups.emplace_back(here(), target);
        emitI(Opcode::Li, rd, zero, 0);
    }

    /** Register-to-register move (addi rd, rs, 0). */
    void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }

    void nop() { emit({Opcode::Nop, 0, 0, 0, 0}); }
    void pause() { emit({Opcode::Pause, 0, 0, 0, 0}); }

    // --- memory ----------------------------------------------------------
    /** rd = mem[rs1 + imm] (imm is a byte offset; address 4-aligned). */
    void lw(Reg rd, Reg rs1, std::int32_t imm = 0)
    { emitI(Opcode::Lw, rd, rs1, static_cast<std::uint32_t>(imm)); }

    /** mem[rs1 + imm] = rs2. */
    void sw(Reg rs2, Reg rs1, std::int32_t imm = 0)
    { emit({Opcode::Sw, 0, rs1, rs2, static_cast<std::uint32_t>(imm)}); }

    void cas(Reg rd, Reg rs1, Reg rs2) { emitR(Opcode::Cas, rd, rs1, rs2); }
    void fetchadd(Reg rd, Reg rs1, Reg rs2)
    { emitR(Opcode::FetchAdd, rd, rs1, rs2); }
    void swap(Reg rd, Reg rs1) { emitR(Opcode::Swap, rd, rs1, zero); }
    void fence() { emit({Opcode::Fence, 0, 0, 0, 0}); }

    // --- control flow ----------------------------------------------------
    void beq(Reg rs1, Reg rs2, const std::string &target)
    { emitB(Opcode::Beq, rs1, rs2, target); }
    void bne(Reg rs1, Reg rs2, const std::string &target)
    { emitB(Opcode::Bne, rs1, rs2, target); }
    void blt(Reg rs1, Reg rs2, const std::string &target)
    { emitB(Opcode::Blt, rs1, rs2, target); }
    void bge(Reg rs1, Reg rs2, const std::string &target)
    { emitB(Opcode::Bge, rs1, rs2, target); }
    void bltu(Reg rs1, Reg rs2, const std::string &target)
    { emitB(Opcode::Bltu, rs1, rs2, target); }
    void bgeu(Reg rs1, Reg rs2, const std::string &target)
    { emitB(Opcode::Bgeu, rs1, rs2, target); }

    /** Unconditional jump to a label. */
    void j(const std::string &target) { emitB(Opcode::Jal, zero, zero, target); }

    /** Call a label, linking into ra. */
    void call(const std::string &target)
    { emitB(Opcode::Jal, ra, zero, target); }

    /** Return through ra. */
    void ret() { emit({Opcode::Jalr, 0, ra, 0, 0}); }

    /** Indirect jump: pc = rs1 + imm, link into rd. */
    void jalr(Reg rd, Reg rs1, std::int32_t imm = 0)
    { emit({Opcode::Jalr, rd, rs1, 0, static_cast<std::uint32_t>(imm)}); }

    // --- system ----------------------------------------------------------
    void syscall() { emit({Opcode::Syscall, 0, 0, 0, 0}); }
    void rdtsc(Reg rd) { emit({Opcode::Rdtsc, rd, 0, 0, 0}); }
    void rdrand(Reg rd) { emit({Opcode::Rdrand, rd, 0, 0, 0}); }
    void cpuid(Reg rd) { emit({Opcode::Cpuid, rd, 0, 0, 0}); }

    /** Append a raw instruction. */
    void emit(const Instruction &inst) { code.push_back(inst); }

    /** Resolve fixups and produce the immutable Program. */
    Program finish();

  private:
    void emitR(Opcode op, Reg rd, Reg rs1, Reg rs2)
    { emit({op, rd, rs1, rs2, 0}); }

    void emitI(Opcode op, Reg rd, Reg rs1, std::uint32_t imm)
    { emit({op, rd, rs1, 0, imm}); }

    void emitB(Opcode op, Reg rs1, Reg rs2, const std::string &target);

    std::vector<Instruction> code;
    std::map<std::string, Word> labels;
    std::vector<std::pair<Word, std::string>> fixups;
    std::vector<std::pair<Addr, Word>> dataInit;
    Addr dataPtr;
    bool finished = false;
};

} // namespace qr

#endif // QR_ISA_ASSEMBLER_HH
