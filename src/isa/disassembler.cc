#include "isa/disassembler.hh"

#include "sim/logging.hh"

namespace qr
{

std::string
disassemble(const Instruction &inst)
{
    const char *op = opcodeName(inst.op);
    const char *rd = regName(inst.rd);
    const char *rs1 = regName(inst.rs1);
    const char *rs2 = regName(inst.rs2);
    auto simm = static_cast<std::int32_t>(inst.imm);

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Fence:
      case Opcode::Syscall:
      case Opcode::Pause:
        return op;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Divu: case Opcode::Remu: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Cas: case Opcode::FetchAdd:
        return csprintf("%s %s, %s, %s", op, rd, rs1, rs2);
      case Opcode::Swap:
        return csprintf("%s %s, (%s)", op, rd, rs1);
      case Opcode::Addi: case Opcode::Slti:
        return csprintf("%s %s, %s, %d", op, rd, rs1, simm);
      case Opcode::Andi: case Opcode::Ori: case Opcode::Xori:
      case Opcode::Slli: case Opcode::Srli: case Opcode::Srai:
      case Opcode::Sltiu:
        return csprintf("%s %s, %s, %u", op, rd, rs1, inst.imm);
      case Opcode::Li:
        return csprintf("%s %s, 0x%x", op, rd, inst.imm);
      case Opcode::Lw:
        return csprintf("%s %s, %d(%s)", op, rd, simm, rs1);
      case Opcode::Sw:
        return csprintf("%s %s, %d(%s)", op, rs2, simm, rs1);
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
        return csprintf("%s %s, %s, %u", op, rs1, rs2, inst.imm);
      case Opcode::Jal:
        return csprintf("%s %s, %u", op, rd, inst.imm);
      case Opcode::Jalr:
        return csprintf("%s %s, %d(%s)", op, rd, simm, rs1);
      case Opcode::Rdtsc: case Opcode::Rdrand: case Opcode::Cpuid:
        return csprintf("%s %s", op, rd);
      case Opcode::NumOpcodes:
        break;
    }
    return "???";
}

} // namespace qr
