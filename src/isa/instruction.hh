/**
 * @file
 * QR-ISA: the guest instruction set of the QuickRec prototype simulator.
 *
 * QR-ISA is a small RISC-style, 32-bit word-oriented ISA standing in for
 * the IA-32 cores of the QuickIA platform. It was chosen so that the
 * recording hardware observes the same event stream a real core produces:
 * retired instructions, loads, stores (through a TSO store buffer), atomic
 * read-modify-writes (which drain the store buffer, like x86 LOCK ops),
 * fences, system calls, and the nondeterministic instructions that Capo3
 * must log (RDTSC / RDRAND / CPUID analogs).
 *
 * Instructions are held decoded in program memory; encode()/decode()
 * round-trip through a packed 64-bit representation used by the log
 * tooling and tests.
 */

#ifndef QR_ISA_INSTRUCTION_HH
#define QR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace qr
{

/** Architectural register indices with RISC-V-flavored ABI names. */
enum Reg : std::uint8_t
{
    zero = 0, //!< hardwired zero
    ra = 1,   //!< return address
    sp = 2,   //!< stack pointer
    gp = 3,   //!< global pointer (unused by the runtime)
    tp = 4,   //!< thread pointer; the kernel sets it to the tid
    t0 = 5, t1 = 6, t2 = 7, t3 = 8, t4 = 9,
    a0 = 10, a1 = 11, a2 = 12, a3 = 13,
    a4 = 14, a5 = 15, a6 = 16, a7 = 17, //!< a7 carries the syscall number
    s0 = 18, s1 = 19, s2 = 20, s3 = 21, s4 = 22,
    s5 = 23, s6 = 24, s7 = 25, s8 = 26, s9 = 27,
    t5 = 28, t6 = 29, t7 = 30, t8 = 31,
};

/** Number of architectural registers. */
constexpr int numRegs = 32;

/** QR-ISA opcodes. */
enum class Opcode : std::uint8_t
{
    Nop = 0,
    // Register-register ALU.
    Add, Sub, Mul, Divu, Remu, And, Or, Xor,
    Sll, Srl, Sra, Slt, Sltu,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu,
    /** rd = imm (full 32-bit immediate load). */
    Li,
    // Memory (word, naturally aligned; imm is a byte offset).
    Lw, Sw,
    /**
     * Atomic compare-and-swap: old = mem[rs1]; if (old == rd) mem[rs1] =
     * rs2; rd = old. Drains the store buffer first (x86 LOCK semantics).
     */
    Cas,
    /** Atomic fetch-and-add: rd = mem[rs1]; mem[rs1] += rs2. Drains SB. */
    FetchAdd,
    /** Atomic exchange: rd <-> mem[rs1]. Drains SB. */
    Swap,
    /** Store fence: drains the store buffer. */
    Fence,
    // Branches; imm is an absolute instruction index.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    /** Jump and link: rd = pc + 1; pc = imm. */
    Jal,
    /** Jump and link register: rd = pc + 1; pc = rs1 + imm. */
    Jalr,
    /** System call; number in a7, args in a0..a5, result in a0. */
    Syscall,
    /** Read the core cycle counter (nondeterministic; input-logged). */
    Rdtsc,
    /** Read a hardware random number (nondeterministic; input-logged). */
    Rdrand,
    /** Read the current physical core id (nondeterministic under
     *  migration; input-logged). */
    Cpuid,
    /** Architected "pause" hint used in spin loops (costs one cycle). */
    Pause,

    NumOpcodes,
};

/** A decoded QR-ISA instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint32_t imm = 0;

    /** Pack into the canonical 64-bit encoding. */
    std::uint64_t encode() const;

    /** Unpack from the canonical 64-bit encoding. */
    static Instruction decode(std::uint64_t bits);

    bool operator==(const Instruction &o) const = default;
};

/** @return true if the opcode is a memory access (Lw/Sw/atomics). */
bool isMemOp(Opcode op);

/** @return true if the opcode is an atomic read-modify-write. */
bool isAtomic(Opcode op);

/** @return true if the opcode is nondeterministic (must be input-logged). */
bool isNondet(Opcode op);

/** @return the mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** @return the ABI name of a register index. */
const char *regName(int reg);

} // namespace qr

#endif // QR_ISA_INSTRUCTION_HH
