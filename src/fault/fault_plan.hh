/**
 * @file
 * Deterministic fault-injection plan.
 *
 * A FaultPlan is parsed from a compact spec string such as
 *
 *     cbuf-drop@0.01,io-short@0.001,io-enospc@tick:500000
 *
 * and owns one independent, seeded Rng stream per fault site. Because
 * the simulator's schedule is deterministic and each site draws only
 * from its own stream, the sequence of injected faults is a pure
 * function of (seed, spec) — the same pair always yields the same
 * degraded recording, which is what the fault-determinism tests pin.
 *
 * Two trigger forms exist per site:
 *  - probability:  `site@P`       fires each query with probability P,
 *  - tick:         `site@tick:N`  fires on every query once the site
 *                                 has been consulted N times (a
 *                                 persistent failure, e.g. a full disk).
 */

#ifndef QR_FAULT_FAULT_PLAN_HH
#define QR_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"

namespace qr
{

/** Where in the stack a fault can be injected. */
enum class FaultSite : std::uint8_t
{
    CbufDrop,  //!< CBUF drain signal lost -> chunk drop + gap marker
    CbufDelay, //!< CBUF drain signal delayed -> modeled stall cycles
    DrainFail, //!< RSM drain attempt fails -> bounded retry + backoff
    IoShort,   //!< log write stops short (partial final segment)
    IoTorn,    //!< log write torn mid-segment (crash before seal)
    IoEnospc,  //!< log write aborted, no space (old artifact intact)
    DevDrop,   //!< replay: device completion never delivered
    DevTorn,   //!< replay: device payload truncated mid-transfer
    DevLate,   //!< replay: device completion anchored late
    NumSites,
};

/** Number of distinct fault sites. */
constexpr int numFaultSites = static_cast<int>(FaultSite::NumSites);

/** @return the spec-string name of a fault site (e.g. "cbuf-drop"). */
const char *faultSiteName(FaultSite s);

/** Query/fire counters, one slot per fault site. */
struct FaultStats
{
    std::uint64_t queries[numFaultSites] = {};
    std::uint64_t fires[numFaultSites] = {};
};

/**
 * A parsed, seeded fault plan. Copyable; copies carry independent Rng
 * state from the point of the copy (the qrec driver uses this to give
 * the I/O layer its own plan without perturbing the recorder's
 * streams — per-site streams make that deterministic either way).
 */
class FaultPlan
{
  public:
    /** An empty plan: no site armed, fire() always false. */
    FaultPlan() = default;

    /**
     * Parse @p spec ("site@prob[,site@tick:N]...") with @p seed.
     * An empty spec yields a disarmed plan. Throws ParseError on any
     * malformed clause (unknown site, bad probability, bad tick).
     */
    static FaultPlan parse(const std::string &spec, std::uint64_t seed);

    /** @return true if any site is armed. */
    bool enabled() const { return _armedMask != 0; }

    /** @return true if @p s specifically is armed. */
    bool
    armed(FaultSite s) const
    {
        return _armedMask & (1u << static_cast<int>(s));
    }

    /**
     * Consult site @p s once: counts the query and rolls its trigger.
     * Disarmed sites never fire and draw no randomness.
     */
    bool fire(FaultSite s);

    /**
     * Supplementary uniform draw in [0, bound) from @p s's stream,
     * used to shape a fault that fired (e.g. where a torn write cuts).
     * Deterministic like fire(); bound must be nonzero.
     */
    std::uint64_t
    draw(FaultSite s, std::uint64_t bound)
    {
        return _sites[static_cast<int>(s)].rng.below(bound);
    }

    const FaultStats &stats() const { return _stats; }

    /** The spec string this plan was parsed from. */
    const std::string &spec() const { return _spec; }

    std::uint64_t seed() const { return _seed; }

    /** One-line "faults: site=fires/queries ..." report. */
    std::string summary() const;

  private:
    struct Site
    {
        bool tickMode = false;
        std::uint64_t probPpb = 0; //!< probability in parts-per-billion
        std::uint64_t tick = 0;    //!< first firing query (tick mode)
        Rng rng;
    };

    Site _sites[numFaultSites];
    std::uint32_t _armedMask = 0;
    FaultStats _stats;
    std::string _spec;
    std::uint64_t _seed = 1;
};

} // namespace qr

#endif // QR_FAULT_FAULT_PLAN_HH
