#include "fault/fault_plan.hh"

#include <cmath>
#include <cstdlib>

#include "obs/event_trace.hh"
#include "sim/logging.hh"

namespace qr
{

const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::CbufDrop: return "cbuf-drop";
      case FaultSite::CbufDelay: return "cbuf-delay";
      case FaultSite::DrainFail: return "drain-fail";
      case FaultSite::IoShort: return "io-short";
      case FaultSite::IoTorn: return "io-torn";
      case FaultSite::IoEnospc: return "io-enospc";
      case FaultSite::DevDrop: return "dev-drop";
      case FaultSite::DevTorn: return "dev-torn";
      case FaultSite::DevLate: return "dev-late";
      default: return "?";
    }
}

namespace
{

/** Map a spec-string site name back to its enum, or NumSites. */
FaultSite
siteByName(const std::string &name)
{
    for (int i = 0; i < numFaultSites; ++i) {
        FaultSite s = static_cast<FaultSite>(i);
        if (name == faultSiteName(s))
            return s;
    }
    return FaultSite::NumSites;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec, std::uint64_t seed)
{
    FaultPlan plan;
    plan._spec = spec;
    plan._seed = seed;
    // Every site gets its own stream derived from the plan seed so a
    // site's draw sequence does not depend on which other sites are
    // armed or how often they are consulted.
    for (int i = 0; i < numFaultSites; ++i)
        plan._sites[i].rng.seed(mix64(seed ^ (std::uint64_t(i) + 1)));

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string clause = spec.substr(pos, end - pos);
        pos = end + 1;
        if (clause.empty())
            parseFail("fault spec: empty clause in '%s'", spec.c_str());

        std::size_t at = clause.find('@');
        if (at == std::string::npos || at == 0 ||
            at + 1 >= clause.size()) {
            parseFail("fault spec: clause '%s' is not site@trigger",
                      clause.c_str());
        }
        std::string name = clause.substr(0, at);
        std::string trig = clause.substr(at + 1);

        FaultSite site = siteByName(name);
        if (site == FaultSite::NumSites)
            parseFail("fault spec: unknown site '%s'", name.c_str());
        std::uint32_t bit = 1u << static_cast<int>(site);
        if (plan._armedMask & bit)
            parseFail("fault spec: site '%s' listed twice",
                      name.c_str());

        Site &s = plan._sites[static_cast<int>(site)];
        if (trig.rfind("tick:", 0) == 0) {
            std::string num = trig.substr(5);
            if (num.empty()) {
                parseFail("fault spec: '%s' has an empty tick",
                          clause.c_str());
            }
            char *stop = nullptr;
            unsigned long long v = std::strtoull(num.c_str(), &stop, 10);
            if (stop == num.c_str() || *stop != '\0')
                parseFail("fault spec: bad tick '%s'", num.c_str());
            s.tickMode = true;
            s.tick = v;
        } else {
            char *stop = nullptr;
            double p = std::strtod(trig.c_str(), &stop);
            if (stop == trig.c_str() || *stop != '\0') {
                parseFail("fault spec: bad probability '%s'",
                          trig.c_str());
            }
            if (!(p >= 0.0) || p > 1.0) {
                parseFail("fault spec: probability %s outside [0, 1]",
                          trig.c_str());
            }
            s.tickMode = false;
            s.probPpb =
                static_cast<std::uint64_t>(std::llround(p * 1e9));
        }
        plan._armedMask |= bit;
    }
    return plan;
}

bool
FaultPlan::fire(FaultSite s)
{
    int i = static_cast<int>(s);
    qr_assert(i >= 0 && i < numFaultSites, "bad fault site");
    if (!armed(s))
        return false;
    Site &site = _sites[i];
    std::uint64_t q = _stats.queries[i]++;
    bool hit;
    if (site.tickMode) {
        // Persistent failure: once the site has been consulted `tick`
        // times it fails on every subsequent query (e.g. a disk that
        // fills and stays full).
        hit = q >= site.tick;
    } else {
        hit = site.probPpb > 0 &&
              site.rng.below(1000000000ull) < site.probPpb;
    }
    if (hit) {
        ++_stats.fires[i];
        // Query index stands in for time: the plan has no clock, but
        // the index is schedule-deterministic and orders the firings.
        eventTrace().emit(TraceEventKind::FaultFire, i, q,
                          static_cast<std::uint64_t>(i), q);
    }
    return hit;
}

std::string
FaultPlan::summary() const
{
    std::string out = "faults:";
    for (int i = 0; i < numFaultSites; ++i) {
        if (!(_armedMask & (1u << i)))
            continue;
        out += csprintf(" %s=%llu/%llu",
                        faultSiteName(static_cast<FaultSite>(i)),
                        static_cast<unsigned long long>(_stats.fires[i]),
                        static_cast<unsigned long long>(
                            _stats.queries[i]));
    }
    if (_armedMask == 0)
        out += " none";
    return out;
}

} // namespace qr
