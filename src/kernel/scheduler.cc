#include "kernel/scheduler.hh"

namespace qr
{

void
Scheduler::enqueue(Tid tid)
{
    queue.push_back(tid);
}

Tid
Scheduler::dequeue()
{
    if (queue.empty())
        return invalidTid;
    Tid t = queue.front();
    queue.pop_front();
    return t;
}

} // namespace qr
