/**
 * @file
 * Kernel thread control block.
 */

#ifndef QR_KERNEL_THREAD_HH
#define QR_KERNEL_THREAD_HH

#include <cstdint>
#include <deque>

#include "cpu/thread_context.hh"
#include "sim/types.hh"

namespace qr
{

/** Lifecycle states of a guest thread. */
enum class ThreadState
{
    Ready,
    Running,
    Blocked,
    Exited,
};

/** @return name of a thread state. */
const char *threadStateName(ThreadState s);

/** The kernel's per-thread bookkeeping (TCB). */
struct KThread
{
    Tid tid = invalidTid;
    ThreadContext ctx;
    ThreadState state = ThreadState::Ready;
    CoreId runningOn = invalidCore;
    CoreId lastRanOn = invalidCore;

    // --- blocking ---------------------------------------------------------
    /** Nonzero while blocked in FutexWait. */
    Addr futexAddr = 0;
    /** Valid while blocked in Join. */
    Tid joinTarget = invalidTid;
    /** Order in which the thread blocked (FIFO wake fairness). */
    std::uint64_t blockSeq = 0;

    // --- signals ------------------------------------------------------------
    Word sigHandlerPc = 0;
    Addr sigMailbox = 0;
    std::deque<Word> pendingSignals;
    bool inHandler = false;
    Word savedPc = 0;

    // --- Capo3 recording context -------------------------------------------
    /**
     * Lamport clock captured when the thread last left a core; restored
     * as a clock floor at the next dispatch so per-thread chunk
     * timestamps stay monotonic across migration.
     */
    Timestamp lastClock = 0;

    // --- accounting ---------------------------------------------------------
    std::uint64_t syscallCount = 0;

    bool runnable() const { return state == ThreadState::Ready; }
};

} // namespace qr

#endif // QR_KERNEL_THREAD_HH
