#include "kernel/kernel.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace qr
{

Kernel::Kernel(const KernelParams &params_, std::vector<Core *> cores_,
               Memory &mem_, OutputMap &output_)
    : params(params_), cores(std::move(cores_)), mem(mem_),
      output(output_), brk(params_.heapBase), inputRng(params_.inputSeed)
{
    qr_assert(!cores.empty(), "kernel needs at least one core");
    qr_assert(params.heapLimit > params.heapBase,
              "heap range is empty or inverted");
    for (Core *c : cores)
        c->setTrapHandler(this);
}

void
Kernel::debugDump() const
{
    for (const auto &[tid, t] : threads)
        inform("tid %d: %s pc=0x%x core=%d futex=0x%x join=%d "
               "instrs=%llu",
               tid, threadStateName(t->state), t->ctx.pc, t->runningOn,
               t->futexAddr, t->joinTarget,
               static_cast<unsigned long long>(t->ctx.instrs));
}

KThread &
Kernel::thread(Tid tid)
{
    auto it = threads.find(tid);
    qr_assert(it != threads.end(), "no such thread %d", tid);
    return *it->second;
}

KThread &
Kernel::currentThread(Core &core)
{
    qr_assert(core.current() != nullptr, "no thread on core %d",
              core.id());
    return thread(core.current()->tid);
}

Tid
Kernel::createThread(Addr pc, Word sp, Word arg)
{
    Tid tid = nextTid++;
    auto t = std::make_unique<KThread>();
    t->tid = tid;
    t->ctx.tid = tid;
    t->ctx.pc = pc;
    t->ctx.setReg(Reg::sp, sp);
    t->ctx.setReg(Reg::tp, static_cast<Word>(tid));
    t->ctx.setReg(Reg::a0, arg);
    t->state = ThreadState::Ready;
    threads.emplace(tid, std::move(t));
    liveThreads++;
    scheduler.enqueue(tid);
    return tid;
}

Tid
Kernel::startMainThread(Addr entry_pc, Word sp)
{
    Tid tid = createThread(entry_pc, sp, 0);
    if (rsm)
        rsm->threadStarted(thread(tid), nullptr, nullptr, 0);
    return tid;
}

void
Kernel::tick(Tick now)
{
    if (scheduler.empty())
        return;
    for (Core *core : cores) {
        if (!core->idle())
            continue;
        Tid tid = scheduler.dequeue();
        if (tid == invalidTid)
            break;
        KThread &t = thread(tid);
        qr_assert(t.state == ThreadState::Ready,
                  "dispatching non-ready thread %d", tid);
        t.state = ThreadState::Running;
        if (t.lastRanOn != invalidCore && t.lastRanOn != core->id())
            _stats.migrations++;
        t.runningOn = core->id();
        tracef(TraceFlag::Sched, "tid %d -> core %d @%llu", tid,
               core->id(), static_cast<unsigned long long>(now));
        core->install(&t.ctx, now);
        core->addStall(now, params.ctxSwitchCost);
        _stats.contextSwitches++;
        if (rsm)
            rsm->contextSwitchIn(t, *core, now);
        deliverPendingSignal(t, *core, now);
    }
}

void
Kernel::deschedule(Core &core, KThread &t, ThreadState new_state, Tick now)
{
    core.drainStoreBuffer(now);
    if (rsm)
        rsm->contextSwitchOut(t, core, now);
    core.uninstall();
    core.addStall(now, params.ctxSwitchCost);
    t.lastRanOn = t.runningOn;
    t.runningOn = invalidCore;
    t.state = new_state;
    if (new_state == ThreadState::Ready)
        scheduler.enqueue(t.tid);
}

void
Kernel::onTimeslice(Core &core, Tick now)
{
    KThread &t = currentThread(core);
    if (scheduler.empty()) {
        // Nobody is waiting; skip the switch but still take the timer
        // interrupt: it is a kernel entry, so the store buffer drains
        // and the chunk terminates, then signals are checked and the
        // slice restarts.
        core.resetSlice(now);
        core.drainStoreBuffer(now);
        core.addStall(now, params.syscallBaseCost);
        if (rsm)
            rsm->kernelEntry(t, core, now);
        deliverPendingSignal(t, core, now);
        return;
    }
    _stats.preemptions++;
    deschedule(core, t, ThreadState::Ready, now);
}

Word
Kernel::onNondet(Core &core, Opcode kind, Tick now)
{
    KThread &t = currentThread(core);
    Word value = 0;
    switch (kind) {
      case Opcode::Rdtsc:
        value = static_cast<Word>(now);
        break;
      case Opcode::Rdrand:
        value = inputRng.next32();
        break;
      case Opcode::Cpuid:
        value = static_cast<Word>(core.id());
        break;
      default:
        panic("onNondet with non-nondet opcode");
    }
    if (rsm)
        rsm->nondetLogged(t, kind, value, core, now);
    return value;
}

void
Kernel::deliverPendingSignal(KThread &t, Core &core, Tick now)
{
    if (t.pendingSignals.empty() || t.inHandler || !t.sigHandlerPc)
        return;
    Word signo = t.pendingSignals.front();
    t.pendingSignals.pop_front();
    t.savedPc = t.ctx.pc;
    t.ctx.pc = t.sigHandlerPc;
    t.inHandler = true;
    // Post the signal number to the registered mailbox; attributed to
    // the thread so the write enters its current chunk's write set.
    core.writeAsThread(t.sigMailbox, signo, now);
    _stats.signalsDelivered++;
    tracef(TraceFlag::Signal, "tid %d: signo %u delivered (pc 0x%x -> 0x%x)",
           t.tid, signo, t.savedPc, t.ctx.pc);
    if (rsm)
        rsm->signalDelivered(t, signo, t.sigHandlerPc, t.savedPc,
                             t.sigMailbox, core, now);
}

void
Kernel::wakeFromSyscall(KThread &t, Word ret, Tid waker,
                        Core &charge_core, Tick now)
{
    qr_assert(t.state == ThreadState::Blocked,
              "waking non-blocked thread %d", t.tid);
    // Capo3 propagates the recording timestamp along kernel wake edges
    // (join/futex): the woken thread's next chunk is ordered after
    // everything the waker has logged.
    t.lastClock = std::max(t.lastClock,
                           charge_core.rnrUnit().clock());
    t.ctx.setReg(Reg::a0, ret);
    t.futexAddr = 0;
    t.joinTarget = invalidTid;
    t.state = ThreadState::Ready;
    scheduler.enqueue(t.tid);
    if (rsm) {
        rsm->threadWoken(t, nullptr, waker, &charge_core, now);
        Word num = t.ctx.reg(Reg::a7);
        rsm->syscallLogged(t, num, ret, nullptr, false, 0, &charge_core,
                           now);
    }
}

void
Kernel::onSyscall(Core &core, Tick now)
{
    KThread &t = currentThread(core);
    t.syscallCount++;
    _stats.syscalls++;
    Word num = t.ctx.reg(Reg::a7);
    if (num < 32)
        _stats.syscallsByNum[num]++;

    tracef(TraceFlag::Syscall, "tid %d: %s(%u, %u, %u) @%llu", t.tid,
           syscallName(static_cast<Sys>(num)), t.ctx.reg(Reg::a0),
           t.ctx.reg(Reg::a1), t.ctx.reg(Reg::a2),
           static_cast<unsigned long long>(now));

    // Kernel entry is serializing: the store buffer drains before any
    // kernel work, so syscall-terminated chunks always carry RSW = 0.
    core.drainStoreBuffer(now);
    core.addStall(now, params.syscallBaseCost);
    if (rsm)
        rsm->kernelEntry(t, core, now);

    doSyscall(t, core, now);

    if (t.state == ThreadState::Running)
        deliverPendingSignal(t, core, now);
}

void
Kernel::doSyscall(KThread &t, Core &core, Tick now)
{
    Word num = t.ctx.reg(Reg::a7);
    Word a0 = t.ctx.reg(Reg::a0);
    Word a1 = t.ctx.reg(Reg::a1);
    Word a2 = t.ctx.reg(Reg::a2);

    auto finish = [&](Word ret, const CopyToUser *copy = nullptr,
                      bool has_new_pc = false, Word new_pc = 0) {
        if (!(num == static_cast<Word>(Sys::Sigreturn)))
            t.ctx.setReg(Reg::a0, ret);
        if (rsm)
            rsm->syscallLogged(t, num, ret, copy, has_new_pc, new_pc,
                               &core, now);
    };

    switch (static_cast<Sys>(num)) {
      case Sys::Exit: {
        exits[t.tid] = ThreadExitInfo{t.ctx.digest(), t.ctx.instrs, a0};
        if (rsm)
            rsm->threadExited(t, core, now);
        // Wake joiners (in block order).
        std::vector<KThread *> joiners;
        for (auto &[tid, tp] : threads)
            if (tp->state == ThreadState::Blocked &&
                tp->joinTarget == t.tid)
                joiners.push_back(tp.get());
        std::sort(joiners.begin(), joiners.end(),
                  [](const KThread *x, const KThread *y) {
                      return x->blockSeq < y->blockSeq;
                  });
        for (KThread *j : joiners)
            wakeFromSyscall(*j, 0, t.tid, core, now);
        deschedule(core, t, ThreadState::Exited, now);
        liveThreads--;
        return;
      }
      case Sys::Write: {
        qr_assert(a2 % 4 == 0, "tid %d: write length not word multiple",
                  t.tid);
        if (a2 == 0) {
            finish(0);
            return;
        }
        std::vector<std::uint8_t> &stream = output[t.tid];
        for (Word off = 0; off < a2; off += 4) {
            // Coherent copy-from-user: ordered against every producer
            // and later overwriter of the buffer.
            Word w = core.readAsThread(a1 + off, now);
            for (int b = 0; b < 4; ++b)
                stream.push_back(
                    static_cast<std::uint8_t>(w >> (8 * b)));
        }
        _stats.bytesWritten += a2;
        core.addStall(now, params.copyPerWord * (a2 / 4));
        finish(a2);
        return;
      }
      case Sys::Read: {
        qr_assert(a2 % 4 == 0, "tid %d: read length not word multiple",
                  t.tid);
        CopyToUser copy;
        copy.addr = a1;
        for (Word off = 0; off < a2; off += 4) {
            Word w = inputRng.next32();
            core.writeAsThread(a1 + off, w, now);
            copy.words.push_back(w);
        }
        _stats.bytesCopiedToUser += a2;
        core.addStall(now, params.copyPerWord * (a2 / 4));
        finish(a2, &copy);
        return;
      }
      case Sys::Sbrk: {
        Word bytes = (a0 + 63u) & ~63u;
        qr_assert(brk + bytes <= params.heapLimit,
                  "tid %d: out of guest heap (brk 0x%x + 0x%x)", t.tid,
                  brk, bytes);
        Word old = brk;
        brk += bytes;
        finish(old);
        return;
      }
      case Sys::GetTid:
        finish(static_cast<Word>(t.tid));
        return;
      case Sys::Time:
        finish(static_cast<Word>(now));
        return;
      case Sys::Random:
        finish(inputRng.next32());
        return;
      case Sys::Yield:
        finish(0);
        if (!scheduler.empty())
            deschedule(core, t, ThreadState::Ready, now);
        return;
      case Sys::Spawn: {
        Tid child = createThread(a0, a1, a2);
        _stats.threadsSpawned++;
        if (rsm)
            rsm->threadStarted(thread(child), &t, &core, now);
        finish(static_cast<Word>(child));
        return;
      }
      case Sys::Join: {
        auto it = threads.find(static_cast<Tid>(a0));
        qr_assert(it != threads.end(), "tid %d: join on unknown tid %u",
                  t.tid, a0);
        if (it->second->state == ThreadState::Exited) {
            // The join still synchronizes: the caller must be ordered
            // after everything the exited target logged, even though
            // no wake happens. The RSM holds the clock it captured at
            // the target's exit and floors the caller's unit with it.
            if (rsm)
                rsm->threadWoken(t, &core, it->first, nullptr, now);
            finish(0);
            return;
        }
        t.joinTarget = static_cast<Tid>(a0);
        t.blockSeq = ++blockCounter;
        deschedule(core, t, ThreadState::Blocked, now);
        return; // result logged at wake
      }
      case Sys::FutexWait: {
        if (mem.read(a0) != a1) {
            finish(futexEagain);
            return;
        }
        t.futexAddr = a0;
        t.blockSeq = ++blockCounter;
        deschedule(core, t, ThreadState::Blocked, now);
        return; // result logged at wake
      }
      case Sys::FutexWake: {
        std::vector<KThread *> waiters;
        for (auto &[tid, tp] : threads)
            if (tp->state == ThreadState::Blocked &&
                tp->futexAddr == a0 && tp->futexAddr != 0)
                waiters.push_back(tp.get());
        std::sort(waiters.begin(), waiters.end(),
                  [](const KThread *x, const KThread *y) {
                      return x->blockSeq < y->blockSeq;
                  });
        Word count = 0;
        for (KThread *w : waiters) {
            if (count >= a1)
                break;
            wakeFromSyscall(*w, 0, t.tid, core, now);
            count++;
        }
        finish(count);
        return;
      }
      case Sys::Kill: {
        auto it = threads.find(static_cast<Tid>(a0));
        if (it == threads.end() ||
            it->second->state == ThreadState::Exited) {
            finish(~Word(0));
            return;
        }
        it->second->pendingSignals.push_back(a1);
        finish(0);
        return;
      }
      case Sys::Sigaction:
        t.sigHandlerPc = a0;
        t.sigMailbox = a1;
        finish(0);
        return;
      case Sys::Sigreturn: {
        qr_assert(t.inHandler, "tid %d: sigreturn outside handler",
                  t.tid);
        Word resume = t.savedPc;
        t.ctx.pc = resume;
        t.inHandler = false;
        finish(0, nullptr, /* has_new_pc = */ true, resume);
        return;
      }
    }
    panic("tid %d: unknown syscall %u at pc 0x%x", t.tid, num, t.ctx.pc);
}

} // namespace qr
