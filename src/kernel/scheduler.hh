/**
 * @file
 * Round-robin run queue. Threads are dispatched to idle cores in FIFO
 * order with no affinity, so threads migrate across cores -- exercising
 * the save/restore of the QuickRec recording context that Capo3
 * performs at every context switch.
 */

#ifndef QR_KERNEL_SCHEDULER_HH
#define QR_KERNEL_SCHEDULER_HH

#include <cstdint>
#include <deque>

#include "sim/types.hh"

namespace qr
{

/** Global FIFO ready queue. */
class Scheduler
{
  public:
    /** Append a runnable thread. */
    void enqueue(Tid tid);

    /** Pop the next runnable thread, or invalidTid if none. */
    Tid dequeue();

    bool empty() const { return queue.empty(); }
    std::size_t size() const { return queue.size(); }

  private:
    std::deque<Tid> queue;
};

} // namespace qr

#endif // QR_KERNEL_SCHEDULER_HH
