/**
 * @file
 * Guest system-call numbers and ABI.
 *
 * Convention: number in a7, arguments in a0..a2, result in a0.
 * Every syscall is a kernel entry: the store buffer drains and, when a
 * replay sphere is recording, the current chunk terminates and the
 * result (plus any data copied to user space) is input-logged.
 */

#ifndef QR_KERNEL_SYSCALL_HH
#define QR_KERNEL_SYSCALL_HH

#include "sim/types.hh"

namespace qr
{

/** Guest system calls. */
enum class Sys : Word
{
    Exit = 1,      //!< a0 = exit code
    Write = 2,     //!< a0 = fd, a1 = buf, a2 = len bytes (multiple of 4)
    Read = 3,      //!< a0 = fd, a1 = buf, a2 = len bytes; external input
    Sbrk = 4,      //!< a0 = bytes; returns old break (64-byte aligned)
    GetTid = 5,
    Time = 6,      //!< current cycle count (nondeterministic)
    Random = 7,    //!< kernel entropy (nondeterministic)
    Yield = 8,
    Spawn = 9,     //!< a0 = pc, a1 = sp, a2 = arg; returns child tid
    Join = 10,     //!< a0 = tid; blocks until it exits
    FutexWait = 11, //!< a0 = addr, a1 = expected; 0 = woken, 1 = EAGAIN
    FutexWake = 12, //!< a0 = addr, a1 = max waiters; returns count woken
    Kill = 13,     //!< a0 = tid, a1 = signo
    Sigaction = 14, //!< a0 = handler pc, a1 = signo mailbox address
    Sigreturn = 15, //!< return from a signal handler
};

/** FutexWait result when the expected value did not match. */
constexpr Word futexEagain = 1;

/** @return name of a syscall for diagnostics. */
const char *syscallName(Sys s);

} // namespace qr

#endif // QR_KERNEL_SYSCALL_HH
