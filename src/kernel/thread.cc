#include "kernel/thread.hh"

#include "kernel/syscall.hh"

namespace qr
{

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Ready: return "ready";
      case ThreadState::Running: return "running";
      case ThreadState::Blocked: return "blocked";
      case ThreadState::Exited: return "exited";
    }
    return "?";
}

const char *
syscallName(Sys s)
{
    switch (s) {
      case Sys::Exit: return "exit";
      case Sys::Write: return "write";
      case Sys::Read: return "read";
      case Sys::Sbrk: return "sbrk";
      case Sys::GetTid: return "gettid";
      case Sys::Time: return "time";
      case Sys::Random: return "random";
      case Sys::Yield: return "yield";
      case Sys::Spawn: return "spawn";
      case Sys::Join: return "join";
      case Sys::FutexWait: return "futex-wait";
      case Sys::FutexWake: return "futex-wake";
      case Sys::Kill: return "kill";
      case Sys::Sigaction: return "sigaction";
      case Sys::Sigreturn: return "sigreturn";
    }
    return "?";
}

} // namespace qr
