/**
 * @file
 * The guest operating system model.
 *
 * Plays the role of the modified Linux kernel in QuickRec: it owns the
 * threads and run queue, implements system calls and signal delivery,
 * and drives the per-core recording hardware indirectly through the
 * RsmHooks interface implemented by Capo3's Replay Sphere Manager. When
 * no RSM is attached the kernel behaves identically except that nothing
 * is logged and no recording costs are charged -- that is the baseline
 * configuration against which recording overhead is measured.
 */

#ifndef QR_KERNEL_KERNEL_HH
#define QR_KERNEL_KERNEL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "kernel/scheduler.hh"
#include "kernel/syscall.hh"
#include "kernel/thread.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace qr
{

/** Data the kernel copied into user memory during a syscall. */
struct CopyToUser
{
    Addr addr = 0;
    std::vector<Word> words;
};

/**
 * Capo3's kernel-side hooks (implemented by capo::Rsm). Each hook both
 * writes the input log and charges the recording software cost to the
 * core involved.
 */
class RsmHooks
{
  public:
    virtual ~RsmHooks() = default;

    /** A recorded thread entered the kernel: terminate its chunk. */
    virtual void kernelEntry(KThread &t, Core &core, Tick now) = 0;

    /**
     * A syscall result is known (possibly at wake time for blocking
     * calls). @p charge_core is the core doing the kernel work, which
     * may differ from the thread's core (e.g. futex wake).
     */
    virtual void syscallLogged(KThread &t, Word num, Word ret,
                               const CopyToUser *copy, bool has_new_pc,
                               Word new_pc, Core *charge_core,
                               Tick now) = 0;

    /** A nondeterministic instruction retired. */
    virtual void nondetLogged(KThread &t, Opcode kind, Word value,
                              Core &core, Tick now) = 0;

    /** A thread joined the sphere (parent null for the root thread). */
    virtual void threadStarted(KThread &child, KThread *parent,
                               Core *parent_core, Tick now) = 0;

    /** A thread exited. */
    virtual void threadExited(KThread &t, Core &core, Tick now) = 0;

    /**
     * A kernel synchronization edge from @p waker to @p woken: a
     * join/futex wake, or a join that found its target already exited.
     * @p woken_core is non-null when @p woken keeps running on that
     * core (the already-exited-join fast path); otherwise @p woken is
     * blocked and resumes through contextSwitchIn. @p waker_core is
     * null when the waker no longer runs anywhere (it exited earlier);
     * the RSM then uses the clock it captured at the waker's exit.
     */
    virtual void threadWoken(KThread &woken, Core *woken_core, Tid waker,
                             Core *waker_core, Tick now) = 0;

    /** A signal was delivered (at a chunk boundary). */
    virtual void signalDelivered(KThread &t, Word signo, Word handler_pc,
                                 Word saved_pc, Addr mailbox,
                                 Core &core, Tick now) = 0;

    /** Thread descheduled: terminate chunk, save recording context. */
    virtual void contextSwitchOut(KThread &t, Core &core, Tick now) = 0;

    /** Thread dispatched: restore recording context, enable the unit. */
    virtual void contextSwitchIn(KThread &t, Core &core, Tick now) = 0;
};

/** Kernel configuration. */
struct KernelParams
{
    Tick syscallBaseCost = 150; //!< kernel entry/exit (baseline too)
    Tick ctxSwitchCost = 350;   //!< scheduler + state save (baseline too)
    Tick copyPerWord = 1;       //!< copy_to_user work per word (baseline)
    Addr heapBase = 0;          //!< sbrk arena start
    Addr heapLimit = 0;         //!< sbrk arena end
    std::uint64_t inputSeed = 0x517ec0de; //!< external-input entropy
};

/** Kernel-level statistics. */
struct KernelStats
{
    std::uint64_t syscalls = 0;
    std::uint64_t syscallsByNum[32] = {};
    std::uint64_t contextSwitches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;
    std::uint64_t signalsDelivered = 0;
    std::uint64_t threadsSpawned = 0;
    std::uint64_t bytesCopiedToUser = 0;
    std::uint64_t bytesWritten = 0; //!< guest console output
};

/** Final architectural state of an exited thread (replay checking). */
struct ThreadExitInfo
{
    std::uint64_t regDigest = 0;
    std::uint64_t instrs = 0;
    Word exitCode = 0;

    bool operator==(const ThreadExitInfo &o) const = default;
};

/** Per-thread console output streams (fd 1). */
using OutputMap = std::map<Tid, std::vector<std::uint8_t>>;

/** The guest OS. */
class Kernel : public TrapHandler
{
  public:
    Kernel(const KernelParams &params, std::vector<Core *> cores,
           Memory &mem, OutputMap &output);

    /** Attach Capo3's RSM (null = baseline, not recording). */
    void setRsm(RsmHooks *r) { rsm = r; }

    /** Create and enqueue the initial thread. */
    Tid startMainThread(Addr entry_pc, Word sp);

    /** Dispatch runnable threads onto idle cores. Call every cycle. */
    void tick(Tick now);

    bool allExited() const { return liveThreads == 0; }

    // --- TrapHandler ------------------------------------------------------
    void onSyscall(Core &core, Tick now) override;
    void onTimeslice(Core &core, Tick now) override;
    Word onNondet(Core &core, Opcode kind, Tick now) override;

    const std::map<Tid, ThreadExitInfo> &exitInfo() const { return exits; }
    const KernelStats &stats() const { return _stats; }

    /** Print every thread's state/pc to stderr (deadlock postmortem). */
    void debugDump() const;

    /** Look up a thread (must exist). */
    KThread &thread(Tid tid);

  private:
    KThread &currentThread(Core &core);
    Tid createThread(Addr pc, Word sp, Word arg);
    void deschedule(Core &core, KThread &t, ThreadState new_state,
                    Tick now);
    void wakeFromSyscall(KThread &t, Word ret, Tid waker,
                         Core &charge_core, Tick now);
    void deliverPendingSignal(KThread &t, Core &core, Tick now);
    void doSyscall(KThread &t, Core &core, Tick now);

    KernelParams params;
    std::vector<Core *> cores;
    Memory &mem;
    OutputMap &output;
    RsmHooks *rsm = nullptr;

    Scheduler scheduler;
    std::map<Tid, std::unique_ptr<KThread>> threads;
    Tid nextTid = 1;
    int liveThreads = 0;
    std::uint64_t blockCounter = 0;
    Addr brk;
    Rng inputRng;
    std::map<Tid, ThreadExitInfo> exits;
    KernelStats _stats;
};

} // namespace qr

#endif // QR_KERNEL_KERNEL_HH
