/**
 * @file
 * Machine-readable benchmark output: a tiny writer, parser, and merger
 * for the BENCH_<id>.json files every bench_* binary can emit next to
 * its human-readable table.
 *
 * Schema (version 2; version-1 files remain fully parseable):
 *
 *     {
 *       "bench": "M2",
 *       "schema": 2,
 *       "results": [
 *         {"bench": "M2", "workload": "fft",
 *          "metric": "record_mips", "value": 41.3},
 *         ...
 *       ],
 *       "stats": {"profile.record.wall_micros": 812345, ...}
 *     }
 *
 * Every row is one (workload, metric, value) measurement; the per-row
 * "bench" tag carries the source experiment through merges (a merged
 * document, e.g. BENCH_RECORD.json, contains rows from several
 * benches). Aggregate rows use the pseudo-workload "geomean".
 *
 * The optional "stats" object is new in version 2: a flat map of
 * dotted stat names (the same names `qrec stats` and
 * obs/stats_export.hh use) to numbers, letting a bench attach its
 * profiling-scope snapshot so a BENCH_*.json can attribute host time
 * per phase. Documents without stats are written as version 1, so
 * consumers that predate the section see no change.
 *
 * The parser is a deliberately small but complete JSON reader (objects,
 * arrays, strings with escapes, numbers, booleans, null) so the CTest
 * smoke entry and tools/bench_json_util can validate emitted files
 * without external dependencies.
 */

#ifndef QR_SIM_BENCH_JSON_HH
#define QR_SIM_BENCH_JSON_HH

#include <string>
#include <vector>

namespace qr
{

/** One benchmark measurement. */
struct BenchResult
{
    std::string bench;    //!< source experiment id, e.g. "M2"
    std::string workload; //!< workload name or "geomean"
    std::string metric;   //!< e.g. "record_mips"
    double value = 0.0;
};

/** One named statistic in a document's optional "stats" section. */
struct BenchStat
{
    std::string name; //!< dotted stat path, e.g. "profile.record.calls"
    double value = 0.0;
};

/** A parsed/buildable benchmark document. */
struct BenchDoc
{
    std::string bench;
    int schema = 1;
    std::vector<BenchResult> results;
    std::vector<BenchStat> stats; //!< v2 stats section; empty in v1

    /** Serialize to pretty-printed JSON text (v2 iff stats present). */
    std::string str() const;
};

/** Accumulates results for one bench binary and writes BENCH_<id>.json. */
class BenchJson
{
  public:
    /** @param bench_id experiment id, e.g. "M2". */
    explicit BenchJson(std::string bench_id);

    /** Record one measurement. */
    void add(const std::string &workload, const std::string &metric,
             double value);

    /** Attach one stat to the v2 "stats" section (upgrades the
     *  document to schema 2). */
    void addStat(const std::string &name, double value);

    /** Serialized document. */
    std::string str() const { return doc.str(); }

    /**
     * Write BENCH_<id>.json into $QR_BENCH_JSON_DIR (falling back to
     * the working directory).
     * @return the path written, or "" on I/O failure.
     */
    std::string write() const;

    const BenchDoc &document() const { return doc; }

  private:
    BenchDoc doc;
};

/**
 * Parse @p text as a benchmark JSON document, validating the schema
 * (required keys, types, schema version 1 or 2; the "stats" section
 * is only accepted on version 2).
 * @return true on success; on failure @p err describes the problem.
 */
bool parseBenchJson(const std::string &text, BenchDoc &out,
                    std::string &err);

/** Merge several documents into one with id @p bench_id; rows keep
 *  their per-row source bench tag. */
BenchDoc mergeBenchDocs(const std::string &bench_id,
                        const std::vector<BenchDoc> &docs);

} // namespace qr

#endif // QR_SIM_BENCH_JSON_HH
