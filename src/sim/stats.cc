#include "sim/stats.hh"

#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace qr
{

namespace
{

/** Bucket index for a sample: 0 for v==0, else floor(log2(v)) + 1. */
int
bucketIndex(std::uint64_t v)
{
    if (v == 0)
        return 0;
    return 64 - std::countl_zero(v);
}

} // namespace

void
Histogram::sample(std::uint64_t v)
{
    _buckets[static_cast<std::size_t>(bucketIndex(v))]++;
    _count++;
    _sum += v;
    if (v < _min)
        _min = v;
    if (v > _max)
        _max = v;
}

void
Histogram::merge(const Histogram &other)
{
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _count += other._count;
    _sum += other._sum;
    if (other._count) {
        if (other._min < _min)
            _min = other._min;
        if (other._max > _max)
            _max = other._max;
    }
}

double
Histogram::mean() const
{
    return _count ? static_cast<double>(_sum) / static_cast<double>(_count)
                  : 0.0;
}

std::uint64_t
Histogram::quantile(double p) const
{
    if (_count == 0)
        return 0;
    qr_assert(p >= 0.0 && p <= 1.0, "quantile p out of range: %f", p);
    std::uint64_t target =
        static_cast<std::uint64_t>(p * static_cast<double>(_count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen > target) {
            if (i == 0)
                return 0;
            // Geometric midpoint of [2^(i-1), 2^i).
            std::uint64_t lo = 1ull << (i - 1);
            return lo + lo / 2;
        }
    }
    return _max;
}

double
Histogram::zeroFraction() const
{
    return _count ? static_cast<double>(_buckets[0]) /
                        static_cast<double>(_count)
                  : 0.0;
}

std::string
Histogram::summary() const
{
    return csprintf("n=%llu mean=%.1f min=%llu p50=%llu p90=%llu max=%llu",
                    static_cast<unsigned long long>(_count), mean(),
                    static_cast<unsigned long long>(min()),
                    static_cast<unsigned long long>(quantile(0.5)),
                    static_cast<unsigned long long>(quantile(0.9)),
                    static_cast<unsigned long long>(_max));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace qr
