/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user-caused misconfiguration; warn()/inform() are advisory.
 */

#ifndef QR_SIM_LOGGING_HH
#define QR_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace qr
{

/**
 * Malformed external input (truncated/corrupted log files and
 * containers). Unlike panic() -- which is reserved for simulator bugs
 * and aborts -- a ParseError is recoverable: loaders catch it and
 * report the bad file to the caller.
 */
class ParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Throw a ParseError with a printf-style message. */
[[noreturn]] void parseFail(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of csprintf(). */
std::string vcsprintf(const char *fmt, std::va_list ap);

/**
 * Abort with a message. Call when an internal invariant is violated,
 * i.e. a simulator bug, never for user error.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error message. Call when the user supplied an invalid
 * configuration or input; not a simulator bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() with the given printf-style message unless the condition holds. */
#define qr_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond))                                                        \
            ::qr::panic(__VA_ARGS__);                                       \
    } while (0)

} // namespace qr

#endif // QR_SIM_LOGGING_HH
