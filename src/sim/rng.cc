#include "sim/rng.hh"

// mix64 and the Rng member functions are header-inline (hot paths);
// this translation unit intentionally holds no out-of-line definitions.
