/**
 * @file
 * Lightweight statistics value types used across the simulator.
 *
 * Modules embed these directly (no global registry): a Histogram for
 * distributions such as chunk sizes, and small helpers for derived values.
 */

#ifndef QR_SIM_STATS_HH
#define QR_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace qr
{

/**
 * Log2-bucketed histogram of unsigned samples.
 *
 * Bucket i counts samples v with floor(log2(v)) == i; bucket 0 also counts
 * v == 0 separately via zeroCount. Tracks count/sum/min/max exactly, so
 * mean() is exact while percentiles are bucket-resolution approximations.
 */
class Histogram
{
  public:
    /** Record one sample. */
    void sample(std::uint64_t v);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Number of samples recorded. */
    std::uint64_t count() const { return _count; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return _sum; }

    /** Smallest sample, or 0 if empty. */
    std::uint64_t min() const { return _count ? _min : 0; }

    /** Largest sample, or 0 if empty. */
    std::uint64_t max() const { return _max; }

    /** Exact arithmetic mean, or 0 if empty. */
    double mean() const;

    /**
     * Approximate p-quantile (p in [0,1]) at bucket resolution: returns
     * the geometric midpoint of the bucket containing the quantile.
     */
    std::uint64_t quantile(double p) const;

    /** Fraction of samples that are zero. */
    double zeroFraction() const;

    /** Raw bucket counts (index = floor(log2(v)) + 1; index 0 = zeros). */
    const std::array<std::uint64_t, 65> &buckets() const { return _buckets; }

    /** Human-readable one-line summary. */
    std::string summary() const;

  private:
    std::array<std::uint64_t, 65> _buckets{};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = ~0ull;
    std::uint64_t _max = 0;
};

/** Safe ratio: returns 0 when the denominator is 0. */
inline double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/** Percentage with safe denominator. */
inline double
percent(double num, double den)
{
    return 100.0 * ratio(num, den);
}

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &xs);

} // namespace qr

#endif // QR_SIM_STATS_HH
