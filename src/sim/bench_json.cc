#include "sim/bench_json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

namespace qr
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

std::string
formatNumber(double v)
{
    char buf[32];
    // Counters (chunk counts, byte totals) must round-trip exactly:
    // %.6g would turn a million-chunk sphere into "1e+06" and break
    // integer consumers like check_bench_stream.cmake's math(EXPR).
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    // JSON has no inf/nan; degrade to null-ish 0 rather than emit an
    // unparseable token.
    if (std::strchr(buf, 'i') || std::strchr(buf, 'n'))
        return "0";
    return buf;
}

// --- minimal JSON reader ----------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object } kind =
        Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::shared_ptr<JsonArray> arr;
    std::shared_ptr<JsonObject> obj;
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : s(text), error(err)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return fail("invalid literal");
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.b = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.b = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        pos++; // opening quote
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                return fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Basic-plane code points only; fine for bench ids.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        if (pos >= s.size())
            return fail("unterminated string");
        pos++; // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            pos++;
        if (pos == start)
            return fail("expected a value");
        out.kind = JsonValue::Kind::Number;
        char *end = nullptr;
        std::string tok = s.substr(start, pos - start);
        out.num = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        out.arr = std::make_shared<JsonArray>();
        pos++; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            pos++;
            return true;
        }
        while (true) {
            JsonValue v;
            skipWs();
            if (!parseValue(v))
                return false;
            out.arr->push_back(std::move(v));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                pos++;
                continue;
            }
            if (s[pos] == ']') {
                pos++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        out.obj = std::make_shared<JsonObject>();
        pos++; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            pos++;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            pos++;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            (*out.obj)[key] = std::move(v);
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                pos++;
                continue;
            }
            if (s[pos] == '}') {
                pos++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &s;
    std::string &error;
    std::size_t pos = 0;
};

const JsonValue *
member(const JsonValue &v, const char *key)
{
    if (v.kind != JsonValue::Kind::Object)
        return nullptr;
    auto it = v.obj->find(key);
    return it == v.obj->end() ? nullptr : &it->second;
}

bool
memberString(const JsonValue &v, const char *key, std::string &out)
{
    const JsonValue *m = member(v, key);
    if (!m || m->kind != JsonValue::Kind::String)
        return false;
    out = m->str;
    return true;
}

} // namespace

std::string
BenchDoc::str() const
{
    // Stats-free documents stay on version 1 so consumers that predate
    // the section read the same bytes they always did.
    int version = stats.empty() ? 1 : 2;
    std::string out = "{\n  \"bench\": ";
    appendEscaped(out, bench);
    out += ",\n  \"schema\": " + std::to_string(version);
    out += ",\n  \"results\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"bench\": ";
        appendEscaped(out, r.bench.empty() ? bench : r.bench);
        out += ", \"workload\": ";
        appendEscaped(out, r.workload);
        out += ", \"metric\": ";
        appendEscaped(out, r.metric);
        out += ", \"value\": " + formatNumber(r.value) + "}";
    }
    out += results.empty() ? "]" : "\n  ]";
    if (!stats.empty()) {
        out += ",\n  \"stats\": {";
        for (std::size_t i = 0; i < stats.size(); ++i) {
            out += i ? ",\n    " : "\n    ";
            appendEscaped(out, stats[i].name);
            out += ": " + formatNumber(stats[i].value);
        }
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

BenchJson::BenchJson(std::string bench_id)
{
    doc.bench = std::move(bench_id);
}

void
BenchJson::add(const std::string &workload, const std::string &metric,
               double value)
{
    doc.results.push_back({doc.bench, workload, metric, value});
}

void
BenchJson::addStat(const std::string &name, double value)
{
    doc.stats.push_back({name, value});
    doc.schema = 2;
}

std::string
BenchJson::write() const
{
    // Bench writers run on the main thread after workers joined; no
    // setenv in the process, so the getenv race cannot occur.
    const char *dir = std::getenv("QR_BENCH_JSON_DIR"); // NOLINT(concurrency-mt-unsafe)
    std::string path = dir && *dir ? std::string(dir) + "/" : "";
    path += "BENCH_" + doc.bench + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return "";
    std::string text = str();
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    return ok ? path : "";
}

bool
parseBenchJson(const std::string &text, BenchDoc &out, std::string &err)
{
    JsonValue root;
    JsonParser parser(text, err);
    if (!parser.parse(root))
        return false;
    if (root.kind != JsonValue::Kind::Object) {
        err = "document is not a JSON object";
        return false;
    }
    if (!memberString(root, "bench", out.bench)) {
        err = "missing or non-string \"bench\"";
        return false;
    }
    const JsonValue *schema = member(root, "schema");
    if (!schema || schema->kind != JsonValue::Kind::Number) {
        err = "missing or non-numeric \"schema\"";
        return false;
    }
    out.schema = static_cast<int>(schema->num);
    if (out.schema != 1 && out.schema != 2) {
        err = "unsupported schema version " + std::to_string(out.schema);
        return false;
    }
    const JsonValue *results = member(root, "results");
    if (!results || results->kind != JsonValue::Kind::Array) {
        err = "missing or non-array \"results\"";
        return false;
    }
    out.results.clear();
    for (const JsonValue &row : *results->arr) {
        BenchResult r;
        if (!memberString(row, "workload", r.workload) ||
            !memberString(row, "metric", r.metric)) {
            err = "result row missing \"workload\" or \"metric\"";
            return false;
        }
        if (!memberString(row, "bench", r.bench))
            r.bench = out.bench;
        const JsonValue *value = member(row, "value");
        if (!value || value->kind != JsonValue::Kind::Number) {
            err = "result row missing numeric \"value\"";
            return false;
        }
        r.value = value->num;
        out.results.push_back(std::move(r));
    }
    out.stats.clear();
    if (const JsonValue *stats = member(root, "stats")) {
        if (out.schema < 2) {
            err = "\"stats\" section requires schema version 2";
            return false;
        }
        if (stats->kind != JsonValue::Kind::Object) {
            err = "non-object \"stats\"";
            return false;
        }
        for (const auto &kv : *stats->obj) {
            if (kv.second.kind != JsonValue::Kind::Number) {
                err = "non-numeric stat \"" + kv.first + "\"";
                return false;
            }
            out.stats.push_back({kv.first, kv.second.num});
        }
    }
    return true;
}

BenchDoc
mergeBenchDocs(const std::string &bench_id,
               const std::vector<BenchDoc> &docs)
{
    BenchDoc out;
    out.bench = bench_id;
    for (const BenchDoc &d : docs) {
        for (const BenchResult &r : d.results) {
            BenchResult row = r;
            if (row.bench.empty())
                row.bench = d.bench;
            out.results.push_back(std::move(row));
        }
        // Stat names are flat, so qualify them with the source bench
        // to keep merged sections collision-free.
        for (const BenchStat &st : d.stats)
            out.stats.push_back({d.bench + "." + st.name, st.value});
    }
    if (!out.stats.empty())
        out.schema = 2;
    return out;
}

} // namespace qr
