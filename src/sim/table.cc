#include "sim/table.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace qr
{

Table::Table(std::vector<std::string> headers_) : headers(std::move(headers_))
{
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    qr_assert(!rows.empty(), "Table::cell called before Table::row");
    rows.back().push_back(s);
    return *this;
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(csprintf("%llu", static_cast<unsigned long long>(v)));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(csprintf("%lld", static_cast<long long>(v)));
}

Table &
Table::cell(double v, int precision)
{
    return cell(csprintf("%.*f", precision, v));
}

Table &
Table::cellPct(double v, int precision)
{
    return cell(csprintf("%.*f%%", precision, v));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emitRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &s = c < cells.size() ? cells[c] : "";
            // Left-align the first column (names), right-align the rest.
            if (c == 0) {
                line += s;
                line.append(widths[c] - s.size(), ' ');
            } else {
                line.append(widths[c] - s.size(), ' ');
                line += s;
            }
            if (c + 1 < widths.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = emitRow(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &r : rows)
        out += emitRow(r);
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace qr
