#include "sim/trace.hh"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/event_trace.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

std::array<bool, numTraceFlags> &
flags()
{
    static std::array<bool, numTraceFlags> enabled = [] {
        std::array<bool, numTraceFlags> e{};
        // Function-local static: C++ guarantees one racer wins the
        // initializer, and the process never calls setenv.
        const char *env = std::getenv("QR_TRACE"); // NOLINT(concurrency-mt-unsafe)
        if (!env)
            return e;
        std::string spec(env);
        std::size_t pos = 0;
        while (pos <= spec.size()) {
            std::size_t comma = spec.find(',', pos);
            std::string name = spec.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            if (name == "all") {
                e.fill(true);
            } else if (!name.empty()) {
                bool known = false;
                for (int f = 0; f < numTraceFlags; ++f)
                    if (name == traceFlagName(
                            static_cast<TraceFlag>(f))) {
                        e[static_cast<std::size_t>(f)] = true;
                        known = true;
                    }
                if (!known)
                    warn("QR_TRACE: unknown flag '%s'", name.c_str());
            }
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        // One switch arms both tracers: any stderr flag also starts
        // the structured event timeline (src/obs/event_trace.hh).
        for (bool on : e)
            if (on) {
                eventTrace().arm();
                break;
            }
        return e;
    }();
    return enabled;
}

} // namespace

const char *
traceFlagName(TraceFlag f)
{
    switch (f) {
      case TraceFlag::Chunk: return "chunk";
      case TraceFlag::Cbuf: return "cbuf";
      case TraceFlag::Syscall: return "syscall";
      case TraceFlag::Sched: return "sched";
      case TraceFlag::Signal: return "signal";
      case TraceFlag::Replay: return "replay";
      case TraceFlag::NumFlags: break;
    }
    return "?";
}

bool
traceEnabled(TraceFlag f)
{
    return flags()[static_cast<std::size_t>(f)];
}

void
tracef(TraceFlag f, const char *fmt, ...)
{
    if (!traceEnabled(f))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s: %s\n", traceFlagName(f), s.c_str());
}

void
traceOverride(TraceFlag f, bool on)
{
    flags()[static_cast<std::size_t>(f)] = on;
}

} // namespace qr
