/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every source of "randomness" in the simulator draws from a seeded Rng so
 * that a run is exactly reproducible from its seed. This property underpins
 * the record/replay determinism verification: recording the same seeded run
 * twice yields bit-identical logs.
 */

#ifndef QR_SIM_RNG_HH
#define QR_SIM_RNG_HH

#include <cstdint>

namespace qr
{

/**
 * xorshift64* generator. Small, fast, and deterministic across platforms;
 * statistical quality is more than sufficient for workload generation and
 * latency jitter.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Next 32-bit draw. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64() >> 32); }

    /** Uniform draw in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next64() % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability num/den. */
    bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

    /** Reseed the generator. */
    void seed(std::uint64_t s) { state = s ? s : 1; }

  private:
    std::uint64_t state;
};

/**
 * Strong 64-bit integer mixer (splitmix64 finalizer). Used to derive
 * independent hash functions, e.g. for the recorder's Bloom filters.
 * Inline: it sits on the per-retired-access record path.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace qr

#endif // QR_SIM_RNG_HH
