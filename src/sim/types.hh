/**
 * @file
 * Fundamental scalar types shared by every QuickRec module.
 */

#ifndef QR_SIM_TYPES_HH
#define QR_SIM_TYPES_HH

#include <cstdint>

namespace qr
{

/** Simulated time, measured in core clock cycles. */
using Tick = std::uint64_t;

/** Guest physical/virtual address (flat 32-bit space, word-addressable). */
using Addr = std::uint32_t;

/** Guest machine word. QR-ISA is a 32-bit word machine. */
using Word = std::uint32_t;

/** Signed view of a guest word, for arithmetic instructions. */
using SWord = std::int32_t;

/** Hardware core identifier. */
using CoreId = int;

/** Guest thread identifier, assigned by the guest kernel. */
using Tid = int;

/** Lamport timestamp carried on coherence messages and chunk records. */
using Timestamp = std::uint64_t;

/** Identifier of a recording context (Capo3 R-XID). */
using Rxid = std::uint32_t;

/** Sentinel for "no core". */
constexpr CoreId invalidCore = -1;

/** Sentinel for "no thread". */
constexpr Tid invalidTid = -1;

} // namespace qr

#endif // QR_SIM_TYPES_HH
