#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace qr
{

std::string
vcsprintf(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
parseFail(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    throw ParseError(s);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vcsprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

} // namespace qr
