/**
 * @file
 * Console table formatter used by the benchmark harness to print
 * paper-style result tables with aligned columns.
 */

#ifndef QR_SIM_TABLE_HH
#define QR_SIM_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace qr
{

/**
 * A simple column-aligned text table. Columns are declared up front;
 * rows are appended cell by cell, with numeric convenience overloads.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Start a new row. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &s);

    /** Append an integer cell. */
    Table &cell(std::uint64_t v);

    /** Append a signed integer cell. */
    Table &cell(std::int64_t v);

    /** Append a floating-point cell with the given precision. */
    Table &cell(double v, int precision = 2);

    /** Append a percentage cell formatted as "12.3%". */
    Table &cellPct(double v, int precision = 1);

    /** Render the table (header, separator, rows) to a string. */
    std::string str() const;

    /** Print the rendered table to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace qr

#endif // QR_SIM_TABLE_HH
