/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's Debug flags.
 *
 * Enable at run time with the QR_TRACE environment variable, a
 * comma-separated list of flag names (or "all"):
 *
 *     QR_TRACE=chunk,syscall ./build/tools/qrec run -w fft
 *
 * Trace lines go to stderr as "<flag>: <message>". The enabled-check
 * is a single array load, so instrumented code paths cost nearly
 * nothing when tracing is off.
 *
 * Setting any QR_TRACE flag also arms the structured event tracer
 * (src/obs/event_trace.hh), so one switch produces both the stderr
 * stream and the binary timeline `qrec trace` exports as Chrome
 * trace-event JSON.
 */

#ifndef QR_SIM_TRACE_HH
#define QR_SIM_TRACE_HH

#include <cstdarg>

namespace qr
{

/** Trace flags, one per instrumented subsystem. */
enum class TraceFlag : int
{
    Chunk,    //!< chunk terminations and their causes
    Cbuf,     //!< CBUF threshold/full signals and drains
    Syscall,  //!< guest system calls and results
    Sched,    //!< dispatch, preemption, migration
    Signal,   //!< signal posts and deliveries
    Replay,   //!< replayed chunks and injected records
    NumFlags,
};

/** Number of trace flags. */
constexpr int numTraceFlags = static_cast<int>(TraceFlag::NumFlags);

/** @return canonical lowercase name of a flag. */
const char *traceFlagName(TraceFlag f);

/** @return true if @p f was enabled via QR_TRACE. */
bool traceEnabled(TraceFlag f);

/** Emit one trace line (printf-style) if @p f is enabled. */
void tracef(TraceFlag f, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Force flags on/off programmatically (tests). */
void traceOverride(TraceFlag f, bool on);

} // namespace qr

#endif // QR_SIM_TRACE_HH
