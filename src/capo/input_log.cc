#include "capo/input_log.hh"

#include "rnr/chunk_record.hh" // varint helpers
#include "sim/logging.hh"

namespace qr
{

const char *
inputKindName(InputKind k)
{
    switch (k) {
      case InputKind::ThreadStart: return "thread-start";
      case InputKind::SyscallRet: return "syscall";
      case InputKind::Nondet: return "nondet";
      case InputKind::SignalDeliver: return "signal";
      case InputKind::ThreadExit: return "thread-exit";
    }
    return "?";
}

void
InputRecord::serialize(std::vector<std::uint8_t> &out) const
{
    out.push_back(static_cast<std::uint8_t>(kind));
    switch (kind) {
      case InputKind::ThreadStart:
        putVarint(out, pc);
        putVarint(out, sp);
        putVarint(out, arg);
        putVarint(out, parent);
        break;
      case InputKind::SyscallRet: {
        std::uint8_t flags = (hasNewPc ? 1 : 0) |
                             (copyWords.empty() ? 0 : 2);
        out.push_back(flags);
        putVarint(out, num);
        putVarint(out, ret);
        if (hasNewPc)
            putVarint(out, newPc);
        if (!copyWords.empty()) {
            putVarint(out, copyAddr);
            putVarint(out, copyWords.size());
            for (Word w : copyWords)
                putVarint(out, w);
        }
        break;
      }
      case InputKind::Nondet:
        putVarint(out, num);
        putVarint(out, ret);
        break;
      case InputKind::SignalDeliver:
        putVarint(out, num);
        putVarint(out, afterChunkSeq);
        putVarint(out, pc);
        putVarint(out, sp);
        putVarint(out, copyAddr);
        break;
      case InputKind::ThreadExit:
        putVarint(out, ret);
        putVarint(out, instrs);
        break;
    }
}

InputRecord
InputRecord::deserialize(const std::vector<std::uint8_t> &in,
                         std::size_t &pos)
{
    if (pos >= in.size())
        parseFail("input record past end of log");
    InputRecord r;
    r.kind = static_cast<InputKind>(in[pos++]);
    switch (r.kind) {
      case InputKind::ThreadStart:
        r.pc = static_cast<Word>(getVarint(in, pos));
        r.sp = static_cast<Word>(getVarint(in, pos));
        r.arg = static_cast<Word>(getVarint(in, pos));
        r.parent = static_cast<Word>(getVarint(in, pos));
        break;
      case InputKind::SyscallRet: {
        if (pos >= in.size())
            parseFail("truncated syscall record");
        std::uint8_t flags = in[pos++];
        r.num = static_cast<Word>(getVarint(in, pos));
        r.ret = static_cast<Word>(getVarint(in, pos));
        if (flags & 1) {
            r.hasNewPc = true;
            r.newPc = static_cast<Word>(getVarint(in, pos));
        }
        if (flags & 2) {
            r.copyAddr = static_cast<Addr>(getVarint(in, pos));
            std::uint64_t n = getVarint(in, pos);
            // Each copied word takes at least one byte; a count beyond
            // the remaining bytes is corruption, not a huge allocation.
            if (n > in.size() - pos)
                parseFail("copy-word count %llu exceeds log tail",
                          static_cast<unsigned long long>(n));
            r.copyWords.reserve(n);
            for (std::uint64_t i = 0; i < n; ++i)
                r.copyWords.push_back(
                    static_cast<Word>(getVarint(in, pos)));
        }
        break;
      }
      case InputKind::Nondet:
        r.num = static_cast<Word>(getVarint(in, pos));
        r.ret = static_cast<Word>(getVarint(in, pos));
        break;
      case InputKind::SignalDeliver:
        r.num = static_cast<Word>(getVarint(in, pos));
        r.afterChunkSeq = getVarint(in, pos);
        r.pc = static_cast<Word>(getVarint(in, pos));
        r.sp = static_cast<Word>(getVarint(in, pos));
        r.copyAddr = static_cast<Addr>(getVarint(in, pos));
        break;
      case InputKind::ThreadExit:
        r.ret = static_cast<Word>(getVarint(in, pos));
        r.instrs = getVarint(in, pos);
        break;
      default:
        parseFail("corrupt input log: kind %u",
                  static_cast<unsigned>(r.kind));
    }
    return r;
}

std::uint64_t
InputRecord::packedBytes() const
{
    std::vector<std::uint8_t> tmp;
    serialize(tmp);
    return tmp.size();
}

} // namespace qr
