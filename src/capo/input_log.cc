#include "capo/input_log.hh"

#include "rnr/chunk_record.hh" // varint helpers
#include "sim/logging.hh"

namespace qr
{

const char *
inputKindName(InputKind k)
{
    switch (k) {
      case InputKind::ThreadStart: return "thread-start";
      case InputKind::SyscallRet: return "syscall";
      case InputKind::Nondet: return "nondet";
      case InputKind::SignalDeliver: return "signal";
      case InputKind::ThreadExit: return "thread-exit";
    }
    return "?";
}

void
InputRecord::serialize(std::vector<std::uint8_t> &out) const
{
    out.push_back(static_cast<std::uint8_t>(kind));
    switch (kind) {
      case InputKind::ThreadStart:
        putVarint(out, pc);
        putVarint(out, sp);
        putVarint(out, arg);
        putVarint(out, parent);
        break;
      case InputKind::SyscallRet: {
        std::uint8_t flags = (hasNewPc ? 1 : 0) |
                             (copyWords.empty() ? 0 : 2);
        out.push_back(flags);
        putVarint(out, num);
        putVarint(out, ret);
        if (hasNewPc)
            putVarint(out, newPc);
        if (!copyWords.empty()) {
            putVarint(out, copyAddr);
            putVarint(out, copyWords.size());
            for (Word w : copyWords)
                putVarint(out, w);
        }
        break;
      }
      case InputKind::Nondet:
        putVarint(out, num);
        putVarint(out, ret);
        break;
      case InputKind::SignalDeliver:
        putVarint(out, num);
        putVarint(out, afterChunkSeq);
        putVarint(out, pc);
        putVarint(out, sp);
        putVarint(out, copyAddr);
        break;
      case InputKind::ThreadExit:
        putVarint(out, ret);
        putVarint(out, instrs);
        break;
    }
}

InputRecord
InputRecord::deserialize(const std::vector<std::uint8_t> &in,
                         std::size_t &pos)
{
    return deserializeFrom(in, pos);
}

std::uint64_t
InputRecord::packedBytes() const
{
    std::vector<std::uint8_t> tmp;
    serialize(tmp);
    return tmp.size();
}

} // namespace qr
