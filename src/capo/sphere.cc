#include "capo/sphere.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace qr
{

namespace
{

/** Threads beyond this are corruption, not a real recording. */
constexpr std::uint64_t maxSphereTid = 1u << 20;

/** log2 of a power-of-two line size. */
int
lineShift(std::uint32_t line_bytes)
{
    int s = 0;
    while ((1u << s) < line_bytes)
        s++;
    return s;
}

void
putLineSet(std::vector<std::uint8_t> &out, const std::vector<Addr> &lines,
           int shift)
{
    // Sorted unique line addresses delta-encode compactly once the
    // always-zero alignment bits are shifted out.
    putVarint(out, lines.size());
    Addr prev = 0;
    for (Addr a : lines) {
        putVarint(out, static_cast<std::uint64_t>(a - prev) >> shift);
        prev = a;
    }
}

/** Decode a line set into @p lines (cleared first). */
template <class Bytes>
void
getLineSetInto(const Bytes &in, std::size_t &pos, int shift,
               std::vector<Addr> &lines)
{
    std::uint64_t n = getVarintFrom(in, pos);
    if (n > in.size() - pos)
        parseFail("shadow-line count %llu exceeds log tail",
                  static_cast<unsigned long long>(n));
    lines.clear();
    lines.reserve(n);
    Addr prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = getVarintFrom(in, pos) << shift;
        if (i > 0 && delta == 0)
            parseFail("duplicate shadow line in sphere log");
        std::uint64_t line = prev + delta;
        if (line > std::numeric_limits<Addr>::max())
            parseFail("shadow line overflows the address space");
        prev = static_cast<Addr>(line);
        lines.push_back(prev);
    }
}

template <class Bytes>
std::vector<Addr>
getLineSet(const Bytes &in, std::size_t &pos, int shift)
{
    std::vector<Addr> lines;
    getLineSetInto(in, pos, shift, lines);
    return lines;
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

template <class Bytes>
std::uint64_t
get64From(const Bytes &in, std::size_t &pos)
{
    if (in.size() - pos < 8)
        parseFail("sphere log truncated inside a 64-bit field");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(in[pos + i]) << (8 * i);
    pos += 8;
    return v;
}

/**
 * Parse the v3 trailing device section into @p devices. Timestamps
 * must be strictly monotonic per agent (the schedule merge depends on
 * it); semantic oddities (duplicate agent ids, zero-word events, bad
 * kinds) decode fine here and are the verifier's QRV018 business.
 */
template <class Bytes>
void
parseDeviceSection(const Bytes &in, std::size_t &pos,
                   std::vector<DeviceStream> &devices)
{
    std::uint64_t nagents = getVarintFrom(in, pos);
    if (nagents > in.size() - pos)
        parseFail("device-stream count %llu exceeds log tail",
                  static_cast<unsigned long long>(nagents));
    devices.reserve(nagents);
    for (std::uint64_t i = 0; i < nagents; ++i) {
        DeviceStream d;
        d.agentId =
            static_cast<std::uint32_t>(getVarintFrom(in, pos));
        d.kind = static_cast<DeviceKind>(getVarintFrom(in, pos));
        d.seed = get64From(in, pos);
        std::uint64_t nev = getVarintFrom(in, pos);
        if (nev > in.size() - pos)
            parseFail("device-event count %llu exceeds log tail",
                      static_cast<unsigned long long>(nev));
        d.events.reserve(nev);
        Timestamp prev = 0;
        for (std::uint64_t j = 0; j < nev; ++j) {
            DeviceEvent ev;
            ev.ts = prev + getVarintFrom(in, pos);
            if (j > 0 && ev.ts <= prev)
                parseFail("agent %u: non-monotonic device-event "
                          "timestamps in sphere log", d.agentId);
            ev.addr = static_cast<Addr>(getVarintFrom(in, pos));
            ev.words =
                static_cast<std::uint32_t>(getVarintFrom(in, pos));
            ev.doorbell = static_cast<Addr>(getVarintFrom(in, pos));
            ev.digest = get64From(in, pos);
            ev.seq = j;
            prev = ev.ts;
            d.events.push_back(ev);
        }
        devices.push_back(std::move(d));
    }
}

} // namespace

bool
SphereLogs::hasShadows() const
{
    if (!meta.exactShadow)
        return false;
    for (const auto &[tid, logs] : threads)
        if (logs.shadows.size() != logs.chunks.size())
            return false;
    return true;
}

void
SphereLogs::sortChunks()
{
    for (auto &[tid, logs] : threads) {
        std::stable_sort(logs.chunks.begin(), logs.chunks.end(),
                         [](const ChunkRecord &a, const ChunkRecord &b) {
                             return a.ts < b.ts;
                         });
        for (std::size_t i = 1; i < logs.chunks.size(); ++i)
            qr_assert(logs.chunks[i - 1].ts < logs.chunks[i].ts,
                      "tid %d: duplicate chunk timestamp %llu", tid,
                      static_cast<unsigned long long>(logs.chunks[i].ts));
    }
}

std::uint64_t
SphereLogs::inputLogBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[tid, logs] : threads)
        for (const auto &rec : logs.input)
            total += rec.packedBytes();
    return total;
}

std::uint64_t
SphereLogs::memoryLogBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[tid, logs] : threads) {
        std::vector<std::uint8_t> buf;
        Timestamp prev = 0;
        for (const auto &rec : logs.chunks) {
            packCompact(rec, prev, buf);
            prev = rec.ts;
        }
        total += buf.size();
    }
    return total;
}

std::uint64_t
SphereLogs::totalChunks() const
{
    std::uint64_t total = 0;
    for (const auto &[tid, logs] : threads)
        total += logs.chunks.size();
    return total;
}

std::vector<std::uint8_t>
SphereLogs::serialize() const
{
    // v2 payload (sync points, shadow sets, recording metadata) forces
    // the new format; plain spheres keep the legacy byte stream so old
    // artifacts and new ones hash identically. Device streams bump the
    // version once more: v3 is the v2 layout plus a trailing device
    // section, chosen only when an agent actually recorded something.
    bool v3 = !devices.empty();
    bool v2 = v3 || meta != RecordMeta{};
    for (const auto &[tid, logs] : threads)
        if (!logs.syncs.empty() || !logs.shadows.empty())
            v2 = true;

    std::vector<std::uint8_t> out;
    const char magic[4] = {'Q', 'R', 'S',
                           v3 ? '3' : (v2 ? '2' : '1')};
    out.insert(out.end(), magic, magic + 4);
    putVarint(out, sphereId);
    putVarint(out, memBytes);
    putVarint(out, userTop);
    int shift = lineShift(meta.lineBytes);
    if (v2) {
        putVarint(out, meta.lineBytes);
        putVarint(out, meta.bloomBits);
        putVarint(out, meta.bloomHashes);
        putVarint(out, meta.exactShadow ? 1 : 0);
    }
    putVarint(out, threads.size());
    for (const auto &[tid, logs] : threads) {
        putVarint(out, static_cast<std::uint64_t>(tid));
        putVarint(out, logs.input.size());
        for (const auto &rec : logs.input)
            rec.serialize(out);
        putVarint(out, logs.chunks.size());
        Timestamp prev = 0;
        for (const auto &rec : logs.chunks) {
            packCompact(rec, prev, out);
            prev = rec.ts;
        }
        if (!v2)
            continue;
        putVarint(out, logs.syncs.size());
        for (const SyncPoint &sp : logs.syncs) {
            putVarint(out, sp.afterChunkSeq);
            putVarint(out, static_cast<std::uint64_t>(sp.other));
            putVarint(out, sp.clockFloor);
        }
        qr_assert(logs.shadows.empty() ||
                      logs.shadows.size() == logs.chunks.size(),
                  "tid %d: shadow sets out of step with chunk log", tid);
        putVarint(out, logs.shadows.size());
        for (const ChunkShadow &sh : logs.shadows) {
            putLineSet(out, sh.reads, shift);
            putLineSet(out, sh.writes, shift);
        }
    }
    if (v3) {
        putVarint(out, devices.size());
        for (const DeviceStream &d : devices) {
            putVarint(out, d.agentId);
            putVarint(out, static_cast<std::uint64_t>(d.kind));
            put64(out, d.seed);
            putVarint(out, d.events.size());
            Timestamp prev = 0;
            for (const DeviceEvent &ev : d.events) {
                putVarint(out, ev.ts - prev);
                putVarint(out, ev.addr);
                putVarint(out, ev.words);
                putVarint(out, ev.doorbell);
                put64(out, ev.digest);
                prev = ev.ts;
            }
        }
    }
    return out;
}

namespace
{

/**
 * Parse the sphere header (magic, ids, v2+ metadata) into @p s.
 * @return the format version (1, 2, or 3). Throws on anything
 * unusable.
 */
template <class Bytes>
int
parseSphereHeader(const Bytes &in, std::size_t &pos, SphereLogs &s)
{
    if (in.size() < 4 || in[0] != 'Q' || in[1] != 'R' || in[2] != 'S')
        parseFail("bad sphere log magic");
    if (in[3] < '1' || in[3] > '3') {
        // Distinguish "not a sphere at all" from "a sphere written by a
        // newer tool": the latter is common user input worth a precise
        // message.
        if (in[3] > '3' && in[3] <= '9')
            parseFail("sphere log version '%c' is from the future "
                      "(this build reads versions 1-3)", in[3]);
        parseFail("bad sphere log magic");
    }
    int version = in[3] - '0';
    bool v2 = version >= 2;
    pos = 4;
    s.sphereId = static_cast<std::uint32_t>(getVarintFrom(in, pos));
    s.memBytes = static_cast<std::uint32_t>(getVarintFrom(in, pos));
    s.userTop = static_cast<Addr>(getVarintFrom(in, pos));
    if (v2) {
        s.meta.lineBytes =
            static_cast<std::uint32_t>(getVarintFrom(in, pos));
        s.meta.bloomBits =
            static_cast<std::uint32_t>(getVarintFrom(in, pos));
        s.meta.bloomHashes =
            static_cast<std::uint32_t>(getVarintFrom(in, pos));
        s.meta.exactShadow = getVarintFrom(in, pos) != 0;
        if (s.meta.lineBytes == 0 || s.meta.lineBytes > 4096 ||
            (s.meta.lineBytes & (s.meta.lineBytes - 1)) != 0)
            parseFail("implausible line size %u in sphere log",
                      s.meta.lineBytes);
        if (s.meta.bloomBits == 0 ||
            (s.meta.bloomBits & (s.meta.bloomBits - 1)) != 0 ||
            s.meta.bloomHashes == 0 || s.meta.bloomHashes > 16)
            parseFail("implausible Bloom geometry %u/%u in sphere log",
                      s.meta.bloomBits, s.meta.bloomHashes);
    }
    return version;
}

/**
 * Parse one thread's log body into @p logs *in place*, so that when a
 * ParseError is thrown mid-thread the caller still holds the longest
 * valid prefix (the tolerant loader's salvage unit).
 */
template <class Bytes>
void
parseThreadBody(const Bytes &in, std::size_t &pos,
                bool v2, int shift, Tid tid, ThreadLogs &logs)
{
    std::uint64_t nin = getVarintFrom(in, pos);
    // Every record is at least one byte, so a count larger than the
    // remaining stream is corruption; refuse before reserving.
    if (nin > in.size() - pos)
        parseFail("input-record count %llu exceeds log tail",
                  static_cast<unsigned long long>(nin));
    logs.input.reserve(nin);
    for (std::uint64_t j = 0; j < nin; ++j)
        logs.input.push_back(InputRecord::deserializeFrom(in, pos));
    std::uint64_t nch = getVarintFrom(in, pos);
    if (nch > in.size() - pos)
        parseFail("chunk-record count %llu exceeds log tail",
                  static_cast<unsigned long long>(nch));
    logs.chunks.reserve(nch);
    Timestamp prev = 0;
    for (std::uint64_t j = 0; j < nch; ++j) {
        ChunkRecord rec = unpackCompactFrom(in, pos, prev, tid);
        // A zero timestamp delta decodes fine but breaks the strict
        // per-thread monotonicity every consumer relies on; reject it
        // here instead of asserting later.
        if (j > 0 && rec.ts <= prev)
            parseFail("tid %d: non-monotonic chunk timestamps in "
                      "sphere log", tid);
        logs.chunks.push_back(rec);
        prev = rec.ts;
    }
    if (!v2)
        return;
    std::uint64_t nsync = getVarintFrom(in, pos);
    if (nsync > in.size() - pos)
        parseFail("sync-point count %llu exceeds log tail",
                  static_cast<unsigned long long>(nsync));
    logs.syncs.reserve(nsync);
    for (std::uint64_t j = 0; j < nsync; ++j) {
        SyncPoint sp;
        sp.afterChunkSeq = getVarintFrom(in, pos);
        std::uint64_t other = getVarintFrom(in, pos);
        if (other > maxSphereTid)
            parseFail("sync partner id %llu out of range",
                      static_cast<unsigned long long>(other));
        sp.other = static_cast<Tid>(other);
        sp.clockFloor = getVarintFrom(in, pos);
        if (sp.afterChunkSeq > nch)
            parseFail("sync point past the end of tid %d's "
                      "chunk log", tid);
        logs.syncs.push_back(sp);
    }
    std::uint64_t nshadow = getVarintFrom(in, pos);
    if (nshadow != 0 && nshadow != nch)
        parseFail("shadow-set count %llu does not match %llu "
                  "chunks",
                  static_cast<unsigned long long>(nshadow),
                  static_cast<unsigned long long>(nch));
    logs.shadows.reserve(nshadow);
    for (std::uint64_t j = 0; j < nshadow; ++j) {
        ChunkShadow sh;
        sh.reads = getLineSet(in, pos, shift);
        sh.writes = getLineSet(in, pos, shift);
        logs.shadows.push_back(std::move(sh));
    }
}

/** Parse a thread id, range-checked. */
template <class Bytes>
Tid
parseThreadId(const Bytes &in, std::size_t &pos)
{
    std::uint64_t rawTid = getVarintFrom(in, pos);
    if (rawTid > maxSphereTid)
        parseFail("thread id %llu out of range in sphere log",
                  static_cast<unsigned long long>(rawTid));
    return static_cast<Tid>(rawTid);
}

template <class Bytes>
SphereLogs
deserializeImpl(const Bytes &in)
{
    SphereLogs s;
    std::size_t pos = 0;
    int version = parseSphereHeader(in, pos, s);
    bool v2 = version >= 2;
    int shift = lineShift(s.meta.lineBytes);
    std::uint64_t nthreads = getVarintFrom(in, pos);
    for (std::uint64_t i = 0; i < nthreads; ++i) {
        Tid tid = parseThreadId(in, pos);
        ThreadLogs logs;
        parseThreadBody(in, pos, v2, shift, tid, logs);
        if (!s.threads.emplace(tid, std::move(logs)).second)
            parseFail("duplicate thread %d in sphere log", tid);
    }
    if (version >= 3)
        parseDeviceSection(in, pos, s.devices);
    if (pos != in.size())
        parseFail("trailing bytes in sphere log");
    return s;
}

} // namespace

SphereLogs
SphereLogs::deserialize(const std::vector<std::uint8_t> &in)
{
    return deserializeImpl(in);
}

SphereLogs
SphereLogs::deserialize(const PayloadView &in)
{
    return deserializeImpl(in);
}

SphereSalvage
SphereLogs::deserializeTolerant(const std::vector<std::uint8_t> &in)
{
    SphereSalvage salvage;
    SphereLogs &s = salvage.logs;
    std::size_t pos = 0;
    // An unusable header means there is nothing to salvage: let the
    // ParseError propagate to the caller.
    int version = parseSphereHeader(in, pos, s);
    bool v2 = version >= 2;
    int shift = lineShift(s.meta.lineBytes);

    ThreadLogs *open = nullptr; //!< thread being parsed (fresh entry)
    Tid openTid = invalidTid;
    try {
        std::uint64_t nthreads = getVarint(in, pos);
        salvage.threadsDeclared = nthreads;
        for (std::uint64_t i = 0; i < nthreads; ++i) {
            Tid tid = parseThreadId(in, pos);
            auto [it, fresh] = s.threads.emplace(tid, ThreadLogs{});
            if (!fresh)
                parseFail("duplicate thread %d in sphere log", tid);
            open = &it->second;
            openTid = tid;
            parseThreadBody(in, pos, v2, shift, tid, *open);
            open = nullptr;
            salvage.threadsSalvaged++;
        }
        if (version >= 3)
            parseDeviceSection(in, pos, s.devices);
        if (pos != in.size())
            parseFail("trailing bytes in sphere log");
        salvage.complete = true;
    } catch (const ParseError &e) {
        salvage.note = e.what();
        if (open) {
            // The corruption landed inside this thread's body: keep the
            // valid prefix already committed. Shadow sets must be
            // chunk-parallel or absent, so a partial set is dropped.
            if (open->shadows.size() != open->chunks.size())
                open->shadows.clear();
            if (open->input.empty() && open->chunks.empty()) {
                s.threads.erase(openTid);
            } else {
                salvage.threadsPartial++;
            }
        }
    }
    return salvage;
}

std::vector<ChunkRecord>
SphereLogs::chunksByTimestamp() const
{
    std::vector<ChunkRecord> all;
    all.reserve(totalChunks());
    for (const auto &[tid, logs] : threads) {
        // Log-shaped input reaches this path (loadSphere/qrec), so a
        // malformed sphere must surface as a recoverable ParseError,
        // not an assertion failure.
        for (std::size_t i = 0; i < logs.chunks.size(); ++i) {
            if (logs.chunks[i].tid != tid)
                parseFail("chunk log of tid %d contains tid %d", tid,
                          logs.chunks[i].tid);
            if (i > 0 && logs.chunks[i - 1].ts >= logs.chunks[i].ts)
                parseFail("tid %d: non-monotonic chunk timestamps", tid);
        }
        all.insert(all.end(), logs.chunks.begin(), logs.chunks.end());
    }
    std::sort(all.begin(), all.end(),
              [](const ChunkRecord &a, const ChunkRecord &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  return a.tid < b.tid;
              });
    return all;
}

std::map<Tid, std::vector<std::uint32_t>>
SphereLogs::chunkIndexByThread(
    const std::vector<ChunkRecord> &schedule)
{
    std::map<Tid, std::vector<std::uint32_t>> index;
    for (std::uint32_t i = 0; i < schedule.size(); ++i)
        index[schedule[i].tid].push_back(i);
    return index;
}

// --- SphereCursor -------------------------------------------------------

SphereCursor::SphereCursor(PayloadView payload) : payload_(payload)
{
    SphereLogs hdr;
    std::size_t pos = 0;
    int version = parseSphereHeader(payload_, pos, hdr);
    v2_ = version >= 2;
    meta_ = hdr.meta;
    sphereId_ = hdr.sphereId;
    memBytes_ = hdr.memBytes;
    userTop_ = hdr.userTop;
    shift_ = lineShift(meta_.lineBytes);

    // The validating scan applies exactly the eager parser's checks in
    // the same order (so corrupt input fails with the same messages)
    // but materializes nothing beyond offsets, counts, and syncs.
    // Pages already validated are dropped as the scan moves on; next()
    // re-faults them on demand.
    std::size_t scanEvictLo = 0;
    auto scanEvict = [&](std::size_t upTo) {
        if (upTo - scanEvictLo >= (std::size_t{8} << 20)) {
            payload_.dontNeedRange(scanEvictLo, upTo);
            scanEvictLo = upTo;
        }
    };

    std::uint64_t nthreads = getVarintFrom(payload_, pos);
    std::vector<Addr> scratch;
    for (std::uint64_t i = 0; i < nthreads; ++i) {
        Tid tid = parseThreadId(payload_, pos);
        ThreadState t;
        t.tid = tid;
        t.sectionStart = pos;

        std::uint64_t nin = getVarintFrom(payload_, pos);
        if (nin > payload_.size() - pos)
            parseFail("input-record count %llu exceeds log tail",
                      static_cast<unsigned long long>(nin));
        for (std::uint64_t j = 0; j < nin; ++j)
            (void)InputRecord::deserializeFrom(payload_, pos);

        std::uint64_t nch = getVarintFrom(payload_, pos);
        if (nch > payload_.size() - pos)
            parseFail("chunk-record count %llu exceeds log tail",
                      static_cast<unsigned long long>(nch));
        t.nch = nch;
        t.chunkStart = pos;
        Timestamp prev = 0;
        for (std::uint64_t j = 0; j < nch; ++j) {
            ChunkRecord rec = unpackCompactFrom(payload_, pos, prev,
                                                tid);
            if (j > 0 && rec.ts <= prev)
                parseFail("tid %d: non-monotonic chunk timestamps in "
                          "sphere log", tid);
            prev = rec.ts;
            if ((j & 0xffff) == 0)
                scanEvict(pos);
        }
        t.chunkEnd = pos;
        t.chunkOff = t.chunkStart;

        std::uint64_t nshadow = 0;
        if (v2_) {
            std::uint64_t nsync = getVarintFrom(payload_, pos);
            if (nsync > payload_.size() - pos)
                parseFail("sync-point count %llu exceeds log tail",
                          static_cast<unsigned long long>(nsync));
            t.syncs.reserve(nsync);
            for (std::uint64_t j = 0; j < nsync; ++j) {
                SyncPoint sp;
                sp.afterChunkSeq = getVarintFrom(payload_, pos);
                std::uint64_t other = getVarintFrom(payload_, pos);
                if (other > maxSphereTid)
                    parseFail("sync partner id %llu out of range",
                              static_cast<unsigned long long>(other));
                sp.other = static_cast<Tid>(other);
                sp.clockFloor = getVarintFrom(payload_, pos);
                if (sp.afterChunkSeq > nch)
                    parseFail("sync point past the end of tid %d's "
                              "chunk log", tid);
                t.syncs.push_back(sp);
            }
            nshadow = getVarintFrom(payload_, pos);
            if (nshadow != 0 && nshadow != nch)
                parseFail("shadow-set count %llu does not match %llu "
                          "chunks",
                          static_cast<unsigned long long>(nshadow),
                          static_cast<unsigned long long>(nch));
            t.shadowOff = pos;
            for (std::uint64_t j = 0; j < nshadow; ++j) {
                getLineSetInto(payload_, pos, shift_, scratch);
                getLineSetInto(payload_, pos, shift_, scratch);
                if ((j & 0xfff) == 0)
                    scanEvict(pos);
            }
        } else {
            t.shadowOff = pos;
        }
        t.hasShadows = nshadow == nch;
        t.sectionEnd = pos;
        t.evictLo = t.sectionStart;
        t.evictMidLo = t.chunkEnd;
        totalChunks_ += nch;

        for (const ThreadState &prior : threads_)
            if (prior.tid == tid)
                parseFail("duplicate thread %d in sphere log", tid);
        threads_.push_back(std::move(t));
        scanEvict(pos);
    }
    if (version >= 3)
        parseDeviceSection(payload_, pos, devices_);
    if (pos != payload_.size())
        parseFail("trailing bytes in sphere log");

    std::sort(threads_.begin(), threads_.end(),
              [](const ThreadState &a, const ThreadState &b) {
                  return a.tid < b.tid;
              });
    tids_.reserve(threads_.size());
    exact_ = meta_.exactShadow;
    for (auto &t : threads_) {
        tids_.push_back(t.tid);
        if (!t.hasShadows)
            exact_ = false;
    }
    for (auto &t : threads_)
        advance(t);
}

std::uint64_t
SphereCursor::chunkCount(std::size_t slot) const
{
    return threads_[slot].nch;
}

const std::vector<SyncPoint> &
SphereCursor::syncsOf(std::size_t slot) const
{
    return threads_[slot].syncs;
}

void
SphereCursor::forEachChunkTs(
    std::size_t slot,
    const std::function<bool(std::uint64_t, Timestamp)> &fn) const
{
    const ThreadState &t = threads_[slot];
    std::size_t pos = t.chunkStart;
    Timestamp prev = 0;
    for (std::uint64_t j = 0; j < t.nch; ++j) {
        ChunkRecord rec = unpackCompactFrom(payload_, pos, prev,
                                            t.tid);
        prev = rec.ts;
        if (!fn(j, rec.ts))
            return;
    }
}

void
SphereCursor::advance(ThreadState &t)
{
    if (t.decoded >= t.nch) {
        t.hasPending = false;
        return;
    }
    t.pending = unpackCompactFrom(payload_, t.chunkOff, t.prevTs,
                                  t.tid);
    t.prevTs = t.pending.ts;
    t.decoded++;
    t.hasPending = true;
}

bool
SphereCursor::next(CursorChunk &out)
{
    ThreadState *best = nullptr;
    for (auto &t : threads_) {
        if (!t.hasPending)
            continue;
        if (!best || t.pending.ts < best->pending.ts ||
            (t.pending.ts == best->pending.ts && t.tid < best->tid))
            best = &t;
    }
    if (!best)
        return false;
    out.rec = best->pending;
    out.schedule = emitted_++;
    out.posInThread = static_cast<std::uint32_t>(best->idx++);
    out.shadow = nullptr;
    if (exact_) {
        getLineSetInto(payload_, best->shadowOff, shift_,
                       best->shadowBuf.reads);
        getLineSetInto(payload_, best->shadowOff, shift_,
                       best->shadowBuf.writes);
        out.shadow = &best->shadowBuf;
    }
    advance(*best);
    return true;
}

std::uint64_t
SphereCursor::evictConsumed()
{
    std::uint64_t released = 0;
    for (auto &t : threads_) {
        // Two consumed intervals per thread: the head (inputs + chunk
        // records already decoded) and the tail (syncs held in memory,
        // plus shadows already handed out). The bytes between the two
        // are chunk records next() has not reached yet.
        // Advance a sweep marker only when bytes were actually
        // released: dontNeedRange is page-and-segment granular, so a
        // narrow interval releases nothing -- moving the marker past
        // it anyway would leak those pages forever. Left in place, the
        // interval simply grows until it spans a whole page.
        auto sweep = [&](std::size_t &lo, std::size_t hi) {
            if (hi <= lo)
                return;
            std::size_t r = payload_.dontNeedRange(lo, hi);
            if (r > 0) {
                released += r;
                lo = hi;
            }
        };
        sweep(t.evictLo, t.chunkOff);
        sweep(t.evictMidLo, exact_ ? t.shadowOff : t.sectionEnd);
    }
    return released;
}

std::uint64_t
SphereCursor::residentBytes() const
{
    std::uint64_t bytes = sizeof(SphereCursor);
    for (const auto &t : threads_) {
        bytes += sizeof(ThreadState);
        bytes += t.syncs.size() * sizeof(SyncPoint);
        bytes += (t.shadowBuf.reads.size() +
                  t.shadowBuf.writes.size()) * sizeof(Addr);
    }
    return bytes;
}

} // namespace qr
