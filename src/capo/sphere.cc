#include "capo/sphere.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace qr
{

void
SphereLogs::sortChunks()
{
    for (auto &[tid, logs] : threads) {
        std::stable_sort(logs.chunks.begin(), logs.chunks.end(),
                         [](const ChunkRecord &a, const ChunkRecord &b) {
                             return a.ts < b.ts;
                         });
        for (std::size_t i = 1; i < logs.chunks.size(); ++i)
            qr_assert(logs.chunks[i - 1].ts < logs.chunks[i].ts,
                      "tid %d: duplicate chunk timestamp %llu", tid,
                      static_cast<unsigned long long>(logs.chunks[i].ts));
    }
}

std::uint64_t
SphereLogs::inputLogBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[tid, logs] : threads)
        for (const auto &rec : logs.input)
            total += rec.packedBytes();
    return total;
}

std::uint64_t
SphereLogs::memoryLogBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[tid, logs] : threads) {
        std::vector<std::uint8_t> buf;
        Timestamp prev = 0;
        for (const auto &rec : logs.chunks) {
            packCompact(rec, prev, buf);
            prev = rec.ts;
        }
        total += buf.size();
    }
    return total;
}

std::uint64_t
SphereLogs::totalChunks() const
{
    std::uint64_t total = 0;
    for (const auto &[tid, logs] : threads)
        total += logs.chunks.size();
    return total;
}

std::vector<std::uint8_t>
SphereLogs::serialize() const
{
    std::vector<std::uint8_t> out;
    // Magic + header.
    const char magic[4] = {'Q', 'R', 'S', '1'};
    out.insert(out.end(), magic, magic + 4);
    putVarint(out, sphereId);
    putVarint(out, memBytes);
    putVarint(out, userTop);
    putVarint(out, threads.size());
    for (const auto &[tid, logs] : threads) {
        putVarint(out, static_cast<std::uint64_t>(tid));
        putVarint(out, logs.input.size());
        for (const auto &rec : logs.input)
            rec.serialize(out);
        putVarint(out, logs.chunks.size());
        Timestamp prev = 0;
        for (const auto &rec : logs.chunks) {
            packCompact(rec, prev, out);
            prev = rec.ts;
        }
    }
    return out;
}

SphereLogs
SphereLogs::deserialize(const std::vector<std::uint8_t> &in)
{
    SphereLogs s;
    if (in.size() < 4 || in[0] != 'Q' || in[1] != 'R' || in[2] != 'S' ||
        in[3] != '1')
        parseFail("bad sphere log magic");
    std::size_t pos = 4;
    s.sphereId = static_cast<std::uint32_t>(getVarint(in, pos));
    s.memBytes = static_cast<std::uint32_t>(getVarint(in, pos));
    s.userTop = static_cast<Addr>(getVarint(in, pos));
    std::uint64_t nthreads = getVarint(in, pos);
    for (std::uint64_t i = 0; i < nthreads; ++i) {
        Tid tid = static_cast<Tid>(getVarint(in, pos));
        ThreadLogs logs;
        std::uint64_t nin = getVarint(in, pos);
        // Every record is at least one byte, so a count larger than the
        // remaining stream is corruption; refuse before reserving.
        if (nin > in.size() - pos)
            parseFail("input-record count %llu exceeds log tail",
                      static_cast<unsigned long long>(nin));
        logs.input.reserve(nin);
        for (std::uint64_t j = 0; j < nin; ++j)
            logs.input.push_back(InputRecord::deserialize(in, pos));
        std::uint64_t nch = getVarint(in, pos);
        if (nch > in.size() - pos)
            parseFail("chunk-record count %llu exceeds log tail",
                      static_cast<unsigned long long>(nch));
        logs.chunks.reserve(nch);
        Timestamp prev = 0;
        for (std::uint64_t j = 0; j < nch; ++j) {
            logs.chunks.push_back(unpackCompact(in, pos, prev, tid));
            prev = logs.chunks.back().ts;
        }
        if (!s.threads.emplace(tid, std::move(logs)).second)
            parseFail("duplicate thread %d in sphere log", tid);
    }
    if (pos != in.size())
        parseFail("trailing bytes in sphere log");
    return s;
}

std::vector<ChunkRecord>
SphereLogs::chunksByTimestamp() const
{
    std::vector<ChunkRecord> all;
    all.reserve(totalChunks());
    for (const auto &[tid, logs] : threads) {
        for (std::size_t i = 0; i < logs.chunks.size(); ++i) {
            qr_assert(logs.chunks[i].tid == tid,
                      "chunk log of tid %d contains tid %d", tid,
                      logs.chunks[i].tid);
            if (i > 0)
                qr_assert(logs.chunks[i - 1].ts < logs.chunks[i].ts,
                          "tid %d: non-monotonic chunk timestamps", tid);
        }
        all.insert(all.end(), logs.chunks.begin(), logs.chunks.end());
    }
    std::sort(all.begin(), all.end(),
              [](const ChunkRecord &a, const ChunkRecord &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  return a.tid < b.tid;
              });
    return all;
}

std::map<Tid, std::vector<std::uint32_t>>
SphereLogs::chunkIndexByThread(
    const std::vector<ChunkRecord> &schedule)
{
    std::map<Tid, std::vector<std::uint32_t>> index;
    for (std::uint32_t i = 0; i < schedule.size(); ++i)
        index[schedule[i].tid].push_back(i);
    return index;
}

} // namespace qr
