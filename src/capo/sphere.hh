/**
 * @file
 * Replay sphere logs: the complete recording artifact.
 *
 * A replay sphere groups the threads of one recorded application
 * (Capo's abstraction). Its artifact is, per thread, an input log and a
 * memory (chunk) log. The logs serialize to a packed byte stream that
 * both the log-size experiments and the file-based examples use.
 */

#ifndef QR_CAPO_SPHERE_HH
#define QR_CAPO_SPHERE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "bus/device_stream.hh"
#include "capo/input_log.hh"
#include "capo/payload_view.hh"
#include "rnr/chunk_record.hh"
#include "sim/types.hh"

namespace qr
{

/**
 * A kernel-level synchronization edge recorded for one thread: after
 * this thread's chunk number @p afterChunkSeq (per-thread index of the
 * first chunk logged after the wake; equal to the chunk-log size when
 * no chunk follows), everything thread @p other logged with a
 * timestamp strictly below @p clockFloor happens-before this thread.
 * Recorded at spawn (other = parent) and at kernel wake edges
 * (join/futex, other = the waker). The offline analyzer uses these to
 * separate programmatic synchronization from raw data communication.
 */
struct SyncPoint
{
    std::uint64_t afterChunkSeq = 0;
    Tid other = invalidTid;
    Timestamp clockFloor = 0;

    bool operator==(const SyncPoint &o) const = default;
};

/**
 * Recording configuration persisted with the sphere (v2 format):
 * everything the offline analyzer needs to re-derive filter behavior
 * from the exact shadow sets without access to the recorder.
 */
struct RecordMeta
{
    std::uint32_t lineBytes = 64;
    std::uint32_t bloomBits = 1024;
    std::uint32_t bloomHashes = 2;
    bool exactShadow = false;

    bool operator==(const RecordMeta &o) const = default;
};

/** The two logs of one sphere thread. */
struct ThreadLogs
{
    std::vector<InputRecord> input;
    std::vector<ChunkRecord> chunks;

    /** Kernel synchronization edges affecting this thread (v2). */
    std::vector<SyncPoint> syncs;

    /**
     * Exact shadow sets, parallel to @p chunks (empty when recorded
     * without exactShadow). Attached by Rsm::finalize after sorting.
     */
    std::vector<ChunkShadow> shadows;

    bool operator==(const ThreadLogs &o) const = default;
};

/** Everything recorded for one replay sphere. */
struct SphereLogs
{
    /** Sphere identifier (one sphere per recorded machine run). */
    std::uint32_t sphereId = 1;

    /** Guest memory size the recording ran with. */
    std::uint32_t memBytes = 0;

    /** Memory above this address (CBUF regions) is excluded from
     *  digests and owned by the recording hardware. */
    Addr userTop = 0;

    /** Recording configuration (serialized only in the v2 format). */
    RecordMeta meta;

    std::map<Tid, ThreadLogs> threads;

    /**
     * Recorded bus-agent event streams (v3 format; empty on spheres
     * recorded without devices, which keep their legacy encoding).
     */
    std::vector<DeviceStream> devices;

    bool operator==(const SphereLogs &o) const = default;

    /** True iff every thread carries exact shadow sets. */
    bool hasShadows() const;

    /**
     * Sort each thread's chunk log by timestamp. CBUF drain order
     * across cores is arbitrary, so Capo3 sorts when splitting records
     * into per-thread logs; per-thread timestamps are strictly
     * monotonic afterwards (asserted).
     */
    void sortChunks();

    /** Packed size of all input logs, in bytes. */
    std::uint64_t inputLogBytes() const;

    /** Packed size of all chunk logs (compact encoding), in bytes. */
    std::uint64_t memoryLogBytes() const;

    /** Total chunk records across threads. */
    std::uint64_t totalChunks() const;

    /**
     * All chunk records across threads, sorted by (timestamp, tid).
     * The Lamport construction makes every inter-thread dependence an
     * edge from a smaller to a strictly larger timestamp, so this is
     * the canonical total order the sequential replayer enforces and
     * the spine the chunk-dependence graph indexes into.
     */
    std::vector<ChunkRecord> chunksByTimestamp() const;

    /**
     * Per-thread positions into a (ts, tid)-sorted schedule: for each
     * tid, the ascending schedule indices of that thread's chunks
     * (program order). Used to lay same-thread edges in the chunk
     * graph and to walk one thread's chunks without re-scanning.
     */
    static std::map<Tid, std::vector<std::uint32_t>>
    chunkIndexByThread(const std::vector<ChunkRecord> &schedule);

    /**
     * Serialize the whole sphere to a byte stream. Spheres carrying v2
     * payload (sync points, shadow sets, or non-default RecordMeta) use
     * the "QRS2" format; plain spheres keep the byte-identical legacy
     * "QRS1" encoding. Spheres with device streams use "QRS3" (the v2
     * layout plus a trailing device section), so pre-device spheres
     * serialize byte-identically to what older builds wrote.
     */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Parse a serialized sphere (either format version). Throws
     * qr::ParseError on truncated or corrupted input, and on version
     * bytes from the future (recoverable; see loadSphere).
     */
    static SphereLogs deserialize(const std::vector<std::uint8_t> &in);

    /**
     * Parse a serialized sphere straight off a (possibly mmapped)
     * PayloadView -- same validation and failure messages as the
     * vector overload, zero staging copy.
     */
    static SphereLogs deserialize(const PayloadView &in);

    /**
     * Parse as much of a damaged sphere stream as possible (see
     * SphereSalvage). Throws ParseError only when the header itself is
     * unusable; anything after a valid header yields a salvage.
     */
    static struct SphereSalvage
    deserializeTolerant(const std::vector<std::uint8_t> &in);
};

/**
 * Result of a tolerant sphere parse: every fully-parsed thread plus,
 * for the thread the corruption landed in, the longest valid prefix of
 * its logs (with shadow sets dropped if they did not survive whole --
 * consumers require shadows chunk-parallel or absent).
 */
struct SphereSalvage
{
    SphereLogs logs;
    bool complete = false; //!< parsed to the end, nothing lost
    std::uint64_t threadsDeclared = 0; //!< per the sphere header
    std::uint64_t threadsSalvaged = 0; //!< threads parsed in full
    std::uint64_t threadsPartial = 0;  //!< threads kept as a prefix
    std::string note; //!< what stopped the parse (empty if complete)
};

/** One chunk as handed out by a SphereCursor. */
struct CursorChunk
{
    ChunkRecord rec;
    std::uint32_t schedule = 0;    //!< global (ts, tid) schedule index
    std::uint32_t posInThread = 0; //!< per-thread chunk index
    /** Exact shadow set; only valid until the next next() call, and
     *  only non-null when the cursor streams an exact-shadow sphere. */
    const ChunkShadow *shadow = nullptr;
};

/**
 * Streaming iterator over a serialized sphere: yields chunk records in
 * (ts, tid) schedule order -- the same total order chunksByTimestamp()
 * produces -- without ever materializing SphereLogs. Construction runs
 * one validating scan over the payload (applying exactly the eager
 * parser's checks, so corrupt input fails with the same ParseError
 * messages), retaining only per-thread offsets, counts, and sync
 * points; next() then decodes each thread's chunk and shadow streams
 * lockstep off the PayloadView. Resident state is O(threads + syncs),
 * independent of chunk count.
 *
 * The PayloadView's backing store must outlive the cursor.
 */
class SphereCursor
{
  public:
    /** Validating scan; throws ParseError on corrupt input. */
    explicit SphereCursor(PayloadView payload);

    std::uint32_t sphereId() const { return sphereId_; }
    const RecordMeta &recordMeta() const { return meta_; }

    /** True iff every thread carries exact shadow sets. */
    bool exact() const { return exact_; }

    std::size_t nThreads() const { return threads_.size(); }
    std::uint64_t totalChunks() const { return totalChunks_; }

    /** Thread ids, ascending; the index is the thread "slot". */
    const std::vector<Tid> &tids() const { return tids_; }

    /** Chunk count of the thread in @p slot. */
    std::uint64_t chunkCount(std::size_t slot) const;

    /** Sync points recorded by the thread in @p slot. */
    const std::vector<SyncPoint> &syncsOf(std::size_t slot) const;

    /**
     * Device event streams (v3 spheres; empty otherwise). Unlike chunk
     * logs these are a few bytes per completion, so the cursor
     * materializes them fully during the validating scan.
     */
    const std::vector<DeviceStream> &devices() const { return devices_; }

    /**
     * Decode the chunk timestamps of @p slot in program order,
     * invoking fn(perThreadIndex, ts) until it returns false. Used by
     * the analyzer's sync-source resolution prepass; independent of
     * the main next() stream.
     */
    void forEachChunkTs(
        std::size_t slot,
        const std::function<bool(std::uint64_t, Timestamp)> &fn) const;

    /** @return false when the schedule is exhausted. */
    bool next(CursorChunk &out);

    /**
     * Release fully-consumed payload ranges back to the OS (mmapped
     * backing only). @return bytes newly released.
     */
    std::uint64_t evictConsumed();

    /** Deterministic accounting of the cursor's resident state. */
    std::uint64_t residentBytes() const;

  private:
    struct ThreadState
    {
        Tid tid = invalidTid;
        std::uint64_t nch = 0;
        std::uint64_t idx = 0;     //!< chunks emitted so far
        std::uint64_t decoded = 0; //!< chunks decoded off the stream
        std::size_t sectionStart = 0; //!< thread body payload offset
        std::size_t chunkStart = 0;   //!< chunk-region payload offset
        std::size_t chunkEnd = 0;     //!< first offset past the chunks
        std::size_t chunkOff = 0;     //!< chunk decode position
        std::size_t shadowOff = 0;    //!< shadow decode position
        std::size_t sectionEnd = 0;
        Timestamp prevTs = 0;
        bool hasShadows = false;
        bool hasPending = false;
        ChunkRecord pending;
        ChunkShadow shadowBuf;
        std::vector<SyncPoint> syncs;
        std::size_t evictLo = 0;    //!< watermark: consumed head range
        std::size_t evictMidLo = 0; //!< watermark: consumed tail range
    };

    void advance(ThreadState &t);

    PayloadView payload_;
    RecordMeta meta_;
    std::uint32_t sphereId_ = 1;
    std::uint32_t memBytes_ = 0;
    Addr userTop_ = 0;
    bool v2_ = false;
    bool exact_ = false;
    int shift_ = 0;
    std::uint64_t totalChunks_ = 0;
    std::uint32_t emitted_ = 0;
    std::vector<ThreadState> threads_;
    std::vector<Tid> tids_;
    std::vector<DeviceStream> devices_;
};

} // namespace qr

#endif // QR_CAPO_SPHERE_HH
