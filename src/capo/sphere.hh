/**
 * @file
 * Replay sphere logs: the complete recording artifact.
 *
 * A replay sphere groups the threads of one recorded application
 * (Capo's abstraction). Its artifact is, per thread, an input log and a
 * memory (chunk) log. The logs serialize to a packed byte stream that
 * both the log-size experiments and the file-based examples use.
 */

#ifndef QR_CAPO_SPHERE_HH
#define QR_CAPO_SPHERE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "capo/input_log.hh"
#include "rnr/chunk_record.hh"
#include "sim/types.hh"

namespace qr
{

/** The two logs of one sphere thread. */
struct ThreadLogs
{
    std::vector<InputRecord> input;
    std::vector<ChunkRecord> chunks;

    bool operator==(const ThreadLogs &o) const = default;
};

/** Everything recorded for one replay sphere. */
struct SphereLogs
{
    /** Sphere identifier (one sphere per recorded machine run). */
    std::uint32_t sphereId = 1;

    /** Guest memory size the recording ran with. */
    std::uint32_t memBytes = 0;

    /** Memory above this address (CBUF regions) is excluded from
     *  digests and owned by the recording hardware. */
    Addr userTop = 0;

    std::map<Tid, ThreadLogs> threads;

    bool operator==(const SphereLogs &o) const = default;

    /**
     * Sort each thread's chunk log by timestamp. CBUF drain order
     * across cores is arbitrary, so Capo3 sorts when splitting records
     * into per-thread logs; per-thread timestamps are strictly
     * monotonic afterwards (asserted).
     */
    void sortChunks();

    /** Packed size of all input logs, in bytes. */
    std::uint64_t inputLogBytes() const;

    /** Packed size of all chunk logs (compact encoding), in bytes. */
    std::uint64_t memoryLogBytes() const;

    /** Total chunk records across threads. */
    std::uint64_t totalChunks() const;

    /**
     * All chunk records across threads, sorted by (timestamp, tid).
     * The Lamport construction makes every inter-thread dependence an
     * edge from a smaller to a strictly larger timestamp, so this is
     * the canonical total order the sequential replayer enforces and
     * the spine the chunk-dependence graph indexes into.
     */
    std::vector<ChunkRecord> chunksByTimestamp() const;

    /**
     * Per-thread positions into a (ts, tid)-sorted schedule: for each
     * tid, the ascending schedule indices of that thread's chunks
     * (program order). Used to lay same-thread edges in the chunk
     * graph and to walk one thread's chunks without re-scanning.
     */
    static std::map<Tid, std::vector<std::uint32_t>>
    chunkIndexByThread(const std::vector<ChunkRecord> &schedule);

    /** Serialize the whole sphere to a byte stream. */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Parse a serialized sphere. Throws qr::ParseError on truncated or
     * corrupted input (recoverable; see loadSphere).
     */
    static SphereLogs deserialize(const std::vector<std::uint8_t> &in);
};

} // namespace qr

#endif // QR_CAPO_SPHERE_HH
