#include "capo/rsm.hh"

#include <algorithm>

#include "fault/fault_plan.hh"
#include "obs/event_trace.hh"
#include "obs/profile.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace qr
{

std::uint64_t
RsmStats::totalOverheadCycles() const
{
    std::uint64_t total = 0;
    for (int c = 0; c < numOverheadCats; ++c)
        total += overheadCycles[c];
    return total;
}

Rsm::Rsm(const CostModel &costs_, SphereLogs &logs_,
         std::vector<Core *> cores_, std::vector<Cbuf *> cbufs_,
         FaultPlan *faults_)
    : costs(costs_), logs(logs_), cores(std::move(cores_)),
      cbufs(std::move(cbufs_)), faults(faults_)
{
    qr_assert(cores.size() == cbufs.size(),
              "need one CBUF per core");
    for (Core *c : cores)
        c->rnrUnit().setSink(this);
}

void
Rsm::charge(Core *core, Tick cycles, OverheadCat cat, Tick now)
{
    _stats.overheadCycles[static_cast<int>(cat)] += cycles;
    if (core)
        core->addStall(now, cycles);
}

void
Rsm::kernelEntry(KThread &t, Core &core, Tick now)
{
    core.rnrUnit().terminate(ChunkReason::Syscall, now);
    kernelEntryTick[t.tid] = now;
    charge(&core, costs.syscallInterceptEntry,
           OverheadCat::SyscallIntercept, now);
}

void
Rsm::syscallLogged(KThread &t, Word num, Word ret, const CopyToUser *copy,
                   bool has_new_pc, Word new_pc, Core *charge_core,
                   Tick now)
{
    InputRecord rec;
    rec.kind = InputKind::SyscallRet;
    rec.num = num;
    rec.ret = ret;
    rec.hasNewPc = has_new_pc;
    rec.newPc = new_pc;
    if (copy) {
        rec.copyAddr = copy->addr;
        rec.copyWords = copy->words;
        _stats.copyWordsLogged += copy->words.size();
        charge(charge_core,
               costs.copyLogPerWord * copy->words.size(),
               OverheadCat::CopyLogging, now);
    }
    logsOf(t.tid).input.push_back(std::move(rec));
    _stats.inputRecords++;
    if (eventTrace().armed()) {
        Tick entry = now;
        auto it = kernelEntryTick.find(t.tid);
        if (it != kernelEntryTick.end())
            entry = it->second;
        eventTrace().emit(TraceEventKind::SyscallSpan, t.tid, entry,
                          num, 0, now > entry ? now - entry : 0);
    }
    charge(charge_core, costs.syscallInterceptExit + costs.inputRecordBase,
           OverheadCat::SyscallIntercept, now);
}

void
Rsm::nondetLogged(KThread &t, Opcode kind, Word value, Core &core,
                  Tick now)
{
    InputRecord rec;
    rec.kind = InputKind::Nondet;
    rec.num = static_cast<Word>(kind);
    rec.ret = value;
    logsOf(t.tid).input.push_back(std::move(rec));
    _stats.inputRecords++;
    charge(&core, costs.nondetTrap, OverheadCat::NondetEmu, now);
}

void
Rsm::threadStarted(KThread &child, KThread *parent, Core *parent_core,
                   Tick now)
{
    InputRecord rec;
    rec.kind = InputKind::ThreadStart;
    rec.pc = child.ctx.pc;
    rec.sp = child.ctx.reg(Reg::sp);
    rec.arg = child.ctx.reg(Reg::a0);
    rec.parent = parent ? static_cast<Word>(parent->tid) : 0;
    logsOf(child.tid).input.push_back(std::move(rec));
    _stats.inputRecords++;

    // Inherit the parent core's clock so the child's first chunk is
    // ordered after the spawn (Capo3 initializes the child's recording
    // context from the parent's).
    child.lastClock = parent_core ? parent_core->rnrUnit().clock() : 0;
    // The spawn is a synchronization edge: every chunk the parent
    // logged before it happens-before all of the child.
    if (parent)
        logsOf(child.tid).syncs.push_back(
            SyncPoint{0, parent->tid, child.lastClock});
    charge(parent_core, costs.sphereManage, OverheadCat::SphereMgmt, now);
}

void
Rsm::threadExited(KThread &t, Core &core, Tick now)
{
    InputRecord rec;
    rec.kind = InputKind::ThreadExit;
    rec.ret = t.ctx.reg(Reg::a0);
    rec.instrs = t.ctx.instrs;
    logsOf(t.tid).input.push_back(std::move(rec));
    _stats.inputRecords++;
    // Joins may resolve after the exiting thread's unit is recycled:
    // capture its clock now so the edge can still be floored then.
    exitClock[t.tid] = core.rnrUnit().clock();
    charge(&core, costs.sphereManage, OverheadCat::SphereMgmt, now);
}

void
Rsm::threadWoken(KThread &woken, Core *woken_core, Tid waker,
                 Core *waker_core, Tick now)
{
    Timestamp floor = waker_core ? waker_core->rnrUnit().clock() : 0;
    auto it = exitClock.find(waker);
    if (it != exitClock.end())
        floor = std::max(floor, it->second);
    if (woken_core) {
        // The woken thread keeps running (join on an already-exited
        // target): floor its unit directly, there is no context switch
        // to restore lastClock through.
        woken_core->rnrUnit().setClockFloor(floor);
    } else {
        woken.lastClock = std::max(woken.lastClock, floor);
    }
    logsOf(woken.tid).syncs.push_back(
        SyncPoint{chunkSeq[woken.tid], waker, floor});
    charge(woken_core ? woken_core : waker_core, costs.sphereManage,
           OverheadCat::SphereMgmt, now);
}

void
Rsm::signalDelivered(KThread &t, Word signo, Word handler_pc,
                     Word saved_pc, Addr mailbox, Core &core, Tick now)
{
    InputRecord rec;
    rec.kind = InputKind::SignalDeliver;
    rec.num = signo;
    rec.afterChunkSeq = chunkSeq[t.tid];
    rec.pc = handler_pc;
    rec.sp = saved_pc;
    rec.copyAddr = mailbox;
    logsOf(t.tid).input.push_back(std::move(rec));
    _stats.inputRecords++;
    charge(&core, costs.signalDeliver, OverheadCat::Signal, now);
}

void
Rsm::contextSwitchOut(KThread &t, Core &core, Tick now)
{
    RnrUnit &unit = core.rnrUnit();
    unit.terminate(ChunkReason::ContextSwitch, now);
    // Save the recording context: the clock floor makes the thread's
    // next chunk (possibly on another core) strictly later than
    // everything it did here, including post-chunk input copies.
    t.lastClock = unit.clock();
    unit.disable();
    eventTrace().emit(TraceEventKind::RsmSwitchOut, t.tid, now,
                      static_cast<std::uint64_t>(core.id()));
    charge(&core, costs.ctxSwitchSave, OverheadCat::CtxSwitch, now);
}

void
Rsm::contextSwitchIn(KThread &t, Core &core, Tick now)
{
    RnrUnit &unit = core.rnrUnit();
    unit.setClockFloor(t.lastClock);
    unit.enable(t.tid);
    eventTrace().emit(TraceEventKind::RsmSwitchIn, t.tid, now,
                      static_cast<std::uint64_t>(core.id()));
    charge(&core, costs.ctxSwitchRestore, OverheadCat::CtxSwitch, now);
}

void
Rsm::onChunkLogged(const ChunkRecord &rec, CoreId core,
                   const ChunkShadow *shadow)
{
    (void)core;
    chunkSeq[rec.tid]++;
    _stats.chunksSeen++;
    if (shadow)
        pendingShadows[rec.tid].emplace(rec.ts, *shadow);
}

void
Rsm::onCbufSignal(CoreId core, bool full, Tick now)
{
    if (faults && faults->fire(FaultSite::CbufDelay)) {
        // Interrupt delivery is late: the records are still drained in
        // order, but the core eats extra stall cycles (the hardware
        // holds the buffer, or backpressure, until software arrives).
        _stats.delayedSignals++;
        charge(cores[static_cast<std::size_t>(core)],
               costs.cbufDelayStall, OverheadCat::CbufDrain, now);
    }
    drainCbuf(core, full, now);
}

void
Rsm::drainCbuf(CoreId core, bool forced, Tick now)
{
    qr_assert(core >= 0 && core < static_cast<CoreId>(cbufs.size()),
              "bad core id %d in CBUF drain", core);
    ProfileScope prof(ProfilePhase::CbufDrain);
    if (faults && faults->armed(FaultSite::DrainFail)) {
        // Each failed spill attempt costs a retry with exponential
        // backoff in modeled cycles; after maxDrainRetries the drain is
        // forced through, so records are never lost at this site.
        Tick backoff = costs.cbufDrainRetry;
        for (int attempt = 0; attempt < maxDrainRetries; ++attempt) {
            if (!faults->fire(FaultSite::DrainFail))
                break;
            _stats.drainRetries++;
            charge(cores[static_cast<std::size_t>(core)], backoff,
                   OverheadCat::CbufDrain, now);
            backoff *= 2;
        }
    }
    std::vector<ChunkRecord> recs = cbufs[static_cast<std::size_t>(core)]
                                        ->drain();
    if (recs.empty())
        return;
    for (const ChunkRecord &r : recs) {
        if (r.reason == ChunkReason::Gap)
            _stats.gapMarkers++;
        logsOf(r.tid).chunks.push_back(r);
    }
    _stats.cbufDrains++;
    if (forced)
        _stats.cbufForcedDrains++;
    eventTrace().emit(TraceEventKind::CbufDrain, core, now, recs.size(),
                      forced ? 1 : 0);
    tracef(TraceFlag::Cbuf, "core %d: drained %zu records%s", core,
           recs.size(), forced ? " (backpressure)" : "");
    Tick cost =
        costs.cbufDrainBase + costs.cbufDrainPerRecord * recs.size();
    prof.cycles(cost);
    charge(cores[static_cast<std::size_t>(core)], cost,
           OverheadCat::CbufDrain, now);
}

void
Rsm::finalize(Tick now)
{
    for (std::size_t c = 0; c < cbufs.size(); ++c)
        drainCbuf(static_cast<CoreId>(c), false, now);
    logs.sortChunks();
    std::uint64_t drained = logs.totalChunks();
    // Gap markers are synthesized by the CBUF on drain, so they reach
    // the logs without ever passing through onChunkLogged.
    qr_assert(drained == _stats.chunksSeen + _stats.gapMarkers,
              "chunk accounting mismatch: drained %llu, seen %llu + "
              "%llu gaps",
              static_cast<unsigned long long>(drained),
              static_cast<unsigned long long>(_stats.chunksSeen),
              static_cast<unsigned long long>(_stats.gapMarkers));

    // Attach the buffered shadow sets chunk-parallel, now that the
    // per-thread logs are in their final (timestamp) order. Gap
    // markers carry no address sets; they get an empty shadow so the
    // chunk-parallel invariant (nshadows == nchunks) holds.
    for (auto &[tid, shadows] : pendingShadows) {
        ThreadLogs &tl = logs.threads[tid];
        tl.shadows.reserve(tl.chunks.size());
        std::size_t matched = 0;
        for (const ChunkRecord &rec : tl.chunks) {
            if (rec.reason == ChunkReason::Gap) {
                tl.shadows.emplace_back();
                continue;
            }
            auto it = shadows.find(rec.ts);
            qr_assert(it != shadows.end(),
                      "tid %d: no shadow for chunk ts %llu", tid,
                      static_cast<unsigned long long>(rec.ts));
            tl.shadows.push_back(std::move(it->second));
            matched++;
        }
        qr_assert(matched == shadows.size(),
                  "tid %d: %zu shadow sets for %zu non-gap chunks", tid,
                  shadows.size(), matched);
    }
    pendingShadows.clear();
}

} // namespace qr
