/**
 * @file
 * Cycle-cost model of the Capo3 software stack.
 *
 * QuickRec's headline result is that the recording *hardware* is nearly
 * free while the *software* stack costs ~13% on average. Our substrate
 * is a simulator, so the kernel work Capo3 adds is charged explicitly
 * in cycles through this model. The constants were calibrated once so
 * the E3 experiment lands near the paper's average and are then held
 * fixed for every experiment and ablation (see EXPERIMENTS.md).
 */

#ifndef QR_CAPO_COST_MODEL_HH
#define QR_CAPO_COST_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace qr
{

/** Per-event cycle costs of the recording software stack. */
struct CostModel
{
    /** RSM intercept on kernel entry (chunk termination MSR writes). */
    Tick syscallInterceptEntry = 550;

    /** RSM intercept on kernel exit (result capture + bookkeeping). */
    Tick syscallInterceptExit = 480;

    /** Formatting/queueing one input-log record. */
    Tick inputRecordBase = 200;

    /** Logging one word of data copied to user space. */
    Tick copyLogPerWord = 8;

    /** CBUF drain interrupt: entry + spill setup. */
    Tick cbufDrainBase = 2000;

    /** CBUF drain: per chunk record spilled. */
    Tick cbufDrainPerRecord = 16;

    /** Save the recording context at deschedule. */
    Tick ctxSwitchSave = 500;

    /** Restore the recording context at dispatch. */
    Tick ctxSwitchRestore = 450;

    /** Trap + emulate + log one nondeterministic instruction. */
    Tick nondetTrap = 400;

    /** Log one signal delivery. */
    Tick signalDeliver = 500;

    /** Sphere membership management at thread start/exit. */
    Tick sphereManage = 900;

    /** First CBUF drain retry after an injected failure (doubles per
     *  attempt -- exponential backoff, bounded by Rsm::maxDrainRetries). */
    Tick cbufDrainRetry = 3000;

    /** Stall charged when a CBUF drain signal is delayed in delivery
     *  (fault injection: the hardware holds backpressure meanwhile). */
    Tick cbufDelayStall = 2500;
};

/** Categories the recording overhead is attributed to (experiment E4). */
enum class OverheadCat : int
{
    SyscallIntercept,
    CopyLogging,
    CbufDrain,
    CtxSwitch,
    NondetEmu,
    Signal,
    SphereMgmt,
    NumCats,
};

/** Number of overhead categories. */
constexpr int numOverheadCats = static_cast<int>(OverheadCat::NumCats);

/** @return display name of an overhead category. */
const char *overheadCatName(OverheadCat c);

} // namespace qr

#endif // QR_CAPO_COST_MODEL_HH
