#include "capo/retention.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "capo/log_store.hh"
#include "sim/logging.hh"

namespace qr
{
namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::uint64_t
fileBytes(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/**
 * Sequence number out of "sphere-<seq>-<stem>.qrec"; 0 when the name
 * does not follow the store's naming scheme (foreign files are still
 * scanned and repaired, they just sort before every store-named one).
 */
std::uint64_t
seqOfName(const std::string &name)
{
    const std::string prefix = "sphere-";
    if (name.rfind(prefix, 0) != 0)
        return 0;
    return std::strtoull(name.c_str() + prefix.size(), nullptr, 10);
}

} // namespace

ArtifactStore::ArtifactStore(std::string dir) : _dir(std::move(dir))
{
    // Creating the directory is idempotent; a pre-existing one is the
    // normal restart case and its contents are picked up by rescan().
    ::mkdir(_dir.c_str(), 0755);
}

std::string
ArtifactStore::nextPath(const std::string &stem)
{
    std::lock_guard<std::mutex> lk(_mu);
    char buf[32];
    std::snprintf(buf, sizeof buf, "sphere-%06llu-",
                  static_cast<unsigned long long>(++_seq));
    return _dir + "/" + buf + stem + ".qrec";
}

void
ArtifactStore::commit(const std::string &path, std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lk(_mu);
    // A path can be handed over twice when a save retry races the
    // repair loop (both end in a rename of the same name); the second
    // handoff refreshes the size instead of double-counting it.
    for (Retained &r : _retained) {
        if (r.path != path)
            continue;
        _retainedBytes -= r.bytes;
        _retainedBytes += bytes;
        r.bytes = bytes;
        return;
    }
    _retained.push_back({path, bytes, false});
    _retainedBytes += bytes;
}

bool
ArtifactStore::remove(const std::string &path, bool unlinkFile)
{
    std::lock_guard<std::mutex> lk(_mu);
    auto it = std::find_if(
        _retained.begin(), _retained.end(),
        [&](const Retained &r) { return r.path == path; });
    if (it == _retained.end())
        return false;
    _retainedBytes -= it->bytes;
    _retained.erase(it);
    if (unlinkFile)
        ::unlink(path.c_str());
    return true;
}

StoreScan
ArtifactStore::scan() const
{
    StoreScan out;
    DIR *d = ::opendir(_dir.c_str());
    if (!d)
        return out;
    std::vector<std::string> names;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end()); // age order by sequence

    for (const std::string &name : names) {
        std::string path = _dir + "/" + name;
        if (endsWith(name, ".tmp")) {
            out.temps.push_back(path);
            continue;
        }
        if (!endsWith(name, ".qrec"))
            continue;
        ArtifactFile f;
        f.path = path;
        f.bytes = fileBytes(path);
        // Structural walk only (no hashing): cheap enough to run on
        // every repair tick over the whole fleet.
        MappedSphereFile map;
        f.sealed = map.open(path) && map.sealed();
        (f.sealed ? out.sealed : out.unsealed).push_back(std::move(f));
    }
    return out;
}

StoreScan
ArtifactStore::rescan()
{
    StoreScan s = scan();
    std::lock_guard<std::mutex> lk(_mu);
    _retained.clear();
    _retainedBytes = 0;
    std::uint64_t maxSeq = _seq;
    for (const ArtifactFile &f : s.sealed) {
        _retained.push_back({f.path, f.bytes, false});
        _retainedBytes += f.bytes;
        std::string name = f.path.substr(_dir.size() + 1);
        maxSeq = std::max(maxSeq, seqOfName(name));
    }
    for (const ArtifactFile &f : s.unsealed) {
        std::string name = f.path.substr(_dir.size() + 1);
        maxSeq = std::max(maxSeq, seqOfName(name));
    }
    _seq = maxSeq;
    return s;
}

std::uint64_t
ArtifactStore::retainedCount() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _retained.size();
}

std::uint64_t
ArtifactStore::retainedBytes() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _retainedBytes;
}

std::uint64_t
ArtifactStore::overCountLocked(const RetentionPolicy &p) const
{
    if (!p.maxArtifacts || _retained.size() <= p.maxArtifacts)
        return 0;
    return _retained.size() - p.maxArtifacts;
}

bool
ArtifactStore::overBytesLocked(const RetentionPolicy &p) const
{
    return p.maxBytes && _retainedBytes > p.maxBytes;
}

RotationResult
ArtifactStore::enforce(const RetentionPolicy &policy,
                       const CompactFn &compact, FaultPlan *faults)
{
    RotationResult res;
    for (;;) {
        // Pick the next action under the lock, run the I/O outside
        // it: compaction rewrites a whole artifact and must not stall
        // writers committing fresh spheres.
        std::string victim;
        std::uint64_t victimBytes = 0;
        bool doCompact = false;
        {
            std::lock_guard<std::mutex> lk(_mu);
            bool overCount = overCountLocked(policy) > 0;
            bool overBytes = overBytesLocked(policy);
            if (!overCount && !overBytes)
                break;
            // Compaction shrinks bytes but never the artifact count:
            // only reach for it on a byte-budget breach.
            if (policy.compactFirst && compact && overBytes &&
                !overCount) {
                for (Retained &r : _retained) {
                    if (r.compactTried)
                        continue;
                    r.compactTried = true;
                    victim = r.path;
                    victimBytes = r.bytes;
                    doCompact = true;
                    break;
                }
            }
            if (!doCompact) {
                if (_retained.empty())
                    break;
                victim = _retained.front().path;
                victimBytes = _retained.front().bytes;
            }
        }

        if (doCompact) {
            CompactOutcome out = compact(victim, faults);
            if (out.ok) {
                res.compacted++;
                if (victimBytes > out.newBytes)
                    res.bytesFreed += victimBytes - out.newBytes;
                updateBytes(victim, out.newBytes);
            } else {
                // Failed compaction (e.g. injected ENOSPC mid-rewrite)
                // keeps the original artifact intact; fall through to
                // the next pass, which will try another victim or
                // evict.
                res.compactFailures++;
            }
            continue;
        }

        if (remove(victim, /* unlinkFile = */ true)) {
            res.evicted++;
            res.bytesFreed += victimBytes;
        } else {
            break; // raced with an external remove; re-evaluate
        }
    }
    return res;
}

void
ArtifactStore::updateBytes(const std::string &path, std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lk(_mu);
    for (Retained &r : _retained) {
        if (r.path != path)
            continue;
        _retainedBytes -= r.bytes;
        _retainedBytes += bytes;
        r.bytes = bytes;
        return;
    }
}

} // namespace qr
