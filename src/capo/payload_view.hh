/**
 * @file
 * Non-owning view of a sphere payload, generic over its backing store.
 *
 * A PayloadView either wraps a contiguous heap buffer or addresses the
 * concatenated segment payloads of an mmapped QSG1 container through a
 * SegmentSource. The container writer emits fixed-size segments
 * (segmentPayloadBytes, except a short final one), so a payload offset
 * maps to (segment, offset-in-segment) with shift/mask arithmetic and
 * no per-byte indirection beyond a one-entry segment cache. Segment
 * checksums are verified lazily by the source on first touch, which is
 * what lets loads and streaming analysis start without reading the
 * whole file.
 *
 * Views never own memory: the buffer or SegmentSource must outlive
 * every view (and every sub-view) derived from it.
 */

#ifndef QR_CAPO_PAYLOAD_VIEW_HH
#define QR_CAPO_PAYLOAD_VIEW_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qr
{

/** log2(segmentPayloadBytes); checked in log_store.cc. */
constexpr unsigned segmentPayloadShift = 10;

/**
 * Backing store of a segmented PayloadView. segmentData() returns the
 * start of one segment's payload, verifying its checksum on first
 * touch (throws ParseError on a mismatch). dontNeedSegments() lets a
 * consumer drop fully-consumed segments from resident memory.
 */
class SegmentSource
{
  public:
    virtual ~SegmentSource() = default;

    /** @return payload bytes of segment @p seg (verified lazily). */
    virtual const std::uint8_t *segmentData(std::size_t seg) const = 0;

    /**
     * Hint that segments [@p first, @p last) will not be touched
     * again. @return bytes released (0 when unsupported).
     */
    virtual std::size_t
    dontNeedSegments(std::size_t first, std::size_t last)
    {
        (void)first;
        (void)last;
        return 0;
    }
};

class PayloadView
{
  public:
    PayloadView() = default;

    /** View of a contiguous buffer. */
    PayloadView(const std::uint8_t *flat, std::size_t len)
        : flat_(flat), len_(len)
    {}

    /** View of a whole vector (convenience for tests and callers). */
    explicit PayloadView(const std::vector<std::uint8_t> &bytes)
        : flat_(bytes.data()), len_(bytes.size())
    {}

    /**
     * View of @p len payload bytes starting at @p off within the
     * segmented payload of @p src.
     */
    PayloadView(const SegmentSource *src, std::size_t off,
                std::size_t len)
        : src_(src), off_(off), len_(len)
    {}

    std::size_t size() const { return len_; }

    std::uint8_t
    operator[](std::size_t i) const
    {
        if (flat_)
            return flat_[i];
        std::size_t pos = off_ + i;
        std::size_t seg = pos >> segmentPayloadShift;
        if (seg != cachedSeg_) {
            cachedPtr_ = src_->segmentData(seg);
            cachedSeg_ = seg;
        }
        return cachedPtr_[pos & ((1u << segmentPayloadShift) - 1)];
    }

    /** Sub-view of [@p off, @p off + @p len) of this view. */
    PayloadView
    subview(std::size_t off, std::size_t len) const
    {
        if (flat_)
            return PayloadView(flat_ + off, len);
        return PayloadView(src_, off_ + off, len);
    }

    /**
     * Advise that [@p lo, @p hi) of this view is fully consumed.
     * Only whole segments inside the range are released.
     * @return bytes released.
     */
    std::size_t
    dontNeedRange(std::size_t lo, std::size_t hi)
    {
        if (flat_ || !src_ || hi <= lo)
            return 0;
        constexpr std::size_t segBytes = 1u << segmentPayloadShift;
        std::size_t first = (off_ + lo + segBytes - 1) / segBytes;
        std::size_t last = (off_ + hi) / segBytes;
        if (first >= last)
            return 0;
        return const_cast<SegmentSource *>(src_)
            ->dontNeedSegments(first, last);
    }

  private:
    const std::uint8_t *flat_ = nullptr;
    const SegmentSource *src_ = nullptr;
    std::size_t off_ = 0;
    std::size_t len_ = 0;

    mutable std::size_t cachedSeg_ = static_cast<std::size_t>(-1);
    mutable const std::uint8_t *cachedPtr_ = nullptr;
};

} // namespace qr

#endif // QR_CAPO_PAYLOAD_VIEW_HH
