#include "capo/log_store.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "fault/fault_plan.hh"
#include "sim/logging.hh"

namespace qr
{

LogSizes
measureLogs(const SphereLogs &logs)
{
    LogSizes sizes;
    sizes.inputBytes = logs.inputLogBytes();
    sizes.memoryBytes = logs.memoryLogBytes();
    sizes.chunkRecords = logs.totalChunks();
    for (const auto &[tid, t] : logs.threads)
        sizes.inputRecords += t.input.size();
    return sizes;
}

namespace
{

/** Local FNV-1a (metrics.hh includes this header, so no reuse). */
std::uint64_t
fnvBytes(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

const char segMagic[4] = {'Q', 'S', 'G', '1'};
constexpr std::uint8_t segTag = 'S';
constexpr std::uint8_t trailerTag = 'T';
/** Tag + segment count + whole-payload checksum. */
constexpr std::size_t trailerBytes = 1 + 4 + 8;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
    return v;
}

/** Assemble the full sealed container byte stream. */
std::vector<std::uint8_t>
buildSegmented(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + payload.size() / segmentPayloadBytes *
                13 + 32);
    out.insert(out.end(), segMagic, segMagic + 4);
    std::uint32_t nsegs = 0;
    for (std::size_t off = 0; off < payload.size();
         off += segmentPayloadBytes) {
        std::size_t len = std::min<std::size_t>(segmentPayloadBytes,
                                                payload.size() - off);
        out.push_back(segTag);
        putU32(out, static_cast<std::uint32_t>(len));
        out.insert(out.end(), payload.begin() + off,
                   payload.begin() + off + len);
        putU64(out, fnvBytes(payload.data() + off, len));
        nsegs++;
    }
    out.push_back(trailerTag);
    putU32(out, nsegs);
    putU64(out, fnvBytes(payload.data(), payload.size()));
    return out;
}

/** Read a whole file; empty error string on success. */
std::string
readFile(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        return csprintf("cannot open '%s' for reading", path.c_str());
    std::fseek(f.get(), 0, SEEK_END);
    long size = std::ftell(f.get());
    std::fseek(f.get(), 0, SEEK_SET);
    if (size < 0)
        return csprintf("cannot size '%s'", path.c_str());
    bytes.resize(static_cast<std::size_t>(size));
    std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f.get());
    if (n != bytes.size())
        return csprintf("short read from '%s'", path.c_str());
    return "";
}

} // namespace

bool
isSegmented(const std::vector<std::uint8_t> &raw)
{
    return raw.size() >= 4 && raw[0] == 'Q' && raw[1] == 'S' &&
           raw[2] == 'G' && raw[3] == '1';
}

SegmentedWriteResult
writeSegmented(const std::vector<std::uint8_t> &payload,
               const std::string &path, FaultPlan *faults)
{
    SegmentedWriteResult res;
    std::vector<std::uint8_t> bytes = buildSegmented(payload);

    if (faults && faults->fire(FaultSite::IoEnospc)) {
        // The filesystem is out of space before anything lands: the
        // temp file never makes it, and any old artifact at @p path
        // survives untouched.
        res.error = csprintf("injected ENOSPC: '%s' not written",
                             path.c_str());
        res.injected = true;
        return res;
    }

    // Injected crash shapes. Both leave a deterministically torn file
    // *in place* (simulating a crash after rename, or a rename of a
    // short temp by a sloppy service) so the recovery path has
    // something real to chew on:
    //  - short write: the tail write stops early, losing at most the
    //    last segment and the trailer;
    //  - torn write: the stream is cut at an arbitrary point past the
    //    magic.
    std::size_t writeLen = bytes.size();
    std::string injectedWhat;
    if (faults && faults->fire(FaultSite::IoShort)) {
        std::size_t lastSeg = payload.empty()
            ? 0
            : (payload.size() - 1) % segmentPayloadBytes + 1 + 13;
        std::uint64_t lossMax =
            std::min<std::uint64_t>(bytes.size() - 4,
                                    trailerBytes + lastSeg);
        std::uint64_t loss =
            1 + faults->draw(FaultSite::IoShort, lossMax);
        writeLen = bytes.size() - static_cast<std::size_t>(loss);
        injectedWhat = csprintf("injected short write: %llu of %zu "
                                "bytes",
                                static_cast<unsigned long long>(
                                    writeLen),
                                bytes.size());
    } else if (faults && faults->fire(FaultSite::IoTorn)) {
        writeLen = static_cast<std::size_t>(
            4 + faults->draw(FaultSite::IoTorn, bytes.size() - 4));
        injectedWhat = csprintf("injected torn write: %zu of %zu bytes",
                                writeLen, bytes.size());
    }

    std::string tmp = path + ".tmp";
    {
        std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
            std::fopen(tmp.c_str(), "wb"), &std::fclose);
        if (!f) {
            res.error = csprintf("cannot open '%s' for writing",
                                 tmp.c_str());
            return res;
        }
        std::size_t n = std::fwrite(bytes.data(), 1, writeLen, f.get());
        if (n != writeLen) {
            res.error = csprintf("short write to '%s'", tmp.c_str());
            std::remove(tmp.c_str());
            return res;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        res.error = csprintf("cannot rename '%s' into place",
                             tmp.c_str());
        std::remove(tmp.c_str());
        return res;
    }
    res.bytes = writeLen;
    if (!injectedWhat.empty()) {
        res.error = injectedWhat;
        res.injected = true;
        return res;
    }
    res.ok = true;
    return res;
}

SegmentedReadResult
readSegmented(const std::vector<std::uint8_t> &raw)
{
    SegmentedReadResult res;
    if (!isSegmented(raw)) {
        res.error = "not a segmented (QSG1) container";
        return res;
    }
    res.ok = true;
    std::size_t pos = 4;
    for (;;) {
        if (pos >= raw.size()) {
            res.error = "container ends without a trailer";
            return res;
        }
        std::uint8_t tag = raw[pos];
        if (tag == trailerTag) {
            if (raw.size() - pos < trailerBytes) {
                res.error = "truncated trailer";
                return res;
            }
            std::uint32_t nsegs = getU32(raw, pos + 1);
            std::uint64_t sum = getU64(raw, pos + 5);
            if (nsegs != res.segments) {
                res.error = csprintf("trailer expects %u segments, "
                                     "read %llu",
                                     nsegs,
                                     static_cast<unsigned long long>(
                                         res.segments));
                return res;
            }
            if (sum != fnvBytes(res.payload.data(),
                                res.payload.size())) {
                res.error = "trailer checksum mismatch";
                return res;
            }
            if (pos + trailerBytes != raw.size()) {
                res.error = "trailing bytes after the trailer";
                return res;
            }
            res.sealed = true;
            return res;
        }
        if (tag != segTag) {
            res.error = csprintf("unexpected tag 0x%02x at offset %zu",
                                 tag, pos);
            return res;
        }
        if (raw.size() - pos < 5) {
            res.error = "truncated segment header";
            return res;
        }
        std::uint32_t len = getU32(raw, pos + 1);
        if (len == 0 || len > segmentPayloadBytes) {
            res.error = csprintf("implausible segment length %u", len);
            return res;
        }
        if (raw.size() - pos < 5 + static_cast<std::size_t>(len) + 8) {
            res.error = csprintf("segment %llu torn mid-record",
                                 static_cast<unsigned long long>(
                                     res.segments));
            return res;
        }
        std::uint64_t sum = getU64(raw, pos + 5 + len);
        if (sum != fnvBytes(raw.data() + pos + 5, len)) {
            res.error = csprintf("segment %llu checksum mismatch",
                                 static_cast<unsigned long long>(
                                     res.segments));
            return res;
        }
        res.payload.insert(res.payload.end(), raw.begin() + pos + 5,
                           raw.begin() + pos + 5 + len);
        pos += 5 + len + 8;
        res.segments++;
    }
}

SphereSaveResult
saveSphere(const SphereLogs &logs, const std::string &path,
           FaultPlan *faults)
{
    SegmentedWriteResult w = writeSegmented(logs.serialize(), path,
                                            faults);
    SphereSaveResult res;
    res.ok = w.ok;
    res.error = w.error;
    res.bytes = w.bytes;
    res.injected = w.injected;
    return res;
}

SphereLoadResult
loadSphere(const std::string &path)
{
    SphereLoadResult res;
    std::vector<std::uint8_t> bytes;
    res.error = readFile(path, bytes);
    if (!res.error.empty())
        return res;

    const std::vector<std::uint8_t> *payload = &bytes;
    SegmentedReadResult seg;
    if (isSegmented(bytes)) {
        seg = readSegmented(bytes);
        if (!seg.sealed) {
            res.error = csprintf("'%s' is a torn sphere container "
                                 "(%s); 'qrec recover' can salvage it",
                                 path.c_str(), seg.error.c_str());
            return res;
        }
        payload = &seg.payload;
    }
    // Legacy raw streams fall through with payload = the file bytes.
    try {
        res.logs = SphereLogs::deserialize(*payload);
        res.ok = true;
    } catch (const ParseError &e) {
        res.error = csprintf("'%s' is not a valid sphere log: %s",
                             path.c_str(), e.what());
    }
    return res;
}

SphereRecoverResult
recoverSphere(const std::string &path)
{
    SphereRecoverResult res;
    std::vector<std::uint8_t> bytes;
    res.error = readFile(path, bytes);
    if (!res.error.empty())
        return res;
    if (bytes.empty()) {
        res.error = csprintf("'%s' is empty: nothing to salvage",
                             path.c_str());
        return res;
    }

    const std::vector<std::uint8_t> *payload = &bytes;
    SegmentedReadResult seg;
    bool sealed = true; // legacy raw files have no seal to lose
    if (isSegmented(bytes)) {
        seg = readSegmented(bytes);
        res.segmentsSalvaged = seg.segments;
        sealed = seg.sealed;
        if (seg.payload.empty()) {
            res.error = csprintf("'%s': no intact segments (%s)",
                                 path.c_str(), seg.error.c_str());
            return res;
        }
        payload = &seg.payload;
    }

    SphereSalvage salvage;
    try {
        salvage = SphereLogs::deserializeTolerant(*payload);
    } catch (const ParseError &e) {
        res.error = csprintf("'%s': unusable sphere header: %s",
                             path.c_str(), e.what());
        return res;
    }
    res.logs = std::move(salvage.logs);
    res.ok = true;
    res.complete = sealed && salvage.complete;
    res.threadsSalvaged = salvage.threadsSalvaged;
    res.threadsPartial = salvage.threadsPartial;
    if (!res.complete) {
        res.note = !sealed && !seg.error.empty()
            ? (salvage.note.empty()
                   ? seg.error
                   : seg.error + "; " + salvage.note)
            : salvage.note;
    }
    return res;
}

} // namespace qr
