#include "capo/log_store.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#define QR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define QR_HAVE_MMAP 0
#endif

#include "fault/fault_plan.hh"
#include "sim/logging.hh"

namespace qr
{

static_assert((1u << segmentPayloadShift) == segmentPayloadBytes,
              "PayloadView shift arithmetic assumes 1 KiB segments");

LogSizes
measureLogs(const SphereLogs &logs)
{
    LogSizes sizes;
    sizes.inputBytes = logs.inputLogBytes();
    sizes.memoryBytes = logs.memoryLogBytes();
    sizes.chunkRecords = logs.totalChunks();
    for (const auto &[tid, t] : logs.threads)
        sizes.inputRecords += t.input.size();
    return sizes;
}

namespace
{

/** Local FNV-1a (metrics.hh includes this header, so no reuse). */
std::uint64_t
fnvBytes(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

const char segMagic[4] = {'Q', 'S', 'G', '1'};
constexpr std::uint8_t segTag = 'S';
constexpr std::uint8_t trailerTag = 'T';
/** Tag + segment count + whole-payload checksum. */
constexpr std::size_t trailerBytes = 1 + 4 + 8;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
    return v;
}

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
storeU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

constexpr std::uint64_t fnvBasis = 0xcbf29ce484222325ull;

std::uint64_t
fnvUpdate(std::uint64_t h, const std::uint8_t *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Sealed QSG1 container size for a payload of @p payloadLen bytes. */
std::size_t
sealedContainerBytes(std::size_t payloadLen)
{
    std::size_t nsegs =
        (payloadLen + segmentPayloadBytes - 1) / segmentPayloadBytes;
    return 4 + payloadLen + nsegs * (5 + 8) + trailerBytes;
}

/** Assemble the full sealed container byte stream. */
std::vector<std::uint8_t>
buildSegmented(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + payload.size() / segmentPayloadBytes *
                13 + 32);
    out.insert(out.end(), segMagic, segMagic + 4);
    std::uint32_t nsegs = 0;
    for (std::size_t off = 0; off < payload.size();
         off += segmentPayloadBytes) {
        std::size_t len = std::min<std::size_t>(segmentPayloadBytes,
                                                payload.size() - off);
        out.push_back(segTag);
        putU32(out, static_cast<std::uint32_t>(len));
        out.insert(out.end(), payload.begin() + off,
                   payload.begin() + off + len);
        putU64(out, fnvBytes(payload.data() + off, len));
        nsegs++;
    }
    out.push_back(trailerTag);
    putU32(out, nsegs);
    putU64(out, fnvBytes(payload.data(), payload.size()));
    return out;
}

/** Read a whole file; empty error string on success. */
std::string
readFile(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        return csprintf("cannot open '%s' for reading", path.c_str());
    std::fseek(f.get(), 0, SEEK_END);
    long size = std::ftell(f.get());
    std::fseek(f.get(), 0, SEEK_SET);
    if (size < 0)
        return csprintf("cannot size '%s'", path.c_str());
    bytes.resize(static_cast<std::size_t>(size));
    std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f.get());
    if (n != bytes.size())
        return csprintf("short read from '%s'", path.c_str());
    return "";
}

} // namespace

bool
isSegmented(const std::vector<std::uint8_t> &raw)
{
    return raw.size() >= 4 && raw[0] == 'Q' && raw[1] == 'S' &&
           raw[2] == 'G' && raw[3] == '1';
}

SegmentedWriteResult
writeSegmented(const std::vector<std::uint8_t> &payload,
               const std::string &path, FaultPlan *faults)
{
    SegmentedWriteResult res;
    const std::size_t sealedBytes = sealedContainerBytes(payload.size());

    if (faults && faults->fire(FaultSite::IoEnospc)) {
        // The filesystem is out of space before anything lands: the
        // temp file never makes it, and any old artifact at @p path
        // survives untouched.
        res.error = csprintf("injected ENOSPC: '%s' not written",
                             path.c_str());
        res.injected = true;
        return res;
    }

    // Injected crash shapes. Both leave a deterministically torn file
    // *in place* (simulating a crash after rename, or a rename of a
    // short temp by a sloppy service) so the recovery path has
    // something real to chew on:
    //  - short write: the tail write stops early, losing at most the
    //    last segment and the trailer;
    //  - torn write: the stream is cut at an arbitrary point past the
    //    magic.
    std::size_t writeLen = sealedBytes;
    std::string injectedWhat;
    if (faults && faults->fire(FaultSite::IoShort)) {
        std::size_t lastSeg = payload.empty()
            ? 0
            : (payload.size() - 1) % segmentPayloadBytes + 1 + 13;
        std::uint64_t lossMax =
            std::min<std::uint64_t>(sealedBytes - 4,
                                    trailerBytes + lastSeg);
        std::uint64_t loss =
            1 + faults->draw(FaultSite::IoShort, lossMax);
        writeLen = sealedBytes - static_cast<std::size_t>(loss);
        injectedWhat = csprintf("injected short write: %llu of %zu "
                                "bytes",
                                static_cast<unsigned long long>(
                                    writeLen),
                                sealedBytes);
    } else if (faults && faults->fire(FaultSite::IoTorn)) {
        writeLen = static_cast<std::size_t>(
            4 + faults->draw(FaultSite::IoTorn, sealedBytes - 4));
        injectedWhat = csprintf("injected torn write: %zu of %zu bytes",
                                writeLen, sealedBytes);
    }

    if (MappedSegmentWriter::available()) {
        // Append-mapped fast path: identical bytes to the buffered
        // writer (same segmentation, same seal/rename protocol), but
        // the payload lands with pointer-bump memcpy instead of a
        // staged copy of the whole container.
        MappedSegmentWriter w;
        if (!w.create(path)) {
            res.error = w.error();
            return res;
        }
        w.append(payload.data(), payload.size());
        std::uint64_t left = w.seal(writeLen);
        if (left == 0 && !w.error().empty()) {
            res.error = w.error();
            return res;
        }
        res.bytes = left;
    } else {
        std::vector<std::uint8_t> bytes = buildSegmented(payload);
        qr_assert(bytes.size() == sealedBytes,
                  "sealed container size model out of sync");
        std::string tmp = path + ".tmp";
        {
            std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
                std::fopen(tmp.c_str(), "wb"), &std::fclose);
            if (!f) {
                res.error = csprintf("cannot open '%s' for writing",
                                     tmp.c_str());
                return res;
            }
            std::size_t n = std::fwrite(bytes.data(), 1, writeLen,
                                        f.get());
            if (n != writeLen) {
                res.error = csprintf("short write to '%s'",
                                     tmp.c_str());
                std::remove(tmp.c_str());
                return res;
            }
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
            res.error = csprintf("cannot rename '%s' into place",
                                 tmp.c_str());
            std::remove(tmp.c_str());
            return res;
        }
        res.bytes = writeLen;
    }
    if (!injectedWhat.empty()) {
        res.error = injectedWhat;
        res.injected = true;
        return res;
    }
    res.ok = true;
    return res;
}

SegmentedReadResult
readSegmented(const std::vector<std::uint8_t> &raw)
{
    SegmentedReadResult res;
    if (!isSegmented(raw)) {
        res.error = "not a segmented (QSG1) container";
        res.kind = SegmentedError::NotContainer;
        return res;
    }
    res.ok = true;
    std::size_t pos = 4;
    for (;;) {
        if (pos >= raw.size()) {
            res.error = "container ends without a trailer";
            res.kind = SegmentedError::NoTrailer;
            return res;
        }
        std::uint8_t tag = raw[pos];
        if (tag == trailerTag) {
            if (raw.size() - pos < trailerBytes) {
                res.error = "truncated trailer";
                res.kind = SegmentedError::TruncatedTrailer;
                return res;
            }
            std::uint32_t nsegs = getU32(raw, pos + 1);
            std::uint64_t sum = getU64(raw, pos + 5);
            if (nsegs != res.segments) {
                res.error = csprintf("trailer expects %u segments, "
                                     "read %llu",
                                     nsegs,
                                     static_cast<unsigned long long>(
                                         res.segments));
                res.kind = SegmentedError::SegmentCountMismatch;
                return res;
            }
            if (sum != fnvBytes(res.payload.data(),
                                res.payload.size())) {
                res.error = "trailer checksum mismatch";
                res.kind = SegmentedError::TrailerChecksum;
                return res;
            }
            if (pos + trailerBytes != raw.size()) {
                res.error = "trailing bytes after the trailer";
                res.kind = SegmentedError::TrailingBytes;
                return res;
            }
            res.sealed = true;
            return res;
        }
        if (tag != segTag) {
            res.error = csprintf("unexpected tag 0x%02x at offset %zu",
                                 tag, pos);
            res.kind = SegmentedError::UnexpectedTag;
            return res;
        }
        if (raw.size() - pos < 5) {
            res.error = "truncated segment header";
            res.kind = SegmentedError::TruncatedSegmentHeader;
            return res;
        }
        std::uint32_t len = getU32(raw, pos + 1);
        if (len == 0 || len > segmentPayloadBytes) {
            res.error = csprintf("implausible segment length %u", len);
            res.kind = SegmentedError::ImplausibleSegmentLength;
            return res;
        }
        if (raw.size() - pos < 5 + static_cast<std::size_t>(len) + 8) {
            res.error = csprintf("segment %llu torn mid-record",
                                 static_cast<unsigned long long>(
                                     res.segments));
            res.kind = SegmentedError::TornSegment;
            return res;
        }
        std::uint64_t sum = getU64(raw, pos + 5 + len);
        if (sum != fnvBytes(raw.data() + pos + 5, len)) {
            res.error = csprintf("segment %llu checksum mismatch",
                                 static_cast<unsigned long long>(
                                     res.segments));
            res.kind = SegmentedError::SegmentChecksum;
            return res;
        }
        res.payload.insert(res.payload.end(), raw.begin() + pos + 5,
                           raw.begin() + pos + 5 + len);
        pos += 5 + len + 8;
        res.segments++;
    }
}

// --- MappedSphereFile ---------------------------------------------------

MappedSphereFile::~MappedSphereFile()
{
    closeMap();
}

void
MappedSphereFile::closeMap()
{
#if QR_HAVE_MMAP
    if (map_)
        ::munmap(map_, mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
#endif
    map_ = nullptr;
    mapBytes_ = 0;
    fd_ = -1;
    base_ = nullptr;
    fallback_.clear();
    mapped_ = false;
}

std::size_t
MappedSphereFile::segFileOff(std::size_t seg) const
{
    // Regular layout: every segment record is tag + len + 1 KiB + sum.
    return 4 + seg * (5 + segmentPayloadBytes + 8);
}

std::size_t
MappedSphereFile::segLen(std::size_t seg) const
{
    if (seg + 1 == nsegs_)
        return payloadBytes_ - (nsegs_ - 1) * segmentPayloadBytes;
    return segmentPayloadBytes;
}

bool
MappedSphereFile::open(const std::string &path)
{
    closeMap();
    error_.clear();
    isContainer_ = sealed_ = false;
    regular_ = true;
    nsegs_ = payloadBytes_ = fileBytes_ = evictedBytes_ = 0;
    verified_.clear();

#if QR_HAVE_MMAP
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
        error_ = csprintf("cannot open '%s' for reading", path.c_str());
        return false;
    }
    struct stat st;
    if (::fstat(fd_, &st) != 0 || st.st_size < 0) {
        error_ = csprintf("cannot size '%s'", path.c_str());
        closeMap();
        return false;
    }
    fileBytes_ = static_cast<std::uint64_t>(st.st_size);
    if (fileBytes_ > 0) {
        map_ = ::mmap(nullptr, fileBytes_, PROT_READ, MAP_PRIVATE, fd_,
                      0);
        if (map_ == MAP_FAILED) {
            map_ = nullptr;
        } else {
            mapBytes_ = fileBytes_;
            base_ = static_cast<const std::uint8_t *>(map_);
            mapped_ = true;
            ::madvise(map_, mapBytes_, MADV_SEQUENTIAL);
        }
    }
#endif
    if (!mapped_) {
        // No (working) mmap: fall back to one buffered read.
        std::string err = readFile(path, fallback_);
        if (!err.empty()) {
            error_ = err;
            closeMap();
            return false;
        }
        base_ = fallback_.data();
        fileBytes_ = fallback_.size();
    }

    // Structural walk: tags, lengths, trailer count. No checksums --
    // those are verified lazily per segment (or via verifyAll()).
    if (fileBytes_ < 4 || std::memcmp(base_, segMagic, 4) != 0) {
        error_ = "not a segmented (QSG1) container";
        return false;
    }
    isContainer_ = true;
    std::size_t pos = 4;
    std::uint32_t prevLen = segmentPayloadBytes;
    for (;;) {
        if (pos >= fileBytes_) {
            error_ = "container ends without a trailer";
            return false;
        }
        std::uint8_t tag = base_[pos];
        if (tag == trailerTag) {
            if (fileBytes_ - pos < trailerBytes) {
                error_ = "truncated trailer";
                return false;
            }
            std::uint32_t expect = loadU32(base_ + pos + 1);
            if (expect != nsegs_) {
                error_ = csprintf("trailer expects %u segments, "
                                  "read %llu",
                                  expect,
                                  static_cast<unsigned long long>(
                                      nsegs_));
                return false;
            }
            if (pos + trailerBytes != fileBytes_) {
                error_ = "trailing bytes after the trailer";
                return false;
            }
            sealed_ = true;
            verified_.assign(nsegs_, false);
            return true;
        }
        if (tag != segTag) {
            error_ = csprintf("unexpected tag 0x%02x at offset %zu",
                              tag, pos);
            return false;
        }
        if (fileBytes_ - pos < 5) {
            error_ = "truncated segment header";
            return false;
        }
        std::uint32_t len = loadU32(base_ + pos + 1);
        if (len == 0 || len > segmentPayloadBytes) {
            error_ = csprintf("implausible segment length %u", len);
            return false;
        }
        if (fileBytes_ - pos < 5 + static_cast<std::size_t>(len) + 8) {
            error_ = csprintf("segment %llu torn mid-record",
                              static_cast<unsigned long long>(nsegs_));
            return false;
        }
        // A short segment is only legal in final position.
        if (prevLen != segmentPayloadBytes)
            regular_ = false;
        prevLen = len;
        payloadBytes_ += len;
        pos += 5 + static_cast<std::size_t>(len) + 8;
        nsegs_++;
    }
}

PayloadView
MappedSphereFile::payload() const
{
    qr_assert(canStream(),
              "payload view requires a sealed, regular container");
    return PayloadView(this, 0,
                       static_cast<std::size_t>(payloadBytes_));
}

const std::uint8_t *
MappedSphereFile::segmentData(std::size_t seg) const
{
    const std::uint8_t *p = base_ + segFileOff(seg) + 5;
    if (!verified_[seg]) {
        std::size_t len = segLen(seg);
        if (loadU64(p + len) != fnvBytes(p, len))
            parseFail("segment %llu checksum mismatch",
                      static_cast<unsigned long long>(seg));
        verified_[seg] = true;
    }
    return p;
}

std::string
MappedSphereFile::verifyAll() const
{
    qr_assert(canStream(), "verifyAll requires a streamable container");
    std::uint64_t whole = fnvBasis;
    for (std::size_t seg = 0; seg < nsegs_; ++seg) {
        const std::uint8_t *p = base_ + segFileOff(seg) + 5;
        std::size_t len = segLen(seg);
        if (loadU64(p + len) != fnvBytes(p, len))
            return csprintf("segment %llu checksum mismatch",
                            static_cast<unsigned long long>(seg));
        verified_[seg] = true;
        whole = fnvUpdate(whole, p, len);
    }
    if (loadU64(base_ + fileBytes_ - 8) != whole)
        return "trailer checksum mismatch";
    return "";
}

std::size_t
MappedSphereFile::dontNeedSegments(std::size_t first, std::size_t last)
{
#if QR_HAVE_MMAP
    if (!mapped_ || !regular_)
        return 0;
    last = std::min<std::size_t>(last, nsegs_);
    if (first >= last)
        return 0;
    std::size_t lo = segFileOff(first);
    std::size_t hi = segFileOff(last);
    long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0)
        return 0;
    std::size_t mask = static_cast<std::size_t>(page) - 1;
    std::size_t alo = (lo + mask) & ~mask;
    std::size_t ahi = hi & ~mask;
    if (alo >= ahi)
        return 0;
    ::madvise(static_cast<char *>(map_) + alo, ahi - alo,
              MADV_DONTNEED);
    evictedBytes_ += ahi - alo;
    return ahi - alo;
#else
    (void)first;
    (void)last;
    return 0;
#endif
}

// --- MappedSegmentWriter ------------------------------------------------

bool
MappedSegmentWriter::available()
{
    return QR_HAVE_MMAP != 0;
}

MappedSegmentWriter::~MappedSegmentWriter()
{
    if (open_)
        abandon();
}

bool
MappedSegmentWriter::ensure(std::size_t need)
{
#if QR_HAVE_MMAP
    if (pos_ + need <= cap_)
        return true;
    std::size_t newCap = std::max(cap_ * 2, pos_ + need);
    newCap = (newCap + ((1u << 20) - 1)) & ~((std::size_t{1} << 20) - 1);
    if (map_)
        ::munmap(map_, cap_);
    map_ = nullptr;
    if (::ftruncate(fd_, static_cast<off_t>(newCap)) != 0) {
        error_ = csprintf("short write to '%s'", tmp_.c_str());
        return false;
    }
    void *m = ::mmap(nullptr, newCap, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd_, 0);
    if (m == MAP_FAILED) {
        error_ = csprintf("short write to '%s'", tmp_.c_str());
        return false;
    }
    map_ = static_cast<std::uint8_t *>(m);
    cap_ = newCap;
    return true;
#else
    (void)need;
    return false;
#endif
}

bool
MappedSegmentWriter::create(const std::string &path)
{
#if QR_HAVE_MMAP
    qr_assert(!open_, "writer already open");
    path_ = path;
    tmp_ = path + ".tmp";
    error_.clear();
    pos_ = segStart_ = 0;
    segFill_ = 0;
    nsegs_ = 0;
    payloadBytes_ = 0;
    payloadHash_ = fnvBasis;
    cap_ = 0;
    fd_ = ::open(tmp_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
        error_ = csprintf("cannot open '%s' for writing", tmp_.c_str());
        return false;
    }
    open_ = true;
    if (!ensure(4 + trailerBytes)) {
        abandon();
        // abandon() clears open_ but the error must survive it
        return false;
    }
    std::memcpy(map_, segMagic, 4);
    pos_ = 4;
    return true;
#else
    (void)path;
    error_ = "mapped writer unavailable on this platform";
    return false;
#endif
}

void
MappedSegmentWriter::closeSegment()
{
    storeU32(map_ + segStart_ + 1, segFill_);
    std::uint64_t sum = fnvBytes(map_ + segStart_ + 5, segFill_);
    if (!ensure(8))
        return;
    storeU64(map_ + pos_, sum);
    pos_ += 8;
    nsegs_++;
    segFill_ = 0;
}

void
MappedSegmentWriter::append(const std::uint8_t *data, std::size_t n)
{
    if (!open_ || !error_.empty())
        return;
    while (n > 0) {
        if (segFill_ == 0) {
            if (!ensure(5))
                return;
            segStart_ = pos_;
            map_[pos_] = segTag;
            pos_ += 5;
        }
        std::size_t take =
            std::min<std::size_t>(n, segmentPayloadBytes - segFill_);
        if (!ensure(take))
            return;
        std::memcpy(map_ + pos_, data, take);
        payloadHash_ = fnvUpdate(payloadHash_, data, take);
        pos_ += take;
        segFill_ += static_cast<std::uint32_t>(take);
        payloadBytes_ += take;
        data += take;
        n -= take;
        if (segFill_ == segmentPayloadBytes)
            closeSegment();
    }
}

std::uint64_t
MappedSegmentWriter::seal(std::size_t keepBytes)
{
#if QR_HAVE_MMAP
    if (!open_)
        return 0;
    if (error_.empty() && segFill_ > 0)
        closeSegment();
    if (error_.empty() && ensure(trailerBytes)) {
        map_[pos_] = trailerTag;
        storeU32(map_ + pos_ + 1, nsegs_);
        storeU64(map_ + pos_ + 5, payloadHash_);
        pos_ += trailerBytes;
    }
    if (!error_.empty()) {
        abandon();
        return 0;
    }
    std::size_t finalBytes = std::min(keepBytes, pos_);
    ::munmap(map_, cap_);
    map_ = nullptr;
    bool shrunk =
        ::ftruncate(fd_, static_cast<off_t>(finalBytes)) == 0;
    ::close(fd_);
    fd_ = -1;
    open_ = false;
    if (!shrunk) {
        error_ = csprintf("short write to '%s'", tmp_.c_str());
        std::remove(tmp_.c_str());
        return 0;
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
        error_ = csprintf("cannot rename '%s' into place",
                          tmp_.c_str());
        std::remove(tmp_.c_str());
        return 0;
    }
    return finalBytes;
#else
    (void)keepBytes;
    return 0;
#endif
}

void
MappedSegmentWriter::abandon()
{
#if QR_HAVE_MMAP
    if (map_)
        ::munmap(map_, cap_);
    map_ = nullptr;
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    if (open_)
        std::remove(tmp_.c_str());
    open_ = false;
#endif
}

SphereSaveResult
saveSphere(const SphereLogs &logs, const std::string &path,
           FaultPlan *faults)
{
    SegmentedWriteResult w = writeSegmented(logs.serialize(), path,
                                            faults);
    SphereSaveResult res;
    res.ok = w.ok;
    res.error = w.error;
    res.bytes = w.bytes;
    res.injected = w.injected;
    return res;
}

SphereLoadResult
loadSphere(const std::string &path)
{
    SphereLoadResult res;
    MappedSphereFile map;
    bool openOk = map.open(path);

    if (!map.isContainer()) {
        // Unreadable file, or a legacy raw sphere stream without the
        // QSG1 magic: take the buffered path (which reports read
        // errors in the historical words).
        std::vector<std::uint8_t> bytes;
        res.error = readFile(path, bytes);
        if (!res.error.empty())
            return res;
        try {
            res.logs = SphereLogs::deserialize(bytes);
            res.ok = true;
        } catch (const ParseError &e) {
            res.error = csprintf("'%s' is not a valid sphere log: %s",
                                 path.c_str(), e.what());
        }
        return res;
    }

    std::string tornWhy;
    if (!openOk) {
        tornWhy = map.error();
    } else if (map.canStream()) {
        // Strict load: every checksum, including the trailer hash,
        // must verify -- lazy verification is for the streaming
        // analyzer, which still touches every segment it decodes.
        tornWhy = map.verifyAll();
        if (tornWhy.empty()) {
            try {
                res.logs = SphereLogs::deserialize(map.payload());
                res.ok = true;
            } catch (const ParseError &e) {
                res.error =
                    csprintf("'%s' is not a valid sphere log: %s",
                             path.c_str(), e.what());
            }
            return res;
        }
    } else {
        // Structurally sealed but with an irregular (hand-crafted)
        // segment layout the fixed-shift view cannot address: fall
        // back to the eager reader.
        std::vector<std::uint8_t> bytes;
        res.error = readFile(path, bytes);
        if (!res.error.empty())
            return res;
        SegmentedReadResult seg = readSegmented(bytes);
        if (seg.sealed) {
            try {
                res.logs = SphereLogs::deserialize(seg.payload);
                res.ok = true;
            } catch (const ParseError &e) {
                res.error =
                    csprintf("'%s' is not a valid sphere log: %s",
                             path.c_str(), e.what());
            }
            return res;
        }
        tornWhy = seg.error;
    }
    res.error = csprintf("'%s' is a torn sphere container "
                         "(%s); 'qrec recover' can salvage it",
                         path.c_str(), tornWhy.c_str());
    return res;
}

SphereRecoverResult
recoverSphere(const std::string &path)
{
    SphereRecoverResult res;
    std::vector<std::uint8_t> bytes;
    res.error = readFile(path, bytes);
    if (!res.error.empty())
        return res;
    if (bytes.empty()) {
        res.error = csprintf("'%s' is empty: nothing to salvage",
                             path.c_str());
        return res;
    }

    const std::vector<std::uint8_t> *payload = &bytes;
    SegmentedReadResult seg;
    bool sealed = true; // legacy raw files have no seal to lose
    if (isSegmented(bytes)) {
        seg = readSegmented(bytes);
        res.segmentsSalvaged = seg.segments;
        sealed = seg.sealed;
        if (seg.payload.empty()) {
            res.error = csprintf("'%s': no intact segments (%s)",
                                 path.c_str(), seg.error.c_str());
            return res;
        }
        payload = &seg.payload;
    }

    SphereSalvage salvage;
    try {
        salvage = SphereLogs::deserializeTolerant(*payload);
    } catch (const ParseError &e) {
        res.error = csprintf("'%s': unusable sphere header: %s",
                             path.c_str(), e.what());
        return res;
    }
    res.logs = std::move(salvage.logs);
    res.ok = true;
    res.complete = sealed && salvage.complete;
    res.threadsSalvaged = salvage.threadsSalvaged;
    res.threadsPartial = salvage.threadsPartial;
    if (!res.complete) {
        res.note = !sealed && !seg.error.empty()
            ? (salvage.note.empty()
                   ? seg.error
                   : seg.error + "; " + salvage.note)
            : salvage.note;
    }
    return res;
}

} // namespace qr
