#include "capo/log_store.hh"

#include <cstdio>
#include <memory>

#include "sim/logging.hh"

namespace qr
{

LogSizes
measureLogs(const SphereLogs &logs)
{
    LogSizes sizes;
    sizes.inputBytes = logs.inputLogBytes();
    sizes.memoryBytes = logs.memoryLogBytes();
    sizes.chunkRecords = logs.totalChunks();
    for (const auto &[tid, t] : logs.threads)
        sizes.inputRecords += t.input.size();
    return sizes;
}

std::uint64_t
saveSphere(const SphereLogs &logs, const std::string &path)
{
    std::vector<std::uint8_t> bytes = logs.serialize();
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "wb"), &std::fclose);
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f.get());
    if (n != bytes.size())
        fatal("short write to '%s'", path.c_str());
    return bytes.size();
}

SphereLoadResult
loadSphere(const std::string &path)
{
    SphereLoadResult res;
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f) {
        res.error = csprintf("cannot open '%s' for reading",
                             path.c_str());
        return res;
    }
    std::fseek(f.get(), 0, SEEK_END);
    long size = std::ftell(f.get());
    std::fseek(f.get(), 0, SEEK_SET);
    if (size < 0) {
        res.error = csprintf("cannot size '%s'", path.c_str());
        return res;
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f.get());
    if (n != bytes.size()) {
        res.error = csprintf("short read from '%s'", path.c_str());
        return res;
    }
    try {
        res.logs = SphereLogs::deserialize(bytes);
        res.ok = true;
    } catch (const ParseError &e) {
        res.error = csprintf("'%s' is not a valid sphere log: %s",
                             path.c_str(), e.what());
    }
    return res;
}

} // namespace qr
