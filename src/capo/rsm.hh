/**
 * @file
 * The Replay Sphere Manager -- Capo3's kernel component.
 *
 * The RSM sits between the guest kernel and the recording hardware:
 * it implements the kernel's RsmHooks (intercepting syscalls, context
 * switches, signals and nondeterministic instructions to write the
 * input log and to drive the per-core RnR units), and the hardware's
 * ChunkSink (servicing CBUF drain interrupts and splitting chunk
 * records into per-thread memory logs). Every piece of work it does is
 * charged to a core through the CostModel, and the charges are
 * attributed to overhead categories for the breakdown experiment.
 */

#ifndef QR_CAPO_RSM_HH
#define QR_CAPO_RSM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "capo/cost_model.hh"
#include "capo/sphere.hh"
#include "cpu/core.hh"
#include "kernel/kernel.hh"
#include "rnr/rnr_unit.hh"
#include "sim/types.hh"

namespace qr
{

class FaultPlan;

/** RSM statistics, including the overhead attribution for E4. */
struct RsmStats
{
    std::uint64_t overheadCycles[numOverheadCats] = {};
    std::uint64_t inputRecords = 0;
    std::uint64_t copyWordsLogged = 0;
    std::uint64_t cbufDrains = 0;
    std::uint64_t cbufForcedDrains = 0; //!< full-buffer backpressure
    std::uint64_t chunksSeen = 0;
    std::uint64_t drainRetries = 0;   //!< failed drain attempts (faults)
    std::uint64_t delayedSignals = 0; //!< drain signals delivered late
    std::uint64_t gapMarkers = 0;     //!< gap records drained into logs

    std::uint64_t totalOverheadCycles() const;
};

/** The Replay Sphere Manager. */
class Rsm : public RsmHooks, public ChunkSink
{
  public:
    /**
     * @param cores one per hardware core, index = core id
     * @param cbufs the per-core CBUFs, index = core id
     * @param faults optional fault plan; the RSM owns the CbufDelay
     *        (late drain-signal delivery, modeled as stall cycles) and
     *        DrainFail (bounded retry with exponential backoff) sites
     */
    Rsm(const CostModel &costs, SphereLogs &logs,
        std::vector<Core *> cores, std::vector<Cbuf *> cbufs,
        FaultPlan *faults = nullptr);

    /** Retry bound for injected drain failures: after this many failed
     *  attempts the drain is forced through regardless. */
    static constexpr int maxDrainRetries = 6;

    // --- RsmHooks ---------------------------------------------------------
    void kernelEntry(KThread &t, Core &core, Tick now) override;
    void syscallLogged(KThread &t, Word num, Word ret,
                       const CopyToUser *copy, bool has_new_pc,
                       Word new_pc, Core *charge_core, Tick now) override;
    void nondetLogged(KThread &t, Opcode kind, Word value, Core &core,
                      Tick now) override;
    void threadStarted(KThread &child, KThread *parent,
                       Core *parent_core, Tick now) override;
    void threadExited(KThread &t, Core &core, Tick now) override;
    void threadWoken(KThread &woken, Core *woken_core, Tid waker,
                     Core *waker_core, Tick now) override;
    void signalDelivered(KThread &t, Word signo, Word handler_pc,
                         Word saved_pc, Addr mailbox, Core &core,
                         Tick now) override;
    void contextSwitchOut(KThread &t, Core &core, Tick now) override;
    void contextSwitchIn(KThread &t, Core &core, Tick now) override;

    // --- ChunkSink --------------------------------------------------------
    void onChunkLogged(const ChunkRecord &rec, CoreId core,
                       const ChunkShadow *shadow) override;
    void onCbufSignal(CoreId core, bool full, Tick now) override;

    /**
     * End of recording: drain all CBUFs, sort per-thread chunk logs,
     * and attach the buffered exact shadow sets (keyed by timestamp,
     * which is unique per thread) chunk-parallel into the sphere.
     */
    void finalize(Tick now);

    const RsmStats &stats() const { return _stats; }

  private:
    void charge(Core *core, Tick cycles, OverheadCat cat, Tick now);
    void drainCbuf(CoreId core, bool forced, Tick now);
    ThreadLogs &logsOf(Tid tid) { return logs.threads[tid]; }

    CostModel costs;
    SphereLogs &logs;
    std::vector<Core *> cores;
    std::vector<Cbuf *> cbufs;
    FaultPlan *faults;
    std::map<Tid, std::uint64_t> chunkSeq;
    /** Exact shadow sets buffered until finalize (ts is unique per
     *  thread, so it keys the chunk even across CBUF drain reorder). */
    std::map<Tid, std::map<Timestamp, ChunkShadow>> pendingShadows;
    /** Clock captured when a thread exited; floors later join edges. */
    std::map<Tid, Timestamp> exitClock;
    /** Kernel-entry cycle per thread; times the traced syscall span. */
    std::map<Tid, Tick> kernelEntryTick;
    RsmStats _stats;
};

} // namespace qr

#endif // QR_CAPO_RSM_HH
