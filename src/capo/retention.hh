/**
 * @file
 * Artifact rotation and retention for a long-running record service.
 *
 * An ArtifactStore owns one directory of .qrec artifacts written as
 * sealed QSG1 containers. Writers allocate monotonically-sequenced
 * paths with nextPath(), write the artifact (temp file + rename, via
 * the log_store writers), and hand the sealed file over with commit()
 * -- the sealed-segment handoff: retention only ever sees artifacts
 * that are either fully sealed or visibly torn, never half-written.
 *
 * enforce() applies a RetentionPolicy (artifact-count and byte
 * budgets) oldest-first: optionally compact an artifact (a caller-
 * supplied rewrite, e.g. stripping the optional trace section) before
 * evicting it outright. Compaction failures -- real or injected
 * ENOSPC -- leave the old artifact intact and are counted, never
 * fatal.
 *
 * scan() classifies everything on disk (sealed, torn, leftover temp
 * files) so a supervised repair loop can salvage what a crash left
 * behind; rescan() rebuilds the retained index after a restart.
 */

#ifndef QR_CAPO_RETENTION_HH
#define QR_CAPO_RETENTION_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace qr
{

class FaultPlan;

/** Retention budgets; 0 means "no limit" for either axis. */
struct RetentionPolicy
{
    std::uint64_t maxArtifacts = 0; //!< retained .qrec file budget
    std::uint64_t maxBytes = 0;     //!< retained byte budget
    /** Try compacting an artifact before evicting it. */
    bool compactFirst = true;
};

/** One artifact (or leftover) found on disk by scan(). */
struct ArtifactFile
{
    std::string path;
    std::uint64_t bytes = 0;
    bool sealed = false; //!< structurally sealed QSG1 container
};

/** Everything scan() found in the store directory. */
struct StoreScan
{
    std::vector<ArtifactFile> sealed;   //!< intact artifacts
    std::vector<ArtifactFile> unsealed; //!< torn: repair candidates
    std::vector<std::string> temps;     //!< leftover .tmp files
};

/** Outcome of one retention-compaction attempt. */
struct CompactOutcome
{
    bool ok = false;
    std::uint64_t newBytes = 0; //!< size after a successful rewrite
    bool injected = false;      //!< failure came from fault injection
    std::string error;
};

/** Outcome of one enforce() pass. */
struct RotationResult
{
    std::uint64_t compacted = 0;  //!< artifacts rewritten smaller
    std::uint64_t evicted = 0;    //!< artifacts deleted
    std::uint64_t bytesFreed = 0;
    std::uint64_t compactFailures = 0; //!< failed (kept intact)
};

/**
 * A directory of retained .qrec artifacts with rotation/retention.
 * All public methods are thread-safe; writers and the retention /
 * repair threads of the record service share one store.
 */
class ArtifactStore
{
  public:
    /**
     * Rewrite @p path in place, smaller (retention compaction); must
     * go through a temp file + rename so failure keeps the original.
     */
    using CompactFn =
        std::function<CompactOutcome(const std::string &path,
                                     FaultPlan *faults)>;

    explicit ArtifactStore(std::string dir);

    const std::string &dir() const { return _dir; }

    /**
     * Allocate the next artifact path: <dir>/sphere-<seq>-<stem>.qrec
     * with a monotonically increasing zero-padded sequence number, so
     * lexicographic order is age order.
     */
    std::string nextPath(const std::string &stem);

    /** Hand over a sealed artifact at @p path into the retained set. */
    void commit(const std::string &path, std::uint64_t bytes);

    /** Forget (and optionally delete) a retained artifact. */
    bool remove(const std::string &path, bool unlinkFile);

    /** Classify every .qrec and .tmp file currently in the directory. */
    StoreScan scan() const;

    /**
     * Rebuild the retained index from disk (restart path): sealed
     * artifacts become the retained set, and the sequence counter
     * advances past every sequence number seen so new artifacts never
     * collide with survivors.
     * @return the scan used, so the caller can repair the unsealed
     * leftovers it names.
     */
    StoreScan rescan();

    std::uint64_t retainedCount() const;
    std::uint64_t retainedBytes() const;

    /**
     * Enforce @p policy oldest-first: compact (when the policy says
     * so and @p compact is set), then evict, until both budgets hold.
     * A compaction failure leaves the artifact intact, is counted,
     * and is not retried in this pass; eviction still applies if the
     * budget stays blown.
     */
    RotationResult enforce(const RetentionPolicy &policy,
                           const CompactFn &compact,
                           FaultPlan *faults = nullptr);

    /**
     * Record a compacted size for @p path (external rewrite, e.g. the
     * repair loop shrinking a salvaged artifact). No-op when the path
     * is not retained.
     */
    void updateBytes(const std::string &path, std::uint64_t bytes);

  private:
    struct Retained
    {
        std::string path;
        std::uint64_t bytes = 0;
        bool compactTried = false; //!< enforce() already attempted it
    };

    std::string _dir;
    mutable std::mutex _mu;
    std::vector<Retained> _retained; //!< oldest first (path order)
    std::uint64_t _seq = 0;
    std::uint64_t _retainedBytes = 0;

    std::uint64_t overCountLocked(const RetentionPolicy &p) const;
    bool overBytesLocked(const RetentionPolicy &p) const;
};

} // namespace qr

#endif // QR_CAPO_RETENTION_HH
