#include "capo/cost_model.hh"

namespace qr
{

const char *
overheadCatName(OverheadCat c)
{
    switch (c) {
      case OverheadCat::SyscallIntercept: return "syscall-intercept";
      case OverheadCat::CopyLogging: return "copy-logging";
      case OverheadCat::CbufDrain: return "cbuf-drain";
      case OverheadCat::CtxSwitch: return "ctx-switch";
      case OverheadCat::NondetEmu: return "nondet-emu";
      case OverheadCat::Signal: return "signal";
      case OverheadCat::SphereMgmt: return "sphere-mgmt";
      case OverheadCat::NumCats: break;
    }
    return "?";
}

} // namespace qr
