/**
 * @file
 * Persistence for replay-sphere logs: save/load the packed sphere
 * stream to files, plus per-sphere size accounting for the log-rate
 * experiments and the always-on recording example.
 */

#ifndef QR_CAPO_LOG_STORE_HH
#define QR_CAPO_LOG_STORE_HH

#include <cstdint>
#include <string>

#include "capo/sphere.hh"

namespace qr
{

/** Byte-level accounting of one sphere's logs. */
struct LogSizes
{
    std::uint64_t inputBytes = 0;
    std::uint64_t memoryBytes = 0;
    std::uint64_t inputRecords = 0;
    std::uint64_t chunkRecords = 0;

    std::uint64_t total() const { return inputBytes + memoryBytes; }
};

/** Compute the packed sizes of a sphere's logs. */
LogSizes measureLogs(const SphereLogs &logs);

/** Save a sphere to @p path. @return bytes written. */
std::uint64_t saveSphere(const SphereLogs &logs, const std::string &path);

/** Outcome of loading a sphere file. */
struct SphereLoadResult
{
    SphereLogs logs;
    std::string error; //!< empty on success
    bool ok = false;

    explicit operator bool() const { return ok; }
};

/**
 * Load a sphere from @p path. A missing, truncated, or corrupted file
 * is a recoverable error reported in the result, never a crash: an
 * always-on recording service must survive a bad artifact on disk.
 */
SphereLoadResult loadSphere(const std::string &path);

} // namespace qr

#endif // QR_CAPO_LOG_STORE_HH
