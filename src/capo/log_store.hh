/**
 * @file
 * Persistence for replay-sphere logs: save/load the packed sphere
 * stream to files, plus per-sphere size accounting for the log-rate
 * experiments and the always-on recording example.
 *
 * Files are written crash-consistently in a segmented container
 * ("QSG1"): the payload is split into fixed-size segments, each
 * carrying its own checksum, and a sealed trailer (segment count +
 * whole-payload checksum) proves completeness. The bytes go to a
 * temporary file that is renamed into place only after a full write,
 * so a crash leaves either the old artifact or a torn temp -- and a
 * torn file still yields its intact segment prefix to recoverSphere.
 * Legacy raw sphere streams (pre-segmentation artifacts) remain
 * readable by loadSphere and recoverSphere.
 */

#ifndef QR_CAPO_LOG_STORE_HH
#define QR_CAPO_LOG_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "capo/payload_view.hh"
#include "capo/sphere.hh"

namespace qr
{

class FaultPlan;

/** Byte-level accounting of one sphere's logs. */
struct LogSizes
{
    std::uint64_t inputBytes = 0;
    std::uint64_t memoryBytes = 0;
    std::uint64_t inputRecords = 0;
    std::uint64_t chunkRecords = 0;

    std::uint64_t total() const { return inputBytes + memoryBytes; }
};

/** Compute the packed sizes of a sphere's logs. */
LogSizes measureLogs(const SphereLogs &logs);

// --- segmented container (shared by spheres and qrec) -------------------

/** Payload bytes per segment of the QSG1 container. */
constexpr std::uint32_t segmentPayloadBytes = 1024;

/** @return true if @p raw starts with the QSG1 container magic. */
bool isSegmented(const std::vector<std::uint8_t> &raw);

/** Outcome of writing a segmented container. */
struct SegmentedWriteResult
{
    bool ok = false;
    std::string error;        //!< empty on success
    std::uint64_t bytes = 0;  //!< bytes left on disk at @p path
    bool injected = false;    //!< failure came from fault injection

    explicit operator bool() const { return ok; }
};

/**
 * Write @p payload to @p path as a sealed QSG1 container via a
 * temporary file and rename. With @p faults, the IoEnospc, IoShort and
 * IoTorn sites can abort the write (old artifact intact) or leave a
 * deterministically torn file in place (crash simulation); such
 * injected failures report ok = false with injected = true.
 */
SegmentedWriteResult writeSegmented(
    const std::vector<std::uint8_t> &payload, const std::string &path,
    FaultPlan *faults = nullptr);

/**
 * Structured cause of a segmented-container read failure, one value
 * per rejection site in readSegmented(). The error string carries the
 * human detail (offsets, counts); the kind is what machine consumers
 * (the `qrec verify` linter) branch on, so diagnostics do not have to
 * pattern-match message text.
 */
enum class SegmentedError
{
    None = 0,         //!< sealed, nothing wrong
    NotContainer,     //!< missing QSG1 magic
    NoTrailer,        //!< segments end without any trailer record
    TruncatedTrailer, //!< trailer tag present but record cut short
    SegmentCountMismatch, //!< trailer count != segments actually read
    TrailerChecksum,  //!< whole-payload hash disagrees with trailer
    TrailingBytes,    //!< valid trailer but bytes follow it
    UnexpectedTag,    //!< byte that is neither segment nor trailer tag
    TruncatedSegmentHeader, //!< file ends inside a segment header
    ImplausibleSegmentLength, //!< length field zero or > segment size
    TornSegment,      //!< file ends inside a segment body/checksum
    SegmentChecksum,  //!< a segment body fails its checksum
};

/** Outcome of reading a segmented container. */
struct SegmentedReadResult
{
    std::vector<std::uint8_t> payload; //!< intact segment prefix
    bool ok = false;     //!< magic valid, >= 0 intact segments read
    bool sealed = false; //!< trailer valid: payload is complete
    std::uint64_t segments = 0; //!< intact segments recovered
    std::string error; //!< why the container is not sealed (if not)
    SegmentedError kind = SegmentedError::None; //!< structured cause
};

/**
 * Parse a QSG1 byte stream, salvaging the longest prefix of segments
 * whose checksums verify. A valid sealed trailer makes the result
 * complete; anything else reports the salvage with an explanation.
 */
SegmentedReadResult readSegmented(const std::vector<std::uint8_t> &raw);

/**
 * Zero-copy reader for a sealed QSG1 container.
 *
 * open() mmaps the file (falling back to a heap buffer where mmap is
 * unavailable) and walks the segment structure only -- tags, lengths,
 * trailer count -- without hashing anything, then hints
 * madvise(SEQUENTIAL). Segment checksums are verified lazily, on the
 * first touch of each segment through a PayloadView, so consumers pay
 * for integrity checking as they read instead of up front. Strict
 * consumers (loadSphere) call verifyAll() to get readSegmented()'s
 * full acceptance check, including the whole-payload trailer hash.
 *
 * The object is the SegmentSource behind every PayloadView derived
 * from payload(): it must stay alive, and stay put, while any view is
 * in use (non-copyable, non-movable).
 */
class MappedSphereFile : public SegmentSource
{
  public:
    MappedSphereFile() = default;
    ~MappedSphereFile() override;

    MappedSphereFile(const MappedSphereFile &) = delete;
    MappedSphereFile &operator=(const MappedSphereFile &) = delete;

    /**
     * Map @p path and check the container structure. @return true iff
     * the file is a structurally sealed QSG1 container (checksums not
     * yet examined); error() explains a false return.
     */
    bool open(const std::string &path);

    /** @return why open() failed (empty after success). */
    const std::string &error() const { return error_; }

    /** @return true if the file carried the QSG1 magic. */
    bool isContainer() const { return isContainer_; }

    /** @return true after a successful open(): trailer count checks. */
    bool sealed() const { return sealed_; }

    /**
     * @return true when every interior segment is exactly
     * segmentPayloadBytes long, which is what the fixed-shift
     * PayloadView arithmetic requires. The writer always emits this
     * layout; a false return means a hand-crafted container that must
     * take the eager readSegmented() path.
     */
    bool canStream() const { return sealed_ && regular_; }

    std::uint64_t segments() const { return nsegs_; }
    std::uint64_t payloadBytes() const { return payloadBytes_; }
    std::uint64_t fileBytes() const { return fileBytes_; }

    /** @return true when the file is really mmapped (not a buffer). */
    bool mapped() const { return mapped_; }

    /** @return bytes released so far via dontNeedSegments(). */
    std::uint64_t evictedBytes() const { return evictedBytes_; }

    /** View of the whole payload. Requires canStream(). */
    PayloadView payload() const;

    /**
     * Eagerly verify every segment checksum plus the whole-payload
     * trailer hash (readSegmented()'s acceptance check). @return an
     * empty string on success, else the failure in readSegmented()'s
     * words.
     */
    std::string verifyAll() const;

    // SegmentSource
    const std::uint8_t *segmentData(std::size_t seg) const override;
    std::size_t dontNeedSegments(std::size_t first,
                                 std::size_t last) override;

  private:
    const std::uint8_t *base_ = nullptr; //!< whole-file bytes
    std::vector<std::uint8_t> fallback_; //!< buffer when not mmapped
    void *map_ = nullptr;
    std::size_t mapBytes_ = 0;
    int fd_ = -1;

    std::string error_;
    bool isContainer_ = false;
    bool sealed_ = false;
    bool regular_ = true;
    bool mapped_ = false;
    std::uint64_t nsegs_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t fileBytes_ = 0;
    std::uint64_t evictedBytes_ = 0;
    mutable std::vector<bool> verified_;

    std::size_t segFileOff(std::size_t seg) const;
    std::size_t segLen(std::size_t seg) const;
    void closeMap();
};

/**
 * Growable append-mapped writer for sealed QSG1 containers, in the
 * COREMU cm-mapped-log style: the temp file is ftruncate()d to a
 * capacity, mmapped read-write, and records land with a pointer-bump
 * memcpy; running out of room remaps at double the size. seal()
 * writes the trailer, truncates to the real length, and renames into
 * place -- the same crash-consistency protocol (and bit-identical
 * output) as the buffered writeSegmented() path, which remains the
 * fallback where mmap is unavailable.
 */
class MappedSegmentWriter
{
  public:
    MappedSegmentWriter() = default;
    ~MappedSegmentWriter();

    MappedSegmentWriter(const MappedSegmentWriter &) = delete;
    MappedSegmentWriter &operator=(const MappedSegmentWriter &) = delete;

    /** @return true iff mapped writing is compiled in and usable. */
    static bool available();

    /** Start writing @p path (via @p path + ".tmp"). */
    bool create(const std::string &path);

    /** Append payload bytes (buffered into 1 KiB segments). */
    void append(const std::uint8_t *data, std::size_t n);

    /** Payload bytes appended so far. */
    std::uint64_t payloadBytes() const { return payloadBytes_; }

    /**
     * Seal the container and rename it into place. When @p keepBytes
     * is smaller than the sealed container, the renamed file is
     * truncated to that many bytes first (crash-shape injection).
     * @return bytes left on disk, or 0 with error() set.
     */
    std::uint64_t seal(std::size_t keepBytes = SIZE_MAX);

    /** Drop the temp file without sealing. */
    void abandon();

    const std::string &error() const { return error_; }

  private:
    std::string path_;
    std::string tmp_;
    std::string error_;
    int fd_ = -1;
    std::uint8_t *map_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t pos_ = 0;         //!< container bytes emitted
    std::size_t segStart_ = 0;    //!< file offset of open segment hdr
    std::uint32_t segFill_ = 0;   //!< payload bytes in open segment
    std::uint32_t nsegs_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t payloadHash_ = 0; //!< running whole-payload FNV-1a
    bool open_ = false;

    bool ensure(std::size_t need);
    void closeSegment();
};

// --- spheres ------------------------------------------------------------

/** Outcome of saving a sphere file. */
struct SphereSaveResult
{
    bool ok = false;
    std::string error;       //!< empty on success
    std::uint64_t bytes = 0; //!< bytes left on disk
    bool injected = false;   //!< failure came from fault injection

    explicit operator bool() const { return ok; }
};

/**
 * Save a sphere to @p path (sealed QSG1 container). I/O failure --
 * real or injected via @p faults -- is reported in the result, never
 * by terminating: an always-on recording service must outlive a full
 * disk.
 */
SphereSaveResult saveSphere(const SphereLogs &logs,
                            const std::string &path,
                            FaultPlan *faults = nullptr);

/** Outcome of loading a sphere file. */
struct SphereLoadResult
{
    SphereLogs logs;
    std::string error; //!< empty on success
    bool ok = false;

    explicit operator bool() const { return ok; }
};

/**
 * Load a sphere from @p path. A missing, truncated, or corrupted file
 * is a recoverable error reported in the result, never a crash: an
 * always-on recording service must survive a bad artifact on disk.
 * Reads sealed QSG1 containers and legacy raw sphere streams; a torn
 * container is an error here (use recoverSphere to salvage it).
 */
SphereLoadResult loadSphere(const std::string &path);

/** Outcome of salvaging a sphere file. */
struct SphereRecoverResult
{
    SphereLogs logs;
    bool ok = false;       //!< something usable was salvaged
    bool complete = false; //!< file was intact; logs carry everything
    std::uint64_t segmentsSalvaged = 0; //!< intact container segments
    std::uint64_t threadsSalvaged = 0;  //!< threads parsed in full
    std::uint64_t threadsPartial = 0;   //!< threads kept as a prefix
    std::string note;  //!< what was lost (empty when complete)
    std::string error; //!< set when nothing could be salvaged

    explicit operator bool() const { return ok; }
};

/**
 * Salvage whatever a (possibly torn) sphere file still holds: every
 * intact container segment, then every parseable thread-log prefix of
 * the recovered payload. Replay of a salvaged sphere is expected to
 * run in degraded mode (see ReplayMode).
 */
SphereRecoverResult recoverSphere(const std::string &path);

} // namespace qr

#endif // QR_CAPO_LOG_STORE_HH
