/**
 * @file
 * Persistence for replay-sphere logs: save/load the packed sphere
 * stream to files, plus per-sphere size accounting for the log-rate
 * experiments and the always-on recording example.
 *
 * Files are written crash-consistently in a segmented container
 * ("QSG1"): the payload is split into fixed-size segments, each
 * carrying its own checksum, and a sealed trailer (segment count +
 * whole-payload checksum) proves completeness. The bytes go to a
 * temporary file that is renamed into place only after a full write,
 * so a crash leaves either the old artifact or a torn temp -- and a
 * torn file still yields its intact segment prefix to recoverSphere.
 * Legacy raw sphere streams (pre-segmentation artifacts) remain
 * readable by loadSphere and recoverSphere.
 */

#ifndef QR_CAPO_LOG_STORE_HH
#define QR_CAPO_LOG_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "capo/sphere.hh"

namespace qr
{

class FaultPlan;

/** Byte-level accounting of one sphere's logs. */
struct LogSizes
{
    std::uint64_t inputBytes = 0;
    std::uint64_t memoryBytes = 0;
    std::uint64_t inputRecords = 0;
    std::uint64_t chunkRecords = 0;

    std::uint64_t total() const { return inputBytes + memoryBytes; }
};

/** Compute the packed sizes of a sphere's logs. */
LogSizes measureLogs(const SphereLogs &logs);

// --- segmented container (shared by spheres and qrec) -------------------

/** Payload bytes per segment of the QSG1 container. */
constexpr std::uint32_t segmentPayloadBytes = 1024;

/** @return true if @p raw starts with the QSG1 container magic. */
bool isSegmented(const std::vector<std::uint8_t> &raw);

/** Outcome of writing a segmented container. */
struct SegmentedWriteResult
{
    bool ok = false;
    std::string error;        //!< empty on success
    std::uint64_t bytes = 0;  //!< bytes left on disk at @p path
    bool injected = false;    //!< failure came from fault injection

    explicit operator bool() const { return ok; }
};

/**
 * Write @p payload to @p path as a sealed QSG1 container via a
 * temporary file and rename. With @p faults, the IoEnospc, IoShort and
 * IoTorn sites can abort the write (old artifact intact) or leave a
 * deterministically torn file in place (crash simulation); such
 * injected failures report ok = false with injected = true.
 */
SegmentedWriteResult writeSegmented(
    const std::vector<std::uint8_t> &payload, const std::string &path,
    FaultPlan *faults = nullptr);

/** Outcome of reading a segmented container. */
struct SegmentedReadResult
{
    std::vector<std::uint8_t> payload; //!< intact segment prefix
    bool ok = false;     //!< magic valid, >= 0 intact segments read
    bool sealed = false; //!< trailer valid: payload is complete
    std::uint64_t segments = 0; //!< intact segments recovered
    std::string error; //!< why the container is not sealed (if not)
};

/**
 * Parse a QSG1 byte stream, salvaging the longest prefix of segments
 * whose checksums verify. A valid sealed trailer makes the result
 * complete; anything else reports the salvage with an explanation.
 */
SegmentedReadResult readSegmented(const std::vector<std::uint8_t> &raw);

// --- spheres ------------------------------------------------------------

/** Outcome of saving a sphere file. */
struct SphereSaveResult
{
    bool ok = false;
    std::string error;       //!< empty on success
    std::uint64_t bytes = 0; //!< bytes left on disk
    bool injected = false;   //!< failure came from fault injection

    explicit operator bool() const { return ok; }
};

/**
 * Save a sphere to @p path (sealed QSG1 container). I/O failure --
 * real or injected via @p faults -- is reported in the result, never
 * by terminating: an always-on recording service must outlive a full
 * disk.
 */
SphereSaveResult saveSphere(const SphereLogs &logs,
                            const std::string &path,
                            FaultPlan *faults = nullptr);

/** Outcome of loading a sphere file. */
struct SphereLoadResult
{
    SphereLogs logs;
    std::string error; //!< empty on success
    bool ok = false;

    explicit operator bool() const { return ok; }
};

/**
 * Load a sphere from @p path. A missing, truncated, or corrupted file
 * is a recoverable error reported in the result, never a crash: an
 * always-on recording service must survive a bad artifact on disk.
 * Reads sealed QSG1 containers and legacy raw sphere streams; a torn
 * container is an error here (use recoverSphere to salvage it).
 */
SphereLoadResult loadSphere(const std::string &path);

/** Outcome of salvaging a sphere file. */
struct SphereRecoverResult
{
    SphereLogs logs;
    bool ok = false;       //!< something usable was salvaged
    bool complete = false; //!< file was intact; logs carry everything
    std::uint64_t segmentsSalvaged = 0; //!< intact container segments
    std::uint64_t threadsSalvaged = 0;  //!< threads parsed in full
    std::uint64_t threadsPartial = 0;   //!< threads kept as a prefix
    std::string note;  //!< what was lost (empty when complete)
    std::string error; //!< set when nothing could be salvaged

    explicit operator bool() const { return ok; }
};

/**
 * Salvage whatever a (possibly torn) sphere file still holds: every
 * intact container segment, then every parseable thread-log prefix of
 * the recovered payload. Replay of a salvaged sphere is expected to
 * run in degraded mode (see ReplayMode).
 */
SphereRecoverResult recoverSphere(const std::string &path);

} // namespace qr

#endif // QR_CAPO_LOG_STORE_HH
