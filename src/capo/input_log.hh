/**
 * @file
 * Capo3 input-log records.
 *
 * The input log captures every nondeterministic program input so the
 * replayer can inject it: syscall results, data the kernel copied into
 * user memory, signal deliveries (pinned to per-thread chunk sequence
 * numbers), nondeterministic instructions, and thread start/exit
 * events. Records serialize to a compact byte stream (the paper's
 * packed log format) whose size feeds the log-rate experiments.
 */

#ifndef QR_CAPO_INPUT_LOG_HH
#define QR_CAPO_INPUT_LOG_HH

#include <cstdint>
#include <vector>

#include "rnr/chunk_record.hh" // varint helpers
#include "sim/types.hh"

namespace qr
{

/** Input-record types. */
enum class InputKind : std::uint8_t
{
    ThreadStart = 1, //!< initial pc/sp/arg of a sphere thread
    SyscallRet,      //!< syscall number, result, copied data, pc redirect
    Nondet,          //!< rdtsc/rdrand/cpuid value
    SignalDeliver,   //!< signal injected at a chunk boundary
    ThreadExit,      //!< exit code + retired-instruction count
};

/** @return name of an input-record kind. */
const char *inputKindName(InputKind k);

/** One input-log record (fields used depend on kind; see serialize). */
struct InputRecord
{
    InputKind kind = InputKind::SyscallRet;

    Word num = 0;   //!< syscall number / nondet opcode / signo
    Word ret = 0;   //!< result / nondet value / exit code
    Word pc = 0;    //!< start pc / signal handler pc
    Word sp = 0;    //!< start sp / signal saved pc
    Word arg = 0;   //!< start argument
    Word parent = 0; //!< parent tid at thread start

    std::uint64_t instrs = 0;        //!< ThreadExit: retired instructions
    std::uint64_t afterChunkSeq = 0; //!< SignalDeliver: injection point

    bool hasNewPc = false; //!< syscall redirected the pc (sigreturn)
    Word newPc = 0;

    Addr copyAddr = 0;            //!< copy-to-user destination
    std::vector<Word> copyWords;  //!< copy-to-user payload

    bool operator==(const InputRecord &o) const = default;

    /** Append the packed encoding to @p out. */
    void serialize(std::vector<std::uint8_t> &out) const;

    /** Decode one record from @p in at @p pos (advanced). */
    static InputRecord deserialize(const std::vector<std::uint8_t> &in,
                                   std::size_t &pos);

    /** Generic-source decode; @p Bytes needs size() and operator[]. */
    template <class Bytes>
    static InputRecord deserializeFrom(const Bytes &in, std::size_t &pos);

    /** Packed size in bytes. */
    std::uint64_t packedBytes() const;
};

template <class Bytes>
InputRecord
InputRecord::deserializeFrom(const Bytes &in, std::size_t &pos)
{
    if (pos >= in.size())
        parseFail("input record past end of log");
    InputRecord r;
    r.kind = static_cast<InputKind>(in[pos++]);
    switch (r.kind) {
      case InputKind::ThreadStart:
        r.pc = static_cast<Word>(getVarintFrom(in, pos));
        r.sp = static_cast<Word>(getVarintFrom(in, pos));
        r.arg = static_cast<Word>(getVarintFrom(in, pos));
        r.parent = static_cast<Word>(getVarintFrom(in, pos));
        break;
      case InputKind::SyscallRet: {
        if (pos >= in.size())
            parseFail("truncated syscall record");
        std::uint8_t flags = in[pos++];
        r.num = static_cast<Word>(getVarintFrom(in, pos));
        r.ret = static_cast<Word>(getVarintFrom(in, pos));
        if (flags & 1) {
            r.hasNewPc = true;
            r.newPc = static_cast<Word>(getVarintFrom(in, pos));
        }
        if (flags & 2) {
            r.copyAddr = static_cast<Addr>(getVarintFrom(in, pos));
            std::uint64_t n = getVarintFrom(in, pos);
            // Each copied word takes at least one byte; a count beyond
            // the remaining bytes is corruption, not a huge allocation.
            if (n > in.size() - pos)
                parseFail("copy-word count %llu exceeds log tail",
                          static_cast<unsigned long long>(n));
            r.copyWords.reserve(n);
            for (std::uint64_t i = 0; i < n; ++i)
                r.copyWords.push_back(
                    static_cast<Word>(getVarintFrom(in, pos)));
        }
        break;
      }
      case InputKind::Nondet:
        r.num = static_cast<Word>(getVarintFrom(in, pos));
        r.ret = static_cast<Word>(getVarintFrom(in, pos));
        break;
      case InputKind::SignalDeliver:
        r.num = static_cast<Word>(getVarintFrom(in, pos));
        r.afterChunkSeq = getVarintFrom(in, pos);
        r.pc = static_cast<Word>(getVarintFrom(in, pos));
        r.sp = static_cast<Word>(getVarintFrom(in, pos));
        r.copyAddr = static_cast<Addr>(getVarintFrom(in, pos));
        break;
      case InputKind::ThreadExit:
        r.ret = static_cast<Word>(getVarintFrom(in, pos));
        r.instrs = getVarintFrom(in, pos);
        break;
      default:
        parseFail("corrupt input log: kind %u",
                  static_cast<unsigned>(r.kind));
    }
    return r;
}

} // namespace qr

#endif // QR_CAPO_INPUT_LOG_HH
