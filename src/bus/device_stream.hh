/**
 * @file
 * The serialized artifact of a recorded bus agent: per-agent device
 * event streams.
 *
 * A BusAgent (bus_agent.hh) is a DMA-like device that writes guest
 * memory outside any core's chunk stream. Each completion it delivers
 * is logged as one DeviceEvent: the payload target range, the doorbell
 * word it publishes, a digest of everything it wrote, and a Lamport
 * timestamp anchoring the event into the chunk commit order. Payload
 * *data* is never stored -- it is a pure function of (agent seed,
 * event sequence number, word index), regenerated at replay and
 * cross-checked against the digest, so a device stream costs a few
 * bytes per completion regardless of payload size.
 *
 * Replay integration: every event becomes a synthetic schedule record
 * with a per-agent pseudo thread id above the range real threads can
 * occupy (deviceTidBase > the sphere parser's thread-id ceiling), so
 * the (ts, tid) total order, the chunk-dependence graph's program-order
 * chains, and the parallel engine's commit fences all cover device
 * injection without special cases.
 */

#ifndef QR_BUS_DEVICE_STREAM_HH
#define QR_BUS_DEVICE_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace qr
{

class FaultPlan;

/** What class of device an agent models. */
enum class DeviceKind : std::uint8_t
{
    None, //!< no device (workload declares no agent)
    Nic,  //!< packet ingest: payload slots + ring head doorbell
    Disk, //!< storage completion: CQ entries + head doorbell
};

/** @return spec-string name of a device kind ("nic"/"disk"). */
const char *deviceKindName(DeviceKind k);

/** Parse "nic"/"disk"; DeviceKind::None on anything else. */
DeviceKind deviceKindFromName(const std::string &name);

/**
 * One logged device completion. The agent wrote @p words payload words
 * at @p addr, then published the completion by writing its sequence
 * number + 1 to the @p doorbell word; @p ts is the agent's Lamport
 * clock after merging every snooped core's response, so sorting all
 * chunk records and device events by (ts, tid) reproduces the recorded
 * interleaving exactly (see src/bus/README.md for the proof sketch).
 */
struct DeviceEvent
{
    Timestamp ts = 0;
    Addr addr = 0;            //!< payload base (word-aligned)
    std::uint32_t words = 0;  //!< payload length in words
    Addr doorbell = 0;        //!< published completion-count word
    std::uint64_t digest = 0; //!< FNV-1a over payload words + doorbell

    /**
     * Completion sequence number: the payload-generation input and the
     * doorbell value minus one. Equal to the event's stream index, so
     * it is derived at parse time rather than serialized -- but kept
     * explicit on the in-memory event so a dev-drop replay fault can
     * remove an event without corrupting its successors' payloads.
     */
    std::uint64_t seq = 0;

    bool operator==(const DeviceEvent &o) const = default;
};

/** The recorded event stream of one bus agent. */
struct DeviceStream
{
    std::uint32_t agentId = 0;
    DeviceKind kind = DeviceKind::None;
    std::uint64_t seed = 1; //!< payload-generation seed
    std::vector<DeviceEvent> events;

    bool operator==(const DeviceStream &o) const = default;
};

/**
 * First pseudo thread id used for device agents in replay schedules.
 * Strictly above the sphere parser's thread-id ceiling (1 << 20), so a
 * synthetic device record can never collide with a logged thread.
 */
constexpr Tid deviceTidBase = (1 << 20) + 1;

/** Pseudo thread id of agent stream index @p agent_idx. */
constexpr Tid
deviceTidFor(std::size_t agent_idx)
{
    return deviceTidBase + static_cast<Tid>(agent_idx);
}

/** True iff @p tid is a device pseudo thread id. */
constexpr bool
isDeviceTid(Tid tid)
{
    return tid >= deviceTidBase;
}

/** Agent stream index of a device pseudo thread id. */
constexpr std::size_t
deviceIndexOf(Tid tid)
{
    return static_cast<std::size_t>(tid - deviceTidBase);
}

/**
 * Payload word @p word_idx of completion @p seq under @p seed: the
 * pure function both the recording agent and replay injection evaluate
 * (splitmix64 finalizer over the triple), so payloads never need to be
 * stored to be reproduced bit-identically.
 */
Word devicePayloadWord(std::uint64_t seed, std::uint64_t seq,
                       std::uint32_t word_idx);

/**
 * FNV-1a digest of one completion's visible writes: the payload words
 * of (@p seed, @p seq), then the doorbell value seq + 1. What the
 * agent logs and what replay injection verifies before committing.
 */
std::uint64_t deviceEventDigest(std::uint64_t seed, std::uint64_t seq,
                                std::uint32_t words);

/** Aggregate outcome of applyDeviceReplayFaults. */
struct DeviceFaultSummary
{
    std::uint64_t dropped = 0; //!< completions removed from the stream
    std::uint64_t torn = 0;    //!< payloads truncated (digest kept)
    std::uint64_t late = 0;    //!< anchors pushed to a later timestamp

    bool any() const { return dropped || torn || late; }

    /** One-line "device-faults: ..." report. */
    std::string summary() const;
};

/**
 * Replay-side device fault injection: consult the dev-drop / dev-torn /
 * dev-late sites of @p plan once per recorded completion (in stream
 * order, single-threaded) and mutate @p streams accordingly *before*
 * any replay or graph build runs, so the outcome is identical at any
 * worker count:
 *
 *  - dev-drop removes the completion (its memory writes never happen;
 *    strict replay reports the digest mismatch, degraded replay
 *    completes and reports differing digests),
 *  - dev-torn truncates the payload while keeping the recorded digest,
 *    so injection detects the tear as a divergence at the anchor,
 *  - dev-late pushes the anchor later by a drawn delta (subsequent
 *    events are pushed along to keep per-agent timestamps strictly
 *    monotonic), replaying the completion after chunks that recorded
 *    against its data.
 */
DeviceFaultSummary applyDeviceReplayFaults(
    std::vector<DeviceStream> &streams, FaultPlan &plan);

} // namespace qr

#endif // QR_BUS_DEVICE_STREAM_HH
