#include "bus/bus_agent.hh"

#include <algorithm>

#include "mem/memory.hh"
#include "sim/logging.hh"

namespace qr
{

BusAgent::BusAgent(const BusAgentConfig &cfg, Bus &bus, Memory &mem,
                   CoreId requester)
    : cfg_(cfg), bus_(bus), mem_(mem), requester_(requester),
      cooldown_(cfg.rate)
{
    qr_assert(cfg_.kind != DeviceKind::None,
              "bus agent %u constructed without a device kind",
              cfg_.agentId);
    qr_assert(cfg_.rate > 0, "bus agent %u: zero delivery rate",
              cfg_.agentId);
    qr_assert(cfg_.slots > 0 && cfg_.slotWords > 0,
              "bus agent %u: empty ring geometry", cfg_.agentId);
    qr_assert((cfg_.ringBase & 3) == 0 && (cfg_.doorbell & 3) == 0,
              "bus agent %u: unaligned ring/doorbell", cfg_.agentId);
    stream_.agentId = cfg_.agentId;
    stream_.kind = cfg_.kind;
    stream_.seed = cfg_.seed;
    stream_.events.reserve(cfg_.count);
}

Timestamp
BusAgent::observeRemote(const BusTxn &txn, Tick now)
{
    (void)now;
    clock_ = std::max(clock_, txn.reqTs + 1);
    return clock_;
}

void
BusAgent::tick(Tick now)
{
    if (done())
        return;
    if (--cooldown_ > 0)
        return;
    cooldown_ = cfg_.rate;
    deliver(now);
}

void
BusAgent::deliver(Tick now)
{
    std::uint64_t seq = stream_.events.size();
    Addr base = cfg_.ringBase +
                static_cast<Addr>((seq % cfg_.slots) *
                                  cfg_.slotWords * 4u);

    // Phase 1: coherence. One BusRdX per distinct line the completion
    // touches (payload range, then the doorbell) invalidates remote
    // copies, lets every RnrUnit terminate conflicting chunks against
    // its pre-merge clock, and merges each observer's clock back --
    // identical to what a core's store misses would do.
    const Addr mask = ~static_cast<Addr>(cfg_.lineBytes - 1);
    Addr prevLine = ~static_cast<Addr>(0);
    auto touch = [&](Addr a) {
        Addr line = a & mask;
        if (line == prevLine)
            return;
        prevLine = line;
        BusResult res = bus_.transact(
            {BusOp::BusRdX, line, requester_, clock_}, now);
        clock_ = std::max(clock_, res.maxObserverTs + 1);
        ++stats_.busTxns;
    };
    for (std::uint32_t w = 0; w < cfg_.slotWords; ++w)
        touch(base + 4u * w);
    if ((cfg_.doorbell & mask) != prevLine)
        touch(cfg_.doorbell);

    // Phase 2: data. Payload first, doorbell (the publication) last.
    for (std::uint32_t w = 0; w < cfg_.slotWords; ++w)
        mem_.write(base + 4u * w,
                   devicePayloadWord(cfg_.seed, seq, w));
    mem_.write(cfg_.doorbell, static_cast<Word>(seq + 1));

    // Phase 3: log. The timestamp is stamped after all merges, so any
    // chunk the completion terminated is strictly before it and any
    // chunk that later reads the data merges a strictly larger clock.
    DeviceEvent ev;
    ev.ts = clock_++;
    ev.seq = seq;
    ev.addr = base;
    ev.words = cfg_.slotWords;
    ev.doorbell = cfg_.doorbell;
    ev.digest = deviceEventDigest(cfg_.seed, seq, cfg_.slotWords);
    stream_.events.push_back(ev);
    ++stats_.events;
}

} // namespace qr
