#include "bus/device_stream.hh"

#include <algorithm>

#include "fault/fault_plan.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace qr
{

const char *
deviceKindName(DeviceKind k)
{
    switch (k) {
      case DeviceKind::Nic: return "nic";
      case DeviceKind::Disk: return "disk";
      default: return "none";
    }
}

DeviceKind
deviceKindFromName(const std::string &name)
{
    if (name == "nic")
        return DeviceKind::Nic;
    if (name == "disk")
        return DeviceKind::Disk;
    return DeviceKind::None;
}

Word
devicePayloadWord(std::uint64_t seed, std::uint64_t seq,
                  std::uint32_t word_idx)
{
    // Three rounds of the splitmix64 finalizer keep distinct
    // completions and distinct words of one completion uncorrelated.
    return static_cast<Word>(
        mix64(mix64(seed ^ mix64(seq + 1)) + word_idx));
}

std::uint64_t
deviceEventDigest(std::uint64_t seed, std::uint64_t seq,
                  std::uint32_t words)
{
    // Same FNV-1a constants as Memory::digest, folded word-wise over
    // exactly what the event makes visible: the payload, then the
    // doorbell value (seq + 1) that publishes it.
    std::uint64_t h = 1469598103934665603ull;
    auto fold = [&h](Word w) {
        for (int b = 0; b < 4; ++b) {
            h ^= (w >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (std::uint32_t i = 0; i < words; ++i)
        fold(devicePayloadWord(seed, seq, i));
    fold(static_cast<Word>(seq + 1));
    return h;
}

std::string
DeviceFaultSummary::summary() const
{
    return csprintf("device-faults: dropped=%llu torn=%llu late=%llu",
                    static_cast<unsigned long long>(dropped),
                    static_cast<unsigned long long>(torn),
                    static_cast<unsigned long long>(late));
}

DeviceFaultSummary
applyDeviceReplayFaults(std::vector<DeviceStream> &streams,
                        FaultPlan &plan)
{
    DeviceFaultSummary sum;
    if (!plan.armed(FaultSite::DevDrop) &&
        !plan.armed(FaultSite::DevTorn) &&
        !plan.armed(FaultSite::DevLate)) {
        return sum;
    }
    for (DeviceStream &stream : streams) {
        std::vector<DeviceEvent> kept;
        kept.reserve(stream.events.size());
        for (DeviceEvent ev : stream.events) {
            if (plan.fire(FaultSite::DevDrop)) {
                ++sum.dropped;
                continue;
            }
            if (ev.words > 1 && plan.fire(FaultSite::DevTorn)) {
                // Torn transfer: some payload tail never lands, but
                // the recorded digest still claims the full payload —
                // injection recomputes and flags the mismatch.
                ev.words = 1 + static_cast<std::uint32_t>(
                    plan.draw(FaultSite::DevTorn, ev.words - 1));
                ++sum.torn;
            }
            if (plan.fire(FaultSite::DevLate)) {
                ev.ts += 1 + plan.draw(FaultSite::DevLate, 16);
                ++sum.late;
            }
            kept.push_back(ev);
        }
        // dev-late can push an event past its successors; restore the
        // strict per-agent monotonicity the schedule merge requires by
        // carrying the shift forward.
        for (std::size_t i = 1; i < kept.size(); ++i)
            kept[i].ts = std::max(kept[i].ts, kept[i - 1].ts + 1);
        stream.events = std::move(kept);
    }
    return sum;
}

} // namespace qr
