/**
 * @file
 * A DMA-style bus agent: device-class nondeterminism for the recorder.
 *
 * The RSM logs syscalls, signals, and RDTSC, but those are all inputs
 * *pulled* by a core. A BusAgent models the other class: an
 * asynchronous memory agent (NIC ingress DMA, storage completion
 * engine) that *pushes* data into guest memory outside any core's
 * chunk stream. Mechanically it is a first-class bus citizen:
 *
 *  - it writes guest memory directly (functional memory keeps values
 *    current) and issues one BusRdX per distinct line it touches, so
 *    every L1 invalidates stale copies and -- the part the recorder
 *    cares about -- every core's RnrUnit snoops the transaction and
 *    terminates any chunk whose filters conflict with the device
 *    write, exactly as it would for a remote core's store;
 *  - it participates in the Lamport protocol as a BusObserver with a
 *    pseudo core id above all real cores: it merges every observed
 *    request timestamp, and its own transactions merge every
 *    observer's reply, so the timestamp it stamps on each completion
 *    totally orders the event against all chunk commits (conflicting
 *    chunks strictly before, dependent readers strictly after);
 *  - each completion is logged as one DeviceEvent in a per-agent
 *    DeviceStream (device_stream.hh) that rides the sphere artifact,
 *    and replay injects the same writes at the same (ts, tid) anchor.
 *
 * Delivery is fully deterministic: one completion every `rate` machine
 * cycles until `count` have been delivered, payload generated from the
 * agent seed. Nondeterminism enters through *scheduling* -- where the
 * completions land relative to the cores' chunks -- which is precisely
 * what the log captures.
 */

#ifndef QR_BUS_BUS_AGENT_HH
#define QR_BUS_BUS_AGENT_HH

#include <cstdint>

#include "bus/device_stream.hh"
#include "mem/bus.hh"
#include "sim/types.hh"

namespace qr
{

class Memory;

/** Static configuration of one bus agent (from the workload's device
 *  spec plus the qrec --device-rate override). */
struct BusAgentConfig
{
    std::uint32_t agentId = 0;
    DeviceKind kind = DeviceKind::None;
    std::uint64_t seed = 1;

    Addr ringBase = 0;           //!< first payload slot (word-aligned)
    std::uint32_t slotWords = 8; //!< payload words per completion
    std::uint32_t slots = 8;     //!< ring capacity (slots reused mod N)
    Addr doorbell = 0;           //!< completion-count word the agent
                                 //!< publishes after each payload
    std::uint64_t count = 0;     //!< completions to deliver in total
    std::uint32_t rate = 64;     //!< machine cycles between deliveries
    std::uint32_t lineBytes = 64;
};

/** Counters exported into the machine's metrics. */
struct BusAgentStats
{
    std::uint64_t events = 0;  //!< completions delivered
    std::uint64_t busTxns = 0; //!< BusRdX transactions issued
};

/**
 * The record-side agent. Owned by the Machine when recording with a
 * device armed; ticked once per machine cycle after the cores.
 */
class BusAgent : public BusObserver
{
  public:
    /**
     * @p requester must be unique on the bus (the machine passes
     * numCores + agent index): the bus skips the requester's own id
     * when broadcasting, and no real core may be skipped for an agent
     * transaction.
     */
    BusAgent(const BusAgentConfig &cfg, Bus &bus, Memory &mem,
             CoreId requester);

    /** Advance one machine cycle; possibly deliver one completion. */
    void tick(Tick now);

    /** True once all `count` completions have been delivered. */
    bool done() const { return stream_.events.size() >= cfg_.count; }

    const BusAgentConfig &config() const { return cfg_; }
    const DeviceStream &stream() const { return stream_; }
    const BusAgentStats &stats() const { return stats_; }

    // BusObserver: merge clocks with every remote transaction, like a
    // core's RnR unit does (no filters, so never a conflict).
    Timestamp observeRemote(const BusTxn &txn, Tick now) override;
    CoreId observerId() const override { return requester_; }

  private:
    void deliver(Tick now);

    BusAgentConfig cfg_;
    Bus &bus_;
    Memory &mem_;
    CoreId requester_;
    Timestamp clock_ = 0;
    std::uint32_t cooldown_; //!< cycles until the next delivery
    DeviceStream stream_;
    BusAgentStats stats_;
};

} // namespace qr

#endif // QR_BUS_BUS_AGENT_HH
