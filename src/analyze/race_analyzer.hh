/**
 * @file
 * Offline happens-before race analysis over recorded chunk logs.
 *
 * Works from the serialized sphere alone -- no replay, no Program --
 * which is the property that makes it usable on any recorded artifact:
 * a .qrec file contains everything the analysis needs. Three stages
 * (see src/analyze/README.md for the full methodology):
 *
 *  1. Graph reconstruction. The (ts, tid)-sorted chunk schedule is the
 *     spine; program-order edges come from per-thread chunk sequences,
 *     synchronization edges from the kernel SyncPoints Capo3 records at
 *     spawn/join/futex wakes, and dependence (conflict) edges from the
 *     exact per-chunk shadow sets when the sphere was recorded with
 *     exactShadow.
 *
 *  2. Race detection. A cross-thread conflict edge is a *race* when no
 *     alternative happens-before path orders its endpoints: the only
 *     thing serializing the two accesses is the accident of recording.
 *     Racy edges are removed and the check iterated to a fixpoint, so
 *     a second race masked by the first is still found. Per-chunk
 *     vector clocks are then computed over the transitively reduced
 *     synchronized graph.
 *
 *  3. Precision audit. Every conflict-terminated chunk is re-judged
 *     against Bloom filters rebuilt from its exact sets (using the
 *     recorded filter geometry): did the terminating access really
 *     overlap the chunk's address set, or did it merely alias in the
 *     filter? The resulting false-conflict rate is the recording
 *     precision the paper's filter-geometry experiments sweep.
 *
 * Without exact shadow sets the analyzer degrades gracefully: conflict
 * terminations become "possible race" candidates (chunk pairs with no
 * synchronization path) with no line addresses, and the precision
 * audit is reported as not measured.
 */

#ifndef QR_ANALYZE_RACE_ANALYZER_HH
#define QR_ANALYZE_RACE_ANALYZER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analyze/device_pass.hh"
#include "capo/sphere.hh"
#include "sim/bench_json.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qr
{

struct StatsSnapshot;

/** One cross-thread dependence between two chunks. */
struct ConflictEdge
{
    std::uint32_t from = 0; //!< schedule index of the earlier chunk
    std::uint32_t to = 0;   //!< schedule index of the later chunk
    /** Endpoint identities, denormalized so reports do not need the
     *  full schedule vector (the streaming analyzer never builds it). */
    Tid fromTid = invalidTid;
    Tid toTid = invalidTid;
    Timestamp fromTs = 0;
    Timestamp toTs = 0;
    bool raw = false;       //!< a write in @p from feeds a read in @p to
    bool war = false;       //!< a read in @p from precedes a write in @p to
    bool waw = false;       //!< both chunks write a common line
    /** Conflicting line addresses (sorted unique; empty without exact
     *  shadow sets). */
    std::vector<Addr> lines;
    /** No alternative happens-before path orders the endpoints. */
    bool racy = false;

    bool operator==(const ConflictEdge &o) const = default;

    /** "[RAW|WAW]"-style kind tag. */
    std::string kindStr() const;
};

/** Recording-precision audit of the conflict terminations. */
struct PrecisionAudit
{
    std::uint64_t conflictTerminations = 0;
    std::uint64_t trueConflicts = 0;      //!< terminating line was real
    std::uint64_t bloomFalseConflicts = 0; //!< filter alias only
    std::uint64_t unattributed = 0; //!< no requester chunk identified

    /** Fraction of conflict terminations caused by filter aliasing. */
    double falseConflictRate() const;
};

/** Everything the offline analyzer derives from one sphere. */
struct RaceReport
{
    bool exact = false; //!< sphere carried exact shadow sets
    std::uint32_t nThreads = 0;
    std::uint64_t nChunks = 0;

    // --- graph shape ------------------------------------------------------
    std::uint64_t programEdges = 0;
    std::uint64_t syncEdges = 0;
    std::uint64_t conflictEdges = 0; //!< cross-thread dependence pairs
    std::uint64_t totalEdges = 0;
    std::uint64_t reducedEdges = 0; //!< after transitive reduction

    /** Every cross-thread conflict edge (exact mode) or termination
     *  candidate (degraded mode), schedule order. */
    std::vector<ConflictEdge> conflicts;
    /** The racy subset of @p conflicts. */
    std::vector<ConflictEdge> races;
    /** Union of racy line addresses (sorted unique; exact mode only). */
    std::vector<Addr> racyLines;

    // --- device streams (v3 spheres) --------------------------------------
    std::uint64_t deviceEvents = 0; //!< recorded bus-agent completions
    /** (chunk, event) payload-line conflict pairs, ordered or not. */
    std::uint64_t deviceEdges = 0;
    /**
     * Unordered device/core accesses (analyze/device_pass.hh),
     * deduplicated by (tid, agent, line). Classified only on
     * exact-shadow spheres; on Bloom-only spheres the streams are
     * counted but not race-judged.
     */
    std::vector<DeviceRace> deviceRaces;

    // --- precision / recording statistics ---------------------------------
    PrecisionAudit audit;
    std::uint64_t reasonCounts[numChunkReasons] = {};
    Histogram rswValues;
    Histogram chunkSizes;

    // --- race-fixpoint diagnostics ----------------------------------------
    /** Rounds the eager race fixpoint ran (streaming: single pass, 1). */
    std::uint32_t fixpointRounds = 0;
    /**
     * The eager classifier's legacy 64-round cap was hit before the
     * fixpoint converged: some reported "synchronized" conflict edges
     * may actually be racy. The streaming classifier computes the exact
     * fixpoint and never caps.
     */
    bool fixpointCapped = false;

    // --- vector clocks ----------------------------------------------------
    /** tid -> component slot in the vector clocks. */
    std::map<Tid, int> threadSlot;
    /**
     * Per-chunk vector clocks over the synchronized (non-racy) reduced
     * graph, schedule-indexed, @p nThreads components each: entry
     * [i * nThreads + slot] counts the chunks of that thread ordered
     * at-or-before chunk i.
     */
    std::vector<std::uint64_t> vectorClocks;

    /** The (ts, tid)-sorted schedule the indices above refer to. */
    std::vector<ChunkRecord> schedule;

    /** Clock component of chunk @p i for thread slot @p slot. */
    std::uint64_t
    vc(std::uint32_t i, int slot) const
    {
        return vectorClocks[static_cast<std::size_t>(i) * nThreads +
                            static_cast<std::size_t>(slot)];
    }

    /** True iff chunk @p a happens-before chunk @p b per the clocks. */
    bool happensBefore(std::uint32_t a, std::uint32_t b) const;

    /** Human-readable multi-line report. */
    std::string str() const;

    /** Machine-readable rows (bench id "ANALYZE"), one document per
     *  workload, mergeable next to BENCH_RECORD.json. */
    BenchDoc toBenchDoc(const std::string &workload) const;
};

/**
 * Analyze a recorded sphere. Pure function of the logs: throws
 * qr::ParseError if the sphere is malformed (non-monotonic timestamps,
 * mismatched shadow sets), never mutates its input.
 *
 * @p fixpoint_cap bounds the race-fixpoint rounds (the legacy default
 * of 64 is not always enough -- radix-style cascades can need hundreds
 * -- in which case the report carries fixpointCapped plus a warning).
 * Pass 0 to iterate to natural convergence, where the result provably
 * matches analyzeSphereStreaming.
 */
RaceReport analyzeSphere(const SphereLogs &logs,
                         std::uint32_t fixpoint_cap = 64);

// --- streaming analysis -------------------------------------------------

/** Knobs of the streaming analyzer. */
struct StreamOptions
{
    /**
     * Chunks per processing batch: frontier garbage collection,
     * payload eviction, and memory sampling run at batch boundaries.
     * Any value yields identical analysis results; the window only
     * trades bookkeeping frequency against transient frontier size.
     * 0 means the default.
     */
    std::uint32_t window = 4096;

    /**
     * Retain the full conflicts list in the report. Large spheres can
     * carry O(chunks) conflict edges; consumers that only need races
     * and the aggregate counters (qrec analyze, the scale bench) turn
     * this off to keep the report itself flat. conflictEdges still
     * counts every edge.
     */
    bool keepConflicts = true;
};

/** Resource accounting of one streaming analysis. */
struct StreamStats
{
    /**
     * Peak deterministic byte accounting of the analyzer's resident
     * state (frontier nodes, pending audits/candidates, sweep maps,
     * cursor state, retained results), sampled at batch boundaries
     * after frontier retirement.
     */
    std::uint64_t peakResidentBytes = 0;
    std::uint64_t windowBatches = 0;    //!< batch boundaries processed
    std::uint64_t windowChunks = 0;     //!< configured batch size
    std::uint64_t retiredChunks = 0;    //!< nodes evicted from frontier
    std::uint64_t peakLiveChunks = 0;   //!< frontier nodes, post-retire
    std::uint64_t evictedPayloadBytes = 0; //!< madvise'd off the map

    /** Append as "analyze.*" entries (stats export / bench-JSON v2). */
    void statsInto(StatsSnapshot &s) const;
};

/**
 * Analyze a serialized sphere through a SphereCursor without ever
 * materializing SphereLogs: one pass over the (ts, tid) schedule with
 * a sliding frontier window, replacing the whole-matrix reachability
 * fixpoint with per-chunk frontier vector clocks. Produces the same
 * report as analyzeSphere (bit-identical str()/toBenchDoc/races/
 * conflicts/audit) whenever the eager fixpoint converges within its
 * round cap, while resident memory stays proportional to the frontier,
 * not the sphere. The report's schedule and vectorClocks members stay
 * empty -- they are O(chunks) by definition.
 */
RaceReport analyzeSphereStreaming(SphereCursor &cur,
                                  const StreamOptions &opt = {},
                                  StreamStats *stats = nullptr);

} // namespace qr

#endif // QR_ANALYZE_RACE_ANALYZER_HH
