/**
 * @file
 * SyncPoint resolution over a SphereCursor; see sync_index.hh.
 */

#include "analyze/sync_index.hh"

#include <algorithm>
#include <utility>

namespace qr
{

StreamSyncIndex
resolveSyncEdges(const SphereCursor &cur,
                 const std::map<Tid, int> &slotOf,
                 std::uint64_t &sync_edges)
{
    int nslots = static_cast<int>(cur.nThreads());
    const std::vector<Tid> &tids = cur.tids();

    struct RawSync
    {
        int dstSlot;
        std::uint64_t dstPos;
        int srcSlot;
        Timestamp floor;
        std::uint64_t srcCount = 0; //!< partner chunks with ts < floor
        Timestamp srcTs = 0;
        Timestamp dstTs = 0;
    };
    std::vector<RawSync> raw;
    for (int t = 0; t < nslots; ++t) {
        for (const SyncPoint &sp : cur.syncsOf(t)) {
            // A thread that logged nothing after the sync has nothing
            // left to order; an unknown partner cannot source an edge.
            if (sp.afterChunkSeq >= cur.chunkCount(t))
                continue;
            auto partner = slotOf.find(sp.other);
            if (partner == slotOf.end())
                continue;
            raw.push_back({t, sp.afterChunkSeq, partner->second,
                           sp.clockFloor});
        }
    }

    // Count, per edge, the partner chunks below the floor: sort each
    // source slot's floors and advance them against one ascending
    // timestamp decode of that slot.
    std::vector<std::vector<std::uint32_t>> bySrcSlot(nslots);
    for (std::uint32_t i = 0; i < raw.size(); ++i)
        bySrcSlot[raw[i].srcSlot].push_back(i);
    for (int s = 0; s < nslots; ++s) {
        auto &order = bySrcSlot[s];
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return raw[a].floor < raw[b].floor;
                  });
        std::size_t p = 0;
        cur.forEachChunkTs(s, [&](std::uint64_t idx, Timestamp ts) {
            while (p < order.size() && raw[order[p]].floor <= ts)
                raw[order[p++]].srcCount = idx;
            return p < order.size();
        });
        while (p < order.size())
            raw[order[p++]].srcCount = cur.chunkCount(s);
    }

    // Fetch the endpoint timestamps the same way.
    struct TsQuery
    {
        std::uint64_t pos;
        std::uint32_t edge;
        bool src;
    };
    std::vector<std::vector<TsQuery>> queries(nslots);
    for (std::uint32_t i = 0; i < raw.size(); ++i) {
        if (raw[i].srcCount == 0)
            continue; // waker logged nothing before the sync
        queries[raw[i].srcSlot].push_back(
            {raw[i].srcCount - 1, i, true});
        queries[raw[i].dstSlot].push_back({raw[i].dstPos, i, false});
    }
    for (int s = 0; s < nslots; ++s) {
        auto &q = queries[s];
        std::sort(q.begin(), q.end(),
                  [](const TsQuery &a, const TsQuery &b) {
                      return a.pos < b.pos;
                  });
        std::size_t p = 0;
        cur.forEachChunkTs(s, [&](std::uint64_t idx, Timestamp ts) {
            while (p < q.size() && q[p].pos == idx) {
                (q[p].src ? raw[q[p].edge].srcTs
                          : raw[q[p].edge].dstTs) = ts;
                p++;
            }
            return p < q.size();
        });
    }

    StreamSyncIndex index;
    index.byDst.resize(nslots);
    index.bySrc.resize(nslots);
    for (const RawSync &r : raw) {
        if (r.srcCount == 0)
            continue;
        // The eager builder drops from >= to on schedule indices; the
        // schedule is (ts, tid)-lexicographic, so compare that.
        if (std::pair(r.srcTs, tids[r.srcSlot]) >=
            std::pair(r.dstTs, tids[r.dstSlot]))
            continue;
        StreamSyncEdge e;
        e.srcSlot = r.srcSlot;
        e.dstSlot = r.dstSlot;
        e.srcPos = r.srcCount - 1;
        e.dstPos = r.dstPos;
        index.edges.push_back(e);
        sync_edges++;
    }
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(index.edges.size()); ++i) {
        index.bySrc[index.edges[i].srcSlot].push_back(i);
        index.byDst[index.edges[i].dstSlot].push_back(i);
    }
    for (int s = 0; s < nslots; ++s) {
        std::stable_sort(index.bySrc[s].begin(), index.bySrc[s].end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return index.edges[a].srcPos <
                                    index.edges[b].srcPos;
                         });
        std::stable_sort(index.byDst[s].begin(), index.byDst[s].end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return index.edges[a].dstPos <
                                    index.edges[b].dstPos;
                         });
    }
    return index;
}

SyncEdgeKind
classifySyncEdge(const StreamSyncEdge &e, const SphereCursor &cur)
{
    if (e.dstPos == 0)
        return SyncEdgeKind::Spawn;
    if (e.srcPos + 1 ==
        cur.chunkCount(static_cast<std::size_t>(e.srcSlot)))
        return SyncEdgeKind::Terminal;
    return SyncEdgeKind::Handoff;
}

} // namespace qr
