#include "analyze/device_pass.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace qr
{

std::string
DeviceRace::str() const
{
    return csprintf(
        "agent %u event %llu line 0x%x vs tid %d chunk ts %llu (%s)",
        agent, static_cast<unsigned long long>(event), line, tid,
        static_cast<unsigned long long>(chunkTs),
        preEvent ? "core access before the device write"
                 : "unacquired access after the device write");
}

DevicePass::DevicePass(const std::vector<DeviceStream> &devices,
                       std::uint32_t line_bytes)
    : acquired_(devices.size())
{
    qr_assert(line_bytes && (line_bytes & (line_bytes - 1)) == 0,
              "device pass needs a power-of-two line size");
    const Addr mask = ~static_cast<Addr>(line_bytes - 1);
    for (std::uint32_t a = 0; a < devices.size(); ++a) {
        const DeviceStream &d = devices[a];
        agents_.push_back(d.agentId);
        events_ += d.events.size();
        for (const DeviceEvent &ev : d.events) {
            Addr first = ev.addr & mask;
            Addr last = ev.words
                            ? (ev.addr + 4u * ev.words - 1) & mask
                            : first;
            for (Addr line = first; line <= last; line += line_bytes)
                payload_[line].push_back({a, ev.seq, ev.ts});
            auto &owners = doorbell_[ev.doorbell & mask];
            if (std::find(owners.begin(), owners.end(), a) ==
                owners.end())
                owners.push_back(a);
        }
    }
}

void
DevicePass::chunk(Tid tid, Timestamp ts, const ChunkShadow &sh)
{
    // Acquires first: a poll and the payload reads it publishes often
    // share a chunk, and the Lamport construction already guarantees a
    // successful poll's chunk timestamps after the event it observed.
    for (Addr line : sh.reads) {
        auto db = doorbell_.find(line);
        if (db == doorbell_.end())
            continue;
        for (std::uint32_t a : db->second) {
            Timestamp &acq = acquired_[a][tid];
            acq = std::max(acq, ts);
        }
    }

    auto classify = [&](Addr line) {
        auto pe = payload_.find(line);
        if (pe == payload_.end())
            return;
        for (const LineEvent &le : pe->second) {
            ++edges_;
            bool ordered = false;
            if (ts > le.ts) {
                auto &acq = acquired_[le.agent];
                auto it = acq.find(tid);
                ordered = it != acq.end() && it->second > le.ts;
            }
            if (ordered)
                continue;
            if (!reported_.insert({tid, le.agent, line}).second)
                continue;
            DeviceRace r;
            r.agent = le.agent;
            r.event = le.seq;
            r.tid = tid;
            r.chunkTs = ts;
            r.line = line;
            r.preEvent = ts <= le.ts;
            races_.push_back(r);
        }
    };
    for (Addr line : sh.reads)
        classify(line);
    for (Addr line : sh.writes)
        if (!std::binary_search(sh.reads.begin(), sh.reads.end(), line))
            classify(line);
}

} // namespace qr
