/**
 * @file
 * Resolution of recorded kernel SyncPoints into concrete per-thread
 * synchronization edges, shared by every streaming pass over a
 * SphereCursor (the race analyzer, the predictive pass, the sphere
 * linter).
 *
 * A SyncPoint as Capo3 logs it is one-sided: the woken/spawned thread
 * records "my chunk at position afterChunkSeq is ordered after
 * everything thread `other` logged below clockFloor". Resolving that
 * into a (srcSlot, srcPos) -> (dstSlot, dstPos) edge requires finding
 * the waker's last chunk with ts < clockFloor, which the eager
 * analyzer did with a binary search over materialized logs; here it is
 * a floor-sorted two-pointer walk over the cursor's timestamp streams,
 * so no chunk log is ever materialized.
 */

#ifndef QR_ANALYZE_SYNC_INDEX_HH
#define QR_ANALYZE_SYNC_INDEX_HH

#include <cstdint>
#include <map>
#include <vector>

#include "capo/sphere.hh"
#include "sim/types.hh"

namespace qr
{

/** One resolved kernel synchronization edge, in per-thread terms. */
struct StreamSyncEdge
{
    int srcSlot = 0;
    int dstSlot = 0;
    std::uint64_t srcPos = 0;
    std::uint64_t dstPos = 0;
    std::uint32_t srcId = 0; //!< schedule index, once the source ran
    bool srcSeen = false;
    bool consumed = false;
};

/** Sync edges indexed for the streaming pass. */
struct StreamSyncIndex
{
    std::vector<StreamSyncEdge> edges;
    /** Per-slot edge indices sorted by dstPos / srcPos. */
    std::vector<std::vector<std::uint32_t>> byDst;
    std::vector<std::vector<std::uint32_t>> bySrc;

    std::uint64_t
    bytes() const
    {
        std::uint64_t b = edges.size() * sizeof(StreamSyncEdge);
        for (const auto &v : byDst)
            b += v.size() * sizeof(std::uint32_t);
        for (const auto &v : bySrc)
            b += v.size() * sizeof(std::uint32_t);
        return b;
    }
};

/**
 * Resolve every SyncPoint into a (srcSlot, srcPos) -> (dstSlot,
 * dstPos) edge without materializing any chunk log: the "last partner
 * chunk with ts < clockFloor" lookup becomes a floor-sorted two-pointer
 * walk over each partner's timestamp stream, and the eager builder's
 * from >= to drop is applied on (ts, tid) pairs -- the schedule
 * comparator -- since schedule indices do not exist yet.
 */
StreamSyncIndex resolveSyncEdges(const SphereCursor &cur,
                                 const std::map<Tid, int> &slotOf,
                                 std::uint64_t &sync_edges);

/**
 * Heuristic kind of a resolved sync edge, used by the predictive pass
 * to separate true orderings from accidental lock-handoff directions.
 */
enum class SyncEdgeKind
{
    /** Spawn edge: the destination is the thread's first chunk. The
     *  child could not have run before being created -- a true order. */
    Spawn,
    /** Terminal wake: the source is the waker's final chunk, the
     *  shape of a join (the waker exited before the wake landed) --
     *  a true order. */
    Terminal,
    /** Any other futex wake: a lock/condvar handoff whose direction
     *  is an accident of the recorded schedule. */
    Handoff,
};

/** Classify @p e against the cursor's per-thread chunk counts. */
SyncEdgeKind classifySyncEdge(const StreamSyncEdge &e,
                              const SphereCursor &cur);

} // namespace qr

#endif // QR_ANALYZE_SYNC_INDEX_HH
