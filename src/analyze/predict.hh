/**
 * @file
 * Predictive race detection over recorded chunk logs.
 *
 * The race analyzer (race_analyzer.hh) reports *witnessed* races: the
 * conflict edges no happens-before path orders, i.e. the races the
 * recorded schedule happened to expose. But the recorded sphere
 * over-serializes the execution: every futex handoff edge the kernel
 * logged orders two critical sections whose order was an accident of
 * the scheduler, and every conflict edge orders two accesses by the
 * accident of who got to memory first. A race the recording *masked*
 * -- two unsynchronized accesses that this schedule happened to
 * serialize through an unrelated lock handoff -- is invisible to the
 * witnessed fixpoint, yet manifests under a legal reschedule.
 *
 * This pass re-examines every synchronized (covered) conflict edge of
 * a witnessed report against two weaker orders:
 *
 *  1. The *sync-preserving* order: program order, spawn edges and
 *     terminal (join-shaped) wakes -- the orderings every reschedule
 *     must preserve. Handoff futex wakes are dropped: the lock only
 *     guarantees mutual exclusion, not direction. An edge covered here
 *     (`orderCovered`) can never flip and stays synchronized.
 *
 *  2. Chunk-granularity Eraser locksets, recovered from the futex
 *     SyncPoints: a chunk "holds the lock" when it falls inside an
 *     [acquire-wake-in, release-wake-out) window of its thread. An
 *     edge whose endpoints are both lock-held is consistently
 *     protected (the handoff direction may flip, but mutual exclusion
 *     still separates the accesses): synchronized. One-sided evidence
 *     is the Eraser "lockset shrank" signal: a lockset-candidate.
 *     No evidence on either side: the race is *predicted*.
 *
 * The recording has no lock identity (SyncPoints carry only the waker
 * tid) and no uncontended-acquire events, so the lockset is a
 * single-lock, chunk-granularity approximation; see
 * src/analyze/README.md for the precision argument and the twin
 * workloads that pin it.
 */

#ifndef QR_ANALYZE_PREDICT_HH
#define QR_ANALYZE_PREDICT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/race_analyzer.hh"
#include "capo/sphere.hh"

namespace qr
{

struct StatsSnapshot;

/** Classification of one cross-thread conflict edge. */
enum class RaceTier
{
    /** Unordered in the recorded graph: the witnessed race the plain
     *  analyzer already reports. */
    Witnessed,
    /** Ordered only by schedule accidents, with no lockset evidence on
     *  either endpoint: manifests under a legal reschedule. */
    Predicted,
    /** Ordered only by schedule accidents, with lockset evidence on
     *  exactly one endpoint: inconsistent locking discipline. */
    LocksetCandidate,
    /** Ordered by sync-preserving edges, or consistently
     *  lock-protected on both endpoints. */
    Synchronized,
};

/** Short lower-case tag ("witnessed", "predicted", ...). */
const char *raceTierStr(RaceTier t);

/** One predicted or lockset-candidate edge, with its evidence. */
struct PredictFinding
{
    ConflictEdge edge;
    RaceTier tier = RaceTier::Synchronized;
    bool srcHeld = false; //!< source chunk inside a lock window
    bool dstHeld = false; //!< destination chunk inside a lock window
};

/** Everything the predictive pass derives from one sphere. */
struct PredictReport
{
    bool exact = false; //!< sphere carried exact shadow sets

    // --- tier counts over every cross-thread conflict edge ----------------
    std::uint64_t witnessed = 0;
    std::uint64_t predicted = 0;
    std::uint64_t locksetCandidates = 0;
    std::uint64_t synchronized = 0;

    // --- evidence shape ---------------------------------------------------
    std::uint64_t hardSyncEdges = 0; //!< spawn + terminal wakes
    std::uint64_t softSyncEdges = 0; //!< handoff futex wakes
    std::uint64_t orderCovered = 0;  //!< edges the hard order covers
    std::uint64_t lockProtected = 0; //!< edges held on both endpoints

    /** Predicted and lockset-candidate edges, schedule order. */
    std::vector<PredictFinding> findings;
    /** Union of predicted line addresses (sorted unique). */
    std::vector<Addr> predictedLines;

    /** Human-readable multi-line report. */
    std::string str() const;

    /** Append as "analyze.predict.*" entries. */
    void statsInto(StatsSnapshot &s) const;

    /** Append rows to an ANALYZE bench document. */
    void benchInto(BenchDoc &doc, const std::string &workload) const;
};

/**
 * Classify every conflict edge of @p witnessed against the
 * sync-preserving order and the recovered locksets. @p cur must be a
 * fresh cursor over the same serialized sphere @p witnessed was
 * computed from, and @p witnessed must retain its conflicts list
 * (StreamOptions::keepConflicts); throws ParseError when the counts
 * disagree. On degraded (shadow-less) spheres prediction is not
 * meaningful -- candidates carry no line identity -- so the report
 * only restates the witnessed count.
 */
PredictReport predictRaces(SphereCursor &cur,
                           const RaceReport &witnessed);

} // namespace qr

#endif // QR_ANALYZE_PREDICT_HH
