/**
 * @file
 * The `qrec verify` sphere linter; see verify.hh for the layer model.
 */

#include "analyze/verify.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "bus/device_stream.hh"
#include "capo/log_store.hh"
#include "capo/sphere.hh"
#include "sim/logging.hh"

namespace qr
{

const char *
lintSeverityStr(LintSeverity s)
{
    return s == LintSeverity::Error ? "error" : "warning";
}

const std::vector<LintRule> &
lintRules()
{
    static const std::vector<LintRule> rules = {
        {"QRV001", LintSeverity::Error,
         "artifact is empty"},
        {"QRV002", LintSeverity::Error,
         "bytes are not a sphere artifact"},
        {"QRV003", LintSeverity::Error,
         "container torn at the tail: trailing chunk records lost, "
         "every thread log still present"},
        {"QRV004", LintSeverity::Error,
         "container truncated mid-stream: whole thread logs lost"},
        {"QRV005", LintSeverity::Error,
         "a container segment fails its checksum"},
        {"QRV006", LintSeverity::Error,
         "the container trailer hash disagrees with the payload"},
        {"QRV007", LintSeverity::Error,
         "container structure mismatch (segment accounting, trailing "
         "bytes, or unknown record tags)"},
        {"QRV008", LintSeverity::Error,
         "per-thread chunk timestamps are not strictly monotonic"},
        {"QRV009", LintSeverity::Error,
         "malformed sphere stream"},
        {"QRV010", LintSeverity::Warning,
         "a sync point names a partner thread absent from the sphere"},
        {"QRV011", LintSeverity::Warning,
         "recording metadata declares exact shadow sets but no thread "
         "carries any"},
        {"QRV012", LintSeverity::Warning,
         "a gap marker chunk carries shadow data (gaps record loss, "
         "never accesses)"},
        {"QRV013", LintSeverity::Warning,
         "a sync point's clock floor lies beyond every clock its "
         "waker logged"},
        {"QRV014", LintSeverity::Warning,
         "a sync edge is inverted: the waker's chunk does not precede "
         "the woken chunk in the (ts, tid) schedule"},
        {"QRV015", LintSeverity::Warning,
         "a shadow line address lies outside recorded guest memory"},
        {"QRV016", LintSeverity::Warning,
         "implausible Bloom/line geometry in the recording metadata"},
        {"QRV017", LintSeverity::Warning,
         "a device event writes payload or doorbell at or beyond "
         "recorded guest memory"},
        {"QRV018", LintSeverity::Warning,
         "malformed device stream (duplicate agent id, unknown device "
         "kind, zero-word event, or digest mismatch)"},
    };
    return rules;
}

namespace
{

LintSeverity
severityOf(const char *code)
{
    for (const LintRule &r : lintRules())
        if (std::string(r.code) == code)
            return r.severity;
    return LintSeverity::Error;
}

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

std::uint64_t
LintReport::errors() const
{
    std::uint64_t n = 0;
    for (const LintFinding &f : findings)
        if (f.severity == LintSeverity::Error)
            n++;
    return n;
}

std::uint64_t
LintReport::warnings() const
{
    std::uint64_t n = 0;
    for (const LintFinding &f : findings)
        if (f.severity == LintSeverity::Warning)
            n++;
    return n;
}

std::string
LintReport::str() const
{
    std::string s;
    for (const LintFinding &f : findings) {
        std::string where;
        if (f.tid != invalidTid)
            where = csprintf(" [tid %d]", f.tid);
        s += csprintf("%s: %s %s%s: %s\n", uri.c_str(),
                      lintSeverityStr(f.severity), f.code.c_str(),
                      where.c_str(), f.message.c_str());
    }
    if (clean())
        s += csprintf(
            "%s: clean: %llu thread(s), %llu chunk(s), %llu sync "
            "point(s)%s\n",
            uri.c_str(), static_cast<unsigned long long>(threads),
            static_cast<unsigned long long>(chunks),
            static_cast<unsigned long long>(syncPoints),
            container ? (sealed ? ", sealed container"
                                : ", unsealed container")
                      : ", raw stream");
    else
        s += csprintf("%s: %llu error(s), %llu warning(s)\n",
                      uri.c_str(),
                      static_cast<unsigned long long>(errors()),
                      static_cast<unsigned long long>(warnings()));
    return s;
}

LintReport
lintSphereBytes(const std::vector<std::uint8_t> &raw,
                const std::string &uri)
{
    LintReport rep;
    rep.uri = uri;
    auto add = [&](const char *code, std::string msg,
                   Tid tid = invalidTid) {
        rep.findings.push_back(
            {code, severityOf(code), std::move(msg), tid});
    };

    if (raw.empty()) {
        add("QRV001", "artifact is empty (0 bytes)");
        return rep;
    }

    // --- layer 1: the QSG1 container --------------------------------------
    const std::vector<std::uint8_t> *bytes = &raw;
    std::vector<std::uint8_t> payload;
    bool torn = false;
    std::string tornWhy;
    if (isSegmented(raw)) {
        rep.container = true;
        SegmentedReadResult seg = readSegmented(raw);
        payload = std::move(seg.payload);
        bytes = &payload;
        switch (seg.kind) {
          case SegmentedError::None:
            rep.sealed = true;
            break;
          case SegmentedError::SegmentChecksum:
            // Data after the bad segment is lost too: fall through to
            // the salvage-based tail/mid-stream classification below.
            add("QRV005", seg.error);
            torn = true;
            tornWhy = seg.error;
            break;
          case SegmentedError::TrailerChecksum:
            add("QRV006", seg.error);
            break;
          case SegmentedError::SegmentCountMismatch:
          case SegmentedError::TrailingBytes:
          case SegmentedError::UnexpectedTag:
            add("QRV007", seg.error);
            break;
          case SegmentedError::NoTrailer:
          case SegmentedError::TruncatedTrailer:
          case SegmentedError::TruncatedSegmentHeader:
          case SegmentedError::ImplausibleSegmentLength:
          case SegmentedError::TornSegment:
            torn = true;
            tornWhy = seg.error;
            break;
          case SegmentedError::NotContainer:
            break; // unreachable: isSegmented() held
        }
    }

    // --- layer 2: the sphere stream ---------------------------------------
    SphereSalvage sal;
    try {
        sal = SphereLogs::deserializeTolerant(*bytes);
    } catch (const ParseError &e) {
        if (torn)
            add("QRV004",
                csprintf("%s; no thread log salvaged (%s)",
                         tornWhy.c_str(), e.what()));
        else
            add("QRV002", e.what());
        return rep;
    }
    rep.parsed = true;
    rep.threads = sal.logs.threads.size();
    rep.chunks = sal.logs.totalChunks();
    for (const auto &[tid, tl] : sal.logs.threads)
        rep.syncPoints += tl.syncs.size();

    if (torn) {
        // What the salvage recovered decides the diagnosis: all
        // declared threads present means only trailing records of one
        // log were cut; missing threads mean the tear ate whole logs.
        if (sal.threadsDeclared ==
            sal.threadsSalvaged + sal.threadsPartial)
            add("QRV003",
                csprintf("%s; all %llu thread log(s) present, "
                         "trailing chunk records lost (%s)",
                         tornWhy.c_str(),
                         static_cast<unsigned long long>(
                             sal.threadsDeclared),
                         sal.note.c_str()));
        else
            add("QRV004",
                csprintf("%s; %llu of %llu thread log(s) salvaged "
                         "(%s)",
                         tornWhy.c_str(),
                         static_cast<unsigned long long>(
                             sal.threadsSalvaged + sal.threadsPartial),
                         static_cast<unsigned long long>(
                             sal.threadsDeclared),
                         sal.note.c_str()));
    } else if (!sal.complete && (rep.sealed || !rep.container)) {
        // An intact wrapper around a stream that will not parse: the
        // corruption is in the sphere encoding itself.
        if (sal.note.find("non-monotonic") != std::string::npos)
            add("QRV008", sal.note);
        else
            add("QRV009", sal.note);
    }

    // --- layer 3: semantic invariants -------------------------------------
    // Only judged on complete streams: a salvaged prefix legitimately
    // breaks cross-thread invariants (dangling partners, floors past
    // the cut), and those findings would only restate the tear.
    if (!sal.complete)
        return rep;

    const SphereLogs &logs = sal.logs;
    const RecordMeta &meta = logs.meta;
    if (!isPow2(meta.lineBytes) || meta.lineBytes < 8 ||
        meta.lineBytes > 4096)
        add("QRV016", csprintf("line size %u is not a power of two "
                               "in [8, 4096]",
                               meta.lineBytes));
    if (!isPow2(meta.bloomBits))
        add("QRV016", csprintf("Bloom filter size %u bits is not a "
                               "power of two",
                               meta.bloomBits));
    if (meta.bloomHashes == 0 || meta.bloomHashes > 8)
        add("QRV016", csprintf("Bloom hash count %u outside [1, 8]",
                               meta.bloomHashes));
    if (meta.exactShadow && !logs.hasShadows())
        add("QRV011",
            "metadata declares exact shadow sets but at least one "
            "thread carries none");

    // Device streams (v3 spheres). The parser is deliberately lenient
    // on device semantics -- it only enforces structure and timestamp
    // monotonicity -- so the linter is where dangling writes and
    // malformed streams surface.
    {
        std::set<std::uint32_t> agentIds;
        for (std::size_t d = 0; d < logs.devices.size(); ++d) {
            const DeviceStream &ds = logs.devices[d];
            if (!agentIds.insert(ds.agentId).second)
                add("QRV018",
                    csprintf("device stream %zu reuses agent id %u",
                             d, ds.agentId));
            if (ds.kind == DeviceKind::None)
                add("QRV018",
                    csprintf("device stream %zu (agent %u) has no "
                             "recognizable device kind",
                             d, ds.agentId));
            std::uint64_t zeroWords = 0, badDigest = 0, outside = 0;
            Addr worst = 0;
            for (const DeviceEvent &ev : ds.events) {
                if (ev.words == 0)
                    zeroWords++;
                else if (ev.digest !=
                         deviceEventDigest(ds.seed, ev.seq, ev.words))
                    badDigest++;
                if (logs.memBytes) {
                    Addr end = ev.addr + 4ull * ev.words;
                    if (end > logs.memBytes || ev.addr >= logs.memBytes)
                        outside++, worst = std::max(worst, ev.addr);
                    if (ev.doorbell + 4 > logs.memBytes)
                        outside++,
                            worst = std::max(worst, ev.doorbell);
                }
            }
            if (zeroWords)
                add("QRV018",
                    csprintf("agent %u: %llu event(s) deliver zero "
                             "payload words",
                             ds.agentId,
                             static_cast<unsigned long long>(
                                 zeroWords)));
            if (badDigest)
                add("QRV018",
                    csprintf("agent %u: %llu event digest(s) disagree "
                             "with the seed/sequence payload function",
                             ds.agentId,
                             static_cast<unsigned long long>(
                                 badDigest)));
            if (outside)
                add("QRV017",
                    csprintf("agent %u: %llu payload/doorbell "
                             "target(s) at or beyond guest memory "
                             "(%u bytes); worst 0x%x",
                             ds.agentId,
                             static_cast<unsigned long long>(outside),
                             logs.memBytes, worst));
        }
    }

    for (const auto &[tid, tl] : logs.threads) {
        if (!tl.shadows.empty()) {
            std::uint64_t gapShadows = 0;
            std::uint64_t outside = 0;
            Addr worst = 0;
            for (std::size_t i = 0; i < tl.chunks.size(); ++i) {
                const ChunkShadow &sh = tl.shadows[i];
                if (tl.chunks[i].reason == ChunkReason::Gap &&
                    (!sh.reads.empty() || !sh.writes.empty()))
                    gapShadows++;
                if (logs.memBytes) {
                    for (Addr a : sh.reads)
                        if (a >= logs.memBytes)
                            outside++, worst = std::max(worst, a);
                    for (Addr a : sh.writes)
                        if (a >= logs.memBytes)
                            outside++, worst = std::max(worst, a);
                }
            }
            if (gapShadows)
                add("QRV012",
                    csprintf("%llu gap marker chunk(s) carry shadow "
                             "data",
                             static_cast<unsigned long long>(
                                 gapShadows)),
                    tid);
            if (outside)
                add("QRV015",
                    csprintf("%llu shadow line(s) at or beyond guest "
                             "memory (%u bytes); worst 0x%x",
                             static_cast<unsigned long long>(outside),
                             logs.memBytes, worst),
                    tid);
        }

        for (std::size_t i = 0; i < tl.syncs.size(); ++i) {
            const SyncPoint &sp = tl.syncs[i];
            auto partner = logs.threads.find(sp.other);
            if (partner == logs.threads.end()) {
                add("QRV010",
                    csprintf("sync point %zu names partner tid %d, "
                             "absent from the sphere",
                             i, sp.other),
                    tid);
                continue;
            }
            const auto &pch = partner->second.chunks;
            const Timestamp pmax = pch.empty() ? 0 : pch.back().ts;
            if (sp.clockFloor > pmax + 1) {
                add("QRV013",
                    csprintf("sync point %zu floor %llu exceeds "
                             "waker tid %d's last clock %llu",
                             i,
                             static_cast<unsigned long long>(
                                 sp.clockFloor),
                             sp.other,
                             static_cast<unsigned long long>(pmax)),
                    tid);
            }
            // Inverted edge: the Lamport construction guarantees the
            // waker's chunks below the floor precede the woken chunk.
            if (sp.afterChunkSeq >= tl.chunks.size())
                continue;
            auto src = std::upper_bound(
                pch.begin(), pch.end(), sp.clockFloor,
                [](Timestamp f, const ChunkRecord &c) {
                    return f <= c.ts;
                });
            if (src == pch.begin())
                continue; // waker logged nothing below the floor
            const ChunkRecord &sc = *(src - 1);
            const ChunkRecord &dc =
                tl.chunks[static_cast<std::size_t>(sp.afterChunkSeq)];
            if (std::pair(sc.ts, sp.other) >= std::pair(dc.ts, tid))
                add("QRV014",
                    csprintf("sync point %zu: waker tid %d chunk ts "
                             "%llu does not precede woken chunk ts "
                             "%llu",
                             i, sp.other,
                             static_cast<unsigned long long>(sc.ts),
                             static_cast<unsigned long long>(dc.ts)),
                    tid);
        }
    }
    return rep;
}

// --- SARIF ---------------------------------------------------------------

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
lintSarif(const std::vector<LintReport> &reports)
{
    const std::vector<LintRule> &rules = lintRules();
    std::map<std::string, std::size_t> ruleIndex;
    for (std::size_t i = 0; i < rules.size(); ++i)
        ruleIndex[rules[i].code] = i;

    std::string s;
    s += "{\n";
    s += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    s += "  \"version\": \"2.1.0\",\n";
    s += "  \"runs\": [\n";
    s += "    {\n";
    s += "      \"tool\": {\n";
    s += "        \"driver\": {\n";
    s += "          \"name\": \"qrec-verify\",\n";
    s += "          \"rules\": [\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        s += "            {\n";
        s += csprintf("              \"id\": \"%s\",\n",
                      rules[i].code);
        s += csprintf("              \"shortDescription\": { "
                      "\"text\": \"%s\" },\n",
                      jsonEscape(rules[i].summary).c_str());
        s += csprintf("              \"defaultConfiguration\": { "
                      "\"level\": \"%s\" }\n",
                      lintSeverityStr(rules[i].severity));
        s += csprintf("            }%s\n",
                      i + 1 < rules.size() ? "," : "");
    }
    s += "          ]\n";
    s += "        }\n";
    s += "      },\n";
    s += "      \"artifacts\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i)
        s += csprintf(
            "        { \"location\": { \"uri\": \"%s\" } }%s\n",
            jsonEscape(reports[i].uri).c_str(),
            i + 1 < reports.size() ? "," : "");
    s += "      ],\n";
    s += "      \"results\": [\n";
    std::string results;
    for (std::size_t r = 0; r < reports.size(); ++r) {
        for (const LintFinding &f : reports[r].findings) {
            std::string msg = f.message;
            if (f.tid != invalidTid)
                msg = csprintf("tid %d: %s", f.tid, msg.c_str());
            if (!results.empty())
                results += ",\n";
            results += "        {\n";
            results += csprintf("          \"ruleId\": \"%s\",\n",
                                f.code.c_str());
            results += csprintf(
                "          \"ruleIndex\": %zu,\n",
                ruleIndex.count(f.code) ? ruleIndex.at(f.code) : 0);
            results +=
                csprintf("          \"level\": \"%s\",\n",
                         lintSeverityStr(f.severity));
            results += csprintf(
                "          \"message\": { \"text\": \"%s\" },\n",
                jsonEscape(msg).c_str());
            results += "          \"locations\": [\n";
            results += "            {\n";
            results += "              \"physicalLocation\": {\n";
            results += csprintf(
                "                \"artifactLocation\": { \"uri\": "
                "\"%s\", \"index\": %zu }\n",
                jsonEscape(reports[r].uri).c_str(), r);
            results += "              }\n";
            results += "            }\n";
            results += "          ]\n";
            results += "        }";
        }
    }
    if (!results.empty())
        s += results + "\n";
    s += "      ]\n";
    s += "    }\n";
    s += "  ]\n";
    s += "}\n";
    return s;
}

} // namespace qr
