/**
 * @file
 * Device/core conflict analysis: the pass both race analyzers run over
 * a sphere's recorded bus-agent streams (v3 spheres; see
 * bus/device_stream.hh).
 *
 * A device completion writes payload lines and then publishes itself
 * through the agent's doorbell word. The only synchronization a guest
 * has against the agent is *doorbell acquire*: read the doorbell line
 * in a chunk that timestamps after the event (the Lamport construction
 * guarantees a poll that observed the published value does). The pass
 * therefore classifies every core access to a payload line of some
 * event:
 *
 *  - ordered: the accessing thread previously (or in the same chunk --
 *    doorbell poll and payload read often share a chunk) read the
 *    agent's doorbell line in a chunk timestamped after the event;
 *  - racy, post-event: the access timestamps after the event but no
 *    doorbell acquire covers it -- the core consumed device data on
 *    the strength of the recorded interleaving alone;
 *  - racy, pre-event: the access timestamps before the event -- the
 *    agent overwrote data a core was still using (the classic
 *    ring-reuse hazard: nothing in this device model lets a core hold
 *    a slot back, so a wrapping ring without consumption slack always
 *    reports these).
 *
 * Doorbell lines themselves are synchronization carriers and exempt,
 * exactly as futex words are exempt from the thread race analysis.
 * The pass needs exact shadow sets (line addresses); without them a
 * sphere's device streams are reported but not race-classified.
 *
 * Fed in (ts, tid) schedule order by the eager and the streaming
 * analyzer alike, the pass is a pure function of the sequence, so both
 * produce bit-identical device sections.
 */

#ifndef QR_ANALYZE_DEVICE_PASS_HH
#define QR_ANALYZE_DEVICE_PASS_HH

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "bus/device_stream.hh"
#include "rnr/chunk_record.hh"

namespace qr
{

/** One unordered device/core access pair. */
struct DeviceRace
{
    std::uint32_t agent = 0;  //!< device stream index
    std::uint64_t event = 0;  //!< completion sequence number
    Tid tid = invalidTid;     //!< the conflicting thread
    Timestamp chunkTs = 0;    //!< timestamp of the conflicting chunk
    Addr line = 0;            //!< the shared payload line
    bool preEvent = false;    //!< core access timestamped before the event

    bool operator==(const DeviceRace &o) const = default;

    /** One-line description for reports. */
    std::string str() const;
};

/** Streaming device/core conflict classifier; see the file comment. */
class DevicePass
{
  public:
    DevicePass(const std::vector<DeviceStream> &devices,
               std::uint32_t line_bytes);

    /** True when the sphere carries device streams to analyze. */
    bool active() const { return events_ != 0 || !agents_.empty(); }

    /**
     * Feed one chunk's exact shadow sets; must be called in (ts, tid)
     * schedule order (per-thread order is then program order).
     */
    void chunk(Tid tid, Timestamp ts, const ChunkShadow &sh);

    std::uint64_t events() const { return events_; }
    std::uint64_t edges() const { return edges_; }

    /** Races in feed order, deduplicated by (tid, agent, line). */
    const std::vector<DeviceRace> &races() const { return races_; }

  private:
    struct LineEvent
    {
        std::uint32_t agent;
        std::uint64_t seq;
        Timestamp ts;
    };

    /** payload line -> events writing it, per-agent ts order. */
    std::unordered_map<Addr, std::vector<LineEvent>> payload_;
    /** doorbell line -> agents publishing on it. */
    std::unordered_map<Addr, std::vector<std::uint32_t>> doorbell_;
    /** per agent: tid -> latest doorbell-reading chunk timestamp. */
    std::vector<std::map<Tid, Timestamp>> acquired_;
    std::set<std::tuple<Tid, std::uint32_t, Addr>> reported_;
    std::vector<DeviceRace> races_;
    std::vector<std::uint32_t> agents_; //!< agent ids (diagnostics)
    std::uint64_t events_ = 0;
    std::uint64_t edges_ = 0;
};

} // namespace qr

#endif // QR_ANALYZE_DEVICE_PASS_HH
