#include "analyze/race_analyzer.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analyze/sync_index.hh"
#include "obs/profile.hh"
#include "obs/stats_export.hh"
#include "replay/chunk_graph.hh"
#include "rnr/bloom.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

/** Sorted-vector membership test. */
bool
containsLine(const std::vector<Addr> &sorted, Addr line)
{
    return std::binary_search(sorted.begin(), sorted.end(), line);
}

/**
 * Schedule-position bookkeeping shared by every stage: maps a schedule
 * index to its thread's per-thread chunk position and (in exact mode)
 * shadow sets.
 */
struct ScheduleIndex
{
    std::map<Tid, std::vector<std::uint32_t>> byThread;
    std::vector<std::uint32_t> posInThread; //!< per schedule index
    std::vector<const ChunkShadow *> shadows; //!< null without exact

    ScheduleIndex(const SphereLogs &logs,
                  const std::vector<ChunkRecord> &schedule, bool exact)
        : byThread(SphereLogs::chunkIndexByThread(schedule)),
          posInThread(schedule.size(), 0),
          shadows(schedule.size(), nullptr)
    {
        for (const auto &[tid, positions] : byThread) {
            for (std::uint32_t p = 0; p < positions.size(); ++p) {
                posInThread[positions[p]] = p;
                if (exact)
                    shadows[positions[p]] =
                        &logs.threads.at(tid).shadows[p];
            }
        }
    }
};

/** Merge-or-insert one conflict line between a chunk pair. */
void
noteConflict(std::map<std::pair<std::uint32_t, std::uint32_t>,
                      ConflictEdge> &edges,
             std::uint32_t from, std::uint32_t to, ChunkReason kind,
             Addr line)
{
    ConflictEdge &e = edges[{from, to}];
    e.from = from;
    e.to = to;
    switch (kind) {
      case ChunkReason::ConflictRaw: e.raw = true; break;
      case ChunkReason::ConflictWar: e.war = true; break;
      case ChunkReason::ConflictWaw: e.waw = true; break;
      default: qr_assert(false, "non-conflict kind in noteConflict");
    }
    e.lines.push_back(line);
}

/**
 * Sweep the schedule deriving cross-thread dependences from the exact
 * shadow sets -- the same last-writer/readers-since construction the
 * parallel replayer's chunk graph uses, at line rather than word
 * granularity and without needing a replay.
 */
std::map<std::pair<std::uint32_t, std::uint32_t>, ConflictEdge>
sweepConflicts(const std::vector<ChunkRecord> &schedule,
               const ScheduleIndex &index)
{
    std::map<std::pair<std::uint32_t, std::uint32_t>, ConflictEdge> edges;
    std::unordered_map<Addr, std::uint32_t> lastWriter;
    std::unordered_map<Addr, std::vector<std::uint32_t>> readersSince;

    for (std::uint32_t i = 0; i < schedule.size(); ++i) {
        const ChunkShadow &sh = *index.shadows[i];
        for (Addr line : sh.reads) {
            auto w = lastWriter.find(line);
            if (w != lastWriter.end() && w->second != i &&
                schedule[w->second].tid != schedule[i].tid)
                noteConflict(edges, w->second, i,
                             ChunkReason::ConflictRaw, line);
            readersSince[line].push_back(i);
        }
        for (Addr line : sh.writes) {
            auto w = lastWriter.find(line);
            if (w != lastWriter.end() && w->second != i &&
                schedule[w->second].tid != schedule[i].tid)
                noteConflict(edges, w->second, i,
                             ChunkReason::ConflictWaw, line);
            for (std::uint32_t r : readersSince[line])
                if (r != i && schedule[r].tid != schedule[i].tid)
                    noteConflict(edges, r, i, ChunkReason::ConflictWar,
                                 line);
            readersSince[line].clear();
            lastWriter[line] = i;
        }
    }
    for (auto &[key, e] : edges) {
        std::sort(e.lines.begin(), e.lines.end());
        e.lines.erase(std::unique(e.lines.begin(), e.lines.end()),
                      e.lines.end());
    }
    return edges;
}

/** Append @p to to @p succs[from], keeping rows sorted afterwards. */
struct BaseGraph
{
    std::vector<std::vector<std::uint32_t>> succs;

    explicit BaseGraph(std::size_t n) : succs(n) {}

    void
    addEdge(std::uint32_t from, std::uint32_t to)
    {
        qr_assert(from < to, "analyzer edge against schedule order");
        succs[from].push_back(to);
    }

    void
    finalize()
    {
        for (auto &row : succs) {
            std::sort(row.begin(), row.end());
            row.erase(std::unique(row.begin(), row.end()), row.end());
        }
    }

    bool
    hasEdge(std::uint32_t from, std::uint32_t to) const
    {
        return std::binary_search(succs[from].begin(),
                                  succs[from].end(), to);
    }
};

/**
 * Program-order and kernel-synchronization edges of the sphere; the
 * "synchronized skeleton" races are judged against.
 */
BaseGraph
buildBaseGraph(const SphereLogs &logs,
               const std::vector<ChunkRecord> &schedule,
               const ScheduleIndex &index, std::uint64_t &program_edges,
               std::uint64_t &sync_edges)
{
    BaseGraph g(schedule.size());
    for (const auto &[tid, positions] : index.byThread)
        for (std::size_t p = 1; p < positions.size(); ++p) {
            g.addEdge(positions[p - 1], positions[p]);
            program_edges++;
        }

    for (const auto &[tid, tl] : logs.threads) {
        auto own = index.byThread.find(tid);
        for (const SyncPoint &sp : tl.syncs) {
            // Target: the woken/spawned thread's first chunk after the
            // synchronization point. A thread that logged nothing
            // afterwards has nothing left to order.
            if (own == index.byThread.end() ||
                sp.afterChunkSeq >= own->second.size())
                continue;
            std::uint32_t to =
                own->second[static_cast<std::size_t>(sp.afterChunkSeq)];
            // Source: the last chunk the waker logged strictly before
            // the sync (per-thread timestamps are strictly monotonic,
            // so ts < clockFloor identifies exactly those chunks).
            auto partner = logs.threads.find(sp.other);
            if (partner == logs.threads.end())
                continue;
            const std::vector<ChunkRecord> &pch = partner->second.chunks;
            auto it = std::lower_bound(
                pch.begin(), pch.end(), sp.clockFloor,
                [](const ChunkRecord &r, Timestamp floor) {
                    return r.ts < floor;
                });
            if (it == pch.begin())
                continue; // waker logged nothing before the sync
            std::uint32_t k =
                static_cast<std::uint32_t>(it - pch.begin()) - 1;
            std::uint32_t from = index.byThread.at(sp.other)[k];
            if (from >= to)
                continue;
            g.addEdge(from, to);
            sync_edges++;
        }
    }
    g.finalize();
    return g;
}

/**
 * Fixpoint race classification. An edge (a, b) is *covered* when some
 * other path a -> ... -> b exists: a direct synchronization edge, or a
 * hop through any successor that still reaches b. Uncovered conflict
 * edges are races; removing them can uncover further races that were
 * masked behind the removed ordering, hence the iteration. @p rounds
 * reports how many rounds ran; @p capped is set when the 64-round
 * safety cap cut the iteration off before it converged (classification
 * of the still-live edges is then unverified). A @p cap of 0 iterates
 * to natural convergence: every continuing round kills at least one
 * edge, so at most |live| rounds run.
 */
void
classifyRaces(const BaseGraph &base, std::vector<ConflictEdge *> &live,
              std::uint32_t cap, std::uint32_t &rounds, bool &capped)
{
    for (std::uint32_t round = 0; cap == 0 || round < cap; ++round) {
        std::vector<std::vector<std::uint32_t>> succs = base.succs;
        for (const ConflictEdge *e : live)
            succs[e->from].push_back(e->to);
        for (auto &row : succs) {
            std::sort(row.begin(), row.end());
            row.erase(std::unique(row.begin(), row.end()), row.end());
        }
        ReachMatrix reach(succs);

        std::vector<ConflictEdge *> still;
        std::vector<ConflictEdge *> newlyRacy;
        still.reserve(live.size());
        for (ConflictEdge *e : live) {
            bool covered = base.hasEdge(e->from, e->to);
            for (std::uint32_t c : succs[e->from]) {
                if (covered)
                    break;
                if (c != e->to && reach.reaches(c, e->to))
                    covered = true;
            }
            (covered ? still : newlyRacy).push_back(e);
        }
        rounds = round + 1;
        if (newlyRacy.empty())
            return;
        for (ConflictEdge *e : newlyRacy)
            e->racy = true;
        live = std::move(still);
    }
    capped = true;
}

/**
 * Transitively reduce @p succs (drop every edge implied by another
 * path) and return the surviving adjacency; @p kept counts edges.
 */
std::vector<std::vector<std::uint32_t>>
transitiveReduce(const std::vector<std::vector<std::uint32_t>> &succs,
                 std::uint64_t &kept)
{
    ReachMatrix reach(succs);
    std::vector<std::vector<std::uint32_t>> reduced(succs.size());
    for (std::uint32_t a = 0; a < succs.size(); ++a) {
        for (std::uint32_t b : succs[a]) {
            bool implied = false;
            for (std::uint32_t c : succs[a]) {
                if (c != b && reach.reaches(c, b)) {
                    implied = true;
                    break;
                }
            }
            if (!implied) {
                reduced[a].push_back(b);
                kept++;
            }
        }
    }
    return reduced;
}

/**
 * Re-judge one conflict termination against filters rebuilt from the
 * chunk's exact sets: find the requester chunk whose access the
 * filters flagged, then ask whether any flagged line is really in the
 * terminated chunk's set or only aliases into the filter.
 */
void
auditTermination(const std::vector<ChunkRecord> &schedule,
                 const ScheduleIndex &index, const RecordMeta &meta,
                 std::uint32_t i, PrecisionAudit &audit)
{
    const ChunkRecord &rec = schedule[i];
    const ChunkShadow &sh = *index.shadows[i];
    BloomParams bp{meta.bloomBits, static_cast<int>(meta.bloomHashes)};

    // The filter the terminating access hit, and the exact set it is
    // checked against, mirror RnrUnit::observeRemote: a remote read
    // tests the write set (RAW); a remote write tests the write set
    // first (WAW), then the read set (WAR).
    BloomFilter wset(bp);
    for (Addr line : sh.writes)
        wset.insert(line);
    BloomFilter rset(bp);
    if (rec.reason == ChunkReason::ConflictWar)
        for (Addr line : sh.reads)
            rset.insert(line);

    auto hitsFilter = [&](Addr line) {
        switch (rec.reason) {
          case ChunkReason::ConflictRaw:
          case ChunkReason::ConflictWaw:
            return wset.test(line);
          case ChunkReason::ConflictWar:
            // A WAR termination means the write missed the write set.
            return !wset.test(line) && rset.test(line);
          default:
            return false;
        }
    };
    const std::vector<Addr> &exactSet =
        rec.reason == ChunkReason::ConflictWar ? sh.reads : sh.writes;

    // The requester's chunk is logged with a timestamp above ours (the
    // snooped chunk terminates with the pre-merge clock); scan forward
    // for the first other-thread chunk whose relevant access set hits
    // the filter the way the hardware saw it.
    for (std::uint32_t j = i + 1; j < schedule.size(); ++j) {
        if (schedule[j].tid == rec.tid)
            continue;
        const ChunkShadow &rem = *index.shadows[j];
        const std::vector<Addr> &requester =
            rec.reason == ChunkReason::ConflictRaw ? rem.reads
                                                   : rem.writes;
        bool anyHit = false;
        bool anyExact = false;
        for (Addr line : requester) {
            if (!hitsFilter(line))
                continue;
            anyHit = true;
            if (containsLine(exactSet, line)) {
                anyExact = true;
                break;
            }
        }
        if (!anyHit)
            continue;
        if (anyExact)
            audit.trueConflicts++;
        else
            audit.bloomFalseConflicts++;
        return;
    }
    audit.unattributed++;
}

} // namespace

std::string
ConflictEdge::kindStr() const
{
    std::string s;
    auto tag = [&](bool on, const char *name) {
        if (!on)
            return;
        if (!s.empty())
            s += '|';
        s += name;
    };
    tag(raw, "RAW");
    tag(war, "WAR");
    tag(waw, "WAW");
    return s.empty() ? "?" : s;
}

double
PrecisionAudit::falseConflictRate() const
{
    if (conflictTerminations == 0)
        return 0.0;
    return static_cast<double>(bloomFalseConflicts) /
           static_cast<double>(conflictTerminations);
}

bool
RaceReport::happensBefore(std::uint32_t a, std::uint32_t b) const
{
    if (a == b)
        return false;
    bool le = true;
    bool lt = false;
    for (std::uint32_t s = 0; s < nThreads; ++s) {
        std::uint64_t va = vc(a, static_cast<int>(s));
        std::uint64_t vb = vc(b, static_cast<int>(s));
        if (va > vb)
            le = false;
        if (va < vb)
            lt = true;
    }
    return le && lt;
}

RaceReport
analyzeSphere(const SphereLogs &logs, std::uint32_t fixpoint_cap)
{
    ProfileScope prof(ProfilePhase::Analyze);
    RaceReport rep;
    rep.exact = logs.hasShadows();
    rep.schedule = logs.chunksByTimestamp();
    rep.nChunks = rep.schedule.size();
    rep.nThreads = static_cast<std::uint32_t>(logs.threads.size());
    int slot = 0;
    for (const auto &[tid, tl] : logs.threads)
        rep.threadSlot[tid] = slot++;

    for (const ChunkRecord &rec : rep.schedule) {
        rep.reasonCounts[static_cast<int>(rec.reason)]++;
        rep.rswValues.sample(rec.rsw);
        rep.chunkSizes.sample(rec.size);
    }

    ScheduleIndex index(logs, rep.schedule, rep.exact);
    BaseGraph base = buildBaseGraph(logs, rep.schedule, index,
                                    rep.programEdges, rep.syncEdges);

    if (rep.exact) {
        auto edgeMap = sweepConflicts(rep.schedule, index);
        rep.conflicts.reserve(edgeMap.size());
        for (auto &[key, e] : edgeMap)
            rep.conflicts.push_back(std::move(e));
        for (ConflictEdge &e : rep.conflicts) {
            e.fromTid = rep.schedule[e.from].tid;
            e.fromTs = rep.schedule[e.from].ts;
            e.toTid = rep.schedule[e.to].tid;
            e.toTs = rep.schedule[e.to].ts;
        }

        std::vector<ConflictEdge *> live;
        live.reserve(rep.conflicts.size());
        for (ConflictEdge &e : rep.conflicts)
            live.push_back(&e);
        classifyRaces(base, live, fixpoint_cap, rep.fixpointRounds,
                      rep.fixpointCapped);

        for (const ConflictEdge &e : rep.conflicts) {
            if (!e.racy)
                continue;
            rep.races.push_back(e);
            rep.racyLines.insert(rep.racyLines.end(), e.lines.begin(),
                                 e.lines.end());
        }
        std::sort(rep.racyLines.begin(), rep.racyLines.end());
        rep.racyLines.erase(
            std::unique(rep.racyLines.begin(), rep.racyLines.end()),
            rep.racyLines.end());

        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(rep.schedule.size()); ++i)
            if (isConflictReason(rep.schedule[i].reason))
                auditTermination(rep.schedule, index, logs.meta, i,
                                 rep.audit);
        for (int r = 0; r < numChunkReasons; ++r)
            if (isConflictReason(static_cast<ChunkReason>(r)))
                rep.audit.conflictTerminations += rep.reasonCounts[r];
    } else {
        // Degraded (Bloom-only) mode: the log carries no addresses, so
        // conflict terminations become chunk-pair candidates. The
        // requester is approximated by the first later other-thread
        // chunk; a candidate with no synchronization path is a
        // "possible race" with unknown line.
        ReachMatrix reach(base.succs);
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(rep.schedule.size()); ++i) {
            if (!isConflictReason(rep.schedule[i].reason))
                continue;
            rep.audit.conflictTerminations++;
            for (std::uint32_t j = i + 1; j < rep.schedule.size(); ++j) {
                if (rep.schedule[j].tid == rep.schedule[i].tid)
                    continue;
                ConflictEdge e;
                e.from = i;
                e.to = j;
                e.fromTid = rep.schedule[i].tid;
                e.fromTs = rep.schedule[i].ts;
                e.toTid = rep.schedule[j].tid;
                e.toTs = rep.schedule[j].ts;
                switch (rep.schedule[i].reason) {
                  case ChunkReason::ConflictRaw: e.raw = true; break;
                  case ChunkReason::ConflictWar: e.war = true; break;
                  default: e.waw = true; break;
                }
                e.racy = !base.hasEdge(i, j) && !reach.reaches(i, j);
                if (e.racy)
                    rep.races.push_back(e);
                rep.conflicts.push_back(std::move(e));
                break;
            }
        }
    }
    rep.conflictEdges = rep.conflicts.size();

    // Final synchronized graph: base plus the ordered (non-racy)
    // dependences; reduce it and propagate vector clocks forward (the
    // schedule is a topological order, so one ascending pass where
    // each finalized clock is pushed into its successors suffices).
    std::vector<std::vector<std::uint32_t>> merged = base.succs;
    for (const ConflictEdge &e : rep.conflicts)
        if (!e.racy && rep.exact)
            merged[e.from].push_back(e.to);
    for (auto &row : merged) {
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
        rep.totalEdges += row.size();
    }
    std::vector<std::vector<std::uint32_t>> reduced =
        transitiveReduce(merged, rep.reducedEdges);

    rep.vectorClocks.assign(rep.schedule.size() * rep.nThreads, 0);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(rep.schedule.size()); ++i) {
        std::size_t row = static_cast<std::size_t>(i) * rep.nThreads;
        int own = rep.threadSlot.at(rep.schedule[i].tid);
        rep.vectorClocks[row + static_cast<std::size_t>(own)] =
            index.posInThread[i] + 1;
        for (std::uint32_t s : reduced[i]) {
            std::size_t srow = static_cast<std::size_t>(s) * rep.nThreads;
            for (std::uint32_t k = 0; k < rep.nThreads; ++k)
                rep.vectorClocks[srow + k] =
                    std::max(rep.vectorClocks[srow + k],
                             rep.vectorClocks[row + k]);
        }
    }

    // Device streams (v3 spheres): one extra pass in the same schedule
    // order, classifying device/core payload accesses against doorbell
    // acquires. Needs line addresses, so it is exact-shadow only; a
    // Bloom-only sphere still reports its event counts.
    if (!logs.devices.empty()) {
        DevicePass dev(logs.devices, logs.meta.lineBytes);
        if (rep.exact)
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(rep.schedule.size());
                 ++i)
                dev.chunk(rep.schedule[i].tid, rep.schedule[i].ts,
                          *index.shadows[i]);
        rep.deviceEvents = dev.events();
        rep.deviceEdges = dev.edges();
        rep.deviceRaces = dev.races();
    }
    return rep;
}

// --- streaming analysis -------------------------------------------------

namespace
{

/**
 * One frontier chunk: everything later analysis can still ask of it.
 * The clock is the chunk's vector clock over the *merged* graph
 * (program + sync + synchronized conflict edges), which doubles as a
 * reachability oracle: a chunk c reaches a later chunk b iff
 * clock(b)[slot(c)] >= pos(c) + 1 -- program order makes per-thread
 * reachability into b downward-closed in position, so the per-slot
 * maximum decides every query the dense ReachMatrix used to answer.
 */
struct StreamNode
{
    /** Merged-graph successor: enough identity to run the clock
     *  reachability test after the target node itself retired. */
    struct Succ
    {
        std::uint32_t to;
        std::uint32_t pos;
        int slot;
    };

    Tid tid = invalidTid;
    Timestamp ts = 0;
    std::uint32_t pos = 0; //!< per-thread chunk index
    int slot = 0;
    std::vector<std::uint64_t> clock;
    std::vector<Succ> succs;
};

/** Audit of one conflict termination awaiting its requester chunk. */
struct PendingAudit
{
    Tid tid;
    ChunkReason reason;
    BloomFilter wset;
    BloomFilter rset;
    std::vector<Addr> exactSet;

    PendingAudit(Tid t, ChunkReason r, const BloomParams &bp)
        : tid(t), reason(r), wset(bp), rset(bp)
    {}
};

/** Replica of auditTermination's filter query for one pending audit. */
bool
auditHits(const PendingAudit &p, Addr line)
{
    switch (p.reason) {
      case ChunkReason::ConflictRaw:
      case ChunkReason::ConflictWaw:
        return p.wset.test(line);
      case ChunkReason::ConflictWar:
        // A WAR termination means the write missed the write set.
        return !p.wset.test(line) && p.rset.test(line);
      default:
        return false;
    }
}

/** Degraded-mode possible-race candidate awaiting its requester. */
struct PendingCandidate
{
    std::uint32_t id;
    int slot;
    std::uint32_t pos;
    Tid tid;
    Timestamp ts;
    ChunkReason reason;
};

void
mergeMax(std::vector<std::uint64_t> &dst,
         const std::vector<std::uint64_t> &src)
{
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

} // namespace

void
StreamStats::statsInto(StatsSnapshot &s) const
{
    s.counter("analyze.peak_resident_bytes", peakResidentBytes,
              "peak streaming-analyzer resident bytes (deterministic "
              "accounting, sampled at batch boundaries after frontier "
              "retirement)");
    s.counter("analyze.window_chunks", windowChunks,
              "configured streaming batch size in chunks");
    s.counter("analyze.window_batches", windowBatches,
              "streaming batches processed");
    s.counter("analyze.retired_chunks", retiredChunks,
              "chunks retired from the streaming frontier");
    s.counter("analyze.peak_live_chunks", peakLiveChunks,
              "peak frontier size after retirement, in chunks");
    s.counter("analyze.evicted_payload_bytes", evictedPayloadBytes,
              "mmapped payload bytes released during analysis");
}

RaceReport
analyzeSphereStreaming(SphereCursor &cur, const StreamOptions &opt,
                       StreamStats *stats)
{
    ProfileScope prof(ProfilePhase::Analyze);
    const std::uint32_t window =
        opt.window ? opt.window : StreamOptions{}.window;

    RaceReport rep;
    rep.exact = cur.exact();
    rep.nChunks = cur.totalChunks();
    rep.nThreads = static_cast<std::uint32_t>(cur.nThreads());
    // Single exact-fixpoint pass by design (the eager path reports 0
    // in degraded mode, where no classification runs).
    rep.fixpointRounds = rep.exact ? 1 : 0;
    const int nslots = static_cast<int>(rep.nThreads);
    const std::vector<Tid> &tids = cur.tids();
    for (int s = 0; s < nslots; ++s)
        rep.threadSlot[tids[s]] = s;
    for (int s = 0; s < nslots; ++s)
        if (cur.chunkCount(s) > 1)
            rep.programEdges += cur.chunkCount(s) - 1;

    StreamSyncIndex sync =
        resolveSyncEdges(cur, rep.threadSlot, rep.syncEdges);
    const RecordMeta &meta = cur.recordMeta();
    const BloomParams bp{meta.bloomBits,
                         static_cast<int>(meta.bloomHashes)};
    const std::uint64_t filterBytes = meta.bloomBits / 8;

    // The frontier: live chunk nodes plus the per-line sweep state and
    // pending forward-looking work. Everything a future chunk can name
    // as an in-edge source is rooted here; the rest retires at batch
    // boundaries.
    std::unordered_map<std::uint32_t, StreamNode> nodes;
    std::vector<std::uint32_t> lastOfSlot(
        static_cast<std::size_t>(nslots), 0);
    std::vector<bool> haveLast(static_cast<std::size_t>(nslots), false);
    std::unordered_map<Addr, std::uint32_t> lastWriter;
    std::unordered_map<Addr, std::vector<std::uint32_t>> readersSince;
    std::unordered_map<std::uint32_t, std::uint32_t> syncRoots;
    std::deque<PendingAudit> audits;
    std::deque<PendingCandidate> candidates;
    std::vector<std::size_t> srcPtr(static_cast<std::size_t>(nslots),
                                    0);
    std::vector<std::size_t> dstPtr(static_cast<std::size_t>(nslots),
                                    0);
    std::uint64_t conflictCount = 0;
    std::uint64_t raceBytes = 0;     //!< retained race/conflict lines
    StreamStats st;
    st.windowChunks = window;

    auto residentBytes = [&]() -> std::uint64_t {
        std::uint64_t b = cur.residentBytes() + sync.bytes();
        for (const auto &[id, n] : nodes)
            b += sizeof(std::uint32_t) + sizeof(StreamNode) +
                 n.clock.size() * sizeof(std::uint64_t) +
                 n.succs.size() * sizeof(StreamNode::Succ);
        b += lastWriter.size() * (sizeof(Addr) + sizeof(std::uint32_t));
        for (const auto &[line, rs] : readersSince)
            b += sizeof(Addr) + rs.size() * sizeof(std::uint32_t);
        b += syncRoots.size() * 2 * sizeof(std::uint32_t);
        for (const PendingAudit &a : audits)
            b += sizeof(PendingAudit) + 2 * filterBytes +
                 a.exactSet.size() * sizeof(Addr);
        b += candidates.size() * sizeof(PendingCandidate);
        b += (rep.races.size() + rep.conflicts.size()) *
                 sizeof(ConflictEdge) +
             raceBytes;
        return b;
    };

    auto batchBoundary = [&]() {
        st.windowBatches++;
        // Mark-and-sweep frontier retirement: roots are exactly the
        // nodes a future chunk can still name as an in-edge source.
        std::unordered_set<std::uint32_t> keep;
        for (int s = 0; s < nslots; ++s)
            if (haveLast[static_cast<std::size_t>(s)])
                keep.insert(lastOfSlot[static_cast<std::size_t>(s)]);
        for (const auto &[line, w] : lastWriter)
            keep.insert(w);
        for (const auto &[line, rs] : readersSince)
            keep.insert(rs.begin(), rs.end());
        for (const auto &[id, refs] : syncRoots)
            keep.insert(id);
        for (auto it = nodes.begin(); it != nodes.end();) {
            if (!keep.count(it->first)) {
                st.retiredChunks++;
                it = nodes.erase(it);
            } else {
                ++it;
            }
        }
        st.peakLiveChunks = std::max<std::uint64_t>(st.peakLiveChunks,
                                                    nodes.size());
        st.evictedPayloadBytes += cur.evictConsumed();
        st.peakResidentBytes =
            std::max(st.peakResidentBytes, residentBytes());
    };

    // Device pass, fed chunk by chunk in the same (ts, tid) order the
    // eager analyzer uses, so both produce bit-identical device
    // sections. The streams themselves are tiny and already
    // materialized by the cursor's validating scan.
    DevicePass devicePass(cur.devices(), cur.recordMeta().lineBytes);

    CursorChunk cc;
    std::uint32_t inBatch = 0;
    std::vector<std::uint32_t> baseSrcs;
    std::vector<ConflictEdge> tedges;
    std::map<std::uint32_t, std::size_t> tedgeOf;
    std::vector<std::size_t> order;
    std::vector<std::uint32_t> mergedSrcs;
    while (cur.next(cc)) {
        const ChunkRecord &rec = cc.rec;
        rep.reasonCounts[static_cast<int>(rec.reason)]++;
        rep.rswValues.sample(rec.rsw);
        rep.chunkSizes.sample(rec.size);
        const int slot = rep.threadSlot.at(rec.tid);
        const std::uint32_t id = cc.schedule;

        StreamNode node;
        node.tid = rec.tid;
        node.ts = rec.ts;
        node.pos = cc.posInThread;
        node.slot = slot;
        node.clock.assign(static_cast<std::size_t>(nslots), 0);

        // Base (program + sync) in-edges of this chunk.
        baseSrcs.clear();
        if (node.pos > 0)
            baseSrcs.push_back(
                lastOfSlot[static_cast<std::size_t>(slot)]);
        auto &srcRow = sync.bySrc[static_cast<std::size_t>(slot)];
        auto &sp = srcPtr[static_cast<std::size_t>(slot)];
        while (sp < srcRow.size() &&
               sync.edges[srcRow[sp]].srcPos == node.pos) {
            StreamSyncEdge &e = sync.edges[srcRow[sp]];
            e.srcId = id;
            e.srcSeen = true;
            syncRoots[id]++;
            sp++;
        }
        auto &dstRow = sync.byDst[static_cast<std::size_t>(slot)];
        auto &dp = dstPtr[static_cast<std::size_t>(slot)];
        while (dp < dstRow.size() &&
               sync.edges[dstRow[dp]].dstPos == node.pos) {
            StreamSyncEdge &e = sync.edges[dstRow[dp]];
            qr_assert(e.srcSeen,
                      "sync edge target ran before its source");
            e.consumed = true;
            baseSrcs.push_back(e.srcId);
            auto root = syncRoots.find(e.srcId);
            if (root != syncRoots.end() && --root->second == 0)
                syncRoots.erase(root);
            dp++;
        }
        std::sort(baseSrcs.begin(), baseSrcs.end());
        baseSrcs.erase(std::unique(baseSrcs.begin(), baseSrcs.end()),
                       baseSrcs.end());
        for (std::uint32_t a : baseSrcs)
            mergeMax(node.clock, nodes.at(a).clock);
        node.clock[static_cast<std::size_t>(slot)] = node.pos + 1;

        tedges.clear();
        tedgeOf.clear();
        if (rep.exact) {
            // Conflict sweep, target = this chunk: identical structure
            // to the eager sweepConflicts, against the live maps.
            const ChunkShadow &sh = *cc.shadow;
            auto note = [&](std::uint32_t from, ChunkReason kind,
                            Addr line) {
                auto [it, fresh] =
                    tedgeOf.try_emplace(from, tedges.size());
                if (fresh) {
                    tedges.emplace_back();
                    tedges.back().from = from;
                    tedges.back().to = id;
                }
                ConflictEdge &e = tedges[it->second];
                switch (kind) {
                  case ChunkReason::ConflictRaw: e.raw = true; break;
                  case ChunkReason::ConflictWar: e.war = true; break;
                  case ChunkReason::ConflictWaw: e.waw = true; break;
                  default:
                    qr_assert(false, "non-conflict kind in sweep");
                }
                e.lines.push_back(line);
            };
            for (Addr line : sh.reads) {
                auto w = lastWriter.find(line);
                if (w != lastWriter.end() &&
                    nodes.at(w->second).tid != rec.tid)
                    note(w->second, ChunkReason::ConflictRaw, line);
                readersSince[line].push_back(id);
            }
            for (Addr line : sh.writes) {
                auto w = lastWriter.find(line);
                if (w != lastWriter.end() && w->second != id &&
                    nodes.at(w->second).tid != rec.tid)
                    note(w->second, ChunkReason::ConflictWaw, line);
                for (std::uint32_t r : readersSince[line])
                    if (r != id && nodes.at(r).tid != rec.tid)
                        note(r, ChunkReason::ConflictWar, line);
                readersSince[line].clear();
                lastWriter[line] = id;
            }
            for (ConflictEdge &e : tedges) {
                std::sort(e.lines.begin(), e.lines.end());
                e.lines.erase(
                    std::unique(e.lines.begin(), e.lines.end()),
                    e.lines.end());
            }

            // Judge in decreasing source order: every edge whose
            // status this edge's coverage can depend on (same target,
            // larger source -- a strictly nested interval) is final
            // and, if synchronized, already merged into the clock.
            order.resize(tedges.size());
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return tedges[a].from > tedges[b].from;
                      });
            for (std::size_t oi : order) {
                ConflictEdge &e = tedges[oi];
                const StreamNode &src = nodes.at(e.from);
                e.fromTid = src.tid;
                e.fromTs = src.ts;
                e.toTid = rec.tid;
                e.toTs = rec.ts;
                bool covered = std::binary_search(
                    baseSrcs.begin(), baseSrcs.end(), e.from);
                if (!covered) {
                    for (const StreamNode::Succ &sr : src.succs) {
                        if (sr.to == id)
                            continue;
                        if (node.clock[static_cast<std::size_t>(
                                sr.slot)] >=
                            static_cast<std::uint64_t>(sr.pos) + 1) {
                            covered = true;
                            break;
                        }
                    }
                }
                if (covered)
                    mergeMax(node.clock, src.clock);
                else
                    e.racy = true;
            }
        }

        // Merged-graph in-edges: base plus synchronized conflicts.
        mergedSrcs = baseSrcs;
        for (const ConflictEdge &e : tedges)
            if (!e.racy)
                mergedSrcs.push_back(e.from);
        std::sort(mergedSrcs.begin(), mergedSrcs.end());
        mergedSrcs.erase(
            std::unique(mergedSrcs.begin(), mergedSrcs.end()),
            mergedSrcs.end());
        rep.totalEdges += mergedSrcs.size();
        for (std::uint32_t a : mergedSrcs)
            nodes.at(a).succs.push_back({id, node.pos, slot});
        // Transitive reduction, judged per in-edge with the final
        // merged clock: (a, id) is implied iff another successor of a
        // reaches id.
        for (std::uint32_t a : mergedSrcs) {
            const StreamNode &src = nodes.at(a);
            bool implied = false;
            for (const StreamNode::Succ &sr : src.succs) {
                if (sr.to == id)
                    continue;
                if (node.clock[static_cast<std::size_t>(sr.slot)] >=
                    static_cast<std::uint64_t>(sr.pos) + 1) {
                    implied = true;
                    break;
                }
            }
            if (!implied)
                rep.reducedEdges++;
        }

        if (rep.exact) {
            const ChunkShadow &sh = *cc.shadow;
            // This chunk as requester: settle pending audits the way
            // auditTermination's forward scan would have.
            for (auto it = audits.begin(); it != audits.end();) {
                if (it->tid == rec.tid) {
                    ++it;
                    continue;
                }
                const std::vector<Addr> &requester =
                    it->reason == ChunkReason::ConflictRaw ? sh.reads
                                                           : sh.writes;
                bool anyHit = false;
                bool anyExact = false;
                for (Addr line : requester) {
                    if (!auditHits(*it, line))
                        continue;
                    anyHit = true;
                    if (containsLine(it->exactSet, line)) {
                        anyExact = true;
                        break;
                    }
                }
                if (!anyHit) {
                    ++it;
                    continue;
                }
                if (anyExact)
                    rep.audit.trueConflicts++;
                else
                    rep.audit.bloomFalseConflicts++;
                it = audits.erase(it);
            }
            if (isConflictReason(rec.reason)) {
                PendingAudit p(rec.tid, rec.reason, bp);
                for (Addr line : sh.writes)
                    p.wset.insert(line);
                if (rec.reason == ChunkReason::ConflictWar)
                    for (Addr line : sh.reads)
                        p.rset.insert(line);
                p.exactSet = rec.reason == ChunkReason::ConflictWar
                                 ? sh.reads
                                 : sh.writes;
                audits.push_back(std::move(p));
            }

            for (ConflictEdge &e : tedges) {
                conflictCount++;
                if (e.racy) {
                    raceBytes += e.lines.size() * sizeof(Addr);
                    rep.racyLines.insert(rep.racyLines.end(),
                                         e.lines.begin(),
                                         e.lines.end());
                    rep.races.push_back(e);
                }
                if (opt.keepConflicts) {
                    raceBytes += e.lines.size() * sizeof(Addr);
                    rep.conflicts.push_back(std::move(e));
                }
            }
        } else {
            // Degraded mode: this chunk is the "first later chunk of
            // another thread" for every pending candidate it does not
            // share a thread with; the clock decides synchronization.
            for (auto it = candidates.begin();
                 it != candidates.end();) {
                if (it->tid == rec.tid) {
                    ++it;
                    continue;
                }
                ConflictEdge e;
                e.from = it->id;
                e.to = id;
                e.fromTid = it->tid;
                e.fromTs = it->ts;
                e.toTid = rec.tid;
                e.toTs = rec.ts;
                switch (it->reason) {
                  case ChunkReason::ConflictRaw: e.raw = true; break;
                  case ChunkReason::ConflictWar: e.war = true; break;
                  default: e.waw = true; break;
                }
                e.racy =
                    node.clock[static_cast<std::size_t>(it->slot)] <
                    static_cast<std::uint64_t>(it->pos) + 1;
                conflictCount++;
                if (e.racy)
                    rep.races.push_back(e);
                if (opt.keepConflicts)
                    rep.conflicts.push_back(std::move(e));
                it = candidates.erase(it);
            }
            if (isConflictReason(rec.reason))
                candidates.push_back({id, slot, node.pos, rec.tid,
                                      rec.ts, rec.reason});
        }

        if (rep.exact && devicePass.active())
            devicePass.chunk(rec.tid, rec.ts, *cc.shadow);

        nodes.emplace(id, std::move(node));
        lastOfSlot[static_cast<std::size_t>(slot)] = id;
        haveLast[static_cast<std::size_t>(slot)] = true;
        if (++inBatch >= window) {
            batchBoundary();
            inBatch = 0;
        }
    }
    if (inBatch > 0 || st.windowBatches == 0)
        batchBoundary();

    rep.audit.unattributed += audits.size();
    for (int r = 0; r < numChunkReasons; ++r)
        if (isConflictReason(static_cast<ChunkReason>(r)))
            rep.audit.conflictTerminations += rep.reasonCounts[r];
    rep.conflictEdges = conflictCount;

    auto byEndpoints = [](const ConflictEdge &a, const ConflictEdge &b) {
        return std::pair(a.from, a.to) < std::pair(b.from, b.to);
    };
    std::sort(rep.races.begin(), rep.races.end(), byEndpoints);
    std::sort(rep.conflicts.begin(), rep.conflicts.end(), byEndpoints);
    std::sort(rep.racyLines.begin(), rep.racyLines.end());
    rep.racyLines.erase(
        std::unique(rep.racyLines.begin(), rep.racyLines.end()),
        rep.racyLines.end());

    if (devicePass.active()) {
        rep.deviceEvents = devicePass.events();
        rep.deviceEdges = devicePass.edges();
        rep.deviceRaces = devicePass.races();
    }

    if (stats)
        *stats = st;
    return rep;
}

std::string
RaceReport::str() const
{
    std::string out;
    out += csprintf("chunks: %llu across %u threads; exact shadow "
                    "sets: %s\n",
                    static_cast<unsigned long long>(nChunks), nThreads,
                    exact ? "yes" : "no");
    out += csprintf("graph: %llu program + %llu sync + %llu conflict "
                    "edges; %llu total, %llu after transitive "
                    "reduction\n",
                    static_cast<unsigned long long>(programEdges),
                    static_cast<unsigned long long>(syncEdges),
                    static_cast<unsigned long long>(conflictEdges),
                    static_cast<unsigned long long>(totalEdges),
                    static_cast<unsigned long long>(reducedEdges));
    if (fixpointCapped)
        out += csprintf("warning: race fixpoint hit the %u-round cap "
                        "without converging; some conflict edges "
                        "reported as synchronized may be racy\n",
                        fixpointRounds);

    // A racy line shows up once per conflicting chunk pair; cap the
    // per-edge listing so a tight racy loop doesn't swamp the report
    // (the distinct-line list below is the actionable part anyway).
    constexpr std::size_t maxListed = 16;

    if (exact) {
        out += csprintf("races: %zu unsynchronized conflict edge(s), "
                        "%zu distinct line(s)\n",
                        races.size(), racyLines.size());
        for (std::size_t i = 0;
             i < races.size() && i < maxListed; ++i) {
            const ConflictEdge &e = races[i];
            std::string lines;
            for (Addr a : e.lines)
                lines += csprintf(" 0x%x", a);
            out += csprintf(
                "  race [%s] tid %d chunk %llu (ts %llu) <-> tid %d "
                "chunk %llu (ts %llu): line(s)%s\n",
                e.kindStr().c_str(), e.fromTid,
                static_cast<unsigned long long>(e.from),
                static_cast<unsigned long long>(e.fromTs), e.toTid,
                static_cast<unsigned long long>(e.to),
                static_cast<unsigned long long>(e.toTs),
                lines.c_str());
        }
        if (races.size() > maxListed)
            out += csprintf("  ... and %zu more racy edge(s)\n",
                            races.size() - maxListed);
        if (!racyLines.empty()) {
            out += "racy lines:";
            for (Addr a : racyLines)
                out += csprintf(" 0x%x", a);
            out += '\n';
        }
        out += csprintf(
            "precision: %llu conflict terminations = %llu true + %llu "
            "Bloom false (rate %.4f) + %llu unattributed\n",
            static_cast<unsigned long long>(audit.conflictTerminations),
            static_cast<unsigned long long>(audit.trueConflicts),
            static_cast<unsigned long long>(audit.bloomFalseConflicts),
            audit.falseConflictRate(),
            static_cast<unsigned long long>(audit.unattributed));
    } else {
        out += csprintf("possible races: %zu conflict termination(s) "
                        "with no synchronization path (record with "
                        "--exact-shadow for line addresses)\n",
                        races.size());
        for (std::size_t i = 0;
             i < races.size() && i < maxListed; ++i) {
            const ConflictEdge &e = races[i];
            out += csprintf(
                "  possible race [%s] tid %d chunk %llu (ts %llu) <-> "
                "tid %d chunk %llu (ts %llu)\n",
                e.kindStr().c_str(), e.fromTid,
                static_cast<unsigned long long>(e.from),
                static_cast<unsigned long long>(e.fromTs), e.toTid,
                static_cast<unsigned long long>(e.to),
                static_cast<unsigned long long>(e.toTs));
        }
        if (races.size() > maxListed)
            out += csprintf("  ... and %zu more candidate(s)\n",
                            races.size() - maxListed);
        out += "precision: n/a (no exact shadow sets in this sphere)\n";
    }

    if (deviceEvents) {
        out += csprintf("device streams: %llu completion event(s), "
                        "%llu device/core payload-line pair(s)\n",
                        static_cast<unsigned long long>(deviceEvents),
                        static_cast<unsigned long long>(deviceEdges));
        if (exact) {
            out += csprintf("device races: %zu unordered device/core "
                            "access(es)\n",
                            deviceRaces.size());
            for (std::size_t i = 0;
                 i < deviceRaces.size() && i < maxListed; ++i)
                out += "  device race " + deviceRaces[i].str() + "\n";
            if (deviceRaces.size() > maxListed)
                out += csprintf("  ... and %zu more\n",
                                deviceRaces.size() - maxListed);
        } else {
            out += "device races: n/a (record with --exact-shadow to "
                   "classify device/core accesses)\n";
        }
    }

    out += "terminations:";
    for (int r = 0; r < numChunkReasons; ++r)
        if (reasonCounts[r])
            out += csprintf(" %s=%llu",
                            chunkReasonName(static_cast<ChunkReason>(r)),
                            static_cast<unsigned long long>(
                                reasonCounts[r]));
    out += csprintf("\nrsw: nonzero in %.4f of chunks, mean %.2f\n",
                    1.0 - rswValues.zeroFraction(), rswValues.mean());
    return out;
}

BenchDoc
RaceReport::toBenchDoc(const std::string &workload) const
{
    BenchJson json("ANALYZE");
    auto add = [&](const char *metric, double value) {
        json.add(workload, metric, value);
    };
    add("chunks", static_cast<double>(nChunks));
    add("threads", static_cast<double>(nThreads));
    add("exact", exact ? 1.0 : 0.0);
    add("program_edges", static_cast<double>(programEdges));
    add("sync_edges", static_cast<double>(syncEdges));
    add("conflict_edges", static_cast<double>(conflictEdges));
    add("total_edges", static_cast<double>(totalEdges));
    add("reduced_edges", static_cast<double>(reducedEdges));
    add("fixpoint_capped", fixpointCapped ? 1.0 : 0.0);
    add("races", static_cast<double>(races.size()));
    add("racy_lines", static_cast<double>(racyLines.size()));
    add("conflict_terminations",
        static_cast<double>(audit.conflictTerminations));
    add("true_conflicts", static_cast<double>(audit.trueConflicts));
    add("bloom_false_conflicts",
        static_cast<double>(audit.bloomFalseConflicts));
    add("unattributed_conflicts",
        static_cast<double>(audit.unattributed));
    add("false_conflict_rate", audit.falseConflictRate());
    if (deviceEvents) {
        add("device_events", static_cast<double>(deviceEvents));
        add("device_edges", static_cast<double>(deviceEdges));
        add("device_races", static_cast<double>(deviceRaces.size()));
    }
    for (int r = 0; r < numChunkReasons; ++r) {
        // Device is a synthetic in-memory reason; it never terminates
        // a recorded chunk, and skipping it keeps pre-device bench
        // documents byte-identical.
        if (static_cast<ChunkReason>(r) == ChunkReason::Device)
            continue;
        json.add(workload,
                 csprintf("term_%s",
                          chunkReasonName(static_cast<ChunkReason>(r))),
                 static_cast<double>(reasonCounts[r]));
    }
    add("rsw_nonzero_frac", 1.0 - rswValues.zeroFraction());
    add("rsw_mean", rswValues.mean());
    add("chunk_size_mean", chunkSizes.mean());
    return json.document();
}

} // namespace qr
