#include "analyze/race_analyzer.hh"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "obs/profile.hh"
#include "replay/chunk_graph.hh"
#include "rnr/bloom.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

/** Sorted-vector membership test. */
bool
containsLine(const std::vector<Addr> &sorted, Addr line)
{
    return std::binary_search(sorted.begin(), sorted.end(), line);
}

/**
 * Schedule-position bookkeeping shared by every stage: maps a schedule
 * index to its thread's per-thread chunk position and (in exact mode)
 * shadow sets.
 */
struct ScheduleIndex
{
    std::map<Tid, std::vector<std::uint32_t>> byThread;
    std::vector<std::uint32_t> posInThread; //!< per schedule index
    std::vector<const ChunkShadow *> shadows; //!< null without exact

    ScheduleIndex(const SphereLogs &logs,
                  const std::vector<ChunkRecord> &schedule, bool exact)
        : byThread(SphereLogs::chunkIndexByThread(schedule)),
          posInThread(schedule.size(), 0),
          shadows(schedule.size(), nullptr)
    {
        for (const auto &[tid, positions] : byThread) {
            for (std::uint32_t p = 0; p < positions.size(); ++p) {
                posInThread[positions[p]] = p;
                if (exact)
                    shadows[positions[p]] =
                        &logs.threads.at(tid).shadows[p];
            }
        }
    }
};

/** Merge-or-insert one conflict line between a chunk pair. */
void
noteConflict(std::map<std::pair<std::uint32_t, std::uint32_t>,
                      ConflictEdge> &edges,
             std::uint32_t from, std::uint32_t to, ChunkReason kind,
             Addr line)
{
    ConflictEdge &e = edges[{from, to}];
    e.from = from;
    e.to = to;
    switch (kind) {
      case ChunkReason::ConflictRaw: e.raw = true; break;
      case ChunkReason::ConflictWar: e.war = true; break;
      case ChunkReason::ConflictWaw: e.waw = true; break;
      default: qr_assert(false, "non-conflict kind in noteConflict");
    }
    e.lines.push_back(line);
}

/**
 * Sweep the schedule deriving cross-thread dependences from the exact
 * shadow sets -- the same last-writer/readers-since construction the
 * parallel replayer's chunk graph uses, at line rather than word
 * granularity and without needing a replay.
 */
std::map<std::pair<std::uint32_t, std::uint32_t>, ConflictEdge>
sweepConflicts(const std::vector<ChunkRecord> &schedule,
               const ScheduleIndex &index)
{
    std::map<std::pair<std::uint32_t, std::uint32_t>, ConflictEdge> edges;
    std::unordered_map<Addr, std::uint32_t> lastWriter;
    std::unordered_map<Addr, std::vector<std::uint32_t>> readersSince;

    for (std::uint32_t i = 0; i < schedule.size(); ++i) {
        const ChunkShadow &sh = *index.shadows[i];
        for (Addr line : sh.reads) {
            auto w = lastWriter.find(line);
            if (w != lastWriter.end() && w->second != i &&
                schedule[w->second].tid != schedule[i].tid)
                noteConflict(edges, w->second, i,
                             ChunkReason::ConflictRaw, line);
            readersSince[line].push_back(i);
        }
        for (Addr line : sh.writes) {
            auto w = lastWriter.find(line);
            if (w != lastWriter.end() && w->second != i &&
                schedule[w->second].tid != schedule[i].tid)
                noteConflict(edges, w->second, i,
                             ChunkReason::ConflictWaw, line);
            for (std::uint32_t r : readersSince[line])
                if (r != i && schedule[r].tid != schedule[i].tid)
                    noteConflict(edges, r, i, ChunkReason::ConflictWar,
                                 line);
            readersSince[line].clear();
            lastWriter[line] = i;
        }
    }
    for (auto &[key, e] : edges) {
        std::sort(e.lines.begin(), e.lines.end());
        e.lines.erase(std::unique(e.lines.begin(), e.lines.end()),
                      e.lines.end());
    }
    return edges;
}

/** Append @p to to @p succs[from], keeping rows sorted afterwards. */
struct BaseGraph
{
    std::vector<std::vector<std::uint32_t>> succs;

    explicit BaseGraph(std::size_t n) : succs(n) {}

    void
    addEdge(std::uint32_t from, std::uint32_t to)
    {
        qr_assert(from < to, "analyzer edge against schedule order");
        succs[from].push_back(to);
    }

    void
    finalize()
    {
        for (auto &row : succs) {
            std::sort(row.begin(), row.end());
            row.erase(std::unique(row.begin(), row.end()), row.end());
        }
    }

    bool
    hasEdge(std::uint32_t from, std::uint32_t to) const
    {
        return std::binary_search(succs[from].begin(),
                                  succs[from].end(), to);
    }
};

/**
 * Program-order and kernel-synchronization edges of the sphere; the
 * "synchronized skeleton" races are judged against.
 */
BaseGraph
buildBaseGraph(const SphereLogs &logs,
               const std::vector<ChunkRecord> &schedule,
               const ScheduleIndex &index, std::uint64_t &program_edges,
               std::uint64_t &sync_edges)
{
    BaseGraph g(schedule.size());
    for (const auto &[tid, positions] : index.byThread)
        for (std::size_t p = 1; p < positions.size(); ++p) {
            g.addEdge(positions[p - 1], positions[p]);
            program_edges++;
        }

    for (const auto &[tid, tl] : logs.threads) {
        auto own = index.byThread.find(tid);
        for (const SyncPoint &sp : tl.syncs) {
            // Target: the woken/spawned thread's first chunk after the
            // synchronization point. A thread that logged nothing
            // afterwards has nothing left to order.
            if (own == index.byThread.end() ||
                sp.afterChunkSeq >= own->second.size())
                continue;
            std::uint32_t to =
                own->second[static_cast<std::size_t>(sp.afterChunkSeq)];
            // Source: the last chunk the waker logged strictly before
            // the sync (per-thread timestamps are strictly monotonic,
            // so ts < clockFloor identifies exactly those chunks).
            auto partner = logs.threads.find(sp.other);
            if (partner == logs.threads.end())
                continue;
            const std::vector<ChunkRecord> &pch = partner->second.chunks;
            auto it = std::lower_bound(
                pch.begin(), pch.end(), sp.clockFloor,
                [](const ChunkRecord &r, Timestamp floor) {
                    return r.ts < floor;
                });
            if (it == pch.begin())
                continue; // waker logged nothing before the sync
            std::uint32_t k =
                static_cast<std::uint32_t>(it - pch.begin()) - 1;
            std::uint32_t from = index.byThread.at(sp.other)[k];
            if (from >= to)
                continue;
            g.addEdge(from, to);
            sync_edges++;
        }
    }
    g.finalize();
    return g;
}

/**
 * Fixpoint race classification. An edge (a, b) is *covered* when some
 * other path a -> ... -> b exists: a direct synchronization edge, or a
 * hop through any successor that still reaches b. Uncovered conflict
 * edges are races; removing them can uncover further races that were
 * masked behind the removed ordering, hence the iteration.
 */
void
classifyRaces(const BaseGraph &base, std::vector<ConflictEdge *> &live,
              std::size_t n)
{
    for (int round = 0; round < 64; ++round) {
        std::vector<std::vector<std::uint32_t>> succs = base.succs;
        for (const ConflictEdge *e : live)
            succs[e->from].push_back(e->to);
        for (auto &row : succs) {
            std::sort(row.begin(), row.end());
            row.erase(std::unique(row.begin(), row.end()), row.end());
        }
        ReachMatrix reach(succs);

        std::vector<ConflictEdge *> still;
        std::vector<ConflictEdge *> newlyRacy;
        still.reserve(live.size());
        for (ConflictEdge *e : live) {
            bool covered = base.hasEdge(e->from, e->to);
            for (std::uint32_t c : succs[e->from]) {
                if (covered)
                    break;
                if (c != e->to && reach.reaches(c, e->to))
                    covered = true;
            }
            (covered ? still : newlyRacy).push_back(e);
        }
        if (newlyRacy.empty())
            return;
        for (ConflictEdge *e : newlyRacy)
            e->racy = true;
        live = std::move(still);
    }
    (void)n;
}

/**
 * Transitively reduce @p succs (drop every edge implied by another
 * path) and return the surviving adjacency; @p kept counts edges.
 */
std::vector<std::vector<std::uint32_t>>
transitiveReduce(const std::vector<std::vector<std::uint32_t>> &succs,
                 std::uint64_t &kept)
{
    ReachMatrix reach(succs);
    std::vector<std::vector<std::uint32_t>> reduced(succs.size());
    for (std::uint32_t a = 0; a < succs.size(); ++a) {
        for (std::uint32_t b : succs[a]) {
            bool implied = false;
            for (std::uint32_t c : succs[a]) {
                if (c != b && reach.reaches(c, b)) {
                    implied = true;
                    break;
                }
            }
            if (!implied) {
                reduced[a].push_back(b);
                kept++;
            }
        }
    }
    return reduced;
}

/**
 * Re-judge one conflict termination against filters rebuilt from the
 * chunk's exact sets: find the requester chunk whose access the
 * filters flagged, then ask whether any flagged line is really in the
 * terminated chunk's set or only aliases into the filter.
 */
void
auditTermination(const std::vector<ChunkRecord> &schedule,
                 const ScheduleIndex &index, const RecordMeta &meta,
                 std::uint32_t i, PrecisionAudit &audit)
{
    const ChunkRecord &rec = schedule[i];
    const ChunkShadow &sh = *index.shadows[i];
    BloomParams bp{meta.bloomBits, static_cast<int>(meta.bloomHashes)};

    // The filter the terminating access hit, and the exact set it is
    // checked against, mirror RnrUnit::observeRemote: a remote read
    // tests the write set (RAW); a remote write tests the write set
    // first (WAW), then the read set (WAR).
    BloomFilter wset(bp);
    for (Addr line : sh.writes)
        wset.insert(line);
    BloomFilter rset(bp);
    if (rec.reason == ChunkReason::ConflictWar)
        for (Addr line : sh.reads)
            rset.insert(line);

    auto hitsFilter = [&](Addr line) {
        switch (rec.reason) {
          case ChunkReason::ConflictRaw:
          case ChunkReason::ConflictWaw:
            return wset.test(line);
          case ChunkReason::ConflictWar:
            // A WAR termination means the write missed the write set.
            return !wset.test(line) && rset.test(line);
          default:
            return false;
        }
    };
    const std::vector<Addr> &exactSet =
        rec.reason == ChunkReason::ConflictWar ? sh.reads : sh.writes;

    // The requester's chunk is logged with a timestamp above ours (the
    // snooped chunk terminates with the pre-merge clock); scan forward
    // for the first other-thread chunk whose relevant access set hits
    // the filter the way the hardware saw it.
    for (std::uint32_t j = i + 1; j < schedule.size(); ++j) {
        if (schedule[j].tid == rec.tid)
            continue;
        const ChunkShadow &rem = *index.shadows[j];
        const std::vector<Addr> &requester =
            rec.reason == ChunkReason::ConflictRaw ? rem.reads
                                                   : rem.writes;
        bool anyHit = false;
        bool anyExact = false;
        for (Addr line : requester) {
            if (!hitsFilter(line))
                continue;
            anyHit = true;
            if (containsLine(exactSet, line)) {
                anyExact = true;
                break;
            }
        }
        if (!anyHit)
            continue;
        if (anyExact)
            audit.trueConflicts++;
        else
            audit.bloomFalseConflicts++;
        return;
    }
    audit.unattributed++;
}

} // namespace

std::string
ConflictEdge::kindStr() const
{
    std::string s;
    auto tag = [&](bool on, const char *name) {
        if (!on)
            return;
        if (!s.empty())
            s += '|';
        s += name;
    };
    tag(raw, "RAW");
    tag(war, "WAR");
    tag(waw, "WAW");
    return s.empty() ? "?" : s;
}

double
PrecisionAudit::falseConflictRate() const
{
    if (conflictTerminations == 0)
        return 0.0;
    return static_cast<double>(bloomFalseConflicts) /
           static_cast<double>(conflictTerminations);
}

bool
RaceReport::happensBefore(std::uint32_t a, std::uint32_t b) const
{
    if (a == b)
        return false;
    bool le = true;
    bool lt = false;
    for (std::uint32_t s = 0; s < nThreads; ++s) {
        std::uint64_t va = vc(a, static_cast<int>(s));
        std::uint64_t vb = vc(b, static_cast<int>(s));
        if (va > vb)
            le = false;
        if (va < vb)
            lt = true;
    }
    return le && lt;
}

RaceReport
analyzeSphere(const SphereLogs &logs)
{
    ProfileScope prof(ProfilePhase::Analyze);
    RaceReport rep;
    rep.exact = logs.hasShadows();
    rep.schedule = logs.chunksByTimestamp();
    rep.nChunks = rep.schedule.size();
    rep.nThreads = static_cast<std::uint32_t>(logs.threads.size());
    int slot = 0;
    for (const auto &[tid, tl] : logs.threads)
        rep.threadSlot[tid] = slot++;

    for (const ChunkRecord &rec : rep.schedule) {
        rep.reasonCounts[static_cast<int>(rec.reason)]++;
        rep.rswValues.sample(rec.rsw);
        rep.chunkSizes.sample(rec.size);
    }

    ScheduleIndex index(logs, rep.schedule, rep.exact);
    BaseGraph base = buildBaseGraph(logs, rep.schedule, index,
                                    rep.programEdges, rep.syncEdges);

    if (rep.exact) {
        auto edgeMap = sweepConflicts(rep.schedule, index);
        rep.conflicts.reserve(edgeMap.size());
        for (auto &[key, e] : edgeMap)
            rep.conflicts.push_back(std::move(e));

        std::vector<ConflictEdge *> live;
        live.reserve(rep.conflicts.size());
        for (ConflictEdge &e : rep.conflicts)
            live.push_back(&e);
        classifyRaces(base, live, rep.schedule.size());

        for (const ConflictEdge &e : rep.conflicts) {
            if (!e.racy)
                continue;
            rep.races.push_back(e);
            rep.racyLines.insert(rep.racyLines.end(), e.lines.begin(),
                                 e.lines.end());
        }
        std::sort(rep.racyLines.begin(), rep.racyLines.end());
        rep.racyLines.erase(
            std::unique(rep.racyLines.begin(), rep.racyLines.end()),
            rep.racyLines.end());

        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(rep.schedule.size()); ++i)
            if (isConflictReason(rep.schedule[i].reason))
                auditTermination(rep.schedule, index, logs.meta, i,
                                 rep.audit);
        for (int r = 0; r < numChunkReasons; ++r)
            if (isConflictReason(static_cast<ChunkReason>(r)))
                rep.audit.conflictTerminations += rep.reasonCounts[r];
    } else {
        // Degraded (Bloom-only) mode: the log carries no addresses, so
        // conflict terminations become chunk-pair candidates. The
        // requester is approximated by the first later other-thread
        // chunk; a candidate with no synchronization path is a
        // "possible race" with unknown line.
        ReachMatrix reach(base.succs);
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(rep.schedule.size()); ++i) {
            if (!isConflictReason(rep.schedule[i].reason))
                continue;
            rep.audit.conflictTerminations++;
            for (std::uint32_t j = i + 1; j < rep.schedule.size(); ++j) {
                if (rep.schedule[j].tid == rep.schedule[i].tid)
                    continue;
                ConflictEdge e;
                e.from = i;
                e.to = j;
                switch (rep.schedule[i].reason) {
                  case ChunkReason::ConflictRaw: e.raw = true; break;
                  case ChunkReason::ConflictWar: e.war = true; break;
                  default: e.waw = true; break;
                }
                e.racy = !base.hasEdge(i, j) && !reach.reaches(i, j);
                if (e.racy)
                    rep.races.push_back(e);
                rep.conflicts.push_back(std::move(e));
                break;
            }
        }
    }
    rep.conflictEdges = rep.conflicts.size();

    // Final synchronized graph: base plus the ordered (non-racy)
    // dependences; reduce it and propagate vector clocks forward (the
    // schedule is a topological order, so one ascending pass where
    // each finalized clock is pushed into its successors suffices).
    std::vector<std::vector<std::uint32_t>> merged = base.succs;
    for (const ConflictEdge &e : rep.conflicts)
        if (!e.racy && rep.exact)
            merged[e.from].push_back(e.to);
    for (auto &row : merged) {
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
        rep.totalEdges += row.size();
    }
    std::vector<std::vector<std::uint32_t>> reduced =
        transitiveReduce(merged, rep.reducedEdges);

    rep.vectorClocks.assign(rep.schedule.size() * rep.nThreads, 0);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(rep.schedule.size()); ++i) {
        std::size_t row = static_cast<std::size_t>(i) * rep.nThreads;
        int own = rep.threadSlot.at(rep.schedule[i].tid);
        rep.vectorClocks[row + static_cast<std::size_t>(own)] =
            index.posInThread[i] + 1;
        for (std::uint32_t s : reduced[i]) {
            std::size_t srow = static_cast<std::size_t>(s) * rep.nThreads;
            for (std::uint32_t k = 0; k < rep.nThreads; ++k)
                rep.vectorClocks[srow + k] =
                    std::max(rep.vectorClocks[srow + k],
                             rep.vectorClocks[row + k]);
        }
    }
    return rep;
}

std::string
RaceReport::str() const
{
    std::string out;
    out += csprintf("chunks: %llu across %u threads; exact shadow "
                    "sets: %s\n",
                    static_cast<unsigned long long>(nChunks), nThreads,
                    exact ? "yes" : "no");
    out += csprintf("graph: %llu program + %llu sync + %llu conflict "
                    "edges; %llu total, %llu after transitive "
                    "reduction\n",
                    static_cast<unsigned long long>(programEdges),
                    static_cast<unsigned long long>(syncEdges),
                    static_cast<unsigned long long>(conflictEdges),
                    static_cast<unsigned long long>(totalEdges),
                    static_cast<unsigned long long>(reducedEdges));

    // A racy line shows up once per conflicting chunk pair; cap the
    // per-edge listing so a tight racy loop doesn't swamp the report
    // (the distinct-line list below is the actionable part anyway).
    constexpr std::size_t maxListed = 16;

    if (exact) {
        out += csprintf("races: %zu unsynchronized conflict edge(s), "
                        "%zu distinct line(s)\n",
                        races.size(), racyLines.size());
        for (std::size_t i = 0;
             i < races.size() && i < maxListed; ++i) {
            const ConflictEdge &e = races[i];
            std::string lines;
            for (Addr a : e.lines)
                lines += csprintf(" 0x%x", a);
            out += csprintf(
                "  race [%s] tid %d chunk %llu (ts %llu) <-> tid %d "
                "chunk %llu (ts %llu): line(s)%s\n",
                e.kindStr().c_str(), schedule[e.from].tid,
                static_cast<unsigned long long>(e.from),
                static_cast<unsigned long long>(schedule[e.from].ts),
                schedule[e.to].tid,
                static_cast<unsigned long long>(e.to),
                static_cast<unsigned long long>(schedule[e.to].ts),
                lines.c_str());
        }
        if (races.size() > maxListed)
            out += csprintf("  ... and %zu more racy edge(s)\n",
                            races.size() - maxListed);
        if (!racyLines.empty()) {
            out += "racy lines:";
            for (Addr a : racyLines)
                out += csprintf(" 0x%x", a);
            out += '\n';
        }
        out += csprintf(
            "precision: %llu conflict terminations = %llu true + %llu "
            "Bloom false (rate %.4f) + %llu unattributed\n",
            static_cast<unsigned long long>(audit.conflictTerminations),
            static_cast<unsigned long long>(audit.trueConflicts),
            static_cast<unsigned long long>(audit.bloomFalseConflicts),
            audit.falseConflictRate(),
            static_cast<unsigned long long>(audit.unattributed));
    } else {
        out += csprintf("possible races: %zu conflict termination(s) "
                        "with no synchronization path (record with "
                        "--exact-shadow for line addresses)\n",
                        races.size());
        for (std::size_t i = 0;
             i < races.size() && i < maxListed; ++i) {
            const ConflictEdge &e = races[i];
            out += csprintf(
                "  possible race [%s] tid %d chunk %llu (ts %llu) <-> "
                "tid %d chunk %llu (ts %llu)\n",
                e.kindStr().c_str(), schedule[e.from].tid,
                static_cast<unsigned long long>(e.from),
                static_cast<unsigned long long>(schedule[e.from].ts),
                schedule[e.to].tid,
                static_cast<unsigned long long>(e.to),
                static_cast<unsigned long long>(schedule[e.to].ts));
        }
        if (races.size() > maxListed)
            out += csprintf("  ... and %zu more candidate(s)\n",
                            races.size() - maxListed);
        out += "precision: n/a (no exact shadow sets in this sphere)\n";
    }

    out += "terminations:";
    for (int r = 0; r < numChunkReasons; ++r)
        if (reasonCounts[r])
            out += csprintf(" %s=%llu",
                            chunkReasonName(static_cast<ChunkReason>(r)),
                            static_cast<unsigned long long>(
                                reasonCounts[r]));
    out += csprintf("\nrsw: nonzero in %.4f of chunks, mean %.2f\n",
                    1.0 - rswValues.zeroFraction(), rswValues.mean());
    return out;
}

BenchDoc
RaceReport::toBenchDoc(const std::string &workload) const
{
    BenchJson json("ANALYZE");
    auto add = [&](const char *metric, double value) {
        json.add(workload, metric, value);
    };
    add("chunks", static_cast<double>(nChunks));
    add("threads", static_cast<double>(nThreads));
    add("exact", exact ? 1.0 : 0.0);
    add("program_edges", static_cast<double>(programEdges));
    add("sync_edges", static_cast<double>(syncEdges));
    add("conflict_edges", static_cast<double>(conflictEdges));
    add("total_edges", static_cast<double>(totalEdges));
    add("reduced_edges", static_cast<double>(reducedEdges));
    add("races", static_cast<double>(races.size()));
    add("racy_lines", static_cast<double>(racyLines.size()));
    add("conflict_terminations",
        static_cast<double>(audit.conflictTerminations));
    add("true_conflicts", static_cast<double>(audit.trueConflicts));
    add("bloom_false_conflicts",
        static_cast<double>(audit.bloomFalseConflicts));
    add("unattributed_conflicts",
        static_cast<double>(audit.unattributed));
    add("false_conflict_rate", audit.falseConflictRate());
    for (int r = 0; r < numChunkReasons; ++r)
        json.add(workload,
                 csprintf("term_%s",
                          chunkReasonName(static_cast<ChunkReason>(r))),
                 static_cast<double>(reasonCounts[r]));
    add("rsw_nonzero_frac", 1.0 - rswValues.zeroFraction());
    add("rsw_mean", rswValues.mean());
    add("chunk_size_mean", chunkSizes.mean());
    return json.document();
}

} // namespace qr
