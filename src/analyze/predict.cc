/**
 * @file
 * Predictive race classification; see predict.hh for the model.
 *
 * Implementation shape: a second streaming pass over the sphere. The
 * witnessed report (pass 1) already carries every cross-thread
 * conflict edge with schedule indices; this pass re-walks the cursor
 * in the same (ts, tid) schedule order maintaining *sync-preserving*
 * vector clocks -- program order plus spawn and terminal edges only --
 * and judges each conflict edge the moment its destination chunk
 * streams by. Nodes stay resident only while pinned: they are the
 * slot's latest chunk (the program-order clock source), an unconsumed
 * hard sync source, or the source of a not-yet-reached conflict edge.
 * Resident state is O(threads + pending edges), never O(chunks).
 */

#include "analyze/predict.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "analyze/sync_index.hh"
#include "obs/stats_export.hh"
#include "sim/logging.hh"

namespace qr
{

const char *
raceTierStr(RaceTier t)
{
    switch (t) {
      case RaceTier::Witnessed:
        return "witnessed";
      case RaceTier::Predicted:
        return "predicted";
      case RaceTier::LocksetCandidate:
        return "lockset-candidate";
      case RaceTier::Synchronized:
        return "synchronized";
    }
    return "?";
}

namespace
{

/** One resident chunk of the predictive walk. */
struct PredictNode
{
    int slot = 0;
    std::uint64_t pos = 0;
    std::uint32_t pins = 0; //!< unconsumed hard-sync + conflict uses
    /** Sync-preserving clock: chunks of each thread ordered before. */
    std::vector<std::uint64_t> clock;
};

} // namespace

PredictReport
predictRaces(SphereCursor &cur, const RaceReport &witnessed)
{
    PredictReport out;
    out.exact = witnessed.exact;
    out.witnessed = witnessed.races.size();
    if (!witnessed.exact) {
        // Degraded spheres have no line identity and their candidates
        // are already schedule-order guesses; nothing to predict.
        return out;
    }
    if (witnessed.conflicts.size() !=
        static_cast<std::size_t>(witnessed.conflictEdges))
        parseFail(
            "predict: the witnessed report dropped its conflicts list "
            "(re-run the analysis with keepConflicts)");

    const int nslots = static_cast<int>(cur.nThreads());
    std::map<Tid, int> slotOf;
    for (int s = 0; s < nslots; ++s)
        slotOf[cur.tids()[static_cast<std::size_t>(s)]] = s;

    std::uint64_t resolved = 0;
    StreamSyncIndex sync = resolveSyncEdges(cur, slotOf, resolved);

    // Split the sync edges into the orders a reschedule must preserve
    // (spawn, terminal) and the accidental lock-handoff directions;
    // the latter feed the lockset windows instead of the clocks.
    std::vector<char> soft(sync.edges.size(), 0);
    std::vector<std::vector<std::uint64_t>> softIn(
        static_cast<std::size_t>(nslots));
    std::vector<std::vector<std::uint64_t>> softOut(
        static_cast<std::size_t>(nslots));
    for (std::size_t i = 0; i < sync.edges.size(); ++i) {
        const StreamSyncEdge &e = sync.edges[i];
        if (classifySyncEdge(e, cur) == SyncEdgeKind::Handoff) {
            soft[i] = 1;
            out.softSyncEdges++;
            softIn[static_cast<std::size_t>(e.dstSlot)].push_back(
                e.dstPos);
            softOut[static_cast<std::size_t>(e.srcSlot)].push_back(
                e.srcPos);
        } else {
            out.hardSyncEdges++;
        }
    }
    for (auto &v : softIn)
        std::sort(v.begin(), v.end());
    for (auto &v : softOut)
        std::sort(v.begin(), v.end());

    // A chunk "holds the lock" when it sits inside an [acquire-wake-in,
    // release-wake-out) window of its thread: there is a handoff INTO
    // the thread at or before it, and no handoff OUT OF the thread in
    // between. An out edge in the chunk itself is fine -- wakes
    // terminate chunks, so a release shares a chunk only with accesses
    // that preceded it.
    auto held = [&](int slot, std::uint64_t pos) {
        const auto &in = softIn[static_cast<std::size_t>(slot)];
        auto it = std::upper_bound(in.begin(), in.end(), pos);
        if (it == in.begin())
            return false;
        std::uint64_t instar = *(it - 1);
        const auto &ou = softOut[static_cast<std::size_t>(slot)];
        auto ot = std::lower_bound(ou.begin(), ou.end(), instar);
        return !(ot != ou.end() && *ot < pos);
    };

    // Conflict edges grouped by destination schedule index, and pin
    // counts keeping each source chunk resident until every edge out
    // of it has been judged.
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> byTo;
    std::unordered_map<std::uint32_t, std::uint32_t> outPins;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(witnessed.conflicts.size());
         ++i) {
        byTo[witnessed.conflicts[i].to].push_back(i);
        outPins[witnessed.conflicts[i].from]++;
    }

    std::unordered_map<std::uint32_t, PredictNode> nodes;
    std::vector<std::uint32_t> lastOf(
        static_cast<std::size_t>(nslots), UINT32_MAX);

    auto unpin = [&](std::uint32_t id) {
        auto it = nodes.find(id);
        if (it == nodes.end())
            return;
        if (it->second.pins > 0)
            it->second.pins--;
        if (it->second.pins == 0 &&
            lastOf[static_cast<std::size_t>(it->second.slot)] != id)
            nodes.erase(it);
    };

    std::vector<std::size_t> srcPtr(static_cast<std::size_t>(nslots),
                                    0);
    std::vector<std::size_t> dstPtr(static_cast<std::size_t>(nslots),
                                    0);
    std::vector<std::uint64_t> clock(static_cast<std::size_t>(nslots));
    std::uint64_t judged = 0;
    std::uint64_t witnessedTier = 0;

    CursorChunk cc;
    while (cur.next(cc)) {
        const int s = slotOf.at(cc.rec.tid);
        const std::uint64_t pos = cc.posInThread;
        const std::uint32_t idx = cc.schedule;

        // Program-order clock, then merge unconsumed hard in-edges.
        // Sources always precede destinations in the schedule (the
        // resolver drops inverted edges), so their nodes are resident.
        if (pos == 0)
            std::fill(clock.begin(), clock.end(), 0);
        else
            clock = nodes.at(lastOf[static_cast<std::size_t>(s)]).clock;
        clock[static_cast<std::size_t>(s)] = pos + 1;
        auto &din = sync.byDst[static_cast<std::size_t>(s)];
        auto &dp = dstPtr[static_cast<std::size_t>(s)];
        while (dp < din.size() &&
               sync.edges[din[dp]].dstPos <= pos) {
            const std::uint32_t ei = din[dp++];
            if (soft[ei] || !sync.edges[ei].srcSeen)
                continue;
            const PredictNode &src = nodes.at(sync.edges[ei].srcId);
            for (int k = 0; k < nslots; ++k)
                clock[static_cast<std::size_t>(k)] = std::max(
                    clock[static_cast<std::size_t>(k)],
                    src.clock[static_cast<std::size_t>(k)]);
            unpin(sync.edges[ei].srcId);
        }

        // Judge every conflict edge ending here.
        auto ct = byTo.find(idx);
        if (ct != byTo.end()) {
            for (std::uint32_t ci : ct->second) {
                const ConflictEdge &e = witnessed.conflicts[ci];
                auto fit = nodes.find(e.from);
                if (fit == nodes.end())
                    parseFail("predict: conflict edge %u -> %u does "
                              "not match the cursor schedule",
                              e.from, e.to);
                const PredictNode &fn = fit->second;
                const bool orderCov =
                    clock[static_cast<std::size_t>(fn.slot)] >=
                    fn.pos + 1;
                const bool sh = held(fn.slot, fn.pos);
                const bool dh = held(s, pos);
                RaceTier tier;
                if (e.racy) {
                    tier = RaceTier::Witnessed;
                    witnessedTier++;
                } else if (orderCov) {
                    tier = RaceTier::Synchronized;
                    out.synchronized++;
                    out.orderCovered++;
                } else if (sh && dh) {
                    tier = RaceTier::Synchronized;
                    out.synchronized++;
                    out.lockProtected++;
                } else if (sh || dh) {
                    tier = RaceTier::LocksetCandidate;
                    out.locksetCandidates++;
                } else {
                    tier = RaceTier::Predicted;
                    out.predicted++;
                }
                if (tier == RaceTier::Predicted ||
                    tier == RaceTier::LocksetCandidate)
                    out.findings.push_back({e, tier, sh, dh});
                judged++;
                unpin(e.from);
            }
            byTo.erase(ct);
        }

        // Mark the sync edges this chunk sources; hard ones pin it.
        std::uint32_t pins = 0;
        auto op = outPins.find(idx);
        if (op != outPins.end())
            pins += op->second;
        auto &sot = sync.bySrc[static_cast<std::size_t>(s)];
        auto &sp = srcPtr[static_cast<std::size_t>(s)];
        while (sp < sot.size() &&
               sync.edges[sot[sp]].srcPos <= pos) {
            StreamSyncEdge &e = sync.edges[sot[sp++]];
            if (e.srcPos < pos)
                continue;
            e.srcId = idx;
            e.srcSeen = true;
            if (!soft[sot[sp - 1]])
                pins++;
        }

        const std::uint32_t prev =
            lastOf[static_cast<std::size_t>(s)];
        lastOf[static_cast<std::size_t>(s)] = idx;
        PredictNode n;
        n.slot = s;
        n.pos = pos;
        n.pins = pins;
        n.clock = clock;
        nodes.emplace(idx, std::move(n));
        if (prev != UINT32_MAX) {
            auto pit = nodes.find(prev);
            if (pit != nodes.end() && pit->second.pins == 0)
                nodes.erase(pit);
        }
        cur.evictConsumed();
    }

    if (judged != witnessed.conflicts.size())
        parseFail("predict: judged %llu of %zu conflict edges; the "
                  "cursor does not match the witnessed report",
                  static_cast<unsigned long long>(judged),
                  witnessed.conflicts.size());
    out.witnessed = witnessedTier;

    std::sort(out.findings.begin(), out.findings.end(),
              [](const PredictFinding &a, const PredictFinding &b) {
                  return std::pair(a.edge.to, a.edge.from) <
                         std::pair(b.edge.to, b.edge.from);
              });
    for (const PredictFinding &f : out.findings)
        if (f.tier == RaceTier::Predicted)
            out.predictedLines.insert(out.predictedLines.end(),
                                      f.edge.lines.begin(),
                                      f.edge.lines.end());
    std::sort(out.predictedLines.begin(), out.predictedLines.end());
    out.predictedLines.erase(std::unique(out.predictedLines.begin(),
                                         out.predictedLines.end()),
                             out.predictedLines.end());
    return out;
}

std::string
PredictReport::str() const
{
    std::string s;
    if (!exact) {
        s += csprintf(
            "predictive analysis needs exact shadow sets; sphere has "
            "none (witnessed candidates: %llu)\n",
            static_cast<unsigned long long>(witnessed));
        return s;
    }
    s += csprintf(
        "predictive tiers over %llu conflict edge(s): %llu witnessed "
        "+ %llu predicted + %llu lockset-candidate + %llu "
        "synchronized\n",
        static_cast<unsigned long long>(witnessed + predicted +
                                        locksetCandidates +
                                        synchronized),
        static_cast<unsigned long long>(witnessed),
        static_cast<unsigned long long>(predicted),
        static_cast<unsigned long long>(locksetCandidates),
        static_cast<unsigned long long>(synchronized));
    s += csprintf(
        "sync-preserving order: %llu hard (spawn/terminal) + %llu "
        "handoff edge(s); %llu edge(s) order-covered, %llu "
        "lock-protected\n",
        static_cast<unsigned long long>(hardSyncEdges),
        static_cast<unsigned long long>(softSyncEdges),
        static_cast<unsigned long long>(orderCovered),
        static_cast<unsigned long long>(lockProtected));

    constexpr std::size_t maxListed = 16;
    for (std::size_t i = 0; i < findings.size() && i < maxListed;
         ++i) {
        const PredictFinding &f = findings[i];
        std::string lines;
        for (Addr a : f.edge.lines)
            lines += csprintf(" 0x%x", a);
        s += csprintf(
            "  %s [%s] tid %d chunk %llu (ts %llu) <-> tid %d chunk "
            "%llu (ts %llu): line(s)%s [src %s, dst %s]\n",
            raceTierStr(f.tier), f.edge.kindStr().c_str(),
            f.edge.fromTid,
            static_cast<unsigned long long>(f.edge.from),
            static_cast<unsigned long long>(f.edge.fromTs),
            f.edge.toTid, static_cast<unsigned long long>(f.edge.to),
            static_cast<unsigned long long>(f.edge.toTs),
            lines.c_str(), f.srcHeld ? "held" : "unheld",
            f.dstHeld ? "held" : "unheld");
    }
    if (findings.size() > maxListed)
        s += csprintf("  ... and %zu more finding(s)\n",
                      findings.size() - maxListed);
    if (!predictedLines.empty()) {
        s += "predicted lines:";
        for (Addr a : predictedLines)
            s += csprintf(" 0x%x", a);
        s += '\n';
    }
    return s;
}

void
PredictReport::statsInto(StatsSnapshot &s) const
{
    s.counter("analyze.predict.witnessed", witnessed,
              "conflict edges unordered in the recorded graph");
    s.counter("analyze.predict.predicted", predicted,
              "schedule-masked races a reschedule can expose");
    s.counter("analyze.predict.lockset_candidates", locksetCandidates,
              "edges with one-sided lock evidence");
    s.counter("analyze.predict.synchronized", synchronized,
              "edges ordered or consistently lock-protected");
    s.counter("analyze.predict.hard_sync_edges", hardSyncEdges,
              "spawn/terminal sync edges (reschedule-invariant)");
    s.counter("analyze.predict.soft_sync_edges", softSyncEdges,
              "futex handoff edges (schedule accidents)");
    s.counter("analyze.predict.order_covered", orderCovered,
              "edges covered by the sync-preserving order");
    s.counter("analyze.predict.lock_protected", lockProtected,
              "edges inside lock windows on both endpoints");
    s.counter("analyze.predict.predicted_lines",
              predictedLines.size(),
              "distinct line addresses with a predicted race");
}

void
PredictReport::benchInto(BenchDoc &doc,
                         const std::string &workload) const
{
    auto add = [&](const char *metric, double value) {
        doc.results.push_back({doc.bench, workload, metric, value});
    };
    add("predicted_races", static_cast<double>(predicted));
    add("lockset_candidates", static_cast<double>(locksetCandidates));
    add("synchronized_conflicts", static_cast<double>(synchronized));
    add("order_covered", static_cast<double>(orderCovered));
    add("lock_protected", static_cast<double>(lockProtected));
    add("hard_sync_edges", static_cast<double>(hardSyncEdges));
    add("soft_sync_edges", static_cast<double>(softSyncEdges));
    add("predicted_lines", static_cast<double>(predictedLines.size()));
}

} // namespace qr
