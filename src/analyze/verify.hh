/**
 * @file
 * `qrec verify`: a replay-free linter for recorded sphere artifacts.
 *
 * Answers "is this artifact internally consistent?" from the bytes
 * alone -- no replay, no Program, no reference run -- so it can gate
 * artifacts in CI long after the recording machine is gone. Checks
 * run in three layers, each degrading gracefully into the next:
 *
 *  1. Container: the QSG1 segment structure (checksums, trailer,
 *     segment accounting). A torn container is classified by what the
 *     salvage recovers: only trailing chunk records lost (QRV003) vs
 *     whole thread logs gone (QRV004).
 *  2. Stream: the sphere encoding itself (header, per-thread log
 *     well-formedness, timestamp monotonicity).
 *  3. Semantics: invariants of a *well-formed* sphere that the parser
 *     deliberately accepts but no honest recording produces -- sync
 *     points naming unknown partners or clock floors beyond the
 *     waker's logged clocks, inverted sync edges, gap markers carrying
 *     shadow data, shadow lines outside guest memory, implausible
 *     Bloom geometry.
 *
 * Every finding carries a stable QRVnnn code (see lintRules()); the
 * report renders as compiler-style text or SARIF 2.1.0 for CI upload.
 */

#ifndef QR_ANALYZE_VERIFY_HH
#define QR_ANALYZE_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace qr
{

/** Severity of a linter finding (maps onto SARIF levels). */
enum class LintSeverity
{
    Error,   //!< data lost or stream unusable
    Warning, //!< artifact usable, invariant violated
};

/** "error" / "warning". */
const char *lintSeverityStr(LintSeverity s);

/** Static metadata of one diagnostic code. */
struct LintRule
{
    const char *code;        //!< stable id, e.g. "QRV003"
    LintSeverity severity; //!< default severity of the code
    const char *summary;     //!< one-line rule description
};

/** The full rule table, ascending by code. */
const std::vector<LintRule> &lintRules();

/** One linter finding against one artifact. */
struct LintFinding
{
    std::string code; //!< QRVnnn
    LintSeverity severity = LintSeverity::Error;
    std::string message; //!< human detail (offsets, counts, tids)
    /** Offending thread, or invalidTid for file-level findings. */
    Tid tid = invalidTid;
};

/** Everything `qrec verify` derives from one artifact. */
struct LintReport
{
    std::string uri;        //!< artifact path, for rendering
    bool container = false; //!< bytes carried the QSG1 magic
    bool sealed = false;    //!< container trailer verified
    bool parsed = false;    //!< a sphere header was usable

    // --- artifact shape (post-salvage) ------------------------------------
    std::uint64_t threads = 0;
    std::uint64_t chunks = 0;
    std::uint64_t syncPoints = 0;

    std::vector<LintFinding> findings;

    std::uint64_t errors() const;
    std::uint64_t warnings() const;
    bool clean() const { return findings.empty(); }

    /** Compiler-style text: "uri: error QRV005: ..." + summary line. */
    std::string str() const;
};

/**
 * Lint one sphere artifact (a sealed/torn QSG1 container or a legacy
 * raw sphere stream). Never throws on bad input -- malformed bytes
 * *are* the subject -- and always returns a report, salvaging through
 * damaged layers so the semantic checks still run on whatever parses.
 */
LintReport lintSphereBytes(const std::vector<std::uint8_t> &raw,
                           const std::string &uri);

/**
 * Render reports as one SARIF 2.1.0 run (tool "qrec-verify", the full
 * rule table under driver.rules, one result per finding).
 */
std::string lintSarif(const std::vector<LintReport> &reports);

} // namespace qr

#endif // QR_ANALYZE_VERIFY_HH
