/**
 * @file
 * Extended-suite workloads beyond the paper's ten: CHOLESKY
 * (dependency-counter-driven sparse factorization tasks) and VOLREND
 * (tile rendering with per-thread work queues and work stealing).
 * They add two synchronization shapes the main suite lacks --
 * dataflow task release and stealing -- and are used by the wider
 * integration tests.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeCholesky(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t cols = 24u * static_cast<std::uint32_t>(scale);
    const std::uint32_t colWords = 16;
    // Column j depends on its two "structure parents" (j-1, j-3 when
    // they exist); finishing a column decrements dependents' counters
    // and releases them when the count hits zero.

    Addr data = g.alignedBlock(cols * colWords);
    Addr deps = g.alignedBlock(cols);   // remaining dependency counts
    Addr ready = g.alignedBlock(cols);  // ready queue (indices)
    Addr rhead = g.alignedBlock(1);     // queue head (producers)
    Addr rtail = g.alignedBlock(1);     // queue tail (consumers)
    Addr doneCnt = g.alignedBlock(1);
    Addr qlock = g.lockAlloc();
    Addr sumWord = g.word();

    Rng rng(0xc401e + static_cast<unsigned>(scale));
    std::vector<int> depCount(cols, 0);
    for (std::uint32_t j = 0; j < cols; ++j) {
        if (j >= 1)
            depCount[j]++;
        if (j >= 3)
            depCount[j]++;
        for (std::uint32_t wds = 0; wds < colWords; ++wds)
            g.poke(data + (j * colWords + wds) * 4,
                   (rng.next32() & 0xfff) | 1);
    }
    std::uint32_t nseed = 0;
    for (std::uint32_t j = 0; j < cols; ++j) {
        g.poke(deps + j * 4, static_cast<Word>(depCount[j]));
        if (depCount[j] == 0)
            g.poke(ready + (nseed++) * 4, j);
    }
    g.poke(rhead, nseed);

    std::string body = "chol_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, data);
        g.li(t2, cols * colWords);
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = my column, s2 = &qlock, s3 = column base,
    // s4 = scratch, s5 = total columns.
    g.label(body);
    g.mv(s0, a0);
    g.li(s2, qlock);
    g.li(s5, cols);
    std::string loop = g.newLabel("loop");
    std::string nowork = g.newLabel("nowork");
    std::string done = g.newLabel("done");
    g.label(loop);
    // pop a ready column under the queue lock (a lock-free claim
    // could strand a slot that is published after the claim)
    g.spinLockAcquire(s2, t1, t2);
    g.li(t1, rhead);
    g.lw(t3, t1, 0);
    g.li(t1, rtail);
    g.lw(t4, t1, 0);
    std::string havework = g.newLabel("have");
    g.bltu(t4, t3, havework);
    g.spinLockRelease(s2, t1);
    g.j(nowork);
    g.label(havework);
    g.addi(t5, t4, 1);
    g.sw(t5, t1, 0); // tail++
    g.slli(t5, t4, 2);
    g.li(t6, ready);
    g.add(t6, t6, t5);
    g.lw(s1, t6, 0); // my column index
    g.spinLockRelease(s2, t1);
    // "factor" the column: heavy local compute over its words,
    // reading the parents' first words (shared reads).
    g.li(t1, colWords * 4);
    g.mul(s3, s1, t1);
    g.li(t1, data);
    g.add(s3, s3, t1);
    g.li(s4, colWords);
    std::string fw = g.newLabel("fw");
    g.label(fw);
    g.lw(t2, s3, 0);
    g.computePad(t2, t3, 8);
    g.sw(t2, s3, 0);
    g.addi(s3, s3, 4);
    g.addi(s4, s4, -1);
    g.bne(s4, zero, fw);
    // release dependents: children are j+1 and j+3 (if in range)
    for (int childOff : {1, 3}) {
        std::string skip = g.newLabel("skipch");
        g.addi(t1, s1, childOff);
        g.bgeu(t1, s5, skip);
        g.slli(t2, t1, 2);
        g.li(t3, deps);
        g.add(t3, t3, t2);
        g.li(t4, static_cast<Word>(-1));
        g.fetchadd(t4, t3, t4); // old count
        g.li(t5, 1);
        g.bne(t4, t5, skip); // not the last dependency
        // became ready: publish under the queue lock
        g.mv(s4, t1); // child column
        g.spinLockAcquire(s2, t1, t2);
        g.li(t2, rhead);
        g.lw(t3, t2, 0);
        g.slli(t4, t3, 2);
        g.li(t5, ready);
        g.add(t5, t5, t4);
        g.sw(s4, t5, 0);
        g.addi(t3, t3, 1);
        g.sw(t3, t2, 0);
        g.spinLockRelease(s2, t1);
        g.label(skip);
    }
    g.li(t1, doneCnt);
    g.li(t2, 1);
    g.fetchadd(t2, t1, t2);
    g.j(loop);
    g.label(nowork);
    g.li(t1, doneCnt);
    g.lw(t2, t1, 0);
    g.beq(t2, s5, done);
    g.pause();
    g.j(loop);
    g.label(done);
    g.ret();

    return Workload{"cholesky",
                    csprintf("cols=%u threads=%d", cols, threads),
                    threads, g.finish()};
}

Workload
makeVolrend(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t tilesPer = 12u * static_cast<std::uint32_t>(scale);
    const std::uint32_t volWords = 4096;
    const std::uint32_t raysPerTile = 8;
    const std::uint32_t steps = 6;
    // Per-thread deque: [ticket, serving, top, items...] in a 64-word slab.
    const std::uint32_t qWords = 64;

    Addr volume = g.alignedBlock(volWords);
    Addr queues =
        g.alignedBlock(qWords * static_cast<std::uint32_t>(threads));
    Addr image =
        g.alignedBlock(16u * static_cast<std::uint32_t>(threads));
    Addr doneCnt = g.alignedBlock(1);
    Addr sumWord = g.word();
    const std::uint32_t totalTiles =
        tilesPer * static_cast<std::uint32_t>(threads);

    Rng rng(0x701 + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < volWords; ++i)
        g.poke(volume + i * 4, rng.next32() % volWords);
    // Pre-fill each thread's queue with its tiles.
    for (int t = 0; t < threads; ++t) {
        Addr base = queues + static_cast<Addr>(t) * qWords * 4;
        g.poke(base + 8, tilesPer); // top
        for (std::uint32_t i = 0; i < tilesPer; ++i)
            g.poke(base + 12 + i * 4,
                   static_cast<Word>(t) * tilesPer + i);
    }

    std::string body = "vol_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, image);
        g.li(t2, static_cast<Word>(threads));
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 64);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = accumulated image value, s2 = victim cursor,
    // s3 = tile, s4 = queue base being popped, s5/s6 = ray state.
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, 0);
    g.mv(s2, s0);
    std::string loop = g.newLabel("loop");
    std::string popq = g.newLabel("popq");
    std::string gotTile = g.newLabel("got");
    std::string stealNext = g.newLabel("stealnext");
    std::string maybeDone = g.newLabel("maybedone");
    std::string done = g.newLabel("exit");
    g.label(loop);
    g.mv(s2, s0); // start with my own queue
    g.label(popq);
    // s4 = queue base of victim s2
    g.li(t1, qWords * 4);
    g.mul(s4, s2, t1);
    g.li(t1, queues);
    g.add(s4, s4, t1);
    g.spinLockAcquire(s4, t1, t5);
    g.lw(t2, s4, 8); // top
    std::string qempty = g.newLabel("qempty");
    g.beq(t2, zero, qempty);
    g.addi(t2, t2, -1);
    g.sw(t2, s4, 8);
    g.slli(t3, t2, 2);
    g.add(t3, t3, s4);
    g.lw(s3, t3, 12); // tile id
    g.spinLockRelease(s4, t1);
    g.j(gotTile);
    g.label(qempty);
    g.spinLockRelease(s4, t1);
    g.label(stealNext);
    // advance to the next victim; if we wrapped, check termination
    g.addi(s2, s2, 1);
    g.li(t1, static_cast<Word>(threads));
    g.remu(s2, s2, t1);
    g.bne(s2, s0, popq);
    g.label(maybeDone);
    g.li(t1, doneCnt);
    g.lw(t2, t1, 0);
    g.li(t3, totalTiles);
    g.beq(t2, t3, done);
    g.pause();
    g.j(loop);
    // --- render the tile ---------------------------------------------------
    g.label(gotTile);
    g.li(s5, raysPerTile);
    std::string ray = g.newLabel("ray");
    g.label(ray);
    g.li(t1, 2654435761u);
    g.mul(s6, s3, t1);
    g.add(s6, s6, s5);
    g.li(t1, volWords - 1);
    g.and_(s6, s6, t1);
    g.li(t2, steps);
    std::string step = g.newLabel("step");
    g.label(step);
    g.slli(t3, s6, 2);
    g.li(t4, volume);
    g.add(t3, t3, t4);
    g.lw(s6, t3, 0); // march: next voxel index (read-only shared)
    g.add(s1, s1, s6);
    g.addi(t2, t2, -1);
    g.bne(t2, zero, step);
    g.computePad(s1, t3, 6); // compositing math
    g.addi(s5, s5, -1);
    g.bne(s5, zero, ray);
    g.li(t1, doneCnt);
    g.li(t2, 1);
    g.fetchadd(t2, t1, t2);
    g.j(loop);
    g.label(done);
    // publish my image slot
    g.slli(t1, s0, 6);
    g.li(t2, image);
    g.add(t2, t2, t1);
    g.sw(s1, t2, 0);
    g.ret();

    return Workload{"volrend",
                    csprintf("tiles=%u threads=%d", totalTiles,
                             threads),
                    threads, g.finish()};
}

} // namespace qr
