/**
 * @file
 * FMM analog: grouped n-body with multipole-style interactions. Each
 * thread owns groups; far groups are consumed through a one-word
 * summary (light read sharing), near groups through their full body
 * lists (heavier read sharing), and a locked accumulator on the target
 * group takes occasional remote writes -- the mixed light/heavy
 * communication pattern of SPLASH-2 FMM.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeFmm(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t groups = 4u * static_cast<std::uint32_t>(threads);
    const std::uint32_t bodies = 16; // words of body data per group
    // Group layout (line-aligned, 32 words):
    // [ticket, serving, summary, acc, body[0..15], pad...]
    const std::uint32_t gWords = 32;
    const std::uint32_t iters = 2u * static_cast<std::uint32_t>(scale);

    Addr garr = g.alignedBlock(groups * gWords);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    Rng rng(0xf33 + static_cast<unsigned>(scale));
    for (std::uint32_t gi = 0; gi < groups; ++gi)
        for (std::uint32_t b = 0; b < bodies; ++b)
            g.poke(garr + (gi * gWords + 4 + b) * 4,
                   (rng.next32() & 0xfff) | 1);

    std::string body = "fmm_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, garr + 12); // acc of group 0
        g.li(t2, groups);
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, gWords * 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = iter, s2 = my group cursor, s3 = other group,
    // s4 = my group base, s5 = other group base, s6 = scratch acc,
    // s7 = groups-per-thread bound, s8 = body cursor.
    const std::uint32_t perThread =
        groups / static_cast<std::uint32_t>(threads);

    g.label(body);
    g.mv(s0, a0);
    g.li(s1, iters);
    std::string iterLoop = g.newLabel("iter");
    g.label(iterLoop);

    // --- summarize my groups ----------------------------------------------
    {
        g.li(t1, perThread);
        g.mul(s2, s0, t1);
        g.add(s7, s2, t1);
        std::string sg = g.newLabel("sumg");
        g.label(sg);
        g.li(t1, gWords * 4);
        g.mul(s4, s2, t1);
        g.li(t1, garr);
        g.add(s4, s4, t1);
        g.li(s6, 0);
        g.li(s8, bodies);
        g.addi(t2, s4, 16); // first body word
        std::string sb = g.newLabel("sumb");
        g.label(sb);
        g.lw(t3, t2, 0);
        g.add(s6, s6, t3);
        g.addi(t2, t2, 4);
        g.addi(s8, s8, -1);
        g.bne(s8, zero, sb);
        g.sw(s6, s4, 8); // summary
        g.addi(s2, s2, 1);
        g.bne(s2, s7, sg);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- interact: my groups x all groups ----------------------------------
    {
        g.li(t1, perThread);
        g.mul(s2, s0, t1);
        g.add(s7, s2, t1);
        std::string myg = g.newLabel("myg");
        g.label(myg);
        g.li(t1, gWords * 4);
        g.mul(s4, s2, t1);
        g.li(t1, garr);
        g.add(s4, s4, t1);
        g.li(s6, 0); // local accumulation for this group
        g.li(s3, 0); // other group index
        std::string og = g.newLabel("og");
        std::string ogNext = g.newLabel("ognext");
        g.label(og);
        g.beq(s3, s2, ogNext); // skip self
        g.li(t1, gWords * 4);
        g.mul(s5, s3, t1);
        g.li(t1, garr);
        g.add(s5, s5, t1);
        // near if |other - mine| == 1: consume full body list
        g.sub(t2, s3, s2);
        g.li(t3, 1);
        std::string far = g.newLabel("far");
        std::string done1 = g.newLabel("done1");
        g.beq(t2, t3, done1);
        g.li(t3, static_cast<Word>(-1));
        g.bne(t2, t3, far);
        g.label(done1);
        // near interaction: read other group's bodies
        g.li(s8, bodies);
        g.addi(t4, s5, 16);
        std::string nb = g.newLabel("nearb");
        g.label(nb);
        g.lw(t5, t4, 0);
        g.srli(t5, t5, 2);
        g.add(s6, s6, t5);
        g.addi(t4, t4, 4);
        g.addi(s8, s8, -1);
        g.bne(s8, zero, nb);
        // near-field kernel evaluation (local compute)
        g.mv(t8, s6);
        g.computePad(t8, t5, 16);
        g.add(s6, s6, t8);
        // and push a contribution into the other group's locked acc
        g.spinLockAcquire(s5, t1, t3);
        g.lw(t2, s5, 12);
        g.addi(t2, t2, 7);
        g.sw(t2, s5, 12);
        g.spinLockRelease(s5, t1);
        g.j(ogNext);
        // far interaction: summary only, plus the multipole evaluation
        g.label(far);
        g.lw(t5, s5, 8);
        g.srli(t5, t5, 5);
        g.computePad(t5, t4, 6);
        g.add(s6, s6, t5);
        g.label(ogNext);
        g.addi(s3, s3, 1);
        g.li(t1, groups);
        g.bne(s3, t1, og);
        // fold local acc into my group's locked acc
        g.spinLockAcquire(s4, t1, t3);
        g.lw(t2, s4, 12);
        g.add(t2, t2, s6);
        g.sw(t2, s4, 12);
        g.spinLockRelease(s4, t1);
        g.addi(s2, s2, 1);
        g.bne(s2, s7, myg);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- update my bodies from my acc ---------------------------------------
    {
        g.li(t1, perThread);
        g.mul(s2, s0, t1);
        g.add(s7, s2, t1);
        std::string ug = g.newLabel("updg");
        g.label(ug);
        g.li(t1, gWords * 4);
        g.mul(s4, s2, t1);
        g.li(t1, garr);
        g.add(s4, s4, t1);
        g.lw(t2, s4, 12); // acc
        g.li(s8, bodies);
        g.addi(t3, s4, 16);
        std::string ub = g.newLabel("updb");
        g.label(ub);
        g.lw(t4, t3, 0);
        g.add(t4, t4, t2);
        g.srli(t5, t4, 9);
        g.xor_(t4, t4, t5);
        g.sw(t4, t3, 0);
        g.addi(t3, t3, 4);
        g.addi(s8, s8, -1);
        g.bne(s8, zero, ub);
        g.addi(s2, s2, 1);
        g.bne(s2, s7, ug);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    g.addi(s1, s1, -1);
    g.bne(s1, zero, iterLoop);
    g.ret();

    return Workload{"fmm",
                    csprintf("groups=%u iters=%u threads=%d", groups,
                             iters, threads),
                    threads, g.finish()};
}

} // namespace qr
