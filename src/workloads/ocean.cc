/**
 * @file
 * OCEAN analog: red-black-free 5-point stencil relaxation on a
 * row-partitioned grid with a double buffer. Neighbor-partition
 * boundary rows are the shared data; a fetch-and-add residual
 * reduction and a per-iteration barrier complete SPLASH-2 Ocean's
 * communication structure.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeOcean(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t cols = 64;
    const std::uint32_t rows =
        16u * static_cast<std::uint32_t>(threads);
    const std::uint32_t iters = 2u * static_cast<std::uint32_t>(scale);
    const std::uint32_t rowsPer = rows / static_cast<std::uint32_t>(threads);

    Addr gridA = g.alignedBlock(rows * cols);
    Addr gridB = g.alignedBlock(rows * cols);
    Addr residual = g.alignedBlock(1);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    Rng rng(0x0cea + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < rows * cols; ++i)
        g.poke(gridA + i * 4, rng.next32() & 0x3fff);

    Addr result = (iters % 2) ? gridB : gridA;

    std::string body = "ocean_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, result);
        g.li(t2, rows * cols);
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, residual);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = iter, s2 = row, s3 = col, s4 = row end,
    // s5 = src, s6 = dst, s7 = local residual, s8 = row byte base.
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, iters);
    g.li(s5, gridA);
    g.li(s6, gridB);
    std::string iterLoop = g.newLabel("iter");
    g.label(iterLoop);
    g.li(s7, 0);
    g.li(t1, rowsPer);
    g.mul(s2, s0, t1);
    g.add(s4, s2, t1);
    std::string rowLoop = g.newLabel("row");
    std::string rowNext = g.newLabel("rown");
    g.label(rowLoop);
    // skip the global boundary rows
    g.beq(s2, zero, rowNext);
    g.li(t1, rows - 1);
    g.beq(s2, t1, rowNext);
    // s8 = byte offset of row start
    g.li(t1, cols * 4);
    g.mul(s8, s2, t1);
    g.li(s3, 1); // col (skip boundary cols)
    std::string colLoop = g.newLabel("col");
    g.label(colLoop);
    g.slli(t1, s3, 2);
    g.add(t1, t1, s8); // offset of (row, col)
    g.add(t2, t1, s5); // &src[row][col]
    g.lw(t3, t2, 4);                        // east
    g.lw(t4, t2, static_cast<Word>(-4));    // west
    g.lw(t5, t2, cols * 4);                 // south (maybe remote row)
    g.lw(t6, t2, static_cast<Word>(-(static_cast<int>(cols) * 4))); // north
    g.add(t3, t3, t4);
    g.add(t3, t3, t5);
    g.add(t3, t3, t6);
    g.srli(t3, t3, 2); // average
    g.lw(t4, t2, 0);
    g.sub(t5, t3, t4); // delta
    g.add(s7, s7, t5); // local residual
    g.add(t1, t1, s6);
    g.sw(t3, t1, 0);   // dst[row][col]
    g.addi(s3, s3, 1);
    g.li(t1, cols - 1);
    g.bne(s3, t1, colLoop);
    g.label(rowNext);
    g.addi(s2, s2, 1);
    g.bne(s2, s4, rowLoop);
    // reduce local residual into the shared word
    g.li(t1, residual);
    g.fetchadd(t2, t1, s7);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    // swap grids
    g.xor_(s5, s5, s6);
    g.xor_(s6, s5, s6);
    g.xor_(s5, s5, s6);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, iterLoop);
    g.ret();

    return Workload{"ocean",
                    csprintf("grid=%ux%u iters=%u threads=%d", rows,
                             cols, iters, threads),
                    threads, g.finish()};
}

} // namespace qr
