/**
 * @file
 * WATER analogs.
 *
 * water-nsq: O(M^2) all-pairs interactions; a thread reads both
 * molecules of a pair and accumulates into each under the molecule's
 * spin lock (lock order by index) -- SPLASH-2 water-nsquared's
 * fine-grained locked write sharing.
 *
 * water-sp: spatial-decomposition variant; threads own cell ranges,
 * read only neighboring cells during the force phase (barrier
 * separated), and take a lock only for the rare boundary migration --
 * much lighter communication, as in the paper.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeWaterNsq(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t mols = 8u * static_cast<std::uint32_t>(threads);
    const std::uint32_t iters = 2u * static_cast<std::uint32_t>(scale);
    // Molecule layout (line-aligned, 16 words):
    // [ticket, serving, acc, pos, pad..]
    const std::uint32_t mWords = 16;
    const std::uint32_t perThread =
        mols / static_cast<std::uint32_t>(threads);

    Addr marr = g.alignedBlock(mols * mWords);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    Rng rng(0x3a7e6 + static_cast<unsigned>(scale));
    for (std::uint32_t m = 0; m < mols; ++m)
        g.poke(marr + (m * mWords + 3) * 4, (rng.next32() & 0xffff) | 1);

    std::string body = "wnsq_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, marr);
        g.li(t2, mols);
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 8); // acc
        g.add(t3, t3, t4);
        g.lw(t4, t1, 12); // pos
        g.add(t3, t3, t4);
        g.addi(t1, t1, mWords * 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = iter, s2 = i, s3 = j, s4 = i end,
    // s5 = &mol[i], s6 = &mol[j], s7 = force.
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, iters);
    std::string iterLoop = g.newLabel("iter");
    g.label(iterLoop);
    g.li(t1, perThread);
    g.mul(s2, s0, t1);
    g.add(s4, s2, t1);
    std::string iLoop = g.newLabel("i");
    std::string jLoop = g.newLabel("j");
    std::string jNext = g.newLabel("jn");
    std::string iNext = g.newLabel("in");
    g.label(iLoop);
    g.addi(s3, s2, 1); // j = i + 1
    g.label(jLoop);
    g.li(t1, mols);
    g.bge(s3, t1, iNext);
    // bases
    g.slli(s5, s2, 6);
    g.li(t1, marr);
    g.add(s5, s5, t1);
    g.slli(s6, s3, 6);
    g.add(s6, s6, t1);
    // force = f(pos_i, pos_j): the intermolecular potential is a
    // substantial local computation per pair
    g.lw(t2, s5, 12);
    g.lw(t3, s6, 12);
    g.add(s7, t2, t3);
    g.xor_(s7, s7, s3);
    g.computePad(s7, t2, 16);
    g.srli(s7, s7, 3);
    // lock i (lower index first), accumulate, unlock
    g.spinLockAcquire(s5, t1, t3);
    g.lw(t2, s5, 8);
    g.add(t2, t2, s7);
    g.sw(t2, s5, 8);
    g.spinLockRelease(s5, t1);
    g.spinLockAcquire(s6, t1, t3);
    g.lw(t2, s6, 8);
    g.sub(t2, t2, s7);
    g.sw(t2, s6, 8);
    g.spinLockRelease(s6, t1);
    g.label(jNext);
    g.addi(s3, s3, 1);
    g.j(jLoop);
    g.label(iNext);
    g.addi(s2, s2, 1);
    g.bne(s2, s4, iLoop);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    // update phase: fold acc into pos for my molecules
    g.li(t1, perThread);
    g.mul(s2, s0, t1);
    g.add(s4, s2, t1);
    std::string upd = g.newLabel("upd");
    g.label(upd);
    g.slli(s5, s2, 6);
    g.li(t1, marr);
    g.add(s5, s5, t1);
    g.lw(t2, s5, 8);
    g.lw(t3, s5, 12);
    g.add(t3, t3, t2);
    g.andi(t3, t3, 0xffffff);
    g.sw(t3, s5, 12);
    g.addi(s2, s2, 1);
    g.bne(s2, s4, upd);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, iterLoop);
    g.ret();

    return Workload{"water-nsq",
                    csprintf("mols=%u iters=%u threads=%d", mols, iters,
                             threads),
                    threads, g.finish()};
}

Workload
makeWaterSp(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t cells = 8u * static_cast<std::uint32_t>(threads);
    const std::uint32_t iters = 3u * static_cast<std::uint32_t>(scale);
    // Cell layout (line-aligned, 16 words):
    // [ticket, serving, migrations, pos[0..7], acc, pad]
    const std::uint32_t cWords = 16;
    const std::uint32_t perThread =
        cells / static_cast<std::uint32_t>(threads);

    Addr carr = g.alignedBlock(cells * cWords);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    Rng rng(0x3a7e5 + static_cast<unsigned>(scale));
    for (std::uint32_t c = 0; c < cells; ++c)
        for (std::uint32_t p = 0; p < 8; ++p)
            g.poke(carr + (c * cWords + 3 + p) * 4,
                   (rng.next32() & 0xffff) | 1);

    std::string body = "wsp_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, carr);
        g.li(t2, cells * cWords);
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = iter, s2 = cell, s4 = cell end, s5 = my base,
    // s6 = neighbor base, s7 = accumulator, s8 = particle counter.
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, iters);
    std::string iterLoop = g.newLabel("iter");
    g.label(iterLoop);
    g.li(t1, perThread);
    g.mul(s2, s0, t1);
    g.add(s4, s2, t1);
    std::string cellLoop = g.newLabel("cell");
    g.label(cellLoop);
    g.slli(s5, s2, 6);
    g.li(t1, carr);
    g.add(s5, s5, t1);
    g.li(s7, 0);
    // read my particles + both neighbors' particles (shared reads)
    // neighbor left = (cell + cells - 1) % cells
    g.li(t1, cells);
    g.addi(t2, s2, static_cast<std::int32_t>(cells) - 1);
    g.remu(t2, t2, t1);
    g.slli(s6, t2, 6);
    g.li(t3, carr);
    g.add(s6, s6, t3);
    g.li(s8, 8);
    std::string nl = g.newLabel("nl");
    g.label(nl);
    g.lw(t4, s6, 12);
    g.add(s7, s7, t4);
    g.addi(s6, s6, 4);
    g.addi(s8, s8, -1);
    g.bne(s8, zero, nl);
    // neighbor right = (cell + 1) % cells
    g.addi(t2, s2, 1);
    g.remu(t2, t2, t1);
    g.slli(s6, t2, 6);
    g.add(s6, s6, t3);
    g.li(s8, 8);
    std::string nr = g.newLabel("nr");
    g.label(nr);
    g.lw(t4, s6, 12);
    g.srli(t4, t4, 1);
    g.add(s7, s7, t4);
    g.addi(s6, s6, 4);
    g.addi(s8, s8, -1);
    g.bne(s8, zero, nr);
    // local force kernel, then store into my acc (own cell, private
    // in this phase)
    g.computePad(s7, t4, 24);
    g.sw(s7, s5, 44);
    g.addi(s2, s2, 1);
    g.bne(s2, s4, cellLoop);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    // update phase: apply acc to my particles; occasionally "migrate"
    // a particle by bumping the right neighbor's locked counter.
    g.li(t1, perThread);
    g.mul(s2, s0, t1);
    g.add(s4, s2, t1);
    std::string updLoop = g.newLabel("upd");
    g.label(updLoop);
    g.slli(s5, s2, 6);
    g.li(t1, carr);
    g.add(s5, s5, t1);
    g.lw(s7, s5, 44);
    g.li(s8, 8);
    std::string up = g.newLabel("up");
    g.label(up);
    g.slli(t2, s8, 2);
    g.add(t2, t2, s5);
    g.lw(t3, t2, 8); // pos[s8-1] at offset 12+(s8-1)*4 == 8+s8*4
    g.add(t3, t3, s7);
    g.andi(t3, t3, 0xfffff);
    g.sw(t3, t2, 8);
    g.addi(s8, s8, -1);
    g.bne(s8, zero, up);
    // migration: if acc has low bit set, lock right neighbor and bump
    g.andi(t2, s7, 1);
    std::string nomig = g.newLabel("nomig");
    g.beq(t2, zero, nomig);
    g.li(t1, cells);
    g.addi(t2, s2, 1);
    g.remu(t2, t2, t1);
    g.slli(s6, t2, 6);
    g.li(t3, carr);
    g.add(s6, s6, t3);
    g.spinLockAcquire(s6, t1, t3);
    g.lw(t2, s6, 8);
    g.addi(t2, t2, 1);
    g.sw(t2, s6, 8);
    g.spinLockRelease(s6, t1);
    g.label(nomig);
    g.addi(s2, s2, 1);
    g.bne(s2, s4, updLoop);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, iterLoop);
    g.ret();

    return Workload{"water-sp",
                    csprintf("cells=%u iters=%u threads=%d", cells,
                             iters, threads),
                    threads, g.finish()};
}

} // namespace qr
