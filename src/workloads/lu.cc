/**
 * @file
 * LU analog: blocked dense factorization skeleton. Blocks are assigned
 * round-robin; at step k the diagonal owner factors block (k,k), then
 * perimeter owners update row/column blocks reading the diagonal block
 * (one-to-many read sharing), then interior owners update (i,j) reading
 * blocks (k,j) and (i,k). Barriers separate the three phases, exactly
 * the dependence structure of SPLASH-2 LU.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeLu(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t nb = 6 + 2u * static_cast<std::uint32_t>(scale);
    const std::uint32_t b = 8;      // block edge (words)
    const std::uint32_t bw = b * b; // words per block
    const std::uint32_t nWords = nb * nb * bw;

    Addr mat = g.alignedBlock(nWords);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    Rng rng(0x10 + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < nWords; ++i)
        g.poke(mat + i * 4, (rng.next32() & 0xffff) | 1);

    auto blockBase = [&](std::uint32_t bi, std::uint32_t bj) {
        return mat + (bi * nb + bj) * bw * 4;
    };
    (void)blockBase;

    std::string body = "lu_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, mat);
        g.li(t2, nWords);
        g.li(t3, 0);
        std::string csum = g.newLabel("csum");
        g.label(csum);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, csum);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // Register plan: s0 = me, s1 = k, s2 = j (or i), s3 = i,
    // s4 = word counter, s5 = target block base, s6 = src1 base,
    // s7 = src2 base, s8 = nb.
    //
    // owner(bi,bj) = (bi*nb + bj) % threads
    auto emitOwnerCheck = [&](Reg bi, Reg bj, const std::string &skip) {
        g.li(t1, nb);
        g.mul(t1, bi, t1);
        g.add(t1, t1, bj);
        g.li(t2, static_cast<Word>(threads));
        g.remu(t1, t1, t2);
        g.bne(t1, s0, skip);
    };
    // s5 = base of block (bi,bj)
    auto emitBlockBase = [&](Reg bi, Reg bj, Reg dst) {
        g.li(t1, nb);
        g.mul(t1, bi, t1);
        g.add(t1, t1, bj);
        g.li(t2, bw * 4);
        g.mul(t1, t1, t2);
        g.li(dst, mat);
        g.add(dst, dst, t1);
    };

    g.label(body);
    g.mv(s0, a0);
    g.li(s1, 0); // k
    g.li(s8, nb);
    std::string kLoop = g.newLabel("k");
    g.label(kLoop);

    // --- phase 1: factor the diagonal block (k,k) -----------------------
    {
        std::string skip = g.newLabel("nodiag");
        emitOwnerCheck(s1, s1, skip);
        emitBlockBase(s1, s1, s5);
        g.li(s4, bw);
        std::string w = g.newLabel("fact");
        g.label(w);
        g.lw(t3, s5, 0);
        g.slli(t4, t3, 1);
        g.add(t3, t3, t4);
        g.addi(t3, t3, 1);
        g.sw(t3, s5, 0);
        g.addi(s5, s5, 4);
        g.addi(s4, s4, -1);
        g.bne(s4, zero, w);
        g.label(skip);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- phase 2: perimeter updates read the diagonal block --------------
    // Row blocks (k,j), j > k.
    {
        g.addi(s2, s1, 1); // j
        std::string jLoop = g.newLabel("rowj");
        std::string jDone = g.newLabel("rowjd");
        g.label(jLoop);
        g.bge(s2, s8, jDone);
        std::string skip = g.newLabel("norow");
        emitOwnerCheck(s1, s2, skip);
        emitBlockBase(s1, s2, s5); // target (k,j)
        emitBlockBase(s1, s1, s6); // diag (k,k), shared read
        g.li(s4, bw);
        std::string w = g.newLabel("roww");
        g.label(w);
        g.lw(t3, s5, 0);
        g.lw(t4, s6, 0);
        g.slli(t4, t4, 1);
        g.add(t3, t3, t4);
        g.sw(t3, s5, 0);
        g.addi(s5, s5, 4);
        g.addi(s6, s6, 4);
        g.addi(s4, s4, -1);
        g.bne(s4, zero, w);
        g.label(skip);
        g.addi(s2, s2, 1);
        g.j(jLoop);
        g.label(jDone);
    }
    // Column blocks (i,k), i > k.
    {
        g.addi(s3, s1, 1); // i
        std::string iLoop = g.newLabel("coli");
        std::string iDone = g.newLabel("colid");
        g.label(iLoop);
        g.bge(s3, s8, iDone);
        std::string skip = g.newLabel("nocol");
        emitOwnerCheck(s3, s1, skip);
        emitBlockBase(s3, s1, s5);
        emitBlockBase(s1, s1, s6);
        g.li(s4, bw);
        std::string w = g.newLabel("colw");
        g.label(w);
        g.lw(t3, s5, 0);
        g.lw(t4, s6, 0);
        g.xor_(t3, t3, t4);
        g.addi(t3, t3, 3);
        g.sw(t3, s5, 0);
        g.addi(s5, s5, 4);
        g.addi(s6, s6, 4);
        g.addi(s4, s4, -1);
        g.bne(s4, zero, w);
        g.label(skip);
        g.addi(s3, s3, 1);
        g.j(iLoop);
        g.label(iDone);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- phase 3: interior updates (i,j) += f(row(k,j), col(i,k)) -------
    {
        g.addi(s3, s1, 1); // i
        std::string iLoop = g.newLabel("inti");
        std::string iDone = g.newLabel("intid");
        g.label(iLoop);
        g.bge(s3, s8, iDone);
        g.addi(s2, s1, 1); // j
        std::string jLoop = g.newLabel("intj");
        std::string jDone = g.newLabel("intjd");
        g.label(jLoop);
        g.bge(s2, s8, jDone);
        std::string skip = g.newLabel("noint");
        emitOwnerCheck(s3, s2, skip);
        emitBlockBase(s3, s2, s5); // target (i,j)
        emitBlockBase(s1, s2, s6); // row (k,j), shared read
        emitBlockBase(s3, s1, s7); // col (i,k), shared read
        g.li(s4, bw);
        std::string w = g.newLabel("intw");
        g.label(w);
        g.lw(t3, s5, 0);
        g.lw(t4, s6, 0);
        g.lw(t5, s7, 0);
        g.mul(t4, t4, t5);
        g.sub(t3, t3, t4);
        g.sw(t3, s5, 0);
        g.addi(s5, s5, 4);
        g.addi(s6, s6, 4);
        g.addi(s7, s7, 4);
        g.addi(s4, s4, -1);
        g.bne(s4, zero, w);
        g.label(skip);
        g.addi(s2, s2, 1);
        g.j(jLoop);
        g.label(jDone);
        g.addi(s3, s3, 1);
        g.j(iLoop);
        g.label(iDone);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    g.addi(s1, s1, 1);
    g.bne(s1, s8, kLoop);
    g.ret();

    return Workload{"lu", csprintf("nb=%u b=%u threads=%d", nb, b,
                                   threads),
                    threads, g.finish()};
}

} // namespace qr
