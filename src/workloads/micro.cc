#include "workloads/micro.hh"

#include "guest/runtime.hh"
#include "sim/logging.hh"

namespace qr
{

Workload
makeRacyCounter(int threads, int iters, bool locked)
{
    GuestBuilder g;
    Addr counter = g.alignedBlock(1);
    Addr lock = g.lockAlloc();

    std::string body = "body";
    g.emitWorkerScaffold(threads, body,
                         [&] { g.sysWrite(counter, 4); });

    g.label(body);
    g.li(s1, static_cast<Word>(iters));
    g.li(s2, counter);
    g.li(s3, lock);
    std::string loop = g.newLabel("loop");
    g.label(loop);
    if (locked)
        g.spinLockAcquire(s3, t1, t3);
    g.lw(t2, s2, 0);
    g.addi(t2, t2, 1);
    g.sw(t2, s2, 0);
    if (locked)
        g.spinLockRelease(s3, t1);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();

    return Workload{locked ? "counter-locked" : "counter-racy",
                    csprintf("threads=%d iters=%d", threads, iters),
                    threads, g.finish()};
}

Workload
makePingPong(int iters)
{
    GuestBuilder g;
    Addr flag0 = g.alignedBlock(1);
    Addr flag1 = g.alignedBlock(1);
    Addr ball = g.alignedBlock(1); // the datum batted back and forth

    std::string body = "body";
    g.emitWorkerScaffold(2, body, [&] { g.sysWrite(ball, 4); });

    // Worker i spins on flag_i, bumps the ball, releases flag_(1-i).
    g.label(body);
    std::string as_one = g.newLabel("as_one");
    std::string go = g.newLabel("go");
    g.li(s1, static_cast<Word>(iters));
    g.li(s4, ball);
    g.bne(a0, zero, as_one);
    g.li(s2, flag0);
    g.li(s3, flag1);
    // Thread 0 serves first.
    g.li(t1, 1);
    g.sw(t1, s2, 0);
    g.j(go);
    g.label(as_one);
    g.li(s2, flag1);
    g.li(s3, flag0);
    g.label(go);
    std::string loop = g.newLabel("loop");
    std::string wait = g.newLabel("wait");
    g.label(loop);
    g.label(wait);
    g.lw(t1, s2, 0); // wait for my flag
    g.beq(t1, zero, wait);
    g.sw(zero, s2, 0); // consume my flag
    g.lw(t2, s4, 0);   // bat the ball
    g.addi(t2, t2, 1);
    g.sw(t2, s4, 0);
    g.li(t1, 1);       // serve the peer
    g.sw(t1, s3, 0);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();

    return Workload{"pingpong", csprintf("iters=%d", iters), 2,
                    g.finish()};
}

Workload
makeFalseSharing(int threads, int iters)
{
    GuestBuilder g;
    // All per-thread slots packed into one line.
    Addr slots = g.alignedBlock(16);

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] { g.sysWrite(slots, 16); });

    g.label(body);
    g.slli(t1, a0, 2);
    g.li(s2, slots);
    g.add(s2, s2, t1); // my private word, same line as everyone's
    g.li(s1, static_cast<Word>(iters));
    std::string loop = g.newLabel("loop");
    g.label(loop);
    g.lw(t2, s2, 0);
    g.addi(t2, t2, 1);
    g.sw(t2, s2, 0);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();

    return Workload{"false-sharing",
                    csprintf("threads=%d iters=%d", threads, iters),
                    threads, g.finish()};
}

Workload
makeProdCons(int threads, int items)
{
    qr_assert(threads >= 2, "prodcons needs >= 2 threads");
    GuestBuilder g;
    constexpr Word ringSlots = 16;
    Addr ring = g.alignedBlock(ringSlots);
    Addr head = g.alignedBlock(1); // next push index
    Addr tail = g.alignedBlock(1); // next pop index
    Addr lock = g.lockAlloc();
    Addr consumed = g.alignedBlock(1); // checksum of consumed values

    int consumers = threads / 2;
    int producers = threads - consumers;
    // Every producer pushes `items`; consumers pop until they have
    // consumed their share (items * producers / consumers each, with
    // thread layout chosen so it divides evenly).
    int per_consumer = items * producers / consumers;

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] { g.sysWrite(consumed, 4); });

    std::string produce = g.newLabel("produce");
    std::string consume = g.newLabel("consume");
    g.label(body);
    g.li(t1, static_cast<Word>(producers));
    g.bltu(a0, t1, produce);
    g.j(consume);

    // --- producer: push `items` values (value = iteration index) -------
    g.label(produce);
    g.li(s1, static_cast<Word>(items));
    g.li(s2, lock);
    std::string ploop = g.newLabel("ploop");
    std::string pfull = g.newLabel("pfull");
    g.label(ploop);
    g.label(pfull);
    g.hybridLockAcquire(s2, t1, t2);
    g.li(t3, head);
    g.lw(t4, t3, 0);  // head
    g.li(t5, tail);
    g.lw(t5, t5, 0);  // tail
    g.sub(t6, t4, t5);
    g.li(t7, ringSlots);
    std::string roomy = g.newLabel("roomy");
    g.bltu(t6, t7, roomy);
    // Ring full: release, yield, retry.
    g.hybridLockRelease(s2, t1);
    g.sysYield();
    g.j(pfull);
    g.label(roomy);
    // ring[head % slots] = s1; head++
    g.andi(t6, t4, ringSlots - 1);
    g.slli(t6, t6, 2);
    g.li(t7, ring);
    g.add(t7, t7, t6);
    g.sw(s1, t7, 0);
    g.addi(t4, t4, 1);
    g.li(t3, head);
    g.sw(t4, t3, 0);
    g.hybridLockRelease(s2, t1);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, ploop);
    g.ret();

    // --- consumer: pop per_consumer values, sum into `consumed` ---------
    g.label(consume);
    g.li(s1, static_cast<Word>(per_consumer));
    g.li(s2, lock);
    std::string cloop = g.newLabel("cloop");
    std::string cempty = g.newLabel("cempty");
    g.label(cloop);
    g.label(cempty);
    g.hybridLockAcquire(s2, t1, t2);
    g.li(t3, head);
    g.lw(t4, t3, 0); // head
    g.li(t3, tail);
    g.lw(t5, t3, 0); // tail
    std::string avail = g.newLabel("avail");
    g.bne(t4, t5, avail);
    // Empty: release, yield, retry.
    g.hybridLockRelease(s2, t1);
    g.sysYield();
    g.j(cempty);
    g.label(avail);
    g.andi(t6, t5, ringSlots - 1);
    g.slli(t6, t6, 2);
    g.li(t7, ring);
    g.add(t7, t7, t6);
    g.lw(t8, t7, 0); // value
    g.addi(t5, t5, 1);
    g.sw(t5, t3, 0); // tail++
    g.li(t3, consumed);
    g.lw(t6, t3, 0);
    g.add(t6, t6, t8);
    g.sw(t6, t3, 0); // checksum += value (lock-protected)
    g.hybridLockRelease(s2, t1);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, cloop);
    g.ret();

    return Workload{"prodcons",
                    csprintf("threads=%d items=%d", threads, items),
                    threads, g.finish()};
}

Workload
makeNondetMix(int threads, int iters)
{
    GuestBuilder g;
    Addr acc = g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);
    Addr readBuf = g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.sysWrite(acc, static_cast<Word>(threads) * 64);
    });

    g.label(body);
    g.slli(t1, a0, 6); // 64-byte slot per worker
    g.li(s2, acc);
    g.add(s2, s2, t1);
    g.li(s3, readBuf);
    g.add(s3, s3, t1);
    g.li(s1, static_cast<Word>(iters));
    std::string loop = g.newLabel("loop");
    g.label(loop);
    g.rdtsc(t2);
    g.rdrand(t3);
    g.cpuid(t4);
    g.xor_(t2, t2, t3);
    g.add(t2, t2, t4);
    g.lw(t5, s2, 0);
    g.add(t5, t5, t2);
    g.sw(t5, s2, 0);
    // Pull 16 bytes of external input every 8th iteration.
    g.andi(t6, s1, 7);
    std::string noread = g.newLabel("noread");
    g.bne(t6, zero, noread);
    g.mv(a0, zero);
    g.mv(a1, s3);
    g.li(a2, 16);
    g.sys(Sys::Read);
    g.lw(t7, s3, 0);
    g.lw(t8, s2, 4);
    g.add(t8, t8, t7);
    g.sw(t8, s2, 4);
    g.label(noread);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();

    return Workload{"nondet-mix",
                    csprintf("threads=%d iters=%d", threads, iters),
                    threads, g.finish()};
}

Workload
makeSignalStress(int kills)
{
    GuestBuilder g;
    Addr mailbox = g.alignedBlock(1);
    Addr sigCount = g.alignedBlock(1);
    Addr victimTid = g.alignedBlock(1);
    Addr done = g.alignedBlock(1);

    std::string body = "body";
    g.emitWorkerScaffold(2, body, [&] { g.sysWrite(sigCount, 4); });

    std::string victim = g.newLabel("victim");
    std::string handler = g.newLabel("handler");

    g.label(body);
    g.beq(a0, zero, victim);

    // --- worker 1: the killer --------------------------------------------
    // Wait until the victim has published its tid and handler.
    std::string waittid = g.newLabel("waittid");
    g.li(s2, victimTid);
    g.label(waittid);
    g.lw(s3, s2, 0);
    g.beq(s3, zero, waittid);
    g.li(s1, static_cast<Word>(kills));
    std::string kloop = g.newLabel("kloop");
    g.label(kloop);
    g.mv(a0, s3);
    g.li(a1, 7); // signo
    g.sys(Sys::Kill);
    // Give the victim time to take it (bounded pause loop).
    g.li(t1, 400);
    std::string pl = g.newLabel("pl");
    g.label(pl);
    g.pause();
    g.addi(t1, t1, -1);
    g.bne(t1, zero, pl);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, kloop);
    g.li(t1, 1);
    g.li(t2, done);
    g.sw(t1, t2, 0);
    g.ret();

    // --- worker 0: the victim ----------------------------------------------
    g.label(victim);
    g.liLabel(a0, handler);
    g.li(a1, mailbox);
    g.sys(Sys::Sigaction);
    g.sys(Sys::GetTid);
    g.li(t1, victimTid);
    g.sw(a0, t1, 0);
    // Compute until the killer says stop.
    g.li(s4, 0);
    std::string vloop = g.newLabel("vloop");
    g.label(vloop);
    g.addi(s4, s4, 1);
    g.mul(t2, s4, s4);
    g.li(t1, done);
    g.lw(t3, t1, 0);
    g.beq(t3, zero, vloop);
    g.ret();

    // --- the handler -------------------------------------------------------
    // Saves/restores the temporaries it uses; a7 is clobbered by the
    // sigreturn shim, which is safe because every syscall site in this
    // program loads a7 immediately before trapping.
    g.label(handler);
    g.addi(sp, sp, -8);
    g.sw(t1, sp, 0);
    g.sw(t2, sp, 4);
    g.li(t1, sigCount);
    g.lw(t2, t1, 0);
    g.addi(t2, t2, 1);
    g.sw(t2, t1, 0);
    g.lw(t1, sp, 0);
    g.lw(t2, sp, 4);
    g.addi(sp, sp, 8);
    g.sys(Sys::Sigreturn);

    return Workload{"signal-stress", csprintf("kills=%d", kills), 2,
                    g.finish()};
}

Workload
makeRaceDemo(int threads, int iters, bool racy, Addr *planted_line)
{
    GuestBuilder g;
    // One full line per worker: private counters never share a line.
    Addr slots =
        g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);
    Addr shared = g.alignedBlock(1); // the planted race, its own line
    Addr total = g.alignedBlock(1);
    if (planted_line)
        *planted_line = shared;

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        // Post-join: sum the per-worker slots. These cross-thread reads
        // are ordered by the join edges, so they must NOT be reported
        // as races -- the clean twin checks exactly that.
        g.li(s1, static_cast<Word>(threads));
        g.li(s2, slots);
        g.li(t2, 0);
        std::string sum = g.newLabel("sum");
        g.label(sum);
        g.lw(t3, s2, 0);
        g.add(t2, t2, t3);
        g.addi(s2, s2, 64);
        g.addi(s1, s1, -1);
        g.bne(s1, zero, sum);
        g.li(t1, total);
        g.sw(t2, t1, 0);
        g.sysWrite(total, 4);
    });

    g.label(body);
    g.slli(t1, a0, 6); // 64-byte slot per worker
    g.li(s2, slots);
    g.add(s2, s2, t1);
    g.li(s3, shared);
    g.li(s1, static_cast<Word>(iters));
    std::string loop = g.newLabel("loop");
    g.label(loop);
    g.lw(t2, s2, 0); // private increment: race-free by construction
    g.addi(t2, t2, 1);
    g.sw(t2, s2, 0);
    if (racy) {
        g.lw(t3, s3, 0); // unlocked shared increment: the planted race
        g.addi(t3, t3, 1);
        g.sw(t3, s3, 0);
    }
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();

    return Workload{racy ? "race-demo-racy" : "race-demo-clean",
                    csprintf("threads=%d iters=%d", threads, iters),
                    threads, g.finish()};
}

Workload
makeMaskedRaceDemo(int threads, int iters, bool elide_lock,
                   Addr *planted_line)
{
    GuestBuilder g;
    Addr slots =
        g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);
    Addr shared = g.alignedBlock(1); // the masked race, its own line
    Addr total = g.alignedBlock(1);
    Addr lock = g.lockAlloc();
    if (planted_line)
        *planted_line = shared;

    // Futex mutex restricted to the contended protocol: acquisition
    // always swap(2)s and release always syscalls a wake, so every
    // handoff is visible to the recorded SyncPoints. The hybrid lock's
    // CAS fast path would acquire without any recordable event, which
    // is exactly the blindness the predictive twins must not depend
    // on. Clobbers t1, a0, a1, a7; s4 holds the lock address.
    auto acquire = [&] {
        std::string loop = g.newLabel("mlk_acq");
        std::string done = g.newLabel("mlk_got");
        g.label(loop);
        g.li(t1, 2);
        g.swap(t1, s4);
        g.beq(t1, zero, done);
        g.mv(a0, s4);
        g.li(a1, 2);
        g.sys(Sys::FutexWait);
        g.j(loop);
        g.label(done);
    };
    auto release = [&] {
        g.li(t1, 0);
        g.swap(t1, s4); // old state is always 2 here
        g.mv(a0, s4);
        g.li(a1, 1);
        g.sys(Sys::FutexWake);
    };
    auto bumpShared = [&] {
        g.lw(t3, s3, 0);
        g.addi(t3, t3, 1);
        g.sw(t3, s3, 0);
    };

    std::string body = "mbody";
    g.emitWorkerScaffold(threads, body, [&] {
        // Post-join: total = sum(slots) + shared, printed at exit.
        g.li(s1, static_cast<Word>(threads));
        g.li(s2, slots);
        g.li(t2, 0);
        std::string sum = g.newLabel("sum");
        g.label(sum);
        g.lw(t3, s2, 0);
        g.add(t2, t2, t3);
        g.addi(s2, s2, 64);
        g.addi(s1, s1, -1);
        g.bne(s1, zero, sum);
        g.li(t1, shared);
        g.lw(t3, t1, 0);
        g.add(t2, t2, t3);
        g.li(t1, total);
        g.sw(t2, t1, 0);
        g.sysWrite(total, 4);
    });

    g.label(body);
    g.slli(t1, a0, 6); // 64-byte slot per worker
    g.li(s2, slots);
    g.add(s2, s2, t1);
    g.li(s3, shared);
    g.li(s4, lock);
    g.li(s1, static_cast<Word>(iters));
    g.mv(s5, a0);

    std::string after_pre = g.newLabel("pre");
    if (elide_lock) {
        // Main touches the shared line once before it ever takes the
        // lock. A thread's first chunk cannot sink a handoff edge, so
        // the access is provably outside any critical-section window.
        g.bne(s5, zero, after_pre);
        bumpShared();
        g.label(after_pre);
    }

    std::string loop = g.newLabel("loop");
    g.label(loop);
    acquire();
    // Hold the lock across a kernel entry: the scheduler switches at
    // syscalls, so without this yield the critical section runs to
    // its release inside one quantum, contenders always find the lock
    // free, no FutexWait ever blocks, and the recording would carry
    // no handoff SyncPoints at all -- the predictive pass needs the
    // contention to be real.
    g.sys(Sys::Yield);
    g.lw(t2, s2, 0); // private increment inside the critical section
    g.addi(t2, t2, 1);
    g.sw(t2, s2, 0);
    if (!elide_lock)
        bumpShared(); // clean twin: consistently lock-protected
    release();
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);

    std::string after_post = g.newLabel("post");
    if (elide_lock) {
        // Worker 1 touches it once after its *last* release. The
        // first-spawned worker seizes the lock the moment the spawn
        // syscall schedules it, so it runs one handoff ahead of main
        // for the whole loop and its final release still wakes main
        // -- the recorded wake proves the lock was dropped before
        // this access. (Main finishes last; its final release wakes
        // nobody, which would leave the access lockset-ambiguous.)
        // The chain main-pre-bump -> main rel -> ... -> worker 1's
        // last acquire -> worker-post-bump covers the pair in
        // schedule order even though no lock protects either access.
        g.li(t1, 1);
        g.bne(s5, t1, after_post);
        bumpShared();
        g.label(after_post);
    }
    g.ret();

    return Workload{elide_lock ? "masked-race-elided"
                               : "masked-race-clean",
                    csprintf("threads=%d iters=%d", threads, iters),
                    threads, g.finish()};
}

} // namespace qr
