/**
 * @file
 * BARNES analog: threads concurrently insert bodies into a shared tree
 * under fine-grained per-node spin locks (the irregular pointer-chasing
 * write sharing of Barnes-Hut tree build), then traverse the tree
 * read-only to accumulate forces (wide read sharing).
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeBarnes(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t depth = 7; // complete binary tree
    const std::uint32_t nodes = (1u << (depth + 1)) - 1;
    const std::uint32_t bodiesPerThread =
        64u * static_cast<std::uint32_t>(scale);
    // Node layout: [ticket, serving, value, pad] -- 4 words per node, packed
    // two-per-half-line like the real thing (some false sharing).
    const std::uint32_t nodeWords = 4;

    Addr tree = g.alignedBlock(nodes * nodeWords);
    Addr bar = g.barrierAlloc();
    Addr forces = g.alignedBlock(16u * static_cast<std::uint32_t>(threads));
    Addr sumWord = g.word();

    std::string body = "barnes_body";
    g.emitWorkerScaffold(threads, body, [&] {
        // checksum = root value + each thread's force accumulator
        g.li(t1, tree);
        g.lw(t3, t1, 8);
        g.li(t1, forces);
        g.li(t2, static_cast<Word>(threads));
        std::string f = g.newLabel("fsum");
        g.label(f);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 64);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, f);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = body counter, s2 = body key (PRNG state),
    // s3 = node index, s4 = level, s5 = node byte base, s6 = force acc.
    g.label(body);
    g.mv(s0, a0);

    // --- build phase: insert bodies root-to-leaf under node locks --------
    g.li(s1, bodiesPerThread);
    g.li(t1, 0x9e37);
    g.mul(s2, s0, t1);
    g.addi(s2, s2, 0x79b9); // per-thread PRNG seed
    std::string insLoop = g.newLabel("ins");
    g.label(insLoop);
    // next body key: xorshift-ish
    g.slli(t1, s2, 13);
    g.xor_(s2, s2, t1);
    g.srli(t1, s2, 17);
    g.xor_(s2, s2, t1);
    g.li(s3, 0); // start at root
    g.li(s4, depth);
    std::string walk = g.newLabel("walk");
    g.label(walk);
    // node base = tree + s3 * nodeWords * 4
    g.slli(s5, s3, 4);
    g.li(t1, tree);
    g.add(s5, s5, t1);
    // local "center of mass" computation before touching the node
    g.mv(t5, s2);
    g.computePad(t5, t6, 12);
    // lock node, value += f(key), unlock
    g.spinLockAcquire(s5, t1, t3);
    g.lw(t2, s5, 8);
    g.add(t2, t2, s2);
    g.add(t2, t2, t5);
    g.sw(t2, s5, 8);
    g.spinLockRelease(s5, t1);
    // descend: child = 2*idx + 1 + (key >> level & 1)
    g.srl(t1, s2, s4);
    g.andi(t1, t1, 1);
    g.slli(s3, s3, 1);
    g.addi(s3, s3, 1);
    g.add(s3, s3, t1);
    g.addi(s4, s4, -1);
    g.bne(s4, zero, walk);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, insLoop);

    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- force phase: read-only traversals ---------------------------------
    g.li(s6, 0);
    g.li(s1, bodiesPerThread);
    g.li(t1, 0x51ed);
    g.mul(s2, s0, t1);
    g.addi(s2, s2, 0x2d5a);
    std::string frcLoop = g.newLabel("frc");
    g.label(frcLoop);
    g.slli(t1, s2, 13);
    g.xor_(s2, s2, t1);
    g.srli(t1, s2, 17);
    g.xor_(s2, s2, t1);
    g.li(s3, 0);
    g.li(s4, depth);
    std::string walk2 = g.newLabel("walk2");
    g.label(walk2);
    g.slli(s5, s3, 4);
    g.li(t1, tree);
    g.add(s5, s5, t1);
    g.lw(t2, s5, 8); // read node value (shared, no lock)
    g.srli(t3, t2, 3);
    g.computePad(t3, t5, 10); // force kernel on the node contribution
    g.add(s6, s6, t3);
    g.srl(t1, s2, s4);
    g.andi(t1, t1, 1);
    g.slli(s3, s3, 1);
    g.addi(s3, s3, 1);
    g.add(s3, s3, t1);
    g.addi(s4, s4, -1);
    g.bne(s4, zero, walk2);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, frcLoop);

    // publish my force accumulator (private line)
    g.slli(t1, s0, 6);
    g.li(t2, forces);
    g.add(t2, t2, t1);
    g.sw(s6, t2, 0);
    g.ret();

    return Workload{"barnes",
                    csprintf("nodes=%u bodies/thread=%u threads=%d",
                             nodes, bodiesPerThread, threads),
                    threads, g.finish()};
}

} // namespace qr
