/**
 * @file
 * Workload registry.
 *
 * The evaluation runs ten SPLASH-2-analog kernels, mirroring the
 * paper's benchmark suite. Each analog reproduces the memory-sharing
 * and synchronization structure of its namesake (who shares what with
 * whom, lock/barrier frequency, working-set shape) on QR-ISA; see
 * DESIGN.md for why that is the property the chunking statistics
 * depend on. A `scale` knob multiplies the problem size.
 */

#ifndef QR_WORKLOADS_WORKLOAD_HH
#define QR_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace qr
{

/** A runnable guest workload. */
struct Workload
{
    std::string name;
    std::string params; //!< human-readable problem description
    int nThreads = 4;
    Program program;
};

/** Factory signature: (threads, scale) -> workload. */
using WorkloadFactory = std::function<Workload(int, int)>;

/** A named entry in the suite. */
struct WorkloadSpec
{
    std::string name;
    WorkloadFactory make;
};

// --- SPLASH-2 analogs (one per paper benchmark) --------------------------
Workload makeFft(int threads, int scale);
Workload makeLu(int threads, int scale);
Workload makeRadix(int threads, int scale);
Workload makeBarnes(int threads, int scale);
Workload makeFmm(int threads, int scale);
Workload makeOcean(int threads, int scale);
Workload makeRaytrace(int threads, int scale);
Workload makeRadiosity(int threads, int scale);
Workload makeWaterNsq(int threads, int scale);
Workload makeWaterSp(int threads, int scale);

// --- extended suite (beyond the paper's ten) ------------------------------
Workload makeCholesky(int threads, int scale);
Workload makeVolrend(int threads, int scale);

/** The ten-benchmark evaluation suite, in the paper's order. */
const std::vector<WorkloadSpec> &splash2Suite();

/** Extra kernels with synchronization shapes the main suite lacks
 *  (dataflow task release, work stealing). */
const std::vector<WorkloadSpec> &extendedSuite();

/** Look up a workload from either suite by name (fatal if unknown). */
Workload makeByName(const std::string &name, int threads, int scale);

} // namespace qr

#endif // QR_WORKLOADS_WORKLOAD_HH
