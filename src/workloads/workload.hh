/**
 * @file
 * Workload registry.
 *
 * The evaluation runs ten SPLASH-2-analog kernels, mirroring the
 * paper's benchmark suite. Each analog reproduces the memory-sharing
 * and synchronization structure of its namesake (who shares what with
 * whom, lock/barrier frequency, working-set shape) on QR-ISA; see
 * DESIGN.md for why that is the property the chunking statistics
 * depend on. A `scale` knob multiplies the problem size.
 */

#ifndef QR_WORKLOADS_WORKLOAD_HH
#define QR_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "bus/device_stream.hh"
#include "isa/assembler.hh"

namespace qr
{

/**
 * A bus agent a workload's guest code expects: the workload allocates
 * the ring and doorbell in guest data and publishes their geometry
 * here, and `qrec record --device <kind>` arms a BusAgent with exactly
 * this spec (kind mismatches are fatal). A workload with kind None
 * declares no device. Guest programs that poll a doorbell deadlock if
 * recorded without the agent, which is why arming stays explicit.
 */
struct GuestDeviceSpec
{
    DeviceKind kind = DeviceKind::None;
    Addr ringBase = 0;          //!< payload ring base (line-aligned)
    std::uint32_t slotWords = 0; //!< payload words per completion
    std::uint32_t slots = 0;     //!< ring depth (completion reuses slot
                                 //!< seq % slots)
    Addr doorbell = 0;      //!< completion-count word (its own line)
    std::uint32_t count = 0; //!< completions the guest consumes
    std::uint32_t rate = 64; //!< default ticks between completions

    bool present() const { return kind != DeviceKind::None; }
};

/** A runnable guest workload. */
struct Workload
{
    std::string name;
    std::string params; //!< human-readable problem description
    int nThreads = 4;
    Program program;
    GuestDeviceSpec device; //!< bus agent the guest expects, if any

    Workload() = default;
    Workload(std::string name_, std::string params_, int n_threads,
             Program prog)
        : name(std::move(name_)), params(std::move(params_)),
          nThreads(n_threads), program(std::move(prog))
    {}
};

/** Factory signature: (threads, scale) -> workload. */
using WorkloadFactory = std::function<Workload(int, int)>;

/** A named entry in the suite. */
struct WorkloadSpec
{
    std::string name;
    WorkloadFactory make;
};

// --- SPLASH-2 analogs (one per paper benchmark) --------------------------
Workload makeFft(int threads, int scale);
Workload makeLu(int threads, int scale);
Workload makeRadix(int threads, int scale);
Workload makeBarnes(int threads, int scale);
Workload makeFmm(int threads, int scale);
Workload makeOcean(int threads, int scale);
Workload makeRaytrace(int threads, int scale);
Workload makeRadiosity(int threads, int scale);
Workload makeWaterNsq(int threads, int scale);
Workload makeWaterSp(int threads, int scale);

// --- extended suite (beyond the paper's ten) ------------------------------
Workload makeCholesky(int threads, int scale);
Workload makeVolrend(int threads, int scale);

/** The ten-benchmark evaluation suite, in the paper's order. */
const std::vector<WorkloadSpec> &splash2Suite();

/** Extra kernels with synchronization shapes the main suite lacks
 *  (dataflow task release, work stealing). */
const std::vector<WorkloadSpec> &extendedSuite();

/** Look up a workload from either suite by name (fatal if unknown). */
Workload makeByName(const std::string &name, int threads, int scale);

} // namespace qr

#endif // QR_WORKLOADS_WORKLOAD_HH
