/**
 * @file
 * RADIX analog: parallel radix sort over 8-bit digits. Threads build a
 * shared histogram with fetch-and-add (the all-to-one contention that
 * makes SPLASH-2 radix the most communication-intensive benchmark),
 * one thread prefix-sums it, and the permutation phase claims output
 * slots with fetch-and-add cursors -- scattered remote writes.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeRadix(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t n = 2048u * static_cast<std::uint32_t>(scale);
    const std::uint32_t buckets = 256;
    const std::uint32_t passes = 2;
    const std::uint32_t chunk = n / static_cast<std::uint32_t>(threads);
    qr_assert(chunk * static_cast<std::uint32_t>(threads) == n,
              "radix: threads must divide N");

    Addr src = g.alignedBlock(n);
    Addr dst = g.alignedBlock(n);
    Addr hist = g.alignedBlock(buckets);
    Addr cursors = g.alignedBlock(buckets);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    Rng rng(0x4ad1 + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < n; ++i)
        g.poke(src + i * 4, rng.next32() & 0xffff);

    Addr result = (passes % 2) ? dst : src;

    std::string body = "radix_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, result);
        g.li(t2, n);
        g.li(t3, 0);
        g.li(t5, 1);
        std::string csum = g.newLabel("csum");
        g.label(csum);
        g.lw(t4, t1, 0);
        g.mul(t4, t4, t5);
        g.add(t3, t3, t4);
        g.addi(t5, t5, 1);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, csum);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = pass, s5 = src base, s6 = dst base,
    // s2 = element cursor, s3 = end, s4 = scratch base.
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, 0);
    g.li(s5, src);
    g.li(s6, dst);
    std::string passLoop = g.newLabel("pass");
    g.label(passLoop);

    // --- zero my slice of the histogram + cursors ------------------------
    {
        g.li(t1, buckets / static_cast<std::uint32_t>(threads));
        g.mul(s2, s0, t1);       // my first bucket
        g.add(s3, s2, t1);
        g.slli(t2, s2, 2);
        g.li(s4, hist);
        g.add(s4, s4, t2);
        g.li(t3, cursors);
        g.add(t3, t3, t2);
        std::string z = g.newLabel("zero");
        g.label(z);
        g.sw(zero, s4, 0);
        g.sw(zero, t3, 0);
        g.addi(s4, s4, 4);
        g.addi(t3, t3, 4);
        g.addi(s2, s2, 1);
        g.bne(s2, s3, z);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- count phase: fetchadd into the shared histogram -----------------
    {
        g.li(t1, chunk);
        g.mul(s2, s0, t1);
        g.add(s3, s2, t1);
        std::string c = g.newLabel("count");
        g.label(c);
        g.slli(t2, s2, 2);
        g.add(t2, t2, s5);
        g.lw(t3, t2, 0);         // key
        // digit = (key >> (8*pass)) & 0xff
        g.slli(t4, s1, 3);
        g.srl(t3, t3, t4);
        g.andi(t3, t3, 0xff);
        g.slli(t3, t3, 2);
        g.li(t4, hist);
        g.add(t4, t4, t3);
        g.li(t5, 1);
        g.fetchadd(t5, t4, t5);  // hist[digit]++
        g.addi(s2, s2, 1);
        g.bne(s2, s3, c);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- thread 0: exclusive prefix sum into cursors ----------------------
    {
        std::string skip = g.newLabel("nopfx");
        g.bne(s0, zero, skip);
        g.li(t1, hist);
        g.li(t2, cursors);
        g.li(t3, buckets);
        g.li(t4, 0); // running sum
        std::string p = g.newLabel("pfx");
        g.label(p);
        g.sw(t4, t2, 0);
        g.lw(t5, t1, 0);
        g.add(t4, t4, t5);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, 4);
        g.addi(t3, t3, -1);
        g.bne(t3, zero, p);
        g.label(skip);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // --- permute: claim output slots with fetchadd ------------------------
    {
        g.li(t1, chunk);
        g.mul(s2, s0, t1);
        g.add(s3, s2, t1);
        std::string m = g.newLabel("perm");
        g.label(m);
        g.slli(t2, s2, 2);
        g.add(t2, t2, s5);
        g.lw(t3, t2, 0);         // key
        g.slli(t4, s1, 3);
        g.srl(t5, t3, t4);
        g.andi(t5, t5, 0xff);
        g.slli(t5, t5, 2);
        g.li(t4, cursors);
        g.add(t4, t4, t5);
        g.li(t6, 1);
        g.fetchadd(t6, t4, t6);  // slot = cursors[digit]++
        g.slli(t6, t6, 2);
        g.add(t6, t6, s6);
        g.sw(t3, t6, 0);         // dst[slot] = key
        g.addi(s2, s2, 1);
        g.bne(s2, s3, m);
    }
    g.barrierWait(bar, threads, t1, t2, t3, t4);

    // swap src/dst, next pass
    g.xor_(s5, s5, s6);
    g.xor_(s6, s5, s6);
    g.xor_(s5, s5, s6);
    g.addi(s1, s1, 1);
    g.li(t1, passes);
    g.bne(s1, t1, passLoop);
    g.ret();

    return Workload{"radix", csprintf("N=%u passes=%u threads=%d", n,
                                      passes, threads),
                    threads, g.finish()};
}

} // namespace qr
