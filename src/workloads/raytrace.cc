/**
 * @file
 * RAYTRACE analog: a self-scheduling tile queue (fetch-and-add work
 * claiming, SPLASH-2 raytrace's distributed task queues collapsed to
 * one), read-only scene sharing via pointer-chasing "ray bounces", a
 * private framebuffer, and RDRAND jitter that exercises the
 * nondeterministic-instruction logging path.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeRaytrace(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t tiles = 48u * static_cast<std::uint32_t>(scale);
    const std::uint32_t raysPerTile = 12;
    const std::uint32_t bounces = 4;
    const std::uint32_t sceneWords = 2048;

    Addr scene = g.alignedBlock(sceneWords);
    Addr cursor = g.alignedBlock(1);
    Addr fb = g.alignedBlock(tiles);
    Addr sumWord = g.word();

    // Scene nodes chain pseudo-randomly inside the array.
    Rng rng(0x7ace5000u + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < sceneWords; ++i)
        g.poke(scene + i * 4, rng.next32() % sceneWords);

    std::string body = "ray_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, fb);
        g.li(t2, tiles);
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s2 = tile, s3 = ray counter, s4 = bounce counter,
    // s5 = scene index, s6 = tile accumulator.
    g.label(body);
    g.mv(s0, a0);
    std::string grab = g.newLabel("grab");
    std::string done = g.newLabel("done");
    g.label(grab);
    g.li(t1, cursor);
    g.li(t2, 1);
    g.fetchadd(t2, t1, t2); // t2 = my tile
    g.li(t1, tiles);
    g.bgeu(t2, t1, done);
    g.mv(s2, t2);
    g.li(s6, 0);
    // one sampling-jitter draw per tile (nondet, input-logged)
    g.rdrand(s7);
    g.andi(s7, s7, 3);
    g.li(s3, raysPerTile);
    std::string ray = g.newLabel("ray");
    g.label(ray);
    // initial scene index = hash(tile, ray) + jitter
    g.li(t1, 2654435761u);
    g.mul(s5, s2, t1);
    g.add(s5, s5, s3);
    g.add(s5, s5, s7);
    g.li(t1, sceneWords - 1);
    g.and_(s5, s5, t1);
    // bounce: idx = scene[idx], accumulating
    g.li(s4, bounces);
    std::string bounce = g.newLabel("bounce");
    g.label(bounce);
    g.slli(t1, s5, 2);
    g.li(t2, scene);
    g.add(t1, t1, t2);
    g.lw(s5, t1, 0); // next node (read-only shared)
    // shading computation at the hit point
    g.mv(t3, s5);
    g.computePad(t3, t4, 8);
    g.add(s6, s6, t3);
    g.add(s6, s6, s5);
    g.addi(s4, s4, -1);
    g.bne(s4, zero, bounce);
    g.addi(s3, s3, -1);
    g.bne(s3, zero, ray);
    // write the tile result (private word)
    g.slli(t1, s2, 2);
    g.li(t2, fb);
    g.add(t1, t1, t2);
    g.sw(s6, t1, 0);
    g.j(grab);
    g.label(done);
    g.ret();

    return Workload{"raytrace",
                    csprintf("tiles=%u rays=%u threads=%d", tiles,
                             raysPerTile, threads),
                    threads, g.finish()};
}

} // namespace qr
