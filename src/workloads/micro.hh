/**
 * @file
 * Micro-workloads: small, targeted guest programs used by the tests,
 * the examples, and the ablation benchmarks.
 */

#ifndef QR_WORKLOADS_MICRO_HH
#define QR_WORKLOADS_MICRO_HH

#include "workloads/workload.hh"

namespace qr
{

/**
 * Each of @p threads workers increments a shared counter @p iters
 * times. With @p locked false the increments race (lost updates),
 * making the final value schedule-dependent -- the sharpest possible
 * determinism test for replay. The counter is printed at exit.
 */
Workload makeRacyCounter(int threads, int iters, bool locked);

/** Two threads alternate through a pair of spin flags (max conflicts). */
Workload makePingPong(int iters);

/**
 * @p threads workers each hammer their own word of one shared cache
 * line: no true sharing, maximal false sharing at line granularity.
 */
Workload makeFalseSharing(int threads, int iters);

/**
 * Producer/consumer ring buffer guarded by hybrid futex locks
 * (kernel-heavy: every contended operation syscalls).
 */
Workload makeProdCons(int threads, int items);

/**
 * Mix of nondeterministic instructions (rdtsc/rdrand/cpuid) and read()
 * syscalls pulling external input; exercises the input log.
 */
Workload makeNondetMix(int threads, int iters);

/**
 * One victim thread computes while another signals it periodically;
 * exercises signal recording and chunk-boundary injection.
 */
Workload makeSignalStress(int kills);

/**
 * Ground-truth twins for the offline race analyzer (qrec analyze).
 * Every worker increments a private counter in its own 64-byte slot
 * (disjoint cache lines -- no sharing at all); main sums the slots
 * after joining, so the only cross-thread dependences are ordered by
 * the spawn/join synchronization edges and the clean twin must analyze
 * to zero races. With @p racy the workers additionally increment one
 * shared, unlocked counter placed on its own line: a planted data race
 * whose line address is returned through @p planted_line (when
 * non-null) so tests can check the analyzer reports exactly it.
 */
Workload makeRaceDemo(int threads, int iters, bool racy,
                      Addr *planted_line = nullptr);

/**
 * Ground-truth twins for the *predictive* race pass (qrec analyze
 * --predict). Every worker loops over a futex-lock critical section
 * incrementing its private slot. The clean twin also increments one
 * shared counter inside the critical section: consistently locked,
 * never any kind of race. The @p elide_lock twin moves that increment
 * outside the lock -- main touches it once before its first acquire,
 * worker 1 once after its last release -- so the
 * recorded lock-handoff chain *orders* the accesses and the witnessed
 * analysis sees no race, yet no synchronization actually protects
 * them: the schedule masked a real race. The predictive pass must
 * report the line (returned through @p planted_line) as a predicted
 * race on the elided twin and zero predicted races on the clean one.
 * With threads == 2 the elided twin's shared line carries exactly one
 * conflict edge, so the masking is total (zero witnessed races on it).
 */
Workload makeMaskedRaceDemo(int threads, int iters, bool elide_lock,
                            Addr *planted_line = nullptr);

} // namespace qr

#endif // QR_WORKLOADS_MICRO_HH
