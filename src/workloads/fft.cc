/**
 * @file
 * FFT analog: log2(N) butterfly stages over an N-word signal with a
 * double buffer. Early stages touch near neighbors (thread-private);
 * late stages pair elements across partitions (all-to-all reads, the
 * transpose-like communication that makes SPLASH-2 FFT bandwidth
 * bound). A barrier separates stages.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeFft(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t n = 1024u * static_cast<std::uint32_t>(scale);
    const int stages = [] (std::uint32_t v) {
        int s = 0;
        while ((1u << s) < v)
            s++;
        return s;
    }(n);
    const std::uint32_t chunk = n / static_cast<std::uint32_t>(threads);
    qr_assert(chunk * static_cast<std::uint32_t>(threads) == n,
              "fft: threads must divide N");

    Addr bufA = g.alignedBlock(n);
    Addr bufB = g.alignedBlock(n);
    Addr bar = g.barrierAlloc();
    Addr sumWord = g.word();

    // Seed the signal with a host-side PRNG (static data image).
    Rng rng(0xff7 + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < n; ++i)
        g.poke(bufA + i * 4, rng.next32() | 1);

    Addr result = (stages % 2) ? bufB : bufA;

    std::string body = "fft_body";
    g.emitWorkerScaffold(threads, body, [&] {
        // Positional checksum of the final buffer.
        g.li(t1, result);
        g.li(t2, n);
        g.li(t3, 0);
        g.li(t5, 0);
        std::string csum = g.newLabel("csum");
        g.label(csum);
        g.lw(t4, t1, 0);
        g.add(t4, t4, t5);
        g.mul(t4, t4, t4);
        g.add(t3, t3, t4);
        g.addi(t5, t5, 1);
        g.addi(t1, t1, 4);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, csum);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    g.label(body);
    g.mv(s0, a0);
    g.li(s1, 0);     // stage
    g.li(s5, bufA);  // src
    g.li(s6, bufB);  // dst
    std::string stageLoop = g.newLabel("stage");
    std::string elemLoop = g.newLabel("elem");
    g.label(stageLoop);
    g.li(t1, chunk);
    g.mul(s3, s0, t1); // i = my start
    g.add(s4, s3, t1); // my end
    g.label(elemLoop);
    // partner index = i ^ (1 << stage)
    g.li(t2, 1);
    g.sll(t2, t2, s1);
    g.xor_(t3, s3, t2);
    // load src[i] and src[partner]
    g.slli(t4, s3, 2);
    g.add(t4, t4, s5);
    g.lw(t5, t4, 0);
    g.slli(t6, t3, 2);
    g.add(t6, t6, s5);
    g.lw(t7, t6, 0);
    // dst[i] = src[i] + twiddle(src[partner], stage)
    g.add(t8, t5, t7);
    g.xor_(t8, t8, s1);
    g.slli(t4, s3, 2);
    g.add(t4, t4, s6);
    g.sw(t8, t4, 0);
    g.addi(s3, s3, 1);
    g.bne(s3, s4, elemLoop);
    g.barrierWait(bar, threads, t1, t2, t3, t4);
    // swap src/dst
    g.xor_(s5, s5, s6);
    g.xor_(s6, s5, s6);
    g.xor_(s5, s5, s6);
    g.addi(s1, s1, 1);
    g.li(t1, static_cast<Word>(stages));
    g.bne(s1, t1, stageLoop);
    g.ret();

    return Workload{"fft", csprintf("N=%u stages=%d threads=%d", n,
                                    stages, threads),
                    threads, g.finish()};
}

} // namespace qr
