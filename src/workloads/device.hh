/**
 * @file
 * Device workloads: guest programs that consume a BusAgent's writes.
 *
 * Unlike every other workload, these are only meaningful under `qrec
 * record --device <kind>`: their guest code spins on the agent's
 * doorbell word, so running them without the agent deadlocks (the CLI
 * refuses instead). Each factory allocates the ring and doorbell in
 * guest data and publishes the geometry through Workload::device.
 */

#ifndef QR_WORKLOADS_DEVICE_HH
#define QR_WORKLOADS_DEVICE_HH

#include "workloads/workload.hh"

namespace qr
{

/**
 * Packet ingest: a NIC-like agent fills an 8-slot payload ring and
 * advances the doorbell; worker 0 polls the doorbell and checksums
 * each packet in arrival order while the remaining workers run
 * private compute. The checksum is printed at exit, so replay
 * bit-identity covers every payload word the consumer observed.
 */
Workload makePacketIngest(int threads, int scale);

/**
 * Storage completions: a disk-like agent posts 4-word completion
 * queue entries; worker 0 drains the queue, XOR-folding each entry
 * and counting completions, while the other workers run private
 * compute. Folded value and count are printed at exit.
 */
Workload makeStorageCompletion(int threads, int scale);

/**
 * Ground-truth twins for device/core race analysis, the device analog
 * of makeRaceDemo. Every worker increments a private per-line slot
 * (race-free); worker 0 additionally consumes a 4-completion NIC ring
 * whose slots each occupy a full cache line. The clean twin polls the
 * doorbell to completion-count before touching any payload line, so
 * every payload read is ordered after the event that wrote it and the
 * analyzer must report zero device races. The racy twin first reads
 * ring slot 0 *without* polling -- a core access unordered against the
 * agent's write of that line -- and the analyzer must flag exactly
 * that line, returned through @p planted_line when non-null.
 */
Workload makeDeviceRaceDemo(int threads, bool racy,
                            Addr *planted_line = nullptr);

} // namespace qr

#endif // QR_WORKLOADS_DEVICE_HH
