/**
 * @file
 * RADIOSITY analog: a dynamic task queue protected by a hybrid
 * spin/futex lock. Processing a task reads a shared patch table and
 * can push a child task (tasks halve until they die out), so the queue
 * length varies at run time -- SPLASH-2 radiosity's irregular,
 * lock-heavy, kernel-visible behavior. The futex fallback makes this
 * the most syscall-intensive benchmark in the suite, mirroring the
 * paper's observation that kernel-interaction-heavy workloads pay the
 * highest Capo3 overhead.
 */

#include "guest/runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace qr
{

Workload
makeRadiosity(int threads, int scale)
{
    GuestBuilder g;
    const std::uint32_t seeds = 8u * static_cast<std::uint32_t>(scale) *
                                static_cast<std::uint32_t>(threads);
    const std::uint32_t seedValue = 64; // each seed spawns log2(64)+1 tasks
    const std::uint32_t patchWords = 512;
    const std::uint32_t stackCap = 4096;

    // Total tasks: every task with value v>1 pushes one child of v/2.
    std::uint32_t tasksPerSeed = 0;
    for (std::uint32_t v = seedValue; v > 0; v /= 2)
        tasksPerSeed++;
    const std::uint32_t totalTasks = seeds * tasksPerSeed;

    Addr patches = g.alignedBlock(patchWords);
    Addr qlock = g.lockAlloc();
    Addr qtop = g.alignedBlock(1);
    Addr qstack = g.alignedBlock(stackCap);
    Addr doneCount = g.alignedBlock(1);
    Addr energy = g.alignedBlock(16u * static_cast<std::uint32_t>(threads));
    Addr inputBuf =
        g.alignedBlock(16u * static_cast<std::uint32_t>(threads));
    Addr sumWord = g.word();

    Rng rng(0xadd0 + static_cast<unsigned>(scale));
    for (std::uint32_t i = 0; i < patchWords; ++i)
        g.poke(patches + i * 4, (rng.next32() & 0x7ff) | 1);
    // Pre-seed the task stack.
    for (std::uint32_t i = 0; i < seeds; ++i)
        g.poke(qstack + i * 4, seedValue);
    g.poke(qtop, seeds);

    std::string body = "rad_body";
    g.emitWorkerScaffold(threads, body, [&] {
        g.li(t1, energy);
        g.li(t2, static_cast<Word>(threads));
        g.li(t3, 0);
        std::string c = g.newLabel("csum");
        g.label(c);
        g.lw(t4, t1, 0);
        g.add(t3, t3, t4);
        g.addi(t1, t1, 64);
        g.addi(t2, t2, -1);
        g.bne(t2, zero, c);
        g.li(t1, sumWord);
        g.sw(t3, t1, 0);
        g.sysWrite(sumWord, 4);
    });

    // s0 = me, s1 = my energy, s2 = &qlock, s3 = task value,
    // s4 = scratch, s5 = processed-target.
    g.label(body);
    g.mv(s0, a0);
    g.li(s1, 0);
    g.li(s2, qlock);
    g.li(s5, totalTasks);
    std::string loop = g.newLabel("loop");
    std::string empty = g.newLabel("empty");
    std::string done = g.newLabel("done");
    g.label(loop);
    // pop under the hybrid lock
    g.hybridLockAcquire(s2, t1, t2, 8);
    g.li(t3, qtop);
    g.lw(t4, t3, 0);
    g.beq(t4, zero, empty);
    g.addi(t4, t4, -1);
    g.sw(t4, t3, 0);
    g.slli(t5, t4, 2);
    g.li(t6, qstack);
    g.add(t6, t6, t5);
    g.lw(s3, t6, 0); // task value
    g.hybridLockRelease(s2, t1);
    // process: walk the patch table task-value times
    g.mv(t7, s3);
    g.li(t8, 0x811c);
    std::string proc = g.newLabel("proc");
    g.label(proc);
    g.mul(t8, t8, s3);
    g.addi(t8, t8, 0x9dc5);
    g.li(t1, patchWords - 1);
    g.and_(t2, t8, t1);
    g.slli(t2, t2, 2);
    g.li(t1, patches);
    g.add(t2, t2, t1);
    g.lw(t3, t2, 0); // shared patch read
    // form-factor computation against this patch
    g.mv(t4, t3);
    g.computePad(t4, t5, 10);
    g.add(s1, s1, t4);
    g.add(s1, s1, t3);
    g.addi(t7, t7, -1);
    g.bne(t7, zero, proc);
    // push a child task of half the value, if any
    g.srli(s4, s3, 1);
    std::string nopush = g.newLabel("nopush");
    g.beq(s4, zero, nopush);
    g.hybridLockAcquire(s2, t1, t2, 8);
    g.li(t3, qtop);
    g.lw(t4, t3, 0);
    g.slli(t5, t4, 2);
    g.li(t6, qstack);
    g.add(t6, t6, t5);
    g.sw(s4, t6, 0);
    g.addi(t4, t4, 1);
    g.sw(t4, t3, 0);
    g.hybridLockRelease(s2, t1);
    g.label(nopush);
    // count this task done
    g.li(t1, doneCount);
    g.li(t2, 1);
    g.fetchadd(t2, t1, t2);
    // Every 8th task pulls fresh environment data from the outside
    // world (the paper's input-logging path: the kernel copies the
    // bytes to user space and Capo3 must log them).
    g.andi(t3, t2, 7);
    std::string noinput = g.newLabel("noinput");
    g.bne(t3, zero, noinput);
    g.slli(t3, s0, 6);
    g.li(a1, inputBuf);
    g.add(a1, a1, t3);
    g.li(a0, 0);
    g.li(a2, 32);
    g.sys(Sys::Read);
    g.lw(t4, a1, 0); // fold the fresh input into my energy
    g.add(s1, s1, t4);
    g.label(noinput);
    g.j(loop);
    // queue empty: finished only when every task has been processed
    g.label(empty);
    g.hybridLockRelease(s2, t1);
    g.li(t1, doneCount);
    g.lw(t2, t1, 0);
    g.beq(t2, s5, done);
    g.sysYield();
    g.j(loop);
    g.label(done);
    // publish my energy (private line)
    g.slli(t1, s0, 6);
    g.li(t2, energy);
    g.add(t2, t2, t1);
    g.sw(s1, t2, 0);
    g.ret();

    return Workload{"radiosity",
                    csprintf("seeds=%u tasks=%u threads=%d", seeds,
                             totalTasks, threads),
                    threads, g.finish()};
}

} // namespace qr
