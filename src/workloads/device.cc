#include "workloads/device.hh"

#include "guest/runtime.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

/**
 * Emit the private-compute body shared by every device workload's
 * non-consumer workers: @p iters increments of the worker's own
 * 64-byte slot at @p slots_base. Entered with a0 = worker index;
 * clobbers t1/t2, s1/s2.
 */
void
emitPrivateCompute(GuestBuilder &g, Addr slots_base, int iters)
{
    g.slli(t1, a0, 6); // one full line per worker
    g.li(s2, slots_base);
    g.add(s2, s2, t1);
    g.li(s1, static_cast<Word>(iters));
    std::string loop = g.newLabel("priv");
    g.label(loop);
    g.lw(t2, s2, 0);
    g.addi(t2, t2, 1);
    g.sw(t2, s2, 0);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, loop);
    g.ret();
}

/**
 * Emit the post-join epilogue shared by the device workloads: sum the
 * per-worker compute slots plus the consumer's result word into
 * @p total and print it.
 */
void
emitSumEpilogue(GuestBuilder &g, int threads, Addr slots_base,
                Addr result, Addr total)
{
    g.li(s1, static_cast<Word>(threads));
    g.li(s2, slots_base);
    g.li(t2, 0);
    std::string sum = g.newLabel("sum");
    g.label(sum);
    g.lw(t3, s2, 0);
    g.add(t2, t2, t3);
    g.addi(s2, s2, 64);
    g.addi(s1, s1, -1);
    g.bne(s1, zero, sum);
    g.li(t1, result);
    g.lw(t3, t1, 0);
    g.add(t2, t2, t3);
    g.li(t1, total);
    g.sw(t2, t1, 0);
    g.sysWrite(total, 4);
}

} // namespace

Workload
makePacketIngest(int threads, int scale)
{
    qr_assert(threads >= 1 && scale >= 1,
              "packet-ingest needs threads/scale >= 1");
    GuestDeviceSpec spec;
    spec.kind = DeviceKind::Nic;
    spec.slotWords = 8; // 32-byte packets, two per line
    spec.slots = 8;
    spec.count = static_cast<std::uint32_t>(16 * scale);
    spec.rate = 96;

    GuestBuilder g;
    spec.ringBase = g.alignedBlock(spec.slots * spec.slotWords);
    spec.doorbell = g.alignedBlock(1);
    Addr result = g.alignedBlock(1);
    Addr slots =
        g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);
    Addr total = g.alignedBlock(1);

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        emitSumEpilogue(g, threads, slots, result, total);
    });

    g.label(body);
    std::string compute = g.newLabel("compute");
    g.bne(a0, zero, compute);

    // Worker 0: consume spec.count packets in arrival order. The
    // doorbell poll is the acquire -- no payload line is touched until
    // the doorbell covers its packet -- so the consumer never races
    // the agent and the payload values it checksums are exactly the
    // recorded ones.
    g.li(s1, 0); // next packet sequence number
    g.li(s2, 0); // checksum accumulator
    g.li(s3, spec.doorbell);
    g.li(s4, spec.ringBase);
    g.li(s5, spec.count);
    std::string pkt = g.newLabel("pkt");
    std::string poll = g.newLabel("poll");
    g.label(pkt);
    g.label(poll);
    g.lw(t1, s3, 0); // doorbell holds the completion count
    g.addi(t2, s1, 1);
    g.bltu(t1, t2, poll);
    g.andi(t2, s1, spec.slots - 1); // slot = seq % slots
    g.slli(t2, t2, 5);              // * 32 bytes per slot
    g.add(t2, t2, s4);
    for (std::uint32_t w = 0; w < spec.slotWords; ++w) {
        g.lw(t3, t2, static_cast<std::int32_t>(4 * w));
        g.add(s2, s2, t3);
    }
    g.addi(s1, s1, 1);
    g.bltu(s1, s5, pkt);
    g.li(t1, result);
    g.sw(s2, t1, 0);
    g.ret();

    g.label(compute);
    emitPrivateCompute(g, slots, 150 * scale);

    Workload w{"packet-ingest",
               csprintf("threads=%d packets=%u ring=%ux%uw", threads,
                        spec.count, spec.slots, spec.slotWords),
               threads, g.finish()};
    w.device = spec;
    return w;
}

Workload
makeStorageCompletion(int threads, int scale)
{
    qr_assert(threads >= 1 && scale >= 1,
              "storage-completion needs threads/scale >= 1");
    GuestDeviceSpec spec;
    spec.kind = DeviceKind::Disk;
    spec.slotWords = 4; // 16-byte CQ entries, four per line
    spec.slots = 16;
    spec.count = static_cast<std::uint32_t>(24 * scale);
    spec.rate = 128;

    GuestBuilder g;
    spec.ringBase = g.alignedBlock(spec.slots * spec.slotWords);
    spec.doorbell = g.alignedBlock(1);
    Addr result = g.alignedBlock(1);
    Addr slots =
        g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);
    Addr total = g.alignedBlock(1);

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        emitSumEpilogue(g, threads, slots, result, total);
    });

    g.label(body);
    std::string compute = g.newLabel("compute");
    g.bne(a0, zero, compute);

    // Worker 0: drain the completion queue, XOR-folding each entry
    // after its doorbell acquire, and mix in the completion index so
    // reordered entries cannot fold to the same value.
    g.li(s1, 0); // next completion
    g.li(s2, 0); // fold accumulator
    g.li(s3, spec.doorbell);
    g.li(s4, spec.ringBase);
    g.li(s5, spec.count);
    std::string cqe = g.newLabel("cqe");
    std::string poll = g.newLabel("poll");
    g.label(cqe);
    g.label(poll);
    g.lw(t1, s3, 0);
    g.addi(t2, s1, 1);
    g.bltu(t1, t2, poll);
    g.andi(t2, s1, spec.slots - 1); // entry = seq % slots
    g.slli(t2, t2, 4);              // * 16 bytes per entry
    g.add(t2, t2, s4);
    for (std::uint32_t w = 0; w < spec.slotWords; ++w) {
        g.lw(t3, t2, static_cast<std::int32_t>(4 * w));
        g.xor_(s2, s2, t3);
    }
    g.add(s2, s2, s1);
    g.addi(s1, s1, 1);
    g.bltu(s1, s5, cqe);
    g.li(t1, result);
    g.sw(s2, t1, 0);
    g.ret();

    g.label(compute);
    emitPrivateCompute(g, slots, 150 * scale);

    Workload w{"storage-completion",
               csprintf("threads=%d completions=%u cq=%ux%uw", threads,
                        spec.count, spec.slots, spec.slotWords),
               threads, g.finish()};
    w.device = spec;
    return w;
}

Workload
makeDeviceRaceDemo(int threads, bool racy, Addr *planted_line)
{
    qr_assert(threads >= 1, "device-race needs threads >= 1");
    GuestDeviceSpec spec;
    spec.kind = DeviceKind::Nic;
    spec.slotWords = 16; // one full line per slot
    spec.slots = 4;
    spec.count = 4; // == slots: no ring reuse, each line written once
    // Deliberately slow cadence: the racy twin's unsynchronized ring
    // read must execute before the first completion delivers, so the
    // planted race is deterministically pre-event (the read's chunk is
    // terminated by event 0's BusRdX and timestamps before it) at any
    // thread count. Spawning a worker costs a few thousand cycles, so
    // the first delivery must not outrun the spawn prologue plus the
    // consumer's first few body instructions.
    spec.rate = 16384;

    GuestBuilder g;
    spec.ringBase = g.alignedBlock(spec.slots * spec.slotWords);
    spec.doorbell = g.alignedBlock(1);
    Addr result = g.alignedBlock(1);
    Addr slots =
        g.alignedBlock(static_cast<std::uint32_t>(threads) * 16);
    Addr total = g.alignedBlock(1);
    if (planted_line)
        *planted_line = spec.ringBase;

    std::string body = "body";
    g.emitWorkerScaffold(threads, body, [&] {
        emitSumEpilogue(g, threads, slots, result, total);
    });

    g.label(body);
    std::string compute = g.newLabel("compute");
    g.bne(a0, zero, compute);

    g.li(s2, 0); // checksum accumulator
    g.li(s4, spec.ringBase);
    if (racy) {
        // The planted race: read slot 0 before any doorbell poll, so
        // nothing orders this load against the agent's write of the
        // same line.
        g.lw(t3, s4, 0);
        g.add(s2, s2, t3);
    }
    // The acquire: spin until the doorbell covers every completion.
    // All payload reads below happen after it in program order, so the
    // clean twin has zero unordered device/core accesses.
    g.li(s3, spec.doorbell);
    g.li(s5, spec.count);
    std::string poll = g.newLabel("poll");
    g.label(poll);
    g.lw(t1, s3, 0);
    g.bne(t1, s5, poll);
    g.mv(t2, s4);
    g.li(t4, spec.ringBase +
                 static_cast<Addr>(spec.slots * spec.slotWords * 4));
    std::string sum = g.newLabel("ring");
    g.label(sum);
    g.lw(t3, t2, 0);
    g.add(s2, s2, t3);
    g.addi(t2, t2, 4);
    g.bltu(t2, t4, sum);
    g.li(t1, result);
    g.sw(s2, t1, 0);
    g.ret();

    g.label(compute);
    emitPrivateCompute(g, slots, 64);

    Workload w{racy ? "device-race-racy" : "device-race-clean",
               csprintf("threads=%d slots=%ux%uw", threads, spec.slots,
                        spec.slotWords),
               threads, g.finish()};
    w.device = spec;
    return w;
}

} // namespace qr
