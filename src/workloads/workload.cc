#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace qr
{

const std::vector<WorkloadSpec> &
splash2Suite()
{
    static const std::vector<WorkloadSpec> suite = {
        {"barnes", makeBarnes},
        {"fft", makeFft},
        {"fmm", makeFmm},
        {"lu", makeLu},
        {"ocean", makeOcean},
        {"radiosity", makeRadiosity},
        {"radix", makeRadix},
        {"raytrace", makeRaytrace},
        {"water-nsq", makeWaterNsq},
        {"water-sp", makeWaterSp},
    };
    return suite;
}

const std::vector<WorkloadSpec> &
extendedSuite()
{
    static const std::vector<WorkloadSpec> suite = {
        {"cholesky", makeCholesky},
        {"volrend", makeVolrend},
    };
    return suite;
}

Workload
makeByName(const std::string &name, int threads, int scale)
{
    for (const auto &spec : splash2Suite())
        if (spec.name == name)
            return spec.make(threads, scale);
    for (const auto &spec : extendedSuite())
        if (spec.name == name)
            return spec.make(threads, scale);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace qr
