#include "replay/replayer.hh"

#include <chrono>
#include <cstdarg>

#include "isa/exec.hh"
#include "kernel/syscall.hh"
#include "obs/event_trace.hh"
#include "obs/profile.hh"
#include "replay/log_reader.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace qr
{

std::string
DegradedReplay::summary() const
{
    std::string s = csprintf(
        "degraded-replay: replayed=%llu skipped=%llu gaps=%llu "
        "divergences=%llu threads-incomplete=%llu",
        static_cast<unsigned long long>(chunksReplayed),
        static_cast<unsigned long long>(chunksSkipped),
        static_cast<unsigned long long>(gapChunks),
        static_cast<unsigned long long>(divergences),
        static_cast<unsigned long long>(threadsIncomplete));
    if (deviceInjected || deviceSkipped || deviceDivergences) {
        s += csprintf(" device-injected=%llu device-skipped=%llu "
                      "device-divergences=%llu",
                      static_cast<unsigned long long>(deviceInjected),
                      static_cast<unsigned long long>(deviceSkipped),
                      static_cast<unsigned long long>(
                          deviceDivergences));
    }
    if (!firstDivergence.empty())
        s += csprintf(" first-divergence=[%s]", firstDivergence.c_str());
    return s;
}

ReplayCore::ThreadStateTable::ThreadStateTable(const SphereLogs &logs)
{
    // Pre-create every logged thread's slot so the map is never
    // mutated during replay -- required for concurrent replayChunk.
    for (const auto &[tid, tlogs] : logs.threads) {
        RThread &t = slots[tid];
        t.ctx.tid = tid;
    }
    for (std::size_t i = 0; i < logs.devices.size(); ++i)
        devices[deviceTidFor(i)];
}

ReplayCore::RThread *
ReplayCore::ThreadStateTable::find(Tid tid)
{
    auto it = slots.find(tid);
    return it == slots.end() ? nullptr : &it->second;
}

ReplayCore::DevState *
ReplayCore::ThreadStateTable::findDevice(Tid tid)
{
    auto it = devices.find(tid);
    return it == devices.end() ? nullptr : &it->second;
}

void
ReplayCore::WorkerContext::accumulateInto(ReplayResult &r) const
{
    r.replayedChunks += replayedChunks;
    r.replayedInstrs += replayedInstrs;
    r.injectedRecords += injectedRecords;
    r.injectedDeviceEvents += injectedDeviceEvents;
    r.modeledCycles += modeledCycles;
}

ReplayCore::ReplayCore(const Program &prog_, const SphereLogs &logs_,
                       const ReplayCostModel &costs_, ReplayMode mode_)
    : prog(prog_), logs(logs_), costs(costs_), mode(mode_),
      img(logs_.memBytes)
{
    qr_assert(logs.memBytes > 0, "sphere logs carry no memory size");
    for (const auto &[addr, value] : prog.dataInit)
        img.write(addr, value);
}

void
ReplayCore::diverge(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vcsprintf(fmt, ap);
    va_end(ap);
    throw Divergence{msg};
}

ReplayCore::RThread &
ReplayCore::threadFor(WorkerContext &wc, const ChunkRecord &rec)
{
    RThread *t = wc.threads->find(rec.tid);
    if (!t)
        diverge("tid %d: chunk ts %llu but no thread logs", rec.tid,
                static_cast<unsigned long long>(rec.ts));
    return *t;
}

Word
ReplayCore::memRead(WorkerContext &wc, Addr addr)
{
    if (wc.trace)
        wc.trace->reads.push_back(addr);
    return img.read(addr);
}

void
ReplayCore::memWrite(WorkerContext &wc, Addr addr, Word value)
{
    if (wc.trace)
        wc.trace->writes.push_back(addr);
    img.write(addr, value);
}

void
ReplayCore::drainStores(WorkerContext &wc, RThread &t, std::size_t keep)
{
    while (t.storeQueue.size() > keep) {
        auto [a, v] = t.storeQueue.front();
        t.storeQueue.pop_front();
        memWrite(wc, a, v);
    }
}

const InputRecord &
ReplayCore::nextInput(WorkerContext &wc, RThread &t, const char *what)
{
    auto it = logs.threads.find(t.ctx.tid);
    if (it == logs.threads.end())
        diverge("tid %d: no input log (%s)", t.ctx.tid, what);
    const auto &input = it->second.input;
    if (t.inputCursor >= input.size())
        diverge("tid %d: input log exhausted while replaying %s",
                t.ctx.tid, what);
    t.injectedSeq++;
    wc.injectedRecords++;
    wc.modeledCycles += costs.perInputRecord;
    if (wc.trace) {
        wc.trace->injected++;
        wc.trace->modeledCycles += costs.perInputRecord;
    }
    const InputRecord &rec = input[t.inputCursor++];
    // No modeled clock on the replay side; the per-thread injection
    // ordinal keeps the lane's events ordered.
    eventTrace().emit(TraceEventKind::ReplayInject, t.ctx.tid,
                      t.injectedSeq,
                      static_cast<std::uint64_t>(rec.kind));
    return rec;
}

void
ReplayCore::startThread(WorkerContext &wc, Tid tid, RThread &t)
{
    const InputRecord &rec = nextInput(wc, t, "thread start");
    if (rec.kind != InputKind::ThreadStart)
        diverge("tid %d: expected thread-start record, found %s", tid,
                inputKindName(rec.kind));
    t.ctx.pc = rec.pc;
    t.ctx.setReg(Reg::sp, rec.sp);
    t.ctx.setReg(Reg::tp, static_cast<Word>(tid));
    t.ctx.setReg(Reg::a0, rec.arg);
    t.started = true;
}

void
ReplayCore::maybeInjectSignal(WorkerContext &wc, Tid tid, RThread &t)
{
    const auto &input = logs.threads.at(tid).input;
    while (t.inputCursor < input.size()) {
        const InputRecord &rec = input[t.inputCursor];
        if (rec.kind != InputKind::SignalDeliver ||
            rec.afterChunkSeq != t.chunkSeq)
            return;
        t.inputCursor++;
        t.injectedSeq++;
        wc.injectedRecords++;
        wc.modeledCycles += costs.perInputRecord;
        if (wc.trace) {
            wc.trace->injected++;
            wc.trace->modeledCycles += costs.perInputRecord;
        }
        if (t.ctx.pc != rec.sp)
            diverge("tid %d: signal saved pc 0x%x but replay pc is 0x%x",
                    tid, rec.sp, t.ctx.pc);
        // Post the signal number and redirect into the handler, exactly
        // as the kernel did at this chunk boundary.
        memWrite(wc, rec.copyAddr, rec.num);
        t.ctx.pc = rec.pc;
    }
}

void
ReplayCore::applyPending(WorkerContext &wc, RThread &t)
{
    for (const auto &[addr, words] : t.pendingCopies)
        for (std::size_t i = 0; i < words.size(); ++i)
            memWrite(wc, addr + static_cast<Addr>(i) * 4, words[i]);
    t.pendingCopies.clear();
    for (const auto &[buf, len] : t.pendingWrites) {
        for (Word off = 0; off < len; off += 4) {
            Word w = memRead(wc, buf + off);
            for (int b = 0; b < 4; ++b)
                t.outputBytes.push_back(
                    static_cast<std::uint8_t>(w >> (8 * b)));
        }
    }
    t.pendingWrites.clear();
}

Word
ReplayCore::loadWord(WorkerContext &wc, RThread &t, Addr addr)
{
    for (auto it = t.storeQueue.rbegin(); it != t.storeQueue.rend(); ++it)
        if (it->first == addr)
            return it->second;
    return memRead(wc, addr);
}

void
ReplayCore::handleSyscall(WorkerContext &wc, Tid tid, RThread &t,
                          bool is_last)
{
    if (!is_last)
        diverge("tid %d: syscall in the middle of a chunk (pc 0x%x)",
                tid, t.ctx.pc);

    // Kernel entry is serializing: mirror the recorded store-buffer
    // drain so kernel reads (e.g. write()) see the drained values.
    drainStores(wc, t);

    Word num = t.ctx.reg(Reg::a7);
    if (num == static_cast<Word>(Sys::Exit)) {
        const InputRecord &rec = nextInput(wc, t, "thread exit");
        if (rec.kind != InputKind::ThreadExit)
            diverge("tid %d: expected thread-exit record, found %s", tid,
                    inputKindName(rec.kind));
        if (rec.instrs != t.ctx.instrs)
            diverge("tid %d: exited after %llu instrs, log says %llu",
                    tid,
                    static_cast<unsigned long long>(t.ctx.instrs),
                    static_cast<unsigned long long>(rec.instrs));
        if (rec.ret != t.ctx.reg(Reg::a0))
            diverge("tid %d: exit code %u, log says %u", tid,
                    t.ctx.reg(Reg::a0), rec.ret);
        t.exited = true;
        t.exitInfo = ThreadExitInfo{t.ctx.digest(), t.ctx.instrs,
                                    t.ctx.reg(Reg::a0)};
        return;
    }

    const InputRecord &rec = nextInput(wc, t, "syscall result");
    if (rec.kind != InputKind::SyscallRet)
        diverge("tid %d: expected syscall record, found %s", tid,
                inputKindName(rec.kind));
    if (rec.num != num)
        diverge("tid %d: replay reached syscall %u, log has %u", tid,
                num, rec.num);

    if (num == static_cast<Word>(Sys::Write)) {
        // Regenerate the output at the thread's next chunk, where the
        // kernel's coherent buffer read is anchored; the output digest
        // then validates the data content.
        t.pendingWrites.emplace_back(t.ctx.reg(Reg::a1),
                                     t.ctx.reg(Reg::a2));
    }

    if (!rec.copyWords.empty()) {
        // Kernel input copies become visible at the thread's next chunk
        // (they were inserted into the *next* chunk's write filter).
        t.pendingCopies.emplace_back(rec.copyAddr, rec.copyWords);
    }

    if (num != static_cast<Word>(Sys::Sigreturn))
        t.ctx.setReg(Reg::a0, rec.ret);
    if (rec.hasNewPc)
        t.ctx.pc = rec.newPc;
}

void
ReplayCore::execInstr(WorkerContext &wc, Tid tid, RThread &t,
                      bool is_last, std::uint32_t idx,
                      const ChunkRecord &rec)
{
    if (t.exited)
        diverge("tid %d: chunk ts %llu has instructions after exit "
                "(index %u)",
                tid, static_cast<unsigned long long>(rec.ts), idx);
    if (t.ctx.pc >= prog.code.size())
        diverge("tid %d: replay pc 0x%x past end of program", tid,
                t.ctx.pc);

    const Instruction &in = prog.code[t.ctx.pc];
    Word nextPc = t.ctx.pc + 1;

    if (execPure(in, t.ctx, nextPc)) {
        t.ctx.pc = nextPc;
        t.ctx.instrs++;
        wc.replayedInstrs++;
        return;
    }

    switch (in.op) {
      case Opcode::Lw: {
        Addr addr = t.ctx.reg(in.rs1) + in.imm;
        Word val = loadWord(wc, t, addr);
        t.ctx.setReg(in.rd, val);
        t.ctx.mixMem(addr, val);
        break;
      }
      case Opcode::Sw: {
        Addr addr = t.ctx.reg(in.rs1) + in.imm;
        t.storeQueue.emplace_back(addr, t.ctx.reg(in.rs2));
        t.ctx.mixMem(addr, t.ctx.reg(in.rs2));
        break;
      }
      case Opcode::Cas:
      case Opcode::FetchAdd:
      case Opcode::Swap: {
        drainStores(wc, t);
        Addr addr = t.ctx.reg(in.rs1);
        Word old = memRead(wc, addr);
        if (in.op == Opcode::Cas) {
            if (old == t.ctx.reg(in.rd))
                memWrite(wc, addr, t.ctx.reg(in.rs2));
        } else if (in.op == Opcode::FetchAdd) {
            memWrite(wc, addr, old + t.ctx.reg(in.rs2));
        } else {
            memWrite(wc, addr, t.ctx.reg(in.rd));
        }
        t.ctx.setReg(in.rd, old);
        t.ctx.mixMem(addr, old);
        break;
      }
      case Opcode::Fence:
        drainStores(wc, t);
        break;
      case Opcode::Syscall:
        t.ctx.pc = nextPc;
        t.ctx.instrs++;
        wc.replayedInstrs++;
        handleSyscall(wc, tid, t, is_last);
        return;
      case Opcode::Rdtsc:
      case Opcode::Rdrand:
      case Opcode::Cpuid: {
        const InputRecord &nrec = nextInput(wc, t, "nondet value");
        if (nrec.kind != InputKind::Nondet)
            diverge("tid %d: expected nondet record, found %s", tid,
                    inputKindName(nrec.kind));
        if (nrec.num != static_cast<Word>(in.op))
            diverge("tid %d: nondet kind mismatch at pc 0x%x", tid,
                    t.ctx.pc);
        t.ctx.setReg(in.rd, nrec.ret);
        break;
      }
      default:
        diverge("tid %d: unhandled opcode %s at pc 0x%x", tid,
                opcodeName(in.op), t.ctx.pc);
    }

    t.ctx.pc = nextPc;
    t.ctx.instrs++;
    wc.replayedInstrs++;
}

void
ReplayCore::injectDeviceStrict(WorkerContext &wc,
                               const ChunkRecord &rec, DevState &dv,
                               ChunkTrace *trace)
{
    wc.trace = trace;
    std::size_t agentIdx = deviceIndexOf(rec.tid);
    if (agentIdx >= logs.devices.size())
        diverge("device record for unknown agent stream %zu", agentIdx);
    const DeviceStream &d = logs.devices[agentIdx];
    if (dv.next >= d.events.size())
        diverge("agent %u: schedule has more device records than "
                "logged events", d.agentId);
    const DeviceEvent &ev = d.events[dv.next];
    if (ev.ts != rec.ts)
        diverge("agent %u: device record ts %llu does not match "
                "logged event ts %llu",
                d.agentId, static_cast<unsigned long long>(rec.ts),
                static_cast<unsigned long long>(ev.ts));

    // The payload is regenerated, never stored: recompute the digest
    // of what injection is about to write and hold it against the
    // recorded one, so a torn or corrupted event surfaces here -- at
    // the anchor -- rather than as an end-of-replay digest mismatch.
    if (deviceEventDigest(d.seed, ev.seq, ev.words) != ev.digest)
        diverge("agent %u: device event seq %llu digest mismatch "
                "(torn transfer?)",
                d.agentId,
                static_cast<unsigned long long>(ev.seq));
    if (std::uint64_t(ev.addr) + 4ull * ev.words > logs.memBytes ||
        std::uint64_t(ev.doorbell) + 4 > logs.memBytes) {
        diverge("agent %u: device event seq %llu writes outside guest "
                "memory",
                d.agentId,
                static_cast<unsigned long long>(ev.seq));
    }

    // Same visibility order as the recording agent: payload words,
    // then the doorbell publication. Routed through memWrite so
    // analysis replays hand the write set to the chunk graph (which is
    // how device edges join the fence plan under parallel replay).
    for (std::uint32_t w = 0; w < ev.words; ++w)
        memWrite(wc, ev.addr + 4u * w,
                 devicePayloadWord(d.seed, ev.seq, w));
    memWrite(wc, ev.doorbell, static_cast<Word>(ev.seq + 1));

    dv.next++;
    dv.injected++;
    wc.injectedDeviceEvents++;
    Tick cost = costs.perChunk +
                static_cast<Tick>(ev.words) * costs.perInstr;
    wc.modeledCycles += cost;
    if (wc.trace)
        wc.trace->modeledCycles += cost;
    wc.trace = nullptr;
    tracef(TraceFlag::Replay,
           "agent %u: injected seq=%llu ts=%llu words=%u", d.agentId,
           static_cast<unsigned long long>(ev.seq),
           static_cast<unsigned long long>(ev.ts), ev.words);
    eventTrace().emit(TraceEventKind::ReplayInject, rec.tid, ev.ts,
                      ev.words, ev.seq);
}

void
ReplayCore::injectDeviceEvent(WorkerContext &wc, const ChunkRecord &rec,
                              ChunkTrace *trace)
{
    DevState *dv = wc.threads->findDevice(rec.tid);
    if (!dv) {
        diverge("device record ts %llu but no agent state (tid %d)",
                static_cast<unsigned long long>(rec.ts), rec.tid);
    }
    if (mode == ReplayMode::Strict) {
        injectDeviceStrict(wc, rec, *dv, trace);
        return;
    }
    // Degraded mode mirrors thread containment: a failed injection
    // poisons the agent (its later completions would publish doorbell
    // values the guest never saw in that order), every other lane
    // replays to completion.
    if (dv->poisoned) {
        dv->skipped++;
        dv->next++;
        return;
    }
    try {
        injectDeviceStrict(wc, rec, *dv, trace);
    } catch (const Divergence &d) {
        dv->divergences++;
        dv->poisoned = true;
        dv->next++;
        if (dv->divergences == 1) {
            dv->firstDivTs = rec.ts;
            dv->firstDivMsg = d.msg;
        }
        wc.trace = nullptr;
    }
}

void
ReplayCore::replayChunk(WorkerContext &wc, const ChunkRecord &rec,
                        ChunkTrace *trace)
{
    if (rec.reason == ChunkReason::Device) {
        injectDeviceEvent(wc, rec, trace);
        return;
    }
    if (mode == ReplayMode::Strict) {
        if (rec.reason == ChunkReason::Gap)
            diverge("tid %d: gap marker at ts %llu (%u records lost); "
                    "degraded replay required",
                    rec.tid, static_cast<unsigned long long>(rec.ts),
                    rec.size);
        replayChunkStrict(wc, rec, trace);
        return;
    }

    // Degraded mode: never throws. A gap marker means the recorder
    // lost this thread's chunks here -- everything downstream in the
    // thread is untrustworthy, so poison it. A caught divergence
    // (e.g. replaying past a salvaged log's truncation point) poisons
    // the same way; the partial trace is kept so graph builders still
    // see the writes that landed before the mismatch.
    RThread &t = threadFor(wc, rec);
    if (rec.reason == ChunkReason::Gap) {
        t.gapsSeen++;
        t.poisoned = true;
        return;
    }
    if (t.poisoned) {
        t.skippedChunks++;
        return;
    }
    try {
        replayChunkStrict(wc, rec, trace);
    } catch (const Divergence &d) {
        t.divergences++;
        t.poisoned = true;
        if (t.divergences == 1) {
            t.firstDivTs = rec.ts;
            t.firstDivMsg = d.msg;
        }
        wc.trace = nullptr;
    }
}

void
ReplayCore::replayChunkStrict(WorkerContext &wc, const ChunkRecord &rec,
                              ChunkTrace *trace)
{
    RThread &t = threadFor(wc, rec);
    wc.trace = trace;
    if (t.exited)
        diverge("tid %d: chunk ts %llu after thread exit", rec.tid,
                static_cast<unsigned long long>(rec.ts));
    if (!t.started)
        startThread(wc, rec.tid, t);

    // Boundary work in recorded order: the kernel's syscall-exit
    // copies/reads happen before a signal is delivered on the way back
    // to user mode.
    applyPending(wc, t);
    maybeInjectSignal(wc, rec.tid, t);

    for (std::uint32_t i = 0; i < rec.size; ++i)
        execInstr(wc, rec.tid, t, i + 1 == rec.size, i, rec);

    if (t.storeQueue.size() < rec.rsw)
        diverge("tid %d: chunk ts %llu records rsw %u but only %zu "
                "stores are buffered",
                rec.tid, static_cast<unsigned long long>(rec.ts),
                rec.rsw, t.storeQueue.size());
    drainStores(wc, t, rec.rsw);

    tracef(TraceFlag::Replay, "tid %d: chunk ts=%llu size=%u rsw=%u",
           rec.tid, static_cast<unsigned long long>(rec.ts), rec.size,
           rec.rsw);
    t.chunkSeq++;
    wc.replayedChunks++;
    Tick chunkCost =
        costs.perChunk + static_cast<Tick>(rec.size) * costs.perInstr;
    wc.modeledCycles += chunkCost;
    if (wc.trace)
        wc.trace->modeledCycles += chunkCost;
    wc.trace = nullptr;
    eventTrace().emit(TraceEventKind::ReplayChunk, rec.tid, rec.ts,
                      rec.size, static_cast<std::uint64_t>(rec.reason));
}

ReplayResult
ReplayCore::finish(ThreadStateTable &threads)
{
    if (mode == ReplayMode::Degraded)
        return finishDegraded(threads);

    for (const auto &[tid, tlogs] : logs.threads) {
        const RThread &t = threads.slots.at(tid);
        if (tlogs.chunks.empty())
            diverge("tid %d: has logs but was never scheduled", tid);
        if (!t.exited)
            diverge("tid %d: log ended before the thread exited", tid);
        if (t.inputCursor != tlogs.input.size())
            diverge("tid %d: %zu input records were never consumed",
                    tid, tlogs.input.size() - t.inputCursor);
        if (!t.storeQueue.empty())
            diverge("tid %d: %zu stores left in the replay queue",
                    tid, t.storeQueue.size());
        if (!t.pendingCopies.empty())
            diverge("tid %d: %zu input copies were never applied",
                    tid, t.pendingCopies.size());
        if (!t.pendingWrites.empty())
            diverge("tid %d: %zu outputs were never regenerated",
                    tid, t.pendingWrites.size());
    }
    for (std::size_t i = 0; i < logs.devices.size(); ++i) {
        const DevState *dv = threads.findDevice(deviceTidFor(i));
        std::uint64_t total = logs.devices[i].events.size();
        if (!dv || dv->injected != total) {
            diverge("agent %u: %llu device events were never injected",
                    logs.devices[i].agentId,
                    static_cast<unsigned long long>(
                        total - (dv ? dv->injected : 0)));
        }
    }

    ReplayResult result;
    result.digests.memory = img.digest(logs.userTop);
    OutputMap outs;
    for (const auto &[tid, t] : threads.slots)
        if (!t.outputBytes.empty())
            outs.emplace(tid, t.outputBytes);
    result.digests.output = outputDigest(outs);
    for (const auto &[tid, t] : threads.slots)
        result.digests.exits.emplace(tid, t.exitInfo);
    result.ok = true;
    return result;
}

ReplayResult
ReplayCore::finishDegraded(ThreadStateTable &threads)
{
    ReplayResult result;
    result.degradedMode = true;
    DegradedReplay &d = result.degraded;

    for (const auto &[tid, tlogs] : logs.threads) {
        const RThread &t = threads.slots.at(tid);
        // Per-thread program-order facts only: the summary must be
        // identical for the sequential oracle and any worker count.
        d.chunksReplayed += t.chunkSeq;
        d.chunksSkipped += t.skippedChunks;
        d.gapChunks += t.gapsSeen;
        d.divergences += t.divergences;
        // A clean exit with fully consumed logs is the strict-mode
        // bar; anything less marks the thread incomplete (its digests
        // reflect wherever replay stopped).
        if (t.poisoned || !t.exited || tlogs.chunks.empty() ||
            t.inputCursor != tlogs.input.size() ||
            !t.storeQueue.empty() || !t.pendingCopies.empty() ||
            !t.pendingWrites.empty()) {
            d.threadsIncomplete++;
        }
    }
    for (const auto &[tid, dv] : threads.devices) {
        d.deviceInjected += dv.injected;
        d.deviceSkipped += dv.skipped;
        d.deviceDivergences += dv.divergences;
    }

    // The earliest divergence by (ts, tid): both components are
    // per-thread (or per-agent) program-order facts, so this pick is
    // identical for the sequential oracle and any parallel job count.
    // Device pseudo tids sit above every real tid, so a tied device
    // divergence deterministically loses to a thread one.
    const RThread *first = nullptr;
    const DevState *firstDev = nullptr;
    Timestamp firstTs = 0;
    Tid firstTid = 0;
    auto better = [&](Timestamp ts, Tid tid) {
        return (!first && !firstDev) || ts < firstTs ||
               (ts == firstTs && tid < firstTid);
    };
    for (const auto &[tid, t] : threads.slots) {
        if (t.divergences && better(t.firstDivTs, tid)) {
            first = &t;
            firstDev = nullptr;
            firstTs = t.firstDivTs;
            firstTid = tid;
        }
    }
    for (const auto &[tid, dv] : threads.devices) {
        if (dv.divergences && better(dv.firstDivTs, tid)) {
            first = nullptr;
            firstDev = &dv;
            firstTs = dv.firstDivTs;
            firstTid = tid;
        }
    }
    if (first || firstDev)
        d.firstDivergence = csprintf(
            "ts %llu: %s",
            static_cast<unsigned long long>(firstTs),
            (first ? first->firstDivMsg : firstDev->firstDivMsg)
                .c_str());

    result.digests.memory = img.digest(logs.userTop);
    OutputMap outs;
    for (const auto &[tid, t] : threads.slots)
        if (!t.outputBytes.empty())
            outs.emplace(tid, t.outputBytes);
    result.digests.output = outputDigest(outs);
    for (const auto &[tid, t] : threads.slots)
        if (t.exited)
            result.digests.exits.emplace(tid, t.exitInfo);
    result.ok = true;
    return result;
}

Replayer::Replayer(const Program &prog_, const SphereLogs &logs_,
                   const ReplayCostModel &costs_, ReplayMode mode_)
    : logs(logs_), core(prog_, logs_, costs_, mode_), table(logs_)
{
    wc.threads = &table;
}

ReplayResult
Replayer::run()
{
    try {
        ProfileScope prof(ProfilePhase::ReplayExec);
        auto t0 = std::chrono::steady_clock::now();
        std::vector<ChunkRecord> schedule = buildSchedule(logs);
        for (const ChunkRecord &rec : schedule)
            core.replayChunk(wc, rec);
        ReplayResult result = core.finish(table);
        wc.accumulateInto(result);
        result.execMicros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count();
        prof.cycles(result.modeledCycles);
        return result;
    } catch (const ReplayCore::Divergence &d) {
        ReplayResult result;
        wc.accumulateInto(result);
        result.ok = false;
        result.divergence = d.msg;
        return result;
    }
}

} // namespace qr
