/**
 * @file
 * Parallel chunk-graph replay with true concurrent workers.
 *
 * The sequential replayer walks the total (timestamp, tid) order; this
 * engine replays the chunk-dependence DAG (chunk_graph.hh) with a pool
 * of N real std::thread workers:
 *
 *  - Ready chunks (all predecessors done) live in a lock-free MPMC
 *    ReadyQueue (ready_queue.hh); a worker that drains it parks on the
 *    queue's condition variable until a peer publishes new work or the
 *    pool shuts down.
 *
 *  - Each worker owns a private WorkerContext: counters, modeled
 *    cycles and divergence records accumulate worker-locally and merge
 *    only at join. Per-guest-thread state (register file, store queue,
 *    pending inputs) sits in the shared ThreadStateTable, but the
 *    graph's program-order edges make each slot an exclusive borrow of
 *    whichever worker executes that thread's current chunk.
 *
 *  - Commit protocol: after executing a chunk, a worker publishes the
 *    chunk's effects by (a) bumping the commit-sequence version of
 *    every line the chunk wrote (release), then (b) decrementing each
 *    successor's predecessor counter with fetch_sub(acq_rel). The
 *    counter's release sequence chains *all* predecessors' effects, so
 *    the worker that pushes the successor into the ready queue -- and
 *    through the queue's own release/acquire cell handoff, the worker
 *    that claims it -- observes every prior effect. Guest-memory words
 *    themselves are plain loads/stores; the DAG edges are the only
 *    ordering they need, and TSan verifies exactly that.
 *
 *  - Claim-time fence check: before executing a chunk, the worker
 *    verifies every line the chunk will read or overwrite has reached
 *    the commit version its DAG predecessors must have published.
 *    A failed check is an engine invariant violation (a chunk about to
 *    observe a predecessor's effects before its commit fence) and
 *    aborts the pool loudly rather than replaying wrong state.
 *
 * Divergences are never dropped: workers record them per-worker with
 * the chunk's schedule index, the pool drains, and the merge reports
 * the divergence of the *lowest* schedule index -- a deterministic
 * pick, independent of worker timing. The analysis pass that builds
 * the graph *is* a sequential replay, so a corrupt log surfaces the
 * identical divergence message before any worker starts.
 *
 * Set QR_REPLAY_STRESS=<seed> to inject seeded random yields/delays at
 * the claim and commit points -- the schedule-perturbation hook the
 * concurrency stress tests use to explore worker interleavings.
 */

#ifndef QR_REPLAY_PARALLEL_REPLAYER_HH
#define QR_REPLAY_PARALLEL_REPLAYER_HH

#include "replay/chunk_graph.hh"
#include "replay/replayer.hh"

namespace qr
{

/** Outcome of a parallel replay. */
struct ParallelReplayResult
{
    /** Same shape as the sequential result; digests must match the
     *  sequential oracle bit for bit. */
    ReplayResult replay;

    /** Modeled + wall-clock replay-speed accounting. The caller fills
     *  speed.seqExecMicros (from a sequential oracle run) to light up
     *  measuredSpeedup(). */
    ReplaySpeed speed;

    std::uint64_t graphNodes = 0;
    std::uint64_t graphEdges = 0;

    /** Commit-fence instrumentation: shared lines under versioning and
     *  claim-time version checks that passed. Tests assert the checks
     *  actually ran (> 0 on any sphere with cross-thread conflicts). */
    std::uint64_t versionSlots = 0;
    std::uint64_t fenceChecks = 0;
};

/** Replays one recorded sphere with @p jobs worker threads. */
class ParallelReplayer
{
  public:
    /** @p jobs must be >= 1 (validate user input before constructing). */
    ParallelReplayer(const Program &prog, const SphereLogs &logs,
                     int jobs, const ReplayCostModel &costs = {},
                     ReplayMode mode = ReplayMode::Strict);

    /** Build the chunk graph and replay it to completion (or first
     *  divergence). */
    ParallelReplayResult run();

  private:
    const Program &prog;
    const SphereLogs &logs;
    int jobs;
    ReplayCostModel costs;
    ReplayMode mode;
};

} // namespace qr

#endif // QR_REPLAY_PARALLEL_REPLAYER_HH
