/**
 * @file
 * Parallel chunk-graph replay.
 *
 * The sequential replayer walks the total (timestamp, tid) order; this
 * engine replays the chunk-dependence DAG (chunk_graph.hh) with a pool
 * of N worker threads. Workers pull ready chunks (all predecessors
 * done) from a shared queue and execute them through the same
 * ReplayCore the sequential oracle uses; per-thread replay state
 * (ThreadContext, replay store queue, pending copies) is confined to
 * one chunk at a time by the graph's program-order edges, and every
 * conflicting shared-memory access pair is ordered by a dependence
 * edge, so workers synchronize only at DAG edges (via the scheduler
 * lock) and the result is bit-identical to sequential replay.
 *
 * Divergences are never dropped: a worker that hits one aborts the
 * pool and the first divergence (by completion) is reported exactly as
 * the sequential replayer would report it. The analysis pass that
 * builds the graph *is* a sequential replay, so a corrupt log
 * surfaces the identical divergence message before any worker starts.
 */

#ifndef QR_REPLAY_PARALLEL_REPLAYER_HH
#define QR_REPLAY_PARALLEL_REPLAYER_HH

#include "replay/chunk_graph.hh"
#include "replay/replayer.hh"

namespace qr
{

/** Outcome of a parallel replay. */
struct ParallelReplayResult
{
    /** Same shape as the sequential result; digests must match the
     *  sequential oracle bit for bit. */
    ReplayResult replay;

    /** Modeled + wall-clock replay-speed accounting. */
    ReplaySpeed speed;

    std::uint64_t graphNodes = 0;
    std::uint64_t graphEdges = 0;
};

/** Replays one recorded sphere with @p jobs worker threads. */
class ParallelReplayer
{
  public:
    /** @p jobs must be >= 1 (validate user input before constructing). */
    ParallelReplayer(const Program &prog, const SphereLogs &logs,
                     int jobs, const ReplayCostModel &costs = {},
                     ReplayMode mode = ReplayMode::Strict);

    /** Build the chunk graph and replay it to completion (or first
     *  divergence). */
    ParallelReplayResult run();

  private:
    const Program &prog;
    const SphereLogs &logs;
    int jobs;
    ReplayCostModel costs;
    ReplayMode mode;
};

} // namespace qr

#endif // QR_REPLAY_PARALLEL_REPLAYER_HH
