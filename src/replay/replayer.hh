/**
 * @file
 * The QuickRec replayer.
 *
 * Replays a recorded sphere by re-executing the program's user
 * instructions under the logged total chunk order, injecting every
 * logged input (syscall results, copied data, signals, nondeterministic
 * instruction values). TSO is reproduced with a per-thread replay store
 * queue: stores buffer during a chunk and drain to memory until exactly
 * the chunk's recorded RSW entries remain; the survivors drain at the
 * start of the thread's next chunk -- mirroring where the hardware put
 * drained stores into the next chunk's write filter. Kernel input
 * copies are deferred to the same anchor.
 *
 * Replay is paranoid: any mismatch between the log and the re-executed
 * instruction stream (wrong record kind, syscall number, mid-chunk
 * trap, leftover log records) is reported as a divergence instead of
 * silently producing a wrong state.
 */

#ifndef QR_REPLAY_REPLAYER_HH
#define QR_REPLAY_REPLAYER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "capo/sphere.hh"
#include "core/metrics.hh"
#include "cpu/thread_context.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/types.hh"

namespace qr
{

/** Modeled cost parameters of the software replayer. */
struct ReplayCostModel
{
    Tick perInstr = 1;       //!< sequential interpretation
    Tick perChunk = 60;      //!< schedule lookup + context activation
    Tick perInputRecord = 150; //!< log decode + injection
};

/** Outcome of a replay. */
struct ReplayResult
{
    bool ok = false;
    std::string divergence; //!< empty when ok

    Digests digests;
    std::uint64_t replayedInstrs = 0;
    std::uint64_t replayedChunks = 0;
    std::uint64_t injectedRecords = 0;

    /** Modeled sequential replay time (for the replay-speed table). */
    Tick modeledCycles = 0;
};

/** Replays one recorded sphere against the original program. */
class Replayer
{
  public:
    Replayer(const Program &prog, const SphereLogs &logs,
             const ReplayCostModel &costs = {});

    /** Run the replay to completion (or first divergence). */
    ReplayResult run();

  private:
    struct RThread
    {
        ThreadContext ctx;
        bool started = false;
        bool exited = false;
        std::size_t inputCursor = 0;
        std::uint64_t replayedChunks = 0;
        /** TSO replay store queue (survivors = recorded RSW). */
        std::deque<std::pair<Addr, Word>> storeQueue;
        /** Kernel copies deferred to the next chunk of this thread. */
        std::vector<std::pair<Addr, std::vector<Word>>> pendingCopies;
        /**
         * write() output regenerated at the next chunk of this thread
         * (the kernel read the buffer between the two chunks; the
         * coherent copy-from-user path ordered that read exactly like
         * an input copy, so the anchor is the same).
         */
        std::vector<std::pair<Addr, Word>> pendingWrites;
        std::vector<std::uint8_t> outputBytes;
        ThreadExitInfo exitInfo;
    };

    struct Divergence
    {
        std::string msg;
    };

    [[noreturn]] void diverge(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    RThread &threadFor(const ChunkRecord &rec);
    const InputRecord &nextInput(RThread &t, const char *what);
    void startThread(Tid tid, RThread &t);
    void maybeInjectSignal(Tid tid, RThread &t);
    void applyPending(RThread &t);
    void replayChunk(const ChunkRecord &rec);
    void execInstr(Tid tid, RThread &t, bool is_last, std::uint32_t idx,
                   const ChunkRecord &rec);
    Word loadWord(RThread &t, Addr addr);
    void handleSyscall(Tid tid, RThread &t, bool is_last);

    const Program &prog;
    const SphereLogs &logs;
    ReplayCostModel costs;
    Memory mem;
    std::map<Tid, RThread> threads;
    ReplayResult result;
};

} // namespace qr

#endif // QR_REPLAY_REPLAYER_HH
