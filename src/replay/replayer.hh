/**
 * @file
 * The QuickRec replayer.
 *
 * Replays a recorded sphere by re-executing the program's user
 * instructions under the logged chunk order, injecting every logged
 * input (syscall results, copied data, signals, nondeterministic
 * instruction values). TSO is reproduced with a per-thread replay store
 * queue: stores buffer during a chunk and drain to memory until exactly
 * the chunk's recorded RSW entries remain; the survivors drain at the
 * start of the thread's next chunk -- mirroring where the hardware put
 * drained stores into the next chunk's write filter. Kernel input
 * copies are deferred to the same anchor.
 *
 * Ownership model (the concurrent-replay contract):
 *
 *  - ReplayCore holds only *immutable* shared inputs -- the Program,
 *    the SphereLogs, the cost model and the replay mode -- plus the
 *    CommittedImage: the committed guest-memory image all chunks read
 *    and write, with an optional per-line commit-sequence table the
 *    parallel driver arms to verify its fence protocol.
 *
 *  - All mutable per-chunk execution state (register files, replay
 *    store queues, pending input cursors and deferred copies) lives in
 *    per-guest-thread RThread slots inside a ThreadStateTable the
 *    *driver* owns. Slots are pre-created before replay starts and
 *    never added or removed afterwards, and a slot is only ever
 *    touched by the worker currently executing a chunk of that guest
 *    thread -- program-order edges in the chunk graph make that
 *    exclusive borrow race-free, with the scheduler's acquire/release
 *    on the edge carrying the handoff between workers.
 *
 *  - Everything a worker accumulates across chunks (replayed counts,
 *    modeled cycles, caught divergences, the analysis trace sink)
 *    lives in its private WorkerContext and is merged at join, so the
 *    execution hot path needs no shared counters at all.
 *
 * Two drivers share the core: the sequential Replayer (the oracle --
 * walks the total (timestamp, tid) order with a single WorkerContext)
 * and the ParallelReplayer (parallel_replayer.hh -- real concurrent
 * workers over the chunk-dependence DAG).
 *
 * Replay is paranoid: any mismatch between the log and the re-executed
 * instruction stream (wrong record kind, syscall number, mid-chunk
 * trap, leftover log records) is reported as a divergence instead of
 * silently producing a wrong state.
 */

#ifndef QR_REPLAY_REPLAYER_HH
#define QR_REPLAY_REPLAYER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "capo/sphere.hh"
#include "core/metrics.hh"
#include "cpu/thread_context.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "replay/ready_queue.hh"
#include "sim/types.hh"

namespace qr
{

/** Modeled cost parameters of the software replayer. */
struct ReplayCostModel
{
    Tick perInstr = 1;       //!< sequential interpretation
    Tick perChunk = 60;      //!< schedule lookup + context activation
    Tick perInputRecord = 150; //!< log decode + injection
};

/** How strictly the replayer treats imperfect logs. */
enum class ReplayMode
{
    /** Any gap marker or log mismatch aborts with a divergence. */
    Strict,
    /**
     * Gap markers and divergences poison only the affected thread:
     * its remaining chunks are skipped (containment -- a thread whose
     * log lost records must not keep mutating shared memory on stale
     * state), every other thread replays to completion, and the run
     * reports a DegradedReplay summary instead of aborting.
     */
    Degraded,
};

/**
 * Summary of a degraded replay. Deterministic for a given sphere:
 * every field derives from per-thread program-order events, so the
 * sequential oracle and the parallel engine at any job count report
 * identical summaries (pinned by tests/test_fault.cc and
 * tests/test_concurrent_replay.cc).
 */
struct DegradedReplay
{
    std::uint64_t chunksReplayed = 0;
    std::uint64_t chunksSkipped = 0; //!< skipped on poisoned threads
    std::uint64_t gapChunks = 0;     //!< gap markers encountered
    std::uint64_t divergences = 0;   //!< caught log mismatches
    std::uint64_t threadsIncomplete = 0; //!< no clean exit reached
    std::string firstDivergence; //!< earliest by (ts, tid); empty if none

    // Device-injection accounting (all zero on device-free spheres;
    // the summary line appends them only when an agent was involved,
    // keeping pre-device output byte-identical).
    std::uint64_t deviceInjected = 0;    //!< events injected cleanly
    std::uint64_t deviceSkipped = 0;     //!< skipped on poisoned agents
    std::uint64_t deviceDivergences = 0; //!< failed injections

    /** One-line "degraded-replay: ..." report. */
    std::string summary() const;
};

/** Outcome of a replay. */
struct ReplayResult
{
    bool ok = false;
    std::string divergence; //!< empty when ok

    Digests digests;
    std::uint64_t replayedInstrs = 0;
    std::uint64_t replayedChunks = 0;
    std::uint64_t injectedRecords = 0;
    std::uint64_t injectedDeviceEvents = 0; //!< bus-agent completions

    /** Modeled sequential replay time (for the replay-speed table). */
    Tick modeledCycles = 0;

    /** Measured wall-clock of the execution phase, microseconds. */
    double execMicros = 0;

    bool degradedMode = false; //!< run under ReplayMode::Degraded
    DegradedReplay degraded;   //!< valid when degradedMode
};

/**
 * Everything one chunk did to globally visible state, captured by an
 * analysis replay (ReplayCore::replayChunk with a trace sink). The
 * chunk-graph builder turns these into dependence edges, and the
 * per-chunk modeled cost feeds the parallel schedule model. Store-queue
 * forwarding is thread-local and deliberately not recorded; only
 * accesses that reached shared memory create dependences.
 */
struct ChunkTrace
{
    std::vector<Addr> reads;  //!< shared-memory words read
    std::vector<Addr> writes; //!< shared-memory words written
    Tick modeledCycles = 0;   //!< modeled cost of this chunk alone
    std::uint64_t injected = 0; //!< input records consumed by the chunk
};

/**
 * The committed guest-memory image: the only mutable state ReplayCore
 * itself holds. Word loads/stores are plain (two chunks touching the
 * same word are always ordered by a DAG edge, and the scheduler's
 * acquire/release on that edge carries the data); the embedded
 * LineVersionTable is the *verification* layer the parallel driver
 * arms to assert, at every chunk claim, that each line it will read
 * has reached the commit version its predecessors must have published.
 */
class CommittedImage
{
  public:
    explicit CommittedImage(std::uint64_t bytes) : mem(bytes) {}

    Word read(Addr addr) const { return mem.read(addr); }
    void write(Addr addr, Word value) { mem.write(addr, value); }
    std::uint64_t digest(Addr limit) const { return mem.digest(limit); }

    /** Commit-fence versions, armed by the parallel driver only. */
    LineVersionTable versions;

  private:
    Memory mem;
};

/**
 * The shared per-chunk replay engine. Drivers feed it chunk records;
 * it executes them against the committed image and the driver-owned
 * thread table, and throws Divergence at the first log/execution
 * mismatch.
 *
 * Thread-safety contract for parallel drivers: replayChunk(a) and
 * replayChunk(b) may run concurrently iff a and b belong to different
 * guest threads and are not ordered by a chunk-graph dependence (no
 * shared word is accessed by both with at least one write). All
 * per-thread state is pre-created at table construction, so no map is
 * ever mutated during replay. finish() must be called after all
 * chunks completed (single-threaded).
 */
class ReplayCore
{
  public:
    /** Raised (and caught by drivers) on any log/execution mismatch. */
    struct Divergence
    {
        std::string msg;
    };

    /**
     * Mutable replay state of one guest thread. Exclusively borrowed
     * by whichever worker is executing a chunk of this thread; the
     * chunk graph's program-order edges serialize those borrows.
     */
    struct RThread
    {
        ThreadContext ctx;
        bool started = false;
        bool exited = false;
        std::size_t inputCursor = 0;
        /** TSO replay store queue (survivors = recorded RSW). */
        std::deque<std::pair<Addr, Word>> storeQueue;
        /** Kernel copies deferred to the next chunk of this thread. */
        std::vector<std::pair<Addr, std::vector<Word>>> pendingCopies;
        /**
         * write() output regenerated at the next chunk of this thread
         * (the kernel read the buffer between the two chunks; the
         * coherent copy-from-user path ordered that read exactly like
         * an input copy, so the anchor is the same).
         */
        std::vector<std::pair<Addr, Word>> pendingWrites;
        std::vector<std::uint8_t> outputBytes;
        ThreadExitInfo exitInfo;

        /** Chunks of this thread replayed so far: the program-order
         *  ordinal signal records anchor to (afterChunkSeq). */
        std::uint64_t chunkSeq = 0;
        /** Input records this thread consumed (event-trace ordinal). */
        std::uint64_t injectedSeq = 0;

        // Degraded-mode state: a poisoned thread executes no further
        // chunks. Program-order facts, so the degraded summary is
        // identical at any worker count without atomics.
        bool poisoned = false;
        std::uint64_t skippedChunks = 0;
        std::uint64_t gapsSeen = 0;
        std::uint64_t divergences = 0;
        Timestamp firstDivTs = 0;
        std::string firstDivMsg;
    };

    /**
     * Mutable injection state of one recorded bus agent. Exclusively
     * borrowed like an RThread: device records of one agent chain
     * program-order edges in the chunk graph, so only one worker at a
     * time executes a given agent's events.
     */
    struct DevState
    {
        std::uint64_t next = 0;     //!< stream index of the next event
        std::uint64_t injected = 0; //!< events injected cleanly

        // Degraded-mode containment, mirroring RThread: a poisoned
        // agent injects no further events.
        bool poisoned = false;
        std::uint64_t skipped = 0;
        std::uint64_t divergences = 0;
        Timestamp firstDivTs = 0;
        std::string firstDivMsg;
    };

    /**
     * The driver-owned table of per-guest-thread replay state: one
     * pre-created slot per logged thread (plus one per device agent),
     * structurally frozen for the whole replay (concurrent workers
     * index it without locks).
     */
    class ThreadStateTable
    {
      public:
        explicit ThreadStateTable(const SphereLogs &logs);

        /** Slot for @p tid, or nullptr if the sphere never logged it. */
        RThread *find(Tid tid);

        /** Agent slot for pseudo tid @p tid, or nullptr. */
        DevState *findDevice(Tid tid);

        std::map<Tid, RThread> slots;
        std::map<Tid, DevState> devices; //!< keyed by pseudo tid
    };

    /**
     * One worker's private execution state: the borrowed thread table,
     * the analysis trace sink, and the counters it accumulates across
     * the chunks it executes. Workers merge into the ReplayResult at
     * join (accumulateInto), so nothing here is shared while running.
     */
    struct WorkerContext
    {
        ThreadStateTable *threads = nullptr;

        std::uint64_t replayedChunks = 0;
        std::uint64_t replayedInstrs = 0;
        std::uint64_t injectedRecords = 0;
        std::uint64_t injectedDeviceEvents = 0;
        Tick modeledCycles = 0;

        /** Active trace sink while replaying a chunk (analysis mode;
         *  sequential drivers only). */
        ChunkTrace *trace = nullptr;

        /** Add this worker's counters into @p r. */
        void accumulateInto(ReplayResult &r) const;
    };

    ReplayCore(const Program &prog, const SphereLogs &logs,
               const ReplayCostModel &costs,
               ReplayMode mode = ReplayMode::Strict);

    /**
     * Replay one chunk on behalf of @p wc (whose thread table supplies
     * the guest thread's slot). With a non-null @p trace, records the
     * chunk's shared-memory access sets and modeled cost into it
     * (analysis mode; sequential drivers only). In degraded mode this
     * never throws: gaps and divergences poison the chunk's thread
     * instead (a diverged chunk keeps its partial trace, so graph
     * builders see the writes that did land).
     */
    void replayChunk(WorkerContext &wc, const ChunkRecord &rec,
                     ChunkTrace *trace = nullptr);

    /**
     * End-of-replay checks (leftover records, non-exited threads) and
     * digest computation over @p threads. Returns the completed result
     * (ok = true) with zeroed counters -- drivers accumulate their
     * WorkerContexts afterwards; throws Divergence if any log residue
     * remains. In degraded mode it never throws: residue marks the
     * thread incomplete in the DegradedReplay summary instead.
     */
    ReplayResult finish(ThreadStateTable &threads);

    /** The committed memory image (parallel drivers arm versioning). */
    CommittedImage &image() { return img; }

  private:
    [[noreturn]] void diverge(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    RThread &threadFor(WorkerContext &wc, const ChunkRecord &rec);
    void replayChunkStrict(WorkerContext &wc, const ChunkRecord &rec,
                           ChunkTrace *trace);
    void injectDeviceEvent(WorkerContext &wc, const ChunkRecord &rec,
                           ChunkTrace *trace);
    void injectDeviceStrict(WorkerContext &wc, const ChunkRecord &rec,
                            DevState &dv, ChunkTrace *trace);
    ReplayResult finishDegraded(ThreadStateTable &threads);
    const InputRecord &nextInput(WorkerContext &wc, RThread &t,
                                 const char *what);
    void startThread(WorkerContext &wc, Tid tid, RThread &t);
    void maybeInjectSignal(WorkerContext &wc, Tid tid, RThread &t);
    void applyPending(WorkerContext &wc, RThread &t);
    void execInstr(WorkerContext &wc, Tid tid, RThread &t, bool is_last,
                   std::uint32_t idx, const ChunkRecord &rec);
    Word loadWord(WorkerContext &wc, RThread &t, Addr addr);
    void handleSyscall(WorkerContext &wc, Tid tid, RThread &t,
                       bool is_last);

    /** Shared-memory access points; route through these so analysis
     *  replays can observe every globally visible read and write. */
    Word memRead(WorkerContext &wc, Addr addr);
    void memWrite(WorkerContext &wc, Addr addr, Word value);

    /** Drain the store queue down to @p keep entries. */
    void drainStores(WorkerContext &wc, RThread &t,
                     std::size_t keep = 0);

    // Immutable shared inputs -- safe to read from any worker.
    const Program &prog;
    const SphereLogs &logs;
    const ReplayCostModel costs;
    const ReplayMode mode;

    // The committed image: word accesses ordered by DAG edges.
    CommittedImage img;
};

/** Replays one recorded sphere sequentially (the oracle). */
class Replayer
{
  public:
    Replayer(const Program &prog, const SphereLogs &logs,
             const ReplayCostModel &costs = {},
             ReplayMode mode = ReplayMode::Strict);

    /** Run the replay to completion (or first divergence). */
    ReplayResult run();

  private:
    const SphereLogs &logs;
    ReplayCore core;
    ReplayCore::ThreadStateTable table;
    ReplayCore::WorkerContext wc;
};

} // namespace qr

#endif // QR_REPLAY_REPLAYER_HH
