/**
 * @file
 * The QuickRec replayer.
 *
 * Replays a recorded sphere by re-executing the program's user
 * instructions under the logged chunk order, injecting every logged
 * input (syscall results, copied data, signals, nondeterministic
 * instruction values). TSO is reproduced with a per-thread replay store
 * queue: stores buffer during a chunk and drain to memory until exactly
 * the chunk's recorded RSW entries remain; the survivors drain at the
 * start of the thread's next chunk -- mirroring where the hardware put
 * drained stores into the next chunk's write filter. Kernel input
 * copies are deferred to the same anchor.
 *
 * The per-chunk execution machinery lives in ReplayCore, shared by two
 * drivers: the sequential Replayer (the oracle -- walks the total
 * (timestamp, tid) order) and the ParallelReplayer
 * (parallel_replayer.hh -- walks the chunk-dependence DAG with a
 * worker pool). ReplayCore::replayChunk only touches the chunk's own
 * per-thread state plus shared guest memory, so chunks of different
 * threads may execute concurrently as long as the caller orders
 * conflicting chunks (which the DAG guarantees).
 *
 * Replay is paranoid: any mismatch between the log and the re-executed
 * instruction stream (wrong record kind, syscall number, mid-chunk
 * trap, leftover log records) is reported as a divergence instead of
 * silently producing a wrong state.
 */

#ifndef QR_REPLAY_REPLAYER_HH
#define QR_REPLAY_REPLAYER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "capo/sphere.hh"
#include "core/metrics.hh"
#include "cpu/thread_context.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/types.hh"

namespace qr
{

/** Modeled cost parameters of the software replayer. */
struct ReplayCostModel
{
    Tick perInstr = 1;       //!< sequential interpretation
    Tick perChunk = 60;      //!< schedule lookup + context activation
    Tick perInputRecord = 150; //!< log decode + injection
};

/** How strictly the replayer treats imperfect logs. */
enum class ReplayMode
{
    /** Any gap marker or log mismatch aborts with a divergence. */
    Strict,
    /**
     * Gap markers and divergences poison only the affected thread:
     * its remaining chunks are skipped (containment -- a thread whose
     * log lost records must not keep mutating shared memory on stale
     * state), every other thread replays to completion, and the run
     * reports a DegradedReplay summary instead of aborting.
     */
    Degraded,
};

/**
 * Summary of a degraded replay. Deterministic for a given sphere:
 * every field derives from per-thread program-order events, so the
 * sequential oracle and the parallel engine at any job count report
 * identical summaries (pinned by tests/test_fault.cc).
 */
struct DegradedReplay
{
    std::uint64_t chunksReplayed = 0;
    std::uint64_t chunksSkipped = 0; //!< skipped on poisoned threads
    std::uint64_t gapChunks = 0;     //!< gap markers encountered
    std::uint64_t divergences = 0;   //!< caught log mismatches
    std::uint64_t threadsIncomplete = 0; //!< no clean exit reached
    std::string firstDivergence; //!< earliest by (ts, tid); empty if none

    /** One-line "degraded-replay: ..." report. */
    std::string summary() const;
};

/** Outcome of a replay. */
struct ReplayResult
{
    bool ok = false;
    std::string divergence; //!< empty when ok

    Digests digests;
    std::uint64_t replayedInstrs = 0;
    std::uint64_t replayedChunks = 0;
    std::uint64_t injectedRecords = 0;

    /** Modeled sequential replay time (for the replay-speed table). */
    Tick modeledCycles = 0;

    bool degradedMode = false; //!< run under ReplayMode::Degraded
    DegradedReplay degraded;   //!< valid when degradedMode
};

/**
 * Everything one chunk did to globally visible state, captured by an
 * analysis replay (ReplayCore::replayChunk with a trace sink). The
 * chunk-graph builder turns these into dependence edges, and the
 * per-chunk modeled cost feeds the parallel schedule model. Store-queue
 * forwarding is thread-local and deliberately not recorded; only
 * accesses that reached shared memory create dependences.
 */
struct ChunkTrace
{
    std::vector<Addr> reads;  //!< shared-memory words read
    std::vector<Addr> writes; //!< shared-memory words written
    Tick modeledCycles = 0;   //!< modeled cost of this chunk alone
    std::uint64_t injected = 0; //!< input records consumed by the chunk
};

/**
 * The shared per-chunk replay engine. Drivers feed it chunk records;
 * it executes them against guest memory and per-thread contexts, and
 * throws Divergence at the first log/execution mismatch.
 *
 * Thread-safety contract for parallel drivers: replayChunk(a) and
 * replayChunk(b) may run concurrently iff a and b belong to different
 * threads and are not ordered by a chunk-graph dependence (no shared
 * word is accessed by both with at least one write). All per-thread
 * state is pre-created at construction, so the thread map is never
 * mutated during replay. finish() must be called after all chunks
 * completed (single-threaded).
 */
class ReplayCore
{
  public:
    /** Raised (and caught by drivers) on any log/execution mismatch. */
    struct Divergence
    {
        std::string msg;
    };

    ReplayCore(const Program &prog, const SphereLogs &logs,
               const ReplayCostModel &costs,
               ReplayMode mode = ReplayMode::Strict);

    /**
     * Replay one chunk. With a non-null @p trace, records the chunk's
     * shared-memory access sets and modeled cost into it (analysis
     * mode; sequential drivers only). In degraded mode this never
     * throws: gaps and divergences poison the chunk's thread instead
     * (a diverged chunk keeps its partial trace, so graph builders see
     * the writes that did land).
     */
    void replayChunk(const ChunkRecord &rec, ChunkTrace *trace = nullptr);

    /**
     * End-of-replay checks (leftover records, non-exited threads) and
     * digest computation. Returns the completed result (ok = true);
     * throws Divergence if any log residue remains. In degraded mode
     * it never throws: residue marks the thread incomplete in the
     * DegradedReplay summary instead.
     */
    ReplayResult finish();

    /** Sum the per-thread counters into @p r (used on divergence). */
    void collectCounters(ReplayResult &r) const;

  private:
    struct RThread
    {
        ThreadContext ctx;
        bool started = false;
        bool exited = false;
        std::size_t inputCursor = 0;
        /** TSO replay store queue (survivors = recorded RSW). */
        std::deque<std::pair<Addr, Word>> storeQueue;
        /** Kernel copies deferred to the next chunk of this thread. */
        std::vector<std::pair<Addr, std::vector<Word>>> pendingCopies;
        /**
         * write() output regenerated at the next chunk of this thread
         * (the kernel read the buffer between the two chunks; the
         * coherent copy-from-user path ordered that read exactly like
         * an input copy, so the anchor is the same).
         */
        std::vector<std::pair<Addr, Word>> pendingWrites;
        std::vector<std::uint8_t> outputBytes;
        ThreadExitInfo exitInfo;

        // Per-thread counters: summed by finish()/collectCounters().
        // Keeping them thread-local (instead of on a shared result)
        // lets concurrent workers run without atomics.
        std::uint64_t replayedChunks = 0;
        std::uint64_t replayedInstrs = 0;
        std::uint64_t injectedRecords = 0;
        Tick modeledCycles = 0;

        // Degraded-mode state: a poisoned thread executes no further
        // chunks. Like the counters above, thread-local so concurrent
        // workers need no atomics (a thread's chunks are totally
        // ordered by the graph's program-order edges).
        bool poisoned = false;
        std::uint64_t skippedChunks = 0;
        std::uint64_t gapsSeen = 0;
        std::uint64_t divergences = 0;
        Timestamp firstDivTs = 0;
        std::string firstDivMsg;

        /** Active trace sink while this thread replays a chunk. */
        ChunkTrace *trace = nullptr;
    };

    [[noreturn]] void diverge(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    RThread &threadFor(const ChunkRecord &rec);
    void replayChunkStrict(const ChunkRecord &rec, ChunkTrace *trace);
    ReplayResult finishDegraded();
    const InputRecord &nextInput(RThread &t, const char *what);
    void startThread(Tid tid, RThread &t);
    void maybeInjectSignal(Tid tid, RThread &t);
    void applyPending(RThread &t);
    void execInstr(Tid tid, RThread &t, bool is_last, std::uint32_t idx,
                   const ChunkRecord &rec);
    Word loadWord(RThread &t, Addr addr);
    void handleSyscall(Tid tid, RThread &t, bool is_last);

    /** Shared-memory access points; route through these so analysis
     *  replays can observe every globally visible read and write. */
    Word memRead(RThread &t, Addr addr);
    void memWrite(RThread &t, Addr addr, Word value);

    /** Drain the store queue down to @p keep entries. */
    void drainStores(RThread &t, std::size_t keep = 0);

    const Program &prog;
    const SphereLogs &logs;
    ReplayCostModel costs;
    ReplayMode mode;
    Memory mem;
    std::map<Tid, RThread> threads;
};

/** Replays one recorded sphere sequentially (the oracle). */
class Replayer
{
  public:
    Replayer(const Program &prog, const SphereLogs &logs,
             const ReplayCostModel &costs = {},
             ReplayMode mode = ReplayMode::Strict);

    /** Run the replay to completion (or first divergence). */
    ReplayResult run();

  private:
    const SphereLogs &logs;
    ReplayCore core;
};

} // namespace qr

#endif // QR_REPLAY_REPLAYER_HH
