#include "replay/ready_queue.hh"

#include "sim/logging.hh"

namespace qr
{

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

ReadyQueue::ReadyQueue(std::size_t capacity)
    : cells(roundUpPow2(capacity)), mask(cells.size() - 1)
{
    // Single-threaded construction; handing workers the queue
    // reference publishes the initialized cells.
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells[i].seq.store(i, std::memory_order_relaxed);
}

void
ReadyQueue::push(std::uint32_t value)
{
    Cell *cell;
    // Relaxed on the position counter throughout: it is only a hint
    // revalidated against the cell's seq, and the seq acquire/release
    // pair carries all the cross-thread ordering (Vyukov MPMC).
    std::size_t pos = enqueuePos.load(std::memory_order_relaxed);
    for (;;) {
        cell = &cells[pos & mask];
        std::size_t seq = cell->seq.load(std::memory_order_acquire);
        std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                             static_cast<std::intptr_t>(pos);
        if (diff == 0) {
            if (enqueuePos.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed))
                break;
        } else if (diff < 0) {
            // The driver sizes the queue to the node count, so a full
            // ring means the caller's accounting is broken.
            qr_assert(false, "ReadyQueue overflow (capacity %zu)",
                      cells.size());
        } else {
            pos = enqueuePos.load(std::memory_order_relaxed);
        }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);

    // Dekker pairing with pop(): the consumer registers in waiters,
    // fences, then re-polls; we publish the cell, fence, then read
    // waiters. At least one side must see the other.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters.load(std::memory_order_relaxed) > 0) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
    }
}

bool
ReadyQueue::tryPop(std::uint32_t &value)
{
    Cell *cell;
    // Same relaxed-counter discipline as push(): dequeuePos is a hint;
    // the cell seq acquire/release does the ordering.
    std::size_t pos = dequeuePos.load(std::memory_order_relaxed);
    for (;;) {
        cell = &cells[pos & mask];
        std::size_t seq = cell->seq.load(std::memory_order_acquire);
        std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                             static_cast<std::intptr_t>(pos + 1);
        if (diff == 0) {
            if (dequeuePos.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed))
                break;
        } else if (diff < 0) {
            return false; // drained
        } else {
            pos = dequeuePos.load(std::memory_order_relaxed);
        }
    }
    value = cell->value;
    cell->seq.store(pos + mask + 1, std::memory_order_release);
    return true;
}

bool
ReadyQueue::pop(std::uint32_t &value)
{
    // Fast path: spin briefly before paying for the parking lot.
    for (int spin = 0; spin < 64; ++spin) {
        if (tryPop(value))
            return true;
        if (closedFlag.load(std::memory_order_acquire))
            return false;
    }

    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        // waiters is a Dekker flag: the seq_cst fences here and in
        // push() provide the ordering, so the counter itself can be
        // relaxed on every adjustment below.
        waiters.fetch_add(1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (tryPop(value)) {
            waiters.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
        if (closedFlag.load(std::memory_order_acquire)) {
            waiters.fetch_sub(1, std::memory_order_relaxed);
            return false;
        }
        cv.wait(lock);
        waiters.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
ReadyQueue::close()
{
    closedFlag.store(true, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_all();
}

void
LineVersionTable::arm(std::size_t slots)
{
    seq = std::vector<std::atomic<std::uint32_t>>(slots);
    // arm() runs before the worker pool spawns; thread creation
    // publishes the zeroed table.
    for (auto &s : seq)
        s.store(0, std::memory_order_relaxed);
}

} // namespace qr
