#include "replay/chunk_graph.hh"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

#include "replay/log_reader.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

void
sortUnique(std::vector<Addr> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

ChunkGraph
buildChunkGraph(const Program &prog, const SphereLogs &logs,
                const ReplayCostModel &costs, ReplayMode mode)
{
    ChunkGraph g;
    std::vector<ChunkRecord> schedule = buildSchedule(logs);
    g.nodes.reserve(schedule.size());

    // Analysis replay: sequential, recording each chunk's shared-memory
    // access sets and modeled cost. In degraded mode replayChunk and
    // finish never throw; skipped chunks simply leave empty traces.
    // A single local WorkerContext over a local thread table: the
    // analysis is a plain sequential replay that happens to trace.
    ReplayCore core(prog, logs, costs, mode);
    ReplayCore::ThreadStateTable table(logs);
    ReplayCore::WorkerContext wc;
    wc.threads = &table;
    try {
        for (const ChunkRecord &rec : schedule) {
            ChunkTrace trace;
            core.replayChunk(wc, rec, &trace);
            ChunkNode node;
            node.rec = rec;
            node.reads = std::move(trace.reads);
            node.writes = std::move(trace.writes);
            sortUnique(node.reads);
            sortUnique(node.writes);
            node.modeledCost = trace.modeledCycles;
            node.injected = trace.injected;
            g.nodes.push_back(std::move(node));
        }
        // Consume the end-of-replay residue checks too: a sphere whose
        // logs do not fully account for execution has no valid graph.
        core.finish(table);
    } catch (const ReplayCore::Divergence &d) {
        g.divergence = d.msg;
        return g;
    }

    // Edge construction in schedule order. For each shared word track
    // the last writing chunk and every reader since; RAW/WAW/WAR edges
    // then order exactly the conflicting pairs (transitively).
    std::unordered_map<Addr, std::uint32_t> lastWriter;
    std::unordered_map<Addr, std::vector<std::uint32_t>> readersSince;
    std::map<Tid, std::uint32_t> lastOfThread;

    auto addEdge = [&g](std::uint32_t from, std::uint32_t to) {
        qr_assert(from < to, "chunk-graph edge against schedule order");
        g.nodes[from].succs.push_back(to);
    };

    for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
        const ChunkNode &node = g.nodes[i];
        auto prev = lastOfThread.find(node.rec.tid);
        if (prev != lastOfThread.end())
            addEdge(prev->second, i);
        lastOfThread[node.rec.tid] = i;

        for (Addr a : node.reads) {
            auto w = lastWriter.find(a);
            if (w != lastWriter.end() && w->second != i)
                addEdge(w->second, i);
            readersSince[a].push_back(i);
        }
        for (Addr a : node.writes) {
            auto w = lastWriter.find(a);
            if (w != lastWriter.end() && w->second != i)
                addEdge(w->second, i);
            for (std::uint32_t r : readersSince[a])
                if (r != i)
                    addEdge(r, i);
            readersSince[a].clear();
            lastWriter[a] = i;
        }
    }

    for (ChunkNode &node : g.nodes) {
        std::sort(node.succs.begin(), node.succs.end());
        node.succs.erase(
            std::unique(node.succs.begin(), node.succs.end()),
            node.succs.end());
        g.edges += node.succs.size();
    }
    for (const ChunkNode &node : g.nodes)
        for (std::uint32_t s : node.succs)
            g.nodes[s].preds++;

    g.ok = true;
    return g;
}

bool
ChunkGraph::isAcyclic() const
{
    std::vector<std::uint32_t> indeg(nodes.size(), 0);
    for (const ChunkNode &n : nodes)
        for (std::uint32_t s : n.succs)
            indeg[s]++;
    std::queue<std::uint32_t> q;
    for (std::uint32_t i = 0; i < nodes.size(); ++i)
        if (indeg[i] == 0)
            q.push(i);
    std::size_t visited = 0;
    while (!q.empty()) {
        std::uint32_t i = q.front();
        q.pop();
        visited++;
        for (std::uint32_t s : nodes[i].succs)
            if (--indeg[s] == 0)
                q.push(s);
    }
    return visited == nodes.size();
}

Tick
ChunkGraph::totalCycles() const
{
    Tick total = 0;
    for (const ChunkNode &n : nodes)
        total += n.modeledCost;
    return total;
}

Tick
ChunkGraph::criticalPathCycles() const
{
    // Edges only point forward in schedule order, so index order is a
    // topological order.
    std::vector<Tick> finish(nodes.size(), 0);
    Tick longest = 0;
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
        finish[i] += nodes[i].modeledCost;
        longest = std::max(longest, finish[i]);
        for (std::uint32_t s : nodes[i].succs)
            finish[s] = std::max(finish[s], finish[i]);
    }
    return longest;
}

Tick
ChunkGraph::modeledScheduleCycles(int jobs) const
{
    qr_assert(jobs >= 1, "modeledScheduleCycles needs jobs >= 1");
    if (nodes.empty())
        return 0;

    std::vector<std::uint32_t> indeg(nodes.size(), 0);
    for (const ChunkNode &n : nodes)
        for (std::uint32_t s : n.succs)
            indeg[s]++;

    // Greedy list schedule: at each instant, free workers claim ready
    // chunks lowest-schedule-index first. Deterministic by design so
    // the modeled numbers are reproducible run to run.
    using Completion = std::pair<Tick, std::uint32_t>; // (finish, node)
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> running;
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<std::uint32_t>> ready;
    for (std::uint32_t i = 0; i < nodes.size(); ++i)
        if (indeg[i] == 0)
            ready.push(i);

    Tick now = 0;
    int freeWorkers = jobs;
    std::size_t done = 0;
    while (done < nodes.size()) {
        while (freeWorkers > 0 && !ready.empty()) {
            std::uint32_t i = ready.top();
            ready.pop();
            running.emplace(now + nodes[i].modeledCost, i);
            freeWorkers--;
        }
        qr_assert(!running.empty(), "chunk-graph schedule deadlock");
        auto [t, i] = running.top();
        running.pop();
        now = t;
        freeWorkers++;
        done++;
        for (std::uint32_t s : nodes[i].succs)
            if (--indeg[s] == 0)
                ready.push(s);
    }
    return now;
}

ReachMatrix::ReachMatrix(const std::vector<std::vector<std::uint32_t>>
                             &succs)
    : n(succs.size()), stride((n + 63) / 64), bits(n * stride, 0)
{
    // Rows in reverse schedule order: a node reaches everything its
    // successors reach, plus the successors themselves.
    for (std::size_t i = n; i-- > 0;) {
        std::uint64_t *row = bits.data() + i * stride;
        for (std::uint32_t s : succs[i]) {
            qr_assert(s > i && s < n,
                      "ReachMatrix edge against topological order");
            row[s / 64] |= 1ull << (s % 64);
            const std::uint64_t *srow = bits.data() + s * stride;
            for (std::size_t w = 0; w < stride; ++w)
                row[w] |= srow[w];
        }
    }
}

ReachMatrix::ReachMatrix(const ChunkGraph &g)
    : ReachMatrix([&g] {
          std::vector<std::vector<std::uint32_t>> succs;
          succs.reserve(g.nodes.size());
          for (const ChunkNode &node : g.nodes)
              succs.push_back(node.succs);
          return succs;
      }())
{
}

bool
ReachMatrix::reaches(std::uint32_t from, std::uint32_t to) const
{
    qr_assert(from < n && to < n, "ReachMatrix query out of range");
    return bits[from * stride + to / 64] >> (to % 64) & 1;
}

} // namespace qr
