#include "replay/verifier.hh"

#include "sim/logging.hh"

namespace qr
{

std::string
VerifyReport::str() const
{
    std::string out;
    for (const auto &m : mismatches) {
        out += m;
        out += '\n';
    }
    return out;
}

VerifyReport
verifyDigests(const Digests &recorded, const Digests &replayed)
{
    VerifyReport rep;
    if (recorded.memory != replayed.memory)
        rep.mismatches.push_back(csprintf(
            "memory digest: recorded %016llx, replayed %016llx",
            static_cast<unsigned long long>(recorded.memory),
            static_cast<unsigned long long>(replayed.memory)));
    if (recorded.output != replayed.output)
        rep.mismatches.push_back(csprintf(
            "output digest: recorded %016llx, replayed %016llx",
            static_cast<unsigned long long>(recorded.output),
            static_cast<unsigned long long>(replayed.output)));
    if (recorded.exits.size() != replayed.exits.size())
        rep.mismatches.push_back(csprintf(
            "thread count: recorded %zu, replayed %zu",
            recorded.exits.size(), replayed.exits.size()));
    for (const auto &[tid, rec] : recorded.exits) {
        auto it = replayed.exits.find(tid);
        if (it == replayed.exits.end()) {
            rep.mismatches.push_back(
                csprintf("tid %d: missing from replay", tid));
            continue;
        }
        const ThreadExitInfo &rep_info = it->second;
        if (rec.regDigest != rep_info.regDigest)
            rep.mismatches.push_back(csprintf(
                "tid %d: register digest mismatch "
                "(%016llx vs %016llx)", tid,
                static_cast<unsigned long long>(rec.regDigest),
                static_cast<unsigned long long>(rep_info.regDigest)));
        if (rec.instrs != rep_info.instrs)
            rep.mismatches.push_back(csprintf(
                "tid %d: instruction count mismatch (%llu vs %llu)", tid,
                static_cast<unsigned long long>(rec.instrs),
                static_cast<unsigned long long>(rep_info.instrs)));
        if (rec.exitCode != rep_info.exitCode)
            rep.mismatches.push_back(csprintf(
                "tid %d: exit code mismatch (%u vs %u)", tid,
                rec.exitCode, rep_info.exitCode));
    }
    rep.ok = rep.mismatches.empty();
    return rep;
}

} // namespace qr
