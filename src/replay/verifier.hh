/**
 * @file
 * Determinism verification: compare the architectural digests of a
 * recorded run against its replay and report any mismatch precisely.
 */

#ifndef QR_REPLAY_VERIFIER_HH
#define QR_REPLAY_VERIFIER_HH

#include <string>
#include <vector>

#include "core/metrics.hh"

namespace qr
{

/** Outcome of digest comparison. */
struct VerifyReport
{
    bool ok = false;
    std::vector<std::string> mismatches;

    /** Render the mismatches (empty string when ok). */
    std::string str() const;
};

/** Compare recorded and replayed digests field by field. */
VerifyReport verifyDigests(const Digests &recorded,
                           const Digests &replayed);

} // namespace qr

#endif // QR_REPLAY_VERIFIER_HH
