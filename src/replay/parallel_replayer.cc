#include "replay/parallel_replayer.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

#include "obs/profile.hh"
#include "sim/logging.hh"

namespace qr
{

namespace
{

double
microsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * The worker-pool scheduler: a mutex-protected ready queue over the
 * DAG. Claiming a chunk and publishing its completion both go through
 * the lock, which also carries the happens-before edge each dependence
 * needs (a successor's worker acquires the lock after its
 * predecessor's worker released it).
 */
class DagScheduler
{
  public:
    explicit DagScheduler(const ChunkGraph &g) : graph(g)
    {
        preds.reserve(g.nodes.size());
        for (const ChunkNode &n : g.nodes)
            preds.push_back(n.preds);
        for (std::uint32_t i = 0; i < g.nodes.size(); ++i)
            if (preds[i] == 0)
                ready.push(i);
    }

    /** Claim the next ready chunk; false when replay is over. */
    bool
    claim(std::uint32_t &out)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] {
            return !ready.empty() || aborted ||
                   done == graph.nodes.size();
        });
        if (aborted || ready.empty())
            return false;
        out = ready.top();
        ready.pop();
        return true;
    }

    /** Publish completion of @p i, waking workers for new ready work. */
    void
    complete(std::uint32_t i)
    {
        std::lock_guard<std::mutex> lock(mu);
        done++;
        for (std::uint32_t s : graph.nodes[i].succs)
            if (--preds[s] == 0)
                ready.push(s);
        cv.notify_all();
    }

    /** Abort the pool, keeping the first divergence reported. */
    void
    abort(const std::string &msg)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!aborted) {
            aborted = true;
            divergence = msg;
        }
        cv.notify_all();
    }

    bool wasAborted() const { return aborted; }
    const std::string &firstDivergence() const { return divergence; }

  private:
    const ChunkGraph &graph;
    std::mutex mu;
    std::condition_variable cv;
    /** Min-heap: idle workers claim the lowest schedule index first. */
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<std::uint32_t>> ready;
    std::vector<std::uint32_t> preds;
    std::size_t done = 0;
    bool aborted = false;
    std::string divergence;
};

} // namespace

ParallelReplayer::ParallelReplayer(const Program &prog_,
                                   const SphereLogs &logs_, int jobs_,
                                   const ReplayCostModel &costs_,
                                   ReplayMode mode_)
    : prog(prog_), logs(logs_), jobs(jobs_), costs(costs_), mode(mode_)
{
    qr_assert(jobs >= 1, "parallel replay needs jobs >= 1, got %d",
              jobs);
}

ParallelReplayResult
ParallelReplayer::run()
{
    ParallelReplayResult res;
    res.speed.jobs = jobs;

    auto t0 = std::chrono::steady_clock::now();
    ChunkGraph graph;
    {
        ProfileScope prof(ProfilePhase::GraphBuild);
        graph = buildChunkGraph(prog, logs, costs, mode);
    }
    res.speed.graphMicros = microsSince(t0);
    res.graphNodes = graph.nodes.size();
    res.graphEdges = graph.edges;

    if (!graph.ok) {
        // The analysis replay is a sequential replay; its divergence is
        // exactly what the oracle reports. Never silently dropped.
        res.replay.ok = false;
        res.replay.divergence = graph.divergence;
        return res;
    }

    res.speed.modeledSequentialCycles = graph.totalCycles();
    res.speed.criticalPathCycles = graph.criticalPathCycles();
    res.speed.modeledParallelCycles = graph.modeledScheduleCycles(jobs);

    ReplayCore core(prog, logs, costs, mode);
    DagScheduler sched(graph);
    int workers = std::max(
        1, std::min<int>(jobs, static_cast<int>(graph.nodes.size())));

    auto t1 = std::chrono::steady_clock::now();
    {
        ProfileScope prof(ProfilePhase::ReplayExec);
        prof.cycles(res.speed.modeledParallelCycles);
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
            pool.emplace_back([&core, &sched, &graph] {
                std::uint32_t i;
                while (sched.claim(i)) {
                    try {
                        core.replayChunk(graph.nodes[i].rec);
                    } catch (const ReplayCore::Divergence &d) {
                        sched.abort(d.msg);
                        return;
                    }
                    sched.complete(i);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }
    res.speed.execMicros = microsSince(t1);

    if (sched.wasAborted()) {
        core.collectCounters(res.replay);
        res.replay.ok = false;
        res.replay.divergence = sched.firstDivergence();
        return res;
    }

    try {
        res.replay = core.finish();
    } catch (const ReplayCore::Divergence &d) {
        core.collectCounters(res.replay);
        res.replay.ok = false;
        res.replay.divergence = d.msg;
    }
    return res;
}

} // namespace qr
