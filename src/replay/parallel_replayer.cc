#include "replay/parallel_replayer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "obs/profile.hh"
#include "replay/ready_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace qr
{

namespace
{

double
microsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** (slot, commit-sequence version) pair of one shared line. */
struct SlotVersion
{
    std::uint32_t slot;
    std::uint32_t version;
};

/**
 * Precomputed commit-fence plan: for every node, the line versions it
 * must observe at claim (all lines it reads or overwrites, at the
 * version the last writer before it publishes) and the versions it
 * publishes at commit (one bump per line it writes). Derived from the
 * same access sets the graph edges come from, in schedule order, so a
 * passed check certifies the claim really happened after every
 * conflicting predecessor's commit fence.
 */
struct FencePlan
{
    std::vector<std::vector<SlotVersion>> expect;  //!< checked at claim
    std::vector<std::vector<SlotVersion>> publish; //!< stored at commit
    std::size_t slots = 0;
};

FencePlan
buildFencePlan(const ChunkGraph &g)
{
    FencePlan plan;
    plan.expect.resize(g.nodes.size());
    plan.publish.resize(g.nodes.size());
    std::unordered_map<Addr, std::uint32_t> slotOf;
    std::vector<std::uint32_t> lastVersion; // indexed by slot

    for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
        const ChunkNode &node = g.nodes[i];
        // Reads first: expectations reference prior chunks only (the
        // node's own writes have not bumped versions yet).
        for (Addr a : node.reads) {
            auto it = slotOf.find(a);
            if (it != slotOf.end() && lastVersion[it->second] > 0)
                plan.expect[i].push_back(
                    {it->second, lastVersion[it->second]});
        }
        for (Addr a : node.writes) {
            auto [it, fresh] = slotOf.emplace(
                a, static_cast<std::uint32_t>(lastVersion.size()));
            if (fresh)
                lastVersion.push_back(0);
            std::uint32_t slot = it->second;
            if (lastVersion[slot] > 0)
                plan.expect[i].push_back({slot, lastVersion[slot]});
            lastVersion[slot]++;
            plan.publish[i].push_back({slot, lastVersion[slot]});
        }
    }
    plan.slots = lastVersion.size();
    return plan;
}

/**
 * Seeded schedule perturbation (QR_REPLAY_STRESS): yields and short
 * sleeps injected at the claim and commit points to shake out worker
 * interleavings the natural timing would never produce. Deterministic
 * per (seed, worker) so stress failures replay under the same knob.
 */
class StressInjector
{
  public:
    StressInjector(std::uint64_t seed, int worker)
        : on(seed != 0), rng(mix64(seed ^ (0x9e3779b97f4a7c15ull *
                                           (worker + 1))))
    {
    }

    void
    perturb()
    {
        if (!on)
            return;
        std::uint64_t roll = rng.below(100);
        if (roll < 40) {
            std::this_thread::yield();
        } else if (roll < 60) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(1 + rng.below(40)));
        }
    }

  private:
    bool on;
    Rng rng;
};

std::uint64_t
stressSeedFromEnv()
{
    // Read once on the coordinating thread before any worker spawns;
    // no setenv anywhere in the process, so the library race
    // concurrency-mt-unsafe guards against cannot occur.
    const char *env = std::getenv("QR_REPLAY_STRESS"); // NOLINT(concurrency-mt-unsafe)
    if (!env || !*env)
        return 0;
    return std::strtoull(env, nullptr, 0);
}

/** What one worker brings back to the join. */
struct WorkerReport
{
    ReplayCore::WorkerContext wc;
    std::uint64_t fenceChecks = 0;
    bool hasDivergence = false;
    std::uint32_t divergenceIndex = 0; //!< schedule index
    std::string divergenceMsg;
};

} // namespace

ParallelReplayer::ParallelReplayer(const Program &prog_,
                                   const SphereLogs &logs_, int jobs_,
                                   const ReplayCostModel &costs_,
                                   ReplayMode mode_)
    : prog(prog_), logs(logs_), jobs(jobs_), costs(costs_), mode(mode_)
{
    qr_assert(jobs >= 1, "parallel replay needs jobs >= 1, got %d",
              jobs);
}

ParallelReplayResult
ParallelReplayer::run()
{
    ParallelReplayResult res;
    res.speed.jobs = jobs;

    auto t0 = std::chrono::steady_clock::now();
    ChunkGraph graph;
    {
        ProfileScope prof(ProfilePhase::GraphBuild);
        graph = buildChunkGraph(prog, logs, costs, mode);
    }
    res.speed.graphMicros = microsSince(t0);
    res.graphNodes = graph.nodes.size();
    res.graphEdges = graph.edges;

    if (!graph.ok) {
        // The analysis replay is a sequential replay; its divergence is
        // exactly what the oracle reports. Never silently dropped.
        res.replay.ok = false;
        res.replay.divergence = graph.divergence;
        return res;
    }

    res.speed.modeledSequentialCycles = graph.totalCycles();
    res.speed.criticalPathCycles = graph.criticalPathCycles();
    res.speed.modeledParallelCycles = graph.modeledScheduleCycles(jobs);

    const std::size_t n = graph.nodes.size();
    ReplayCore core(prog, logs, costs, mode);
    ReplayCore::ThreadStateTable table(logs);
    FencePlan plan = buildFencePlan(graph);
    core.image().versions.arm(plan.slots);
    res.versionSlots = plan.slots;

    // Per-node predecessor counters. fetch_sub(acq_rel) at commit forms
    // a release sequence: the worker whose decrement hits zero -- and,
    // through the ready queue's cell handoff, the worker that claims
    // the successor -- has acquired every predecessor's effects.
    std::vector<std::atomic<std::uint32_t>> preds(n);
    ReadyQueue queue(std::max<std::size_t>(n, 1));
    for (std::uint32_t i = 0; i < n; ++i) {
        preds[i].store(graph.nodes[i].preds, std::memory_order_relaxed);
        if (graph.nodes[i].preds == 0)
            queue.push(i);
    }
    std::atomic<std::size_t> remaining{n};
    if (n == 0)
        queue.close();

    int workers = std::max(
        1, std::min<int>(jobs, static_cast<int>(std::max<std::size_t>(
               n, 1))));
    std::uint64_t stressSeed = stressSeedFromEnv();
    std::vector<WorkerReport> reports(
        static_cast<std::size_t>(workers));
    for (WorkerReport &r : reports)
        r.wc.threads = &table;

    auto workerMain = [&](int w) {
        WorkerReport &rep = reports[static_cast<std::size_t>(w)];
        StressInjector stress(stressSeed, w);
        LineVersionTable &versions = core.image().versions;
        std::uint32_t i;
        while (queue.pop(i)) {
            stress.perturb(); // claim point

            // Claim-time fence check: every line this chunk reads or
            // overwrites must already carry the commit version its
            // last-writing predecessor published.
            for (const SlotVersion &sv : plan.expect[i]) {
                std::uint32_t cur = versions.current(sv.slot);
                if (cur < sv.version) {
                    rep.hasDivergence = true;
                    rep.divergenceIndex = i;
                    rep.divergenceMsg = csprintf(
                        "engine invariant violated: chunk ts %llu "
                        "(tid %d) claimed before a predecessor's "
                        "commit fence (line slot %u at version %u, "
                        "need %u)",
                        static_cast<unsigned long long>(
                            graph.nodes[i].rec.ts),
                        graph.nodes[i].rec.tid, sv.slot, cur,
                        sv.version);
                    queue.close();
                    return;
                }
                rep.fenceChecks++;
            }

            try {
                core.replayChunk(rep.wc, graph.nodes[i].rec);
            } catch (const ReplayCore::Divergence &d) {
                if (!rep.hasDivergence ||
                    i < rep.divergenceIndex) {
                    rep.hasDivergence = true;
                    rep.divergenceIndex = i;
                    rep.divergenceMsg = d.msg;
                }
                queue.close();
                return;
            }

            stress.perturb(); // commit point

            // Commit fence: publish this chunk's line versions
            // (release) before any successor can become ready.
            for (const SlotVersion &sv : plan.publish[i])
                versions.publish(sv.slot, sv.version);

            for (std::uint32_t s : graph.nodes[i].succs)
                if (preds[s].fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
                    queue.push(s);

            if (remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
                queue.close();
        }
    };

    auto t1 = std::chrono::steady_clock::now();
    {
        ProfileScope prof(ProfilePhase::ReplayExec);
        prof.cycles(res.speed.modeledParallelCycles);
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(workerMain, w);
        for (std::thread &t : pool)
            t.join();
    }
    res.speed.execMicros = microsSince(t1);
    res.replay.execMicros = res.speed.execMicros;

    for (const WorkerReport &r : reports)
        res.fenceChecks += r.fenceChecks;

    // Deterministic divergence pick: lowest schedule index across all
    // workers, independent of which worker finished first.
    const WorkerReport *firstDiv = nullptr;
    for (const WorkerReport &r : reports)
        if (r.hasDivergence &&
            (!firstDiv || r.divergenceIndex < firstDiv->divergenceIndex))
            firstDiv = &r;
    if (firstDiv) {
        for (const WorkerReport &r : reports)
            r.wc.accumulateInto(res.replay);
        res.replay.ok = false;
        res.replay.divergence = firstDiv->divergenceMsg;
        res.replay.execMicros = 0;
        return res;
    }

    try {
        res.replay = core.finish(table);
        res.replay.execMicros = res.speed.execMicros;
        for (const WorkerReport &r : reports)
            r.wc.accumulateInto(res.replay);
    } catch (const ReplayCore::Divergence &d) {
        res.replay = ReplayResult{};
        for (const WorkerReport &r : reports)
            r.wc.accumulateInto(res.replay);
        res.replay.ok = false;
        res.replay.divergence = d.msg;
    }
    return res;
}

} // namespace qr
