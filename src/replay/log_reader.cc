#include "replay/log_reader.hh"

namespace qr
{

std::vector<ChunkRecord>
buildSchedule(const SphereLogs &logs)
{
    return logs.chunksByTimestamp();
}

} // namespace qr
