#include "replay/log_reader.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace qr
{

std::vector<ChunkRecord>
buildSchedule(const SphereLogs &logs)
{
    std::vector<ChunkRecord> schedule;
    for (const auto &[tid, t] : logs.threads) {
        for (std::size_t i = 0; i < t.chunks.size(); ++i) {
            qr_assert(t.chunks[i].tid == tid,
                      "chunk log of tid %d contains tid %d", tid,
                      t.chunks[i].tid);
            if (i > 0)
                qr_assert(t.chunks[i - 1].ts < t.chunks[i].ts,
                          "tid %d: non-monotonic chunk timestamps", tid);
        }
        schedule.insert(schedule.end(), t.chunks.begin(), t.chunks.end());
    }
    std::sort(schedule.begin(), schedule.end(),
              [](const ChunkRecord &a, const ChunkRecord &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  return a.tid < b.tid;
              });
    return schedule;
}

} // namespace qr
