#include "replay/log_reader.hh"

#include <algorithm>

#include "bus/device_stream.hh"

namespace qr
{

std::vector<ChunkRecord>
buildSchedule(const SphereLogs &logs)
{
    std::vector<ChunkRecord> all = logs.chunksByTimestamp();
    if (logs.devices.empty())
        return all;

    // Each recorded device event becomes one synthetic record under
    // its agent's pseudo tid, merged into the same (ts, tid) order.
    // The agent's Lamport stamp already orders the event after every
    // chunk it terminated and before every chunk that read its data;
    // pseudo tids above all real tids break pure ties in the device's
    // favor of neither (tied records are provably concurrent).
    for (std::size_t i = 0; i < logs.devices.size(); ++i) {
        const DeviceStream &d = logs.devices[i];
        Timestamp prev = 0;
        for (std::size_t j = 0; j < d.events.size(); ++j) {
            const DeviceEvent &ev = d.events[j];
            if (j > 0 && ev.ts <= prev)
                parseFail("agent %u: non-monotonic device-event "
                          "timestamps", d.agentId);
            prev = ev.ts;
            ChunkRecord rec;
            rec.ts = ev.ts;
            rec.size = ev.words;
            rec.rsw = 0;
            rec.reason = ChunkReason::Device;
            rec.tid = deviceTidFor(i);
            all.push_back(rec);
        }
    }
    std::sort(all.begin(), all.end(),
              [](const ChunkRecord &a, const ChunkRecord &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  return a.tid < b.tid;
              });
    return all;
}

} // namespace qr
