/**
 * @file
 * The parallel replayer's scheduler primitives, exposed standalone so
 * the concurrency property tests can hammer them with synthetic DAGs:
 *
 *  - ReadyQueue: a bounded lock-free MPMC queue of ready chunk
 *    indices (Vyukov ring: one sequence atom per cell, producers and
 *    consumers synchronize per cell, never on a global lock). Workers
 *    that find it drained park on a condition variable; producers only
 *    touch the mutex when a consumer is actually parked, so the claim
 *    and publish fast paths stay lock-free.
 *
 *  - LineVersionTable: per-line commit-sequence versions over the
 *    committed memory image. The replay driver assigns each shared
 *    line a dense slot; a worker publishes slot versions (release)
 *    when it commits a chunk, and a claimer verifies (acquire) that
 *    every line it is about to read has reached the version its DAG
 *    predecessors must have published. A failed check means a chunk
 *    observed a predecessor's effects before that predecessor's commit
 *    fence -- an engine invariant violation, reported loudly.
 *
 * Both carry real happens-before edges, but the *data* ordering the
 * replay relies on flows through the in-degree counters: a successor
 * only enters the queue after its last predecessor's
 * fetch_sub(acq_rel), whose release sequence chains every
 * predecessor's effects to the claimer's acquire pop.
 */

#ifndef QR_REPLAY_READY_QUEUE_HH
#define QR_REPLAY_READY_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace qr
{

/**
 * Bounded lock-free MPMC queue with condition-variable parking.
 *
 * Capacity is fixed at construction and must cover the maximum number
 * of simultaneously ready items (the replay driver sizes it to the
 * node count, which can never be exceeded). push() on a full queue is
 * an assertion failure, not a blocking wait.
 *
 * close() wakes every parked consumer and makes pop() return false
 * immediately -- even if items remain queued. That is the semantics an
 * aborting worker pool wants: nothing after a divergence may execute.
 */
class ReadyQueue
{
  public:
    /** @p capacity is rounded up to a power of two, minimum 2. */
    explicit ReadyQueue(std::size_t capacity);

    ReadyQueue(const ReadyQueue &) = delete;
    ReadyQueue &operator=(const ReadyQueue &) = delete;

    /** Enqueue @p value (lock-free; wakes one parked consumer). */
    void push(std::uint32_t value);

    /** Dequeue without blocking. */
    bool tryPop(std::uint32_t &value);

    /**
     * Dequeue, parking on the condition variable while the queue is
     * drained. Returns false once the queue is closed.
     */
    bool pop(std::uint32_t &value);

    /** Close the queue: pop() fails fast, parked consumers wake. */
    void close();

    bool closed() const
    {
        return closedFlag.load(std::memory_order_acquire);
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq;
        std::uint32_t value;
    };

    std::vector<Cell> cells;
    std::size_t mask;

    // Separate cache lines: producers bump enqueuePos, consumers bump
    // dequeuePos; sharing a line would bounce it on every operation.
    alignas(64) std::atomic<std::size_t> enqueuePos{0};
    alignas(64) std::atomic<std::size_t> dequeuePos{0};

    std::atomic<bool> closedFlag{false};

    // Parking lot: only touched when a consumer finds the queue
    // drained. waiters is checked by producers with a seq_cst fence
    // pairing against the consumer's registration (Dekker pattern), so
    // a push can never slip between a consumer's last tryPop and its
    // wait without a notify.
    std::atomic<int> waiters{0};
    std::mutex mu;
    std::condition_variable cv;
};

/**
 * Per-line commit-sequence versions (see file comment). Slots are
 * dense indices the driver assigns to shared lines; versions start at
 * 0 and each committing writer publishes the next value, so WAW-
 * ordered writers publish 1, 2, 3, ... in DAG order.
 */
class LineVersionTable
{
  public:
    LineVersionTable() = default;

    /** Size the table to @p slots lines, all at version 0. */
    void arm(std::size_t slots);

    bool armed() const { return !seq.empty(); }
    std::size_t slots() const { return seq.size(); }

    /** Publish @p version for @p slot (release). */
    void
    publish(std::uint32_t slot, std::uint32_t version)
    {
        seq[slot].store(version, std::memory_order_release);
    }

    /** Committed version of @p slot (acquire). */
    std::uint32_t
    current(std::uint32_t slot) const
    {
        return seq[slot].load(std::memory_order_acquire);
    }

  private:
    std::vector<std::atomic<std::uint32_t>> seq;
};

} // namespace qr

#endif // QR_REPLAY_READY_QUEUE_HH
