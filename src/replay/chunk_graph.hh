/**
 * @file
 * The chunk-dependence DAG: the partial order a recorded sphere
 * actually requires, extracted from the total (timestamp, tid) order
 * the sequential replayer uses.
 *
 * The logged Lamport timestamps over-serialize replay: they encode a
 * total order, but only *conflicting* chunks (two chunks of different
 * threads touching the same shared word, at least one writing) and
 * same-thread chunks (program order) must actually be ordered. An
 * analysis replay -- a sequential replay that records every
 * shared-memory access each chunk performs -- recovers the exact
 * per-chunk read/write sets, and the graph keeps only the edges that
 * matter:
 *
 *   1. program order: thread's chunk k -> chunk k+1;
 *   2. RAW: last writer of a word -> a later chunk reading it;
 *   3. WAW: last writer of a word -> the next chunk writing it;
 *   4. WAR: every reader since the last write -> the next writer.
 *
 * Edges always point from a smaller to a larger schedule index, so the
 * graph is acyclic by construction (isAcyclic() re-verifies with a
 * topological count for the property tests). Any linear extension --
 * and therefore any parallel execution that respects the edges --
 * projects, per shared word, to the same read/write sequence as the
 * sequential schedule, so replay results are bit-identical.
 */

#ifndef QR_REPLAY_CHUNK_GRAPH_HH
#define QR_REPLAY_CHUNK_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "capo/sphere.hh"
#include "isa/assembler.hh"
#include "replay/replayer.hh"

namespace qr
{

/** One chunk in the dependence graph. */
struct ChunkNode
{
    ChunkRecord rec;
    /** Shared-memory words this chunk read/wrote (sorted, deduped);
     *  store-queue-forwarded loads are thread-local and excluded. */
    std::vector<Addr> reads;
    std::vector<Addr> writes;
    /** Modeled cost of replaying just this chunk (interpretation +
     *  chunk activation + input-record injection). */
    Tick modeledCost = 0;
    std::uint64_t injected = 0; //!< input records the chunk consumes
    /** Dependence edges to later schedule indices (sorted, deduped). */
    std::vector<std::uint32_t> succs;
    std::uint32_t preds = 0; //!< in-degree
};

/** The dependence DAG of one recorded sphere, in schedule order. */
struct ChunkGraph
{
    /** Nodes indexed by position in the (ts, tid) total order. */
    std::vector<ChunkNode> nodes;
    std::uint64_t edges = 0;

    /** False iff the analysis replay diverged (graph unusable). */
    bool ok = false;
    std::string divergence;

    /** Kahn's-algorithm check; true for every well-formed graph. */
    bool isAcyclic() const;

    /** Sum of all node costs == modeled sequential replay time. */
    Tick totalCycles() const;

    /** Longest cost-weighted path: modeled replay time with
     *  unbounded workers. */
    Tick criticalPathCycles() const;

    /**
     * Modeled replay time with @p jobs workers under a deterministic
     * greedy list schedule (free workers claim the lowest-index ready
     * chunk). Bounded below by criticalPathCycles() and by
     * totalCycles() / jobs.
     */
    Tick modeledScheduleCycles(int jobs) const;
};

/**
 * Build the dependence graph of @p logs by running an analysis replay
 * of @p prog. If the analysis replay diverges the graph comes back
 * with ok = false and the divergence message (the sphere cannot be
 * replayed at all, sequentially or otherwise).
 *
 * In degraded mode the analysis replay never diverges: gap markers
 * and chunks past a poisoned thread's divergence point contribute
 * nodes with empty access sets (ordered only by program-order edges,
 * matching what the real degraded replay skips), and a chunk that
 * diverged mid-execution keeps its partial write set so later
 * conflicting chunks are still ordered after it.
 */
ChunkGraph buildChunkGraph(const Program &prog, const SphereLogs &logs,
                           const ReplayCostModel &costs = {},
                           ReplayMode mode = ReplayMode::Strict);

/**
 * Dense transitive closure over a ChunkGraph for path queries --
 * O(V^2/64) memory, used by the DAG-soundness property tests to check
 * that every conflicting chunk pair is ordered by some path.
 */
class ReachMatrix
{
  public:
    explicit ReachMatrix(const ChunkGraph &g);

    /**
     * Closure over a bare adjacency structure: @p succs[i] lists the
     * successors of node i, every one strictly greater than i (nodes
     * must be topologically ordered by index, as schedule order is).
     * Lets graph builders without ChunkNodes (the offline analyzer)
     * reuse the same dense-closure machinery.
     */
    explicit ReachMatrix(
        const std::vector<std::vector<std::uint32_t>> &succs);

    /** True iff a directed path @p from -> @p to exists. */
    bool reaches(std::uint32_t from, std::uint32_t to) const;

  private:
    std::size_t n = 0;
    std::size_t stride = 0; //!< 64-bit words per row
    std::vector<std::uint64_t> bits;
};

} // namespace qr

#endif // QR_REPLAY_CHUNK_GRAPH_HH
