/**
 * @file
 * Replay schedule construction: merge the per-thread chunk logs into
 * the global total order the replayer enforces.
 */

#ifndef QR_REPLAY_LOG_READER_HH
#define QR_REPLAY_LOG_READER_HH

#include <vector>

#include "capo/sphere.hh"
#include "rnr/chunk_record.hh"

namespace qr
{

/**
 * All chunk records of a sphere, sorted by (timestamp, tid). The
 * Lamport construction guarantees every inter-thread dependence is an
 * edge from a smaller to a strictly larger timestamp, so any total
 * order that respects timestamps (ties broken by tid -- tied chunks
 * are provably concurrent) is a legal replay schedule.
 */
std::vector<ChunkRecord> buildSchedule(const SphereLogs &logs);

} // namespace qr

#endif // QR_REPLAY_LOG_READER_HH
