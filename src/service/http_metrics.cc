#include "service/http_metrics.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qr
{
namespace
{

/** Write all of @p text to @p fd (best effort; peer may hang up). */
void
sendAll(int fd, const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        // MSG_NOSIGNAL: a scraper hanging up mid-response must not
        // SIGPIPE the whole service.
        ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

std::string
httpResponse(int code, const char *status, const std::string &body,
             const char *contentType)
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  code, status, contentType, body.size());
    return std::string(head) + body;
}

} // namespace

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

bool
MetricsHttpServer::start(int port, Renderer render)
{
    render_ = std::move(render);
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error_ = "socket() failed";
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        error_ = "cannot bind 127.0.0.1:" + std::to_string(port);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    stopping_.store(false);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (listenFd_ < 0)
        return;
    stopping_.store(true);
    // shutdown() wakes the blocked accept(); close alone is not
    // guaranteed to on every platform.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
}

void
MetricsHttpServer::serveLoop()
{
    while (!stopping_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            continue;
        }
        handle(fd);
        ::close(fd);
    }
}

void
MetricsHttpServer::handle(int fd)
{
    char buf[1024];
    ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
    if (n <= 0)
        return;
    buf[n] = '\0';
    // Request line only; everything after the path is ignored.
    std::string req(buf);
    std::size_t sp1 = req.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : req.find(' ', sp1 + 1);
    std::string path =
        sp2 == std::string::npos
            ? ""
            : req.substr(sp1 + 1, sp2 - sp1 - 1);
    if (req.compare(0, 4, "GET ") != 0) {
        sendAll(fd, httpResponse(405, "Method Not Allowed",
                                 "method not allowed\n",
                                 "text/plain"));
        return;
    }
    if (path == "/metrics") {
        sendAll(fd, httpResponse(
                        200, "OK", render_ ? render_() : "",
                        "text/plain; version=0.0.4; charset=utf-8"));
    } else if (path == "/healthz") {
        sendAll(fd, httpResponse(200, "OK", "ok\n", "text/plain"));
    } else {
        sendAll(fd, httpResponse(404, "Not Found", "not found\n",
                                 "text/plain"));
    }
}

std::string
httpGetLocal(int port, const std::string &path, std::string &err)
{
    err.clear();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = "socket() failed";
        return "";
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        err = "cannot connect to 127.0.0.1:" + std::to_string(port);
        ::close(fd);
        return "";
    }
    std::string req = "GET " + path + " HTTP/1.1\r\n"
                      "Host: 127.0.0.1\r\n"
                      "Connection: close\r\n\r\n";
    sendAll(fd, req);
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::size_t eol = resp.find("\r\n");
    if (eol == std::string::npos ||
        resp.compare(0, 9, "HTTP/1.1 ") != 0) {
        err = "malformed HTTP response";
        return "";
    }
    int code = std::atoi(resp.c_str() + 9);
    std::size_t body = resp.find("\r\n\r\n");
    if (body == std::string::npos) {
        err = "truncated HTTP response";
        return "";
    }
    if (code != 200) {
        err = "HTTP status " + std::to_string(code);
        return "";
    }
    return resp.substr(body + 4);
}

} // namespace qr
