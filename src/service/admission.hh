/**
 * @file
 * Admission control for the qrecd record service: the pure policy
 * deciding what happens to a sphere submitted to a loaded fleet.
 *
 * The controller is deliberately stateless -- it judges one snapshot
 * of the service (active recordings, queue depth, retained bytes)
 * against fixed budgets -- so the policy is unit-testable without
 * threads and the service can consult it under its own lock.
 *
 * Load-shedding ladder, most graceful first:
 *   1. Admit          -- inside every budget.
 *   2. AdmitDegraded  -- the retained-byte budget is breached (soft):
 *                        record anyway, but with a clamped CBUF and
 *                        forced drain-signal drops, so the sphere
 *                        lands as a small gap-marked (lossy) artifact
 *                        instead of growing the backlog at full rate.
 *   3. Reject*        -- queue full, hard byte ceiling, or shutdown:
 *                        a typed reason the client can act on.
 */

#ifndef QR_SERVICE_ADMISSION_HH
#define QR_SERVICE_ADMISSION_HH

#include <cstdint>
#include <string>

namespace qr
{

/** Per-sphere and fleet-wide budgets the controller enforces. */
struct AdmissionBudgets
{
    /** Concurrent recordings across all workers. */
    std::uint64_t maxActive = 4;
    /** Spheres waiting for a worker beyond the active set. */
    std::uint64_t maxQueued = 64;
    /**
     * Soft retained-byte budget: past this, new spheres are admitted
     * degraded (gap-marked recording). 0 = unlimited.
     */
    std::uint64_t retainedByteBudget = 0;
    /**
     * Hard ceiling as a multiple of retainedByteBudget: past
     * budget * hardByteFactor, new spheres are rejected outright.
     */
    std::uint64_t hardByteFactor = 4;
    /** CBUF entries a degraded admission is clamped to. */
    std::uint32_t degradedCbufEntries = 64;
};

/** What the controller decided for one submission. */
enum class AdmissionOutcome
{
    Admit = 0,
    AdmitDegraded,   //!< record gap-marked under the byte budget
    RejectQueueFull, //!< active + queued spheres at the budget
    RejectByteBudget,//!< retained bytes past the hard ceiling
    RejectShutdown,  //!< service is draining; no new work
};

/** Stable lowercase name of an outcome (metrics label, logs). */
const char *admissionOutcomeName(AdmissionOutcome o);

/** @return true when the outcome sheds the sphere entirely. */
inline bool
admissionRejected(AdmissionOutcome o)
{
    return o != AdmissionOutcome::Admit &&
           o != AdmissionOutcome::AdmitDegraded;
}

/** One snapshot of the service state the policy judges. */
struct AdmissionState
{
    std::uint64_t active = 0;        //!< recordings running now
    std::uint64_t queued = 0;        //!< submissions waiting
    std::uint64_t retainedBytes = 0; //!< bytes in the artifact store
    bool shuttingDown = false;
};

/** The stateless admission policy. */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionBudgets &b)
        : budgets(b)
    {
    }

    AdmissionOutcome decide(const AdmissionState &s) const;

    const AdmissionBudgets &budgets;
};

} // namespace qr

#endif // QR_SERVICE_ADMISSION_HH
