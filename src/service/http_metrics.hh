/**
 * @file
 * Minimal loopback HTTP endpoint exposing a live Prometheus scrape of
 * the record service, plus the matching one-shot client (`qrec stats
 * --scrape`, the CI soak stage) so nothing in the toolchain needs an
 * external HTTP client.
 *
 * Deliberately tiny: plain POSIX TCP on 127.0.0.1 only, one accept
 * thread, one request per connection, GET /metrics (Prometheus text)
 * and GET /healthz ("ok"). The renderer callback is invoked on the
 * accept thread, so it must be thread-safe against the service -- the
 * service's snapshot() is exactly that.
 */

#ifndef QR_SERVICE_HTTP_METRICS_HH
#define QR_SERVICE_HTTP_METRICS_HH

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace qr
{

/** Loopback-only HTTP server for /metrics and /healthz. */
class MetricsHttpServer
{
  public:
    /** Renders the current Prometheus text exposition. */
    using Renderer = std::function<std::string()>;

    MetricsHttpServer() = default;
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * thread. @return false with error() set when the bind fails.
     */
    bool start(int port, Renderer render);

    /** Stop the accept thread and close the socket. Idempotent. */
    void stop();

    /** The bound port (the real one when started with port 0). */
    int port() const { return port_; }

    const std::string &error() const { return error_; }

  private:
    void serveLoop();
    void handle(int fd);

    Renderer render_;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    int listenFd_ = -1;
    int port_ = -1;
    std::string error_;
};

/**
 * One-shot HTTP GET of http://127.0.0.1:@p port@p path; the response
 * body on success, an empty string with @p err set on any failure
 * (connect refused, malformed response, non-200 status).
 */
std::string httpGetLocal(int port, const std::string &path,
                         std::string &err);

} // namespace qr

#endif // QR_SERVICE_HTTP_METRICS_HH
