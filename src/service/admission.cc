#include "service/admission.hh"

namespace qr
{

const char *
admissionOutcomeName(AdmissionOutcome o)
{
    switch (o) {
      case AdmissionOutcome::Admit:
        return "admit";
      case AdmissionOutcome::AdmitDegraded:
        return "admit-degraded";
      case AdmissionOutcome::RejectQueueFull:
        return "reject-queue-full";
      case AdmissionOutcome::RejectByteBudget:
        return "reject-byte-budget";
      case AdmissionOutcome::RejectShutdown:
        return "reject-shutdown";
    }
    return "?";
}

AdmissionOutcome
AdmissionController::decide(const AdmissionState &s) const
{
    if (s.shuttingDown)
        return AdmissionOutcome::RejectShutdown;
    // Queue pressure beats byte pressure: a full queue means workers
    // cannot even start the sphere, degraded or not.
    if (s.active + s.queued >= budgets.maxActive + budgets.maxQueued)
        return AdmissionOutcome::RejectQueueFull;
    if (budgets.retainedByteBudget) {
        std::uint64_t hard =
            budgets.retainedByteBudget * budgets.hardByteFactor;
        if (s.retainedBytes >= hard)
            return AdmissionOutcome::RejectByteBudget;
        if (s.retainedBytes >= budgets.retainedByteBudget)
            return AdmissionOutcome::AdmitDegraded;
    }
    return AdmissionOutcome::Admit;
}

} // namespace qr
