#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <unistd.h>

#include "core/artifact.hh"
#include "core/session.hh"
#include "sim/logging.hh"

namespace qr
{
namespace
{

/** @return @p spec with @p clause appended (spec may be empty). */
std::string
appendClause(const std::string &spec, const std::string &clause)
{
    return spec.empty() ? clause : spec + "," + clause;
}

/** @return true when @p spec already arms @p site (by name). */
bool
specArms(const std::string &spec, const char *site)
{
    return spec.find(site) != std::string::npos;
}

} // namespace

RecordService::RecordService(ServiceConfig cfg)
    : _cfg(std::move(cfg)), _store(_cfg.dir), _admission(_cfg.budgets)
{
    if (_cfg.workers < 1)
        _cfg.workers = 1;
    _shards.resize(static_cast<std::size_t>(_cfg.workers));
    if (!_cfg.faultSpec.empty()) {
        // Retention compaction rewrites share the fleet chaos plan
        // (its I/O sites), on an independent stream like the CLI's
        // I/O-layer copy.
        _retentionFaults =
            FaultPlan::parse(_cfg.faultSpec, _cfg.faultSeed ^ 0x5e5);
    }
}

RecordService::~RecordService()
{
    shutdown();
}

void
RecordService::start()
{
    {
        std::lock_guard<std::mutex> lk(_mu);
        if (_started)
            return;
        _started = true;
    }
    // Restart path first: adopt sealed survivors, then heal whatever
    // the previous life left torn -- before any new sphere can race
    // the sweep.
    _store.rescan();
    repairNow();

    for (std::size_t i = 0; i < _shards.size(); ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
    _repairThread = std::thread([this] { repairLoop(); });
    if (_cfg.metricsPort >= 0) {
        if (!_http.start(_cfg.metricsPort,
                         [this] { return snapshot().prometheus(); }))
            warn("qrecd: metrics endpoint disabled: %s",
                 _http.error().c_str());
    }
}

int
RecordService::metricsPort() const
{
    return _http.port();
}

SubmitResult
RecordService::submit(SphereRequest req)
{
    SubmitResult res;
    std::lock_guard<std::mutex> lk(_mu);
    _ctr.submitted++;

    AdmissionState st;
    st.active = _active;
    st.queued = _queued;
    st.retainedBytes = _store.retainedBytes();
    st.shuttingDown = _shuttingDown;
    res.outcome = _admission.decide(st);

    switch (res.outcome) {
      case AdmissionOutcome::Admit:
        _ctr.admitted++;
        break;
      case AdmissionOutcome::AdmitDegraded:
        _ctr.admittedDegraded++;
        break;
      case AdmissionOutcome::RejectQueueFull:
        _ctr.shedQueueFull++;
        return res;
      case AdmissionOutcome::RejectByteBudget:
        _ctr.shedByteBudget++;
        return res;
      case AdmissionOutcome::RejectShutdown:
        _ctr.shedShutdown++;
        return res;
    }

    Job job;
    job.id = ++_nextId;
    job.req = std::move(req);
    job.degraded = res.outcome == AdmissionOutcome::AdmitDegraded;
    res.sphereId = job.id;
    std::size_t shard =
        static_cast<std::size_t>(job.id) % _shards.size();
    _shards[shard].queue.push_back(std::move(job));
    _queued++;
    _work.notify_all();
    return res;
}

RecorderConfig
RecordService::recorderConfigFor(const Job &job) const
{
    RecorderConfig rcfg = _cfg.rcfg;
    rcfg.faults.spec = _cfg.faultSpec;
    // Per-sphere seed: the fleet chaos plan stays one spec, but every
    // sphere draws its own deterministic fault stream.
    rcfg.faults.seed = _cfg.faultSeed + job.id;
    if (job.degraded) {
        // Degraded admission: clamp the CBUF and force drain-signal
        // drops, so the sphere lands as a small gap-marked (lossy)
        // artifact instead of growing the backlog at full rate.
        rcfg.cbuf.entries = _cfg.budgets.degradedCbufEntries;
        if (!specArms(rcfg.faults.spec, "cbuf-drop"))
            rcfg.faults.spec =
                appendClause(rcfg.faults.spec, "cbuf-drop@0.25");
    }
    return rcfg;
}

void
RecordService::workerLoop(std::size_t shard)
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(_mu);
            _work.wait(lk, [&] {
                return !_shards[shard].queue.empty() || _shuttingDown;
            });
            if (_shards[shard].queue.empty()) {
                if (_shuttingDown)
                    return; // admission closed: no more work can come
                continue;
            }
            job = std::move(_shards[shard].queue.front());
            _shards[shard].queue.pop_front();
            _queued--;
            if (_abortQueued) {
                // Past the drain deadline: whatever never started is
                // dropped -- but counted, never silently.
                _ctr.aborted++;
                if (idleLocked())
                    _idle.notify_all();
                continue;
            }
            _active++;
        }
        runJob(std::move(job));
        {
            std::lock_guard<std::mutex> lk(_mu);
            _active--;
            if (idleLocked())
                _idle.notify_all();
        }
    }
}

void
RecordService::runJob(Job &&job)
{
    RecorderConfig rcfg = recorderConfigFor(job);
    RecordResult rec = recordProgramUntil(job.req.program, _cfg.mcfg,
                                          rcfg, _stopRecording);
    {
        std::lock_guard<std::mutex> lk(_mu);
        _ctr.recorded++;
        if (rec.interrupted)
            _ctr.interrupted++;
    }
    persist(job, std::move(rec));
}

void
RecordService::persist(const Job &job, RecordResult &&rec)
{
    SphereArtifact art;
    art.workload = job.req.workload;
    art.threads = job.req.threads;
    art.scale = job.req.scale;
    art.digests = rec.metrics.digests;
    art.logs = std::move(rec.logs);

    std::string path = _store.nextPath(job.req.workload);

    // The I/O layer rolls its own per-sphere plan, independent of the
    // recorder's streams (same idiom as the CLI).
    FaultPlan ioPlan;
    FaultPlan *iop = nullptr;
    if (!_cfg.faultSpec.empty()) {
        ioPlan = FaultPlan::parse(_cfg.faultSpec,
                                  _cfg.faultSeed + job.id);
        iop = &ioPlan;
    }

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(_cfg.saveDeadlineMs);
    SegmentedWriteResult saved;
    for (int attempt = 0; attempt <= _cfg.saveRetries; ++attempt) {
        if (attempt) {
            {
                std::lock_guard<std::mutex> lk(_mu);
                _ctr.saveRetries++;
            }
            // Doubling backoff, bounded by the persist deadline: a
            // full disk must shed the sphere, not wedge the shard.
            auto backoff = std::chrono::milliseconds(
                _cfg.backoffBaseMs << (attempt - 1));
            if (std::chrono::steady_clock::now() + backoff > deadline)
                break;
            std::this_thread::sleep_for(backoff);
        }
        {
            std::lock_guard<std::mutex> lk(_mu);
            _ctr.saveAttempts++;
        }
        saved = saveArtifact(art, path, iop);
        if (saved)
            break;
    }

    std::lock_guard<std::mutex> lk(_mu);
    if (saved) {
        _store.commit(path, saved.bytes);
        _ctr.saved++;
    } else if (saved.bytes > 0) {
        // A torn file survived the last attempt: the repair loop will
        // salvage its intact prefix into a sealed artifact.
        _ctr.saveTornLeft++;
    } else {
        // Nothing on disk (persistent ENOSPC): a witnessed loss.
        _ctr.saveLost++;
    }
}

void
RecordService::applyRotation(const RotationResult &r)
{
    std::lock_guard<std::mutex> lk(_mu);
    _ctr.retentionCompacted += r.compacted;
    _ctr.retentionCompactFailures += r.compactFailures;
    _ctr.retentionEvicted += r.evicted;
    _ctr.retentionBytesFreed += r.bytesFreed;
}

CompactOutcome
RecordService::compactArtifact(const std::string &path,
                               FaultPlan *faults)
{
    CompactOutcome out;
    ArtifactLoadResult loaded = loadArtifact(path);
    if (!loaded) {
        out.error = loaded.detail.empty() ? "artifact unreadable"
                                          : loaded.detail;
        return out;
    }
    if (loaded.artifact.trace.empty()) {
        out.error = "no compactible section";
        return out;
    }
    // Drop the optional trace section; the sphere (the replayable
    // product) is untouched. saveArtifact goes through temp + rename,
    // so any failure -- injected ENOSPC included -- keeps the
    // original artifact intact.
    loaded.artifact.trace.clear();
    SegmentedWriteResult w = saveArtifact(loaded.artifact, path, faults);
    if (!w) {
        out.error = w.error;
        out.injected = w.injected;
        return out;
    }
    out.ok = true;
    out.newBytes = w.bytes;
    return out;
}

void
RecordService::repairNow()
{
    StoreScan scan = _store.scan();
    std::uint64_t temps = 0, recovered = 0, unrecoverable = 0,
                  skipped = 0;
    for (const std::string &tmp : scan.temps) {
        if (::unlink(tmp.c_str()) == 0)
            temps++;
    }
    for (const ArtifactFile &f : scan.unsealed) {
        ArtifactRecoverResult r = recoverArtifact(f.path, f.path);
        if (r.ok) {
            recovered++;
            _store.commit(f.path, r.bytes);
        } else if (r.stage == RecoverStage::Empty &&
                   r.detail.rfind("cannot read", 0) == 0) {
            // The file vanished between scan and salvage: rotation
            // (or a save retry's rename) won the race. Nothing lost.
            skipped++;
        } else {
            // Not salvageable: quarantine it out of the .qrec
            // namespace so the loss is visible on disk and the sweep
            // does not retry it forever.
            std::string quarantine = f.path + ".unrecoverable";
            if (::rename(f.path.c_str(), quarantine.c_str()) == 0)
                unrecoverable++;
            else
                skipped++;
        }
    }

    // One retention pass after repair: salvaged artifacts count
    // against the budgets like any other commit.
    RotationResult rot = _store.enforce(
        _cfg.retention,
        [this](const std::string &p, FaultPlan *fp) {
            return compactArtifact(p, fp);
        },
        _cfg.faultSpec.empty() ? nullptr : &_retentionFaults);

    std::lock_guard<std::mutex> lk(_mu);
    _ctr.repairTempsRemoved += temps;
    _ctr.repairRecovered += recovered;
    _ctr.repairUnrecoverable += unrecoverable;
    _ctr.repairSkipped += skipped;
    _ctr.retentionCompacted += rot.compacted;
    _ctr.retentionCompactFailures += rot.compactFailures;
    _ctr.retentionEvicted += rot.evicted;
    _ctr.retentionBytesFreed += rot.bytesFreed;
}

void
RecordService::repairLoop()
{
    std::unique_lock<std::mutex> lk(_mu);
    for (;;) {
        _repairTick.wait_for(
            lk, std::chrono::milliseconds(_cfg.repairIntervalMs),
            [&] { return _shuttingDown; });
        if (_shuttingDown)
            return;
        lk.unlock();
        repairNow();
        lk.lock();
    }
}

bool
RecordService::idleLocked() const
{
    return _queued == 0 && _active == 0;
}

void
RecordService::waitIdle()
{
    std::unique_lock<std::mutex> lk(_mu);
    _idle.wait(lk, [&] { return idleLocked(); });
}

void
RecordService::shutdown()
{
    std::vector<std::thread> workers;
    std::thread repair;
    {
        std::unique_lock<std::mutex> lk(_mu);
        if (!_started)
            return;
        if (!_shuttingDown) {
            _shuttingDown = true;
            _work.notify_all();
            _repairTick.notify_all();
        }
        if (_workers.empty())
            return; // a prior shutdown() already joined everything

        // Bounded drain: let queued + in-flight spheres finish...
        bool drained = _idle.wait_for(
            lk, std::chrono::milliseconds(_cfg.drainDeadlineMs),
            [&] { return idleLocked(); });
        if (!drained) {
            // ...then interrupt. In-flight recordings finalize their
            // prefix and persist sealed; never-started jobs abort.
            _abortQueued = true;
            _stopRecording.store(true);
            _work.notify_all();
        }
        workers.swap(_workers);
        repair.swap(_repairThread);
    }

    for (std::thread &t : workers)
        t.join();
    if (repair.joinable())
        repair.join();
    _http.stop();

    // Final sweep with every writer quiesced: seal or salvage
    // whatever the interrupted tail left behind.
    repairNow();
}

ServiceCounters
RecordService::counters() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _ctr;
}

StatsSnapshot
RecordService::snapshot() const
{
    ServiceCounters c;
    std::uint64_t queued, active;
    {
        std::lock_guard<std::mutex> lk(_mu);
        c = _ctr;
        queued = _queued;
        active = _active;
    }
    std::uint64_t retainedBytes = _store.retainedBytes();
    std::uint64_t retainedCount = _store.retainedCount();

    StatsSnapshot s;
    s.counter("service.submitted", c.submitted,
              "spheres submitted to the service");
    s.counter("service.admitted", c.admitted,
              "spheres admitted at full fidelity");
    s.counter("service.admitted_degraded", c.admittedDegraded,
              "spheres admitted in degraded (gap-marked) mode");
    s.counter("service.shed.queue_full", c.shedQueueFull,
              "spheres rejected: queue budget");
    s.counter("service.shed.byte_budget", c.shedByteBudget,
              "spheres rejected: hard retained-byte ceiling");
    s.counter("service.shed.shutdown", c.shedShutdown,
              "spheres rejected: service draining");
    s.counter("service.recorded", c.recorded,
              "recordings run to completion or interruption");
    s.counter("service.interrupted", c.interrupted,
              "recordings cut at shutdown (prefix persisted)");
    s.counter("service.save.attempts", c.saveAttempts,
              "artifact persist attempts");
    s.counter("service.save.retries", c.saveRetries,
              "persist retries after an I/O failure");
    s.counter("service.saved", c.saved,
              "artifacts sealed and committed to the store");
    s.counter("service.save.torn_left", c.saveTornLeft,
              "persists that left a torn file for the repair loop");
    s.counter("service.save.lost", c.saveLost,
              "spheres lost with nothing on disk (witnessed)");
    s.counter("service.aborted", c.aborted,
              "queued spheres aborted past the drain deadline");
    s.counter("service.repair.recovered", c.repairRecovered,
              "torn artifacts salvaged to sealed by the repair loop");
    s.counter("service.repair.temps_removed", c.repairTempsRemoved,
              "leftover temp files swept");
    s.counter("service.repair.unrecoverable", c.repairUnrecoverable,
              "artifacts quarantined as unrecoverable");
    s.counter("service.repair.skipped", c.repairSkipped,
              "repair candidates that vanished mid-sweep");
    s.counter("service.retention.compacted", c.retentionCompacted,
              "artifacts compacted by retention");
    s.counter("service.retention.compact_failures",
              c.retentionCompactFailures,
              "compactions that failed (artifact kept intact)");
    s.counter("service.retention.evicted", c.retentionEvicted,
              "artifacts evicted by retention");
    s.counter("service.retention.bytes_freed", c.retentionBytesFreed,
              "bytes reclaimed by retention");
    s.gauge("service.active", static_cast<double>(active),
            "recordings running right now");
    s.gauge("service.queued", static_cast<double>(queued),
            "spheres waiting for a worker");
    s.gauge("service.store.artifacts",
            static_cast<double>(retainedCount),
            "sealed artifacts retained in the store");
    s.gauge("service.store.bytes", static_cast<double>(retainedBytes),
            "bytes retained in the store");

    // The zero-silent-loss ledger: every submission must be shed,
    // persisted (or visibly torn/lost/aborted), or still in flight.
    std::uint64_t accounted = c.shedQueueFull + c.shedByteBudget +
                              c.shedShutdown + c.saved +
                              c.saveTornLeft + c.saveLost + c.aborted +
                              queued + active;
    double unaccounted = static_cast<double>(c.submitted) -
                         static_cast<double>(accounted);
    s.gauge("service.unaccounted", unaccounted,
            "submissions not in any ledger bucket (must be 0)");
    return s;
}

} // namespace qr
