/**
 * @file
 * qrecd: the crash-tolerant multi-sphere record service.
 *
 * A RecordService hosts many concurrent replay spheres over the
 * existing record stack and owns everything a long-running deployment
 * needs around it:
 *
 *  - admission control (service/admission.hh): typed load shedding,
 *    with over-budget spheres degraded to gap-marked recording
 *    instead of refused;
 *  - sharded record/drain workers: submissions hash to one of N
 *    worker shards, each recording spheres to completion and
 *    persisting them with bounded retry + deadline + doubling backoff
 *    (the QSG1 counterpart of the RSM's own CBUF-drain retry path);
 *  - rotation/retention (capo/retention.hh): sealed-segment handoff
 *    into an ArtifactStore, with byte/count budgets enforced by
 *    compact-then-evict after every commit;
 *  - a supervised repair loop: leftover temp files are swept and
 *    every unsealed (torn) artifact is salvaged in place through
 *    recoverArtifact(), so a SIGKILL'd service heals its own
 *    directory on the next start;
 *  - fault-plan chaos: one spec applies to the whole fleet, with
 *    per-sphere seeds, so soak runs inject CBUF drops, drain
 *    failures, torn writes and ENOSPC into live traffic
 *    deterministically;
 *  - live observability: snapshot() renders the service counters as
 *    the same StatsSnapshot tree every other surface uses, and an
 *    optional loopback /metrics endpoint serves the Prometheus text.
 *
 * The accounting is closed by construction: every submitted sphere
 * ends in exactly one of {shed, saved, torn-left-for-repair, lost,
 * aborted} (or is still in flight), and snapshot() exports the
 * difference as service.unaccounted -- the zero-silent-loss invariant
 * the soak harness asserts is that this gauge is 0 and that every
 * retained artifact verifies clean or replays degraded.
 */

#ifndef QR_SERVICE_SERVICE_HH
#define QR_SERVICE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "capo/retention.hh"
#include "core/config.hh"
#include "fault/fault_plan.hh"
#include "isa/assembler.hh"
#include "obs/stats_export.hh"
#include "service/admission.hh"
#include "service/http_metrics.hh"

namespace qr
{

struct RecordResult;

/** Everything qrecd is configured with. */
struct ServiceConfig
{
    std::string dir = "qrecd-spheres"; //!< artifact store directory
    int workers = 2;                   //!< record/drain worker shards
    AdmissionBudgets budgets;
    RetentionPolicy retention;

    /** Fleet-wide chaos spec (fault/fault_plan.hh); empty = none. */
    std::string faultSpec;
    std::uint64_t faultSeed = 1; //!< per-sphere seeds derive from this

    int saveRetries = 4;      //!< persist attempts beyond the first
    int backoffBaseMs = 1;    //!< doubling backoff base per retry
    int saveDeadlineMs = 2000;  //!< give up persisting past this
    int drainDeadlineMs = 2000; //!< graceful-shutdown drain bound
    int repairIntervalMs = 200; //!< supervised repair loop period

    /** /metrics HTTP port: -1 = no endpoint, 0 = ephemeral. */
    int metricsPort = -1;

    MachineConfig mcfg;
    RecorderConfig rcfg;
};

/** One sphere submitted to the service. */
struct SphereRequest
{
    std::string workload; //!< stem for the artifact filename
    int threads = 4;
    int scale = 1;
    Program program;
};

/** What submit() decided (and, when admitted, the sphere's id). */
struct SubmitResult
{
    AdmissionOutcome outcome = AdmissionOutcome::Admit;
    std::uint64_t sphereId = 0; //!< assigned when admitted

    bool admitted() const { return !admissionRejected(outcome); }
};

/** Closed-accounting counters; every submission lands in one bucket. */
struct ServiceCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t admittedDegraded = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedByteBudget = 0;
    std::uint64_t shedShutdown = 0;
    std::uint64_t recorded = 0;
    std::uint64_t interrupted = 0; //!< recordings cut at shutdown
    std::uint64_t saveAttempts = 0;
    std::uint64_t saveRetries = 0;
    std::uint64_t saved = 0;
    std::uint64_t saveTornLeft = 0; //!< torn file left for repair
    std::uint64_t saveLost = 0;     //!< witnessed loss (nothing on disk)
    std::uint64_t aborted = 0;      //!< queued jobs dropped at shutdown
    std::uint64_t repairRecovered = 0;
    std::uint64_t repairTempsRemoved = 0;
    std::uint64_t repairUnrecoverable = 0;
    std::uint64_t repairSkipped = 0; //!< raced rotation (file vanished)
    std::uint64_t retentionCompacted = 0;
    std::uint64_t retentionCompactFailures = 0;
    std::uint64_t retentionEvicted = 0;
    std::uint64_t retentionBytesFreed = 0;
};

/** The qrecd daemon core (CLI-independent; tests embed it directly). */
class RecordService
{
  public:
    explicit RecordService(ServiceConfig cfg);
    ~RecordService();

    RecordService(const RecordService &) = delete;
    RecordService &operator=(const RecordService &) = delete;

    /**
     * Start the service: rescan the store (sealed survivors become
     * the retained set), run one repair sweep over whatever a crash
     * left behind, then spawn the worker shards, the repair loop and
     * (when configured) the /metrics endpoint.
     */
    void start();

    /**
     * Submit one sphere. Admission is decided synchronously; an
     * admitted sphere is queued to its worker shard.
     */
    SubmitResult submit(SphereRequest req);

    /** Block until no sphere is queued or recording. */
    void waitIdle();

    /**
     * Graceful shutdown: close admission, drain queued + in-flight
     * spheres within drainDeadlineMs, then interrupt whatever is
     * still recording (the prefix is finalized and persisted as a
     * sealed degraded-replayable artifact) and abort what never
     * started, every one counted. Idempotent; the destructor calls
     * it.
     */
    void shutdown();

    /** Run one synchronous repair sweep (also runs periodically). */
    void repairNow();

    /** Live stats: counters, queue/store gauges, unaccounted. */
    StatsSnapshot snapshot() const;

    /** Counters alone (tests assert the accounting directly). */
    ServiceCounters counters() const;

    const ArtifactStore &store() const { return _store; }
    ArtifactStore &store() { return _store; }

    /** Bound /metrics port, or -1 when no endpoint is configured. */
    int metricsPort() const;

    const ServiceConfig &config() const { return _cfg; }

  private:
    struct Job
    {
        std::uint64_t id = 0;
        SphereRequest req;
        bool degraded = false;
    };

    struct Shard
    {
        std::deque<Job> queue;
    };

    void workerLoop(std::size_t shard);
    void repairLoop();
    void runJob(Job &&job);
    void persist(const Job &job, RecordResult &&rec);
    RecorderConfig recorderConfigFor(const Job &job) const;
    CompactOutcome compactArtifact(const std::string &path,
                                   FaultPlan *faults);
    void applyRotation(const RotationResult &r);
    bool idleLocked() const;

    ServiceConfig _cfg;
    ArtifactStore _store;
    AdmissionController _admission;

    mutable std::mutex _mu;
    std::condition_variable _work;  //!< queued work / shutdown
    std::condition_variable _idle;  //!< queues empty, nothing active
    std::vector<Shard> _shards;
    std::uint64_t _queued = 0;
    std::uint64_t _active = 0;
    std::uint64_t _nextId = 0;
    bool _shuttingDown = false;
    bool _abortQueued = false;
    bool _started = false;
    ServiceCounters _ctr;

    /**
     * Raised when the drain deadline passes: in-flight recordings
     * poll it through recordProgramUntil and finalize early.
     */
    std::atomic<bool> _stopRecording{false};

    std::vector<std::thread> _workers;
    std::thread _repairThread;
    std::condition_variable _repairTick;
    FaultPlan _retentionFaults; //!< I/O sites for compaction rewrites
    MetricsHttpServer _http;
};

} // namespace qr

#endif // QR_SERVICE_SERVICE_HH
