#include "core/artifact.hh"

#include <cstdio>
#include <cstring>

namespace qr
{
namespace
{

/** Read a whole file; ok=false with detail set on any I/O failure. */
bool
readRaw(const std::string &path, std::vector<std::uint8_t> &out,
        std::string &detail)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        detail = "cannot read '" + path + "'";
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
    if (std::fread(out.data(), 1, out.size(), f) != out.size()) {
        std::fclose(f);
        detail = "short read from '" + path + "'";
        return false;
    }
    std::fclose(f);
    return true;
}

} // namespace

void
putArtifactString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

SegmentedWriteResult
saveArtifact(const SphereArtifact &c, const std::string &path,
             FaultPlan *faults)
{
    std::vector<std::uint8_t> out = {'Q', 'R', 'C', '1'};
    putArtifactString(out, c.workload);
    putVarint(out, static_cast<std::uint64_t>(c.threads));
    putVarint(out, static_cast<std::uint64_t>(c.scale));
    putVarint(out, c.digests.memory);
    putVarint(out, c.digests.output);
    putVarint(out, c.digests.exits.size());
    for (const auto &[tid, info] : c.digests.exits) {
        putVarint(out, static_cast<std::uint64_t>(tid));
        putVarint(out, info.regDigest);
        putVarint(out, info.instrs);
        putVarint(out, info.exitCode);
    }
    std::vector<std::uint8_t> sphere = c.logs.serialize();
    putVarint(out, sphere.size());
    out.insert(out.end(), sphere.begin(), sphere.end());
    // Optional trailing section: the event timeline. The sphere bytes
    // above are unchanged whether or not a trace rides along.
    if (!c.trace.empty()) {
        putVarint(out, c.trace.size());
        out.insert(out.end(), c.trace.begin(), c.trace.end());
    }
    return writeSegmented(out, path, faults);
}

ArtifactLoadResult
loadArtifact(const std::string &path)
{
    ArtifactLoadResult r;
    std::vector<std::uint8_t> raw;
    if (!readRaw(path, raw, r.detail)) {
        r.kind = ArtifactError::Io;
        return r;
    }

    std::vector<std::uint8_t> in;
    if (isSegmented(raw)) {
        SegmentedReadResult seg = readSegmented(raw);
        if (!seg.sealed) {
            r.kind = ArtifactError::Torn;
            r.detail = seg.error;
            return r;
        }
        in = std::move(seg.payload);
    } else {
        in = std::move(raw); // legacy unsegmented container
    }

    if (in.size() < 4 || std::memcmp(in.data(), "QRC1", 4) != 0) {
        r.kind = ArtifactError::NotContainer;
        return r;
    }
    // A corrupted container is user input, not a bug: surface every
    // parse failure as a structured result instead of an abort.
    try {
        std::size_t pos = 4;
        r.artifact = parseArtifactMeta(in, pos);
        std::uint64_t nsphere = getVarint(in, pos);
        if (nsphere > in.size() - pos)
            parseFail("container truncated: sphere log needs %llu "
                      "bytes, %llu remain",
                      static_cast<unsigned long long>(nsphere),
                      static_cast<unsigned long long>(in.size() - pos));
        std::vector<std::uint8_t> sphere(
            in.begin() + static_cast<long>(pos),
            in.begin() + static_cast<long>(pos + nsphere));
        pos += nsphere;
        if (pos != in.size()) {
            // Optional trace section appended by `record --trace`.
            std::uint64_t ntrace = getVarint(in, pos);
            if (ntrace != in.size() - pos)
                parseFail("trailing bytes in container");
            r.artifact.trace.assign(in.begin() + static_cast<long>(pos),
                                    in.end());
        }
        r.artifact.logs = SphereLogs::deserialize(sphere);
        r.ok = true;
        return r;
    } catch (const ParseError &e) {
        r.kind = ArtifactError::Corrupt;
        r.detail = e.what();
        r.artifact = SphereArtifact{};
        return r;
    }
}

ArtifactRecoverResult
recoverArtifact(const std::string &inPath, const std::string &outPath)
{
    ArtifactRecoverResult r;
    std::vector<std::uint8_t> raw;
    if (!readRaw(inPath, raw, r.detail)) {
        r.stage = RecoverStage::Empty;
        return r;
    }
    if (raw.empty()) {
        r.stage = RecoverStage::Empty;
        r.detail = "file is empty";
        return r;
    }

    std::vector<std::uint8_t> in;
    bool sealed = false;
    if (isSegmented(raw)) {
        SegmentedReadResult seg = readSegmented(raw);
        in = std::move(seg.payload);
        r.segments = seg.segments;
        sealed = seg.sealed;
        r.tornNote = seg.error;
    } else {
        in = std::move(raw); // legacy unsegmented container
        sealed = true;
    }

    if (in.size() < 4 || std::memcmp(in.data(), "QRC1", 4) != 0) {
        r.stage = RecoverStage::NotContainer;
        return r;
    }

    // The meta fields fit in the first segment, so a torn file that
    // kept any payload keeps them; losing them means nothing usable.
    SphereArtifact c;
    std::vector<std::uint8_t> sphereBytes;
    try {
        std::size_t pos = 4;
        c = parseArtifactMeta(in, pos);
        std::uint64_t nsphere = getVarint(in, pos);
        std::uint64_t avail = in.size() - pos;
        sphereBytes.assign(in.begin() + static_cast<long>(pos),
                           in.end());
        if (nsphere < avail)
            sphereBytes.resize(nsphere); // ignore trailing garbage
    } catch (const ParseError &e) {
        r.stage = RecoverStage::Meta;
        r.detail = e.what();
        return r;
    }

    SphereSalvage salvage;
    try {
        salvage = SphereLogs::deserializeTolerant(sphereBytes);
    } catch (const ParseError &e) {
        r.stage = RecoverStage::Sphere;
        r.detail = e.what();
        return r;
    }

    r.complete = sealed && salvage.complete;
    r.threadsSalvaged = salvage.threadsSalvaged;
    r.threadsPartial = salvage.threadsPartial;
    r.sphereNote = salvage.note;
    c.logs = std::move(salvage.logs);
    SegmentedWriteResult saved = saveArtifact(c, outPath);
    if (!saved) {
        r.stage = RecoverStage::Write;
        r.detail = saved.error;
        return r;
    }
    r.bytes = saved.bytes;
    r.ok = true;
    return r;
}

} // namespace qr
