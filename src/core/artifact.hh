/**
 * @file
 * The .qrec artifact: the QRC1 container that wraps a sphere byte
 * stream with the workload identity, the recorded digests, and an
 * optional event-timeline section, riding in the crash-consistent
 * QSG1 segmented format (capo/log_store.hh).
 *
 * Extracted from the qrec CLI so the record service (src/service/)
 * and the CLI share one serializer, one loader, and one salvage
 * routine. The on-disk bytes are unchanged: legacy unsegmented
 * containers remain readable, and containers written here are
 * bit-identical to what the CLI always produced.
 */

#ifndef QR_CORE_ARTIFACT_HH
#define QR_CORE_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "capo/log_store.hh"
#include "capo/sphere.hh"
#include "core/metrics.hh"
#include "rnr/chunk_record.hh"

namespace qr
{

/** Everything a .qrec artifact persists next to the sphere bytes. */
struct SphereArtifact
{
    std::string workload;
    int threads = 4;
    int scale = 1;
    Digests digests;
    SphereLogs logs;
    /** Serialized event timeline ("QTR1"); empty when not traced. */
    std::vector<std::uint8_t> trace;
};

/** Length-prefixed string append (container meta encoding). */
void putArtifactString(std::vector<std::uint8_t> &out,
                       const std::string &s);

/**
 * Length-prefixed string decode, generic over the byte source so the
 * container meta parses identically off a heap buffer and off a
 * mmapped PayloadView.
 */
template <class Bytes>
std::string
getArtifactString(const Bytes &in, std::size_t &pos)
{
    std::uint64_t n = getVarintFrom(in, pos);
    if (n > in.size() - pos)
        parseFail("truncated string in container");
    std::string s;
    s.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        s += static_cast<char>(in[pos + static_cast<std::size_t>(i)]);
    pos += n;
    return s;
}

/**
 * Parse the container meta fields (everything between the magic and
 * the sphere length) from @p in; on return @p pos sits at the sphere
 * length varint. Throws ParseError on malformed input. The logs and
 * trace members of the returned artifact are left empty -- callers
 * slice the sphere/trace sections themselves (the streaming analyzer
 * never materializes them at all).
 */
template <class Bytes>
SphereArtifact
parseArtifactMeta(const Bytes &in, std::size_t &pos)
{
    SphereArtifact c;
    c.workload = getArtifactString(in, pos);
    c.threads = static_cast<int>(getVarintFrom(in, pos));
    c.scale = static_cast<int>(getVarintFrom(in, pos));
    c.digests.memory = getVarintFrom(in, pos);
    c.digests.output = getVarintFrom(in, pos);
    std::uint64_t nexits = getVarintFrom(in, pos);
    for (std::uint64_t i = 0; i < nexits; ++i) {
        Tid tid = static_cast<Tid>(getVarintFrom(in, pos));
        ThreadExitInfo info;
        info.regDigest = getVarintFrom(in, pos);
        info.instrs = getVarintFrom(in, pos);
        info.exitCode = static_cast<Word>(getVarintFrom(in, pos));
        c.digests.exits.emplace(tid, info);
    }
    return c;
}

/**
 * Serialize @p c and write it to @p path as a sealed QSG1 container.
 * With @p faults, the I/O fault sites apply (torn/short/ENOSPC).
 */
SegmentedWriteResult saveArtifact(const SphereArtifact &c,
                                  const std::string &path,
                                  FaultPlan *faults = nullptr);

/** Structured cause of a loadArtifact() failure. */
enum class ArtifactError
{
    None = 0,     //!< loaded fine
    Io,           //!< file missing or short read
    Torn,         //!< segmented container not sealed (recover can salvage)
    NotContainer, //!< payload lacks the QRC1 magic
    Corrupt,      //!< sealed payload fails to parse
};

/** Outcome of loading a .qrec artifact. */
struct ArtifactLoadResult
{
    SphereArtifact artifact;
    bool ok = false;
    ArtifactError kind = ArtifactError::None;
    std::string detail; //!< human cause (segment error, parse message)

    explicit operator bool() const { return ok; }
};

/**
 * Load a .qrec artifact (sealed QSG1 or legacy unsegmented). Every
 * failure -- missing file, torn container, corrupt payload -- is a
 * structured result, never a crash: the record service must survive
 * any artifact a crash leaves on disk.
 */
ArtifactLoadResult loadArtifact(const std::string &path);

/** How far recoverArtifact() got before giving up (for messages). */
enum class RecoverStage
{
    Ok = 0,       //!< salvage written
    Empty,        //!< input file empty: nothing to salvage
    NotContainer, //!< no intact QRC1 header segment
    Meta,         //!< torn inside the container meta fields
    Sphere,       //!< unusable sphere header
    Write,        //!< salvage could not be written out
};

/** Outcome of salvaging a (possibly torn) .qrec artifact. */
struct ArtifactRecoverResult
{
    bool ok = false;
    bool complete = false; //!< input was intact; nothing was lost
    RecoverStage stage = RecoverStage::Ok;
    std::string detail;    //!< failure detail for the stage
    std::uint64_t segments = 0;        //!< intact QSG1 segments read
    std::uint64_t threadsSalvaged = 0; //!< thread logs parsed in full
    std::uint64_t threadsPartial = 0;  //!< thread logs kept as prefix
    std::string tornNote;   //!< container-level damage description
    std::string sphereNote; //!< sphere-level damage description
    std::uint64_t bytes = 0; //!< bytes written to the output path

    explicit operator bool() const { return ok; }
};

/**
 * Salvage whatever @p inPath still holds -- every intact QSG1
 * segment, then every parseable thread-log prefix -- and rewrite it
 * to @p outPath as a sealed artifact. In-place repair (@p outPath ==
 * @p inPath) is safe: the rewrite goes through a temp file + rename.
 * A salvaged (non-complete) artifact replays in degraded mode.
 */
ArtifactRecoverResult recoverArtifact(const std::string &inPath,
                                      const std::string &outPath);

} // namespace qr

#endif // QR_CORE_ARTIFACT_HH
