#include "core/session.hh"

#include "core/machine.hh"

namespace qr
{

RunMetrics
runBaseline(const Program &prog, const MachineConfig &mcfg,
            const RecorderConfig &rcfg)
{
    Machine machine(mcfg, rcfg, prog, /* record = */ false);
    return machine.run();
}

RecordResult
recordProgram(const Program &prog, const MachineConfig &mcfg,
              const RecorderConfig &rcfg)
{
    Machine machine(mcfg, rcfg, prog, /* record = */ true);
    RecordResult result;
    result.metrics = machine.run();
    result.logs = machine.sphereLogs();
    // Drain the event tracer per recording so back-to-back sessions
    // (test suites, bench repeat loops) never mix timelines.
    if (eventTrace().armed())
        result.timeline = eventTrace().flush();
    return result;
}

ReplayResult
replaySphere(const Program &prog, const SphereLogs &logs,
             ReplayMode mode)
{
    Replayer replayer(prog, logs, {}, mode);
    return replayer.run();
}

ParallelReplayResult
replaySphereParallel(const Program &prog, const SphereLogs &logs,
                     int jobs, ReplayMode mode)
{
    ParallelReplayer replayer(prog, logs, jobs, {}, mode);
    return replayer.run();
}

RoundTrip
recordAndReplay(const Program &prog, const MachineConfig &mcfg,
                const RecorderConfig &rcfg)
{
    RoundTrip rt;
    rt.record = recordProgram(prog, mcfg, rcfg);
    rt.replay = replaySphere(prog, rt.record.logs);
    if (rt.replay.ok)
        rt.verify = verifyDigests(rt.record.metrics.digests,
                                  rt.replay.digests);
    return rt;
}

} // namespace qr
