#include "core/session.hh"

#include "core/machine.hh"
#include "obs/profile.hh"

namespace qr
{

RunMetrics
runBaseline(const Program &prog, const MachineConfig &mcfg,
            const RecorderConfig &rcfg)
{
    Machine machine(mcfg, rcfg, prog, /* record = */ false);
    return machine.run();
}

RecordResult
recordProgram(const Program &prog, const MachineConfig &mcfg,
              const RecorderConfig &rcfg)
{
    Machine machine(mcfg, rcfg, prog, /* record = */ true);
    RecordResult result;
    result.metrics = machine.run();
    result.logs = machine.sphereLogs();
    // Drain the event tracer per recording so back-to-back sessions
    // (test suites, bench repeat loops) never mix timelines.
    if (eventTrace().armed())
        result.timeline = eventTrace().flush();
    return result;
}

RecordResult
recordProgramUntil(const Program &prog, const MachineConfig &mcfg,
                   const RecorderConfig &rcfg,
                   const std::atomic<bool> &stop)
{
    Machine machine(mcfg, rcfg, prog, /* record = */ true);
    RecordResult result;
    // Poll the flag every slice, not every cycle: the load is cheap
    // but the branch in the hot loop is not free, and shutdown
    // latency of a few thousand simulated cycles is invisible.
    constexpr Tick slice = 4096;
    Tick next = slice;
    ProfileScope prof(ProfilePhase::Record);
    while (machine.step()) {
        if (machine.cycles() < next)
            continue;
        next = machine.cycles() + slice;
        // Relaxed: the flag is a latch with no data published behind
        // it; the worker only needs to observe the transition
        // eventually, and the finalize below orders everything else.
        if (stop.load(std::memory_order_relaxed) ||
            machine.cycles() >= mcfg.maxCycles) {
            machine.finalizeRecording();
            result.interrupted = true;
            break;
        }
    }
    prof.cycles(machine.cycles());
    result.metrics = machine.metricsNow();
    result.logs = machine.sphereLogs();
    if (eventTrace().armed())
        result.timeline = eventTrace().flush();
    return result;
}

ReplayResult
replaySphere(const Program &prog, const SphereLogs &logs,
             ReplayMode mode)
{
    Replayer replayer(prog, logs, {}, mode);
    return replayer.run();
}

ParallelReplayResult
replaySphereParallel(const Program &prog, const SphereLogs &logs,
                     int jobs, ReplayMode mode)
{
    ParallelReplayer replayer(prog, logs, jobs, {}, mode);
    return replayer.run();
}

ReplayComparison
compareReplay(const Program &prog, const SphereLogs &logs, int jobs,
              ReplayMode mode)
{
    ReplayComparison cmp;
    cmp.sequential = replaySphere(prog, logs, mode);
    cmp.parallel = replaySphereParallel(prog, logs, jobs, mode);
    cmp.parallel.speed.seqExecMicros = cmp.sequential.execMicros;

    const ReplayResult &s = cmp.sequential;
    const ReplayResult &p = cmp.parallel.replay;
    if (s.ok != p.ok)
        cmp.mismatch = "ok";
    else if (s.divergence != p.divergence)
        cmp.mismatch = "divergence";
    else if (s.digests != p.digests)
        cmp.mismatch = "digests";
    else if (s.injectedRecords != p.injectedRecords)
        cmp.mismatch = "injected-records";
    else if (s.replayedChunks != p.replayedChunks)
        cmp.mismatch = "replayed-chunks";
    else if (s.replayedInstrs != p.replayedInstrs)
        cmp.mismatch = "replayed-instrs";
    else if (s.modeledCycles != p.modeledCycles)
        cmp.mismatch = "modeled-cycles";
    else if (s.degradedMode != p.degradedMode)
        cmp.mismatch = "degraded-mode";
    else if (s.degradedMode &&
             s.degraded.summary() != p.degraded.summary())
        cmp.mismatch = "degraded-summary";
    cmp.identical = cmp.mismatch.empty();
    return cmp;
}

RoundTrip
recordAndReplay(const Program &prog, const MachineConfig &mcfg,
                const RecorderConfig &rcfg)
{
    RoundTrip rt;
    rt.record = recordProgram(prog, mcfg, rcfg);
    rt.replay = replaySphere(prog, rt.record.logs);
    if (rt.replay.ok)
        rt.verify = verifyDigests(rt.record.metrics.digests,
                                  rt.replay.digests);
    return rt;
}

} // namespace qr
