/**
 * @file
 * Aggregated results of one machine run: timing, memory-system and
 * recording statistics, log sizes, and the architectural digests used
 * to verify replay determinism.
 */

#ifndef QR_CORE_METRICS_HH
#define QR_CORE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "capo/cost_model.hh"
#include "capo/log_store.hh"
#include "kernel/kernel.hh"
#include "rnr/chunk_record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qr
{

/** Architectural fingerprints of a run (replay must reproduce these). */
struct Digests
{
    std::uint64_t memory = 0; //!< user memory below the CBUF regions
    std::uint64_t output = 0; //!< console output byte stream
    std::map<Tid, ThreadExitInfo> exits; //!< per-thread final state

    bool operator==(const Digests &o) const = default;
};

/** FNV-1a over a byte stream (output digests). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t n);

/**
 * Digest of the per-thread output streams. Output interleaving across
 * threads is not required to be deterministic (any POSIX write
 * interleaving is legal), so the digest covers each thread's stream in
 * its own program order.
 */
std::uint64_t outputDigest(const OutputMap &outputs);

/**
 * Replay-speed accounting for the parallel replay engine: modeled
 * cycles for the sequential oracle vs. the chunk-graph schedule at a
 * given worker count, plus measured wall-clock for the graph build and
 * the parallel execution phases.
 */
struct ReplaySpeed
{
    int jobs = 1;
    Tick modeledSequentialCycles = 0; //!< sum of per-chunk costs
    Tick modeledParallelCycles = 0;   //!< greedy list schedule, N jobs
    Tick criticalPathCycles = 0;      //!< schedule with unbounded jobs
    double graphMicros = 0;           //!< wall: analysis + edge build
    double execMicros = 0;            //!< wall: worker-pool execution
    double seqExecMicros = 0;         //!< wall: sequential oracle exec

    /** Modeled sequential / parallel replay-time ratio. */
    double modeledSpeedup() const;

    /**
     * Measured wall-clock speedup: sequential oracle exec time over
     * the worker pool's exec time. Zero when either was not measured.
     * Genuinely > 1 only with enough real cores for the workers.
     */
    double measuredSpeedup() const;

    /** Upper bound on speedup: sequential / critical path. */
    double availableParallelism() const;

    /** One-line "replay-speed: ..." report (the qrec output fields). */
    std::string summary() const;
};

/** Everything measured during one run. */
struct RunMetrics
{
    // --- timing -----------------------------------------------------------
    Tick cycles = 0;
    std::uint64_t instrs = 0;

    // --- instruction mix ----------------------------------------------------
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t migrations = 0;
    std::uint64_t signalsDelivered = 0;

    // --- memory system -------------------------------------------------------
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t busTxns = 0;
    std::uint64_t invalidations = 0;

    // --- recording hardware ----------------------------------------------
    std::uint64_t chunks = 0;
    std::uint64_t reasonCounts[numChunkReasons] = {};
    Histogram chunkSizes;
    Histogram rswValues;
    std::uint64_t rswNonZero = 0;
    bool exactShadow = false; //!< run kept exact shadow sets
    std::uint64_t falseConflicts = 0; //!< with exactShadow only
    std::uint64_t coalescedAccesses = 0; //!< absorbed by last-line caches
    std::uint64_t cbufBytes = 0;      //!< raw bytes the hardware wrote
    std::uint64_t cbufDrains = 0;
    std::uint64_t cbufForcedDrains = 0;

    // --- bus agents (all zero without --device) ---------------------------
    std::uint64_t deviceEvents = 0;  //!< completions delivered
    std::uint64_t deviceBusTxns = 0; //!< agent coherence transactions

    // --- fault injection (all zero on fault-free runs) --------------------
    std::uint64_t droppedChunks = 0;      //!< records lost at the CBUF
    std::uint64_t gapChunks = 0;          //!< gap markers in the logs
    std::uint64_t lostCbufSignals = 0;    //!< drain signals suppressed
    std::uint64_t cbufDrainRetries = 0;   //!< failed RSM drain attempts
    std::uint64_t delayedCbufSignals = 0; //!< late drain deliveries

    // --- Capo3 software stack ------------------------------------------------
    std::uint64_t overheadCycles[numOverheadCats] = {};
    std::uint64_t recordingOverheadCycles = 0;
    std::uint64_t inputRecords = 0;
    LogSizes logSizes;

    // --- verification -------------------------------------------------------
    Digests digests;

    /** Packed memory-log bytes per 1000 retired instructions. */
    double memLogBytesPerKiloInstr() const;

    /** Packed input-log bytes per 1000 retired instructions. */
    double inputLogBytesPerKiloInstr() const;

    /** Fraction of chunks ended by real or false conflicts. */
    double conflictChunkFraction() const;

    /** One-line human summary. */
    std::string summary() const;

    /** Full gem5-style "name value # comment" stats dump. */
    std::string statsText() const;
};

} // namespace qr

#endif // QR_CORE_METRICS_HH
