/**
 * @file
 * High-level record/replay sessions: the one-call public entry points
 * most users (examples, tests, benchmarks) go through.
 */

#ifndef QR_CORE_SESSION_HH
#define QR_CORE_SESSION_HH

#include <atomic>

#include "capo/sphere.hh"
#include "core/config.hh"
#include "core/metrics.hh"
#include "isa/assembler.hh"
#include "obs/event_trace.hh"
#include "replay/parallel_replayer.hh"
#include "replay/replayer.hh"
#include "replay/verifier.hh"

namespace qr
{

/** Artifact of one recorded run. */
struct RecordResult
{
    SphereLogs logs;
    RunMetrics metrics;

    /**
     * True when the recording was stopped before every guest thread
     * exited (recordProgramUntil with its stop flag raised): the logs
     * hold a consistent prefix of the run and replay in degraded
     * mode; the digests cover only the executed prefix.
     */
    bool interrupted = false;

    /**
     * The structured event timeline of the run, drained from the
     * tracer when it was armed (qrec record --trace or QR_TRACE);
     * empty otherwise. Purely observational: logs/metrics/digests are
     * bit-identical with the tracer armed or not.
     */
    TraceTimeline timeline;
};

/** Run @p prog with the recording hardware disabled (the baseline). */
RunMetrics runBaseline(const Program &prog,
                       const MachineConfig &mcfg = {},
                       const RecorderConfig &rcfg = {});

/** Run @p prog under QuickRec recording; returns logs + metrics. */
RecordResult recordProgram(const Program &prog,
                           const MachineConfig &mcfg = {},
                           const RecorderConfig &rcfg = {});

/**
 * Run @p prog under recording, polling @p stop between simulation
 * slices: once it reads true the machine finalizes the recording at
 * the current cycle (CBUFs drained, RSM closed) and returns what was
 * captured so far with interrupted = true -- a consistent, degraded-
 * replayable prefix instead of a torn log. A run that breaches
 * mcfg.maxCycles is likewise returned interrupted rather than fatal:
 * a record service must outlive a deadlocked guest.
 */
RecordResult recordProgramUntil(const Program &prog,
                                const MachineConfig &mcfg,
                                const RecorderConfig &rcfg,
                                const std::atomic<bool> &stop);

/**
 * Replay a recorded sphere against the original program. Degraded
 * mode (for spheres with gap markers or salvaged prefixes) completes
 * with a DegradedReplay summary instead of aborting.
 */
ReplayResult replaySphere(const Program &prog, const SphereLogs &logs,
                          ReplayMode mode = ReplayMode::Strict);

/**
 * Replay a recorded sphere on the parallel chunk-graph engine with
 * @p jobs worker threads (>= 1). Digests are bit-identical to
 * replaySphere() on every valid sphere; callers wanting a differential
 * check run both and compare. Degraded mode matches the sequential
 * degraded result, summary included, at any job count.
 */
ParallelReplayResult replaySphereParallel(
    const Program &prog, const SphereLogs &logs, int jobs,
    ReplayMode mode = ReplayMode::Strict);

/**
 * Differential replay: the sequential oracle and the parallel engine
 * over the same sphere, with the parallel result's speed accounting
 * completed (seqExecMicros from the oracle run, so measuredSpeedup()
 * is live) and the bit-identity verdict precomputed.
 */
struct ReplayComparison
{
    ReplayResult sequential;
    ParallelReplayResult parallel;

    /** True iff both runs agree on every architectural outcome:
     *  ok/divergence, digests, injected counts, replayed counts and
     *  the degraded summary. */
    bool identical = false;

    /** First mismatching field when !identical (for diagnostics). */
    std::string mismatch;
};

/**
 * Run replaySphere() and replaySphereParallel() over @p logs and
 * compare every architectural outcome. The parallel engine must be
 * bit-identical to the oracle at any job count; a false verdict here
 * is an engine bug, not a property of the sphere.
 */
ReplayComparison compareReplay(const Program &prog,
                               const SphereLogs &logs, int jobs,
                               ReplayMode mode = ReplayMode::Strict);

/** Record, replay, and verify end to end. */
struct RoundTrip
{
    RecordResult record;
    ReplayResult replay;
    VerifyReport verify;

    /** True iff the replay completed and every digest matched. */
    bool deterministic() const { return replay.ok && verify.ok; }
};

/** Record @p prog, replay the logs, and verify determinism. */
RoundTrip recordAndReplay(const Program &prog,
                          const MachineConfig &mcfg = {},
                          const RecorderConfig &rcfg = {});

} // namespace qr

#endif // QR_CORE_SESSION_HH
