#include "core/machine.hh"

#include "obs/profile.hh"
#include "sim/logging.hh"

namespace qr
{

Machine::Machine(const MachineConfig &mcfg_, const RecorderConfig &rcfg_,
                 Program prog_, bool record)
    : mcfg(mcfg_), rcfg(rcfg_), prog(std::move(prog_)),
      recording(record), mem(mcfg_.memBytes), bus(mcfg_.bus)
{
    validate(mcfg, rcfg);
    qr_assert(!prog.code.empty(), "cannot run an empty program");

    std::uint32_t region = rcfg.cbuf.entries * ChunkRecord::cbufBytes;
    _userTop = (mcfg.memBytes -
                static_cast<std::uint32_t>(mcfg.numCores) * region) & ~63u;
    qr_assert(prog.dataEnd + mcfg.stackBytes + (64u << 10) < _userTop,
              "program data (0x%x) leaves no room for heap and stack",
              prog.dataEnd);

    std::vector<Core *> corePtrs;
    std::vector<Cbuf *> cbufPtrs;
    for (int i = 0; i < mcfg.numCores; ++i) {
        caches.push_back(std::make_unique<L1Cache>(i, mcfg.cache, bus));
        Addr cbufBase = _userTop + static_cast<Addr>(i) * region;
        cbufs.push_back(std::make_unique<Cbuf>(rcfg.cbuf, mem, cbufBase,
                                               &bus));
        rnrUnits.push_back(
            std::make_unique<RnrUnit>(i, rcfg.rnr, *cbufs.back()));
        cores.push_back(std::make_unique<Core>(i, mcfg.core, prog, mem,
                                               *caches.back(),
                                               *rnrUnits.back()));
        bus.attachSnooper(caches.back().get());
        // Observers only matter when the RnR units can ever be enabled;
        // baseline machines skip the whole observer broadcast this way
        // (the units' free-running clocks are never consumed either).
        if (recording)
            bus.attachObserver(rnrUnits.back().get());
        corePtrs.push_back(cores.back().get());
        cbufPtrs.push_back(cbufs.back().get());
    }

    for (const auto &[addr, value] : prog.dataInit)
        mem.write(addr, value);

    KernelParams kp = mcfg.kernel;
    kp.heapBase = (prog.dataEnd + 63u) & ~63u;
    kp.heapLimit = _userTop - mcfg.stackBytes - 64;
    kernel = std::make_unique<Kernel>(kp, corePtrs, mem, output);

    _sphereLogs.memBytes = mcfg.memBytes;
    _sphereLogs.userTop = _userTop;
    _sphereLogs.meta.lineBytes = rcfg.rnr.lineBytes;
    _sphereLogs.meta.bloomBits = rcfg.rnr.bloom.bits;
    _sphereLogs.meta.bloomHashes =
        static_cast<std::uint32_t>(rcfg.rnr.bloom.hashes);
    _sphereLogs.meta.exactShadow = rcfg.rnr.exactShadow;

    if (recording) {
        if (!rcfg.faults.spec.empty()) {
            faults = std::make_unique<FaultPlan>(FaultPlan::parse(
                rcfg.faults.spec, rcfg.faults.seed));
            for (auto &unit : rnrUnits)
                unit->setFaultPlan(faults.get());
        }
        rsm = std::make_unique<Rsm>(rcfg.costs, _sphereLogs, corePtrs,
                                    cbufPtrs, faults.get());
        kernel->setRsm(rsm.get());
        // Bus agents are record-only machinery: replay reproduces
        // their writes by injection, and baseline machines have no
        // chunk stream for the events to anchor against.
        for (std::size_t i = 0; i < rcfg.devices.size(); ++i) {
            BusAgentConfig acfg = rcfg.devices[i];
            acfg.lineBytes = rcfg.rnr.lineBytes;
            agents.push_back(std::make_unique<BusAgent>(
                acfg, bus, mem,
                mcfg.numCores + static_cast<CoreId>(i)));
            bus.attachObserver(agents.back().get());
        }
    }
}

Machine::~Machine() = default;

void
Machine::finalizeRecording()
{
    if (rsm && !finalized) {
        finalized = true;
        rsm->finalize(cycle);
        for (const auto &agent : agents)
            _sphereLogs.devices.push_back(agent->stream());
    }
}

bool
Machine::step()
{
    if (!started) {
        started = true;
        kernel->startMainThread(prog.entry, _userTop - 16);
    }
    if (kernel->allExited()) {
        finalizeRecording();
        return false;
    }
    kernel->tick(cycle);
    for (auto &core : cores)
        core->tick(cycle);
    for (auto &agent : agents)
        agent->tick(cycle);
    cycle++;
    return true;
}

RunMetrics
Machine::run()
{
    qr_assert(!ran, "Machine::run called twice");
    ran = true;

    ProfileScope prof(ProfilePhase::Record);
    while (step()) {
        if (cycle >= mcfg.maxCycles) {
            kernel->debugDump();
            fatal("machine did not finish within %llu cycles "
                  "(deadlocked guest?)",
                  static_cast<unsigned long long>(mcfg.maxCycles));
        }
    }
    prof.cycles(cycle);
    return collectMetrics(cycle);
}

RunMetrics
Machine::collectMetrics(Tick cycles) const
{
    RunMetrics m;
    m.cycles = cycles;
    m.exactShadow = rcfg.rnr.exactShadow;

    for (const auto &core : cores) {
        const CoreStats &cs = core->stats();
        m.instrs += cs.instrs;
        m.loads += cs.loads;
        m.stores += cs.stores;
        m.atomics += cs.atomics;
    }
    for (const auto &cache : caches) {
        const CacheStats &cs = cache->stats();
        m.l1Hits += cs.readHits + cs.writeHits;
        m.l1Misses += cs.readMisses + cs.writeMisses;
        m.invalidations += cs.invalidations;
    }
    const BusStats &bs = bus.stats();
    m.busTxns = bs.txns[0] + bs.txns[1] + bs.txns[2];

    for (const auto &unit : rnrUnits) {
        const RnrStats &rs = unit->stats();
        m.chunks += rs.chunks;
        for (int r = 0; r < numChunkReasons; ++r)
            m.reasonCounts[r] += rs.reasonCounts[r];
        m.chunkSizes.merge(rs.chunkSizes);
        m.rswValues.merge(rs.rswValues);
        m.rswNonZero += rs.rswNonZero;
        m.falseConflicts += rs.falseConflicts;
        m.coalescedAccesses += rs.coalescedLoads + rs.coalescedDrains;
        m.droppedChunks += rs.droppedChunks;
        m.lostCbufSignals += rs.lostSignals;
    }
    for (const auto &cbuf : cbufs) {
        m.cbufBytes += cbuf->stats().bytesWritten;
        m.gapChunks += cbuf->stats().gapRecords;
    }

    for (const auto &agent : agents) {
        m.deviceEvents += agent->stats().events;
        m.deviceBusTxns += agent->stats().busTxns;
    }

    const KernelStats &ks = kernel->stats();
    m.syscalls = ks.syscalls;
    m.contextSwitches = ks.contextSwitches;
    m.migrations = ks.migrations;
    m.signalsDelivered = ks.signalsDelivered;

    if (rsm) {
        const RsmStats &rs = rsm->stats();
        for (int c = 0; c < numOverheadCats; ++c)
            m.overheadCycles[c] = rs.overheadCycles[c];
        m.recordingOverheadCycles = rs.totalOverheadCycles();
        m.inputRecords = rs.inputRecords;
        m.cbufDrains = rs.cbufDrains;
        m.cbufForcedDrains = rs.cbufForcedDrains;
        m.cbufDrainRetries = rs.drainRetries;
        m.delayedCbufSignals = rs.delayedSignals;
        m.logSizes = measureLogs(_sphereLogs);
    }

    m.digests.memory = mem.digest(_userTop);
    m.digests.output = outputDigest(output);
    m.digests.exits = kernel->exitInfo();
    return m;
}

} // namespace qr
