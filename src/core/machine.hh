/**
 * @file
 * The assembled QuickRec prototype machine.
 *
 * A Machine wires the full platform: cores + L1s + bus + memory, the
 * guest kernel, and (when recording) the per-core RnR units, CBUFs and
 * Capo3's RSM. It owns the guest memory layout:
 *
 *   0 .............. program static data
 *   dataEnd ........ heap (sbrk arena)
 *   ... gap ........
 *   userTop-stack .. main-thread stack
 *   userTop ........ per-core CBUF regions (excluded from digests)
 *   memBytes
 *
 * The same layout is used whether or not recording is enabled, so
 * baseline and recorded runs are directly comparable and the memory
 * digest limit is identical.
 */

#ifndef QR_CORE_MACHINE_HH
#define QR_CORE_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bus/bus_agent.hh"
#include "capo/rsm.hh"
#include "capo/sphere.hh"
#include "core/config.hh"
#include "fault/fault_plan.hh"
#include "core/metrics.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "kernel/kernel.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "rnr/cbuf.hh"
#include "rnr/rnr_unit.hh"

namespace qr
{

/** A fully-wired guest machine; run() executes a program to completion. */
class Machine
{
  public:
    /**
     * Build the machine. The program is copied in, so temporaries
     * (e.g. `builder.finish()`) are safe to pass.
     * @param record when true, the RnR units record into the sphere.
     */
    Machine(const MachineConfig &mcfg, const RecorderConfig &rcfg,
            Program prog, bool record);

    ~Machine();

    /** Execute until every guest thread has exited. */
    RunMetrics run();

    /**
     * Single-step driver (debuggers, watchdog tools): advance one
     * cycle. @return false once every guest thread has exited.
     */
    bool step();

    /** Cycles simulated so far (step() driver). */
    Tick cycles() const { return cycle; }

    /** Collect metrics explicitly (after a step() loop). */
    RunMetrics metricsNow() const { return collectMetrics(cycle); }

    /**
     * Finalize the recording early: drain every CBUF and close the
     * RSM at the current cycle, so sphereLogs() holds a consistent
     * prefix of the run even though guest threads are still live.
     * step() drivers that stop before completion (graceful service
     * shutdown) call this; a completed run finalizes automatically,
     * and the call is idempotent either way.
     */
    void finalizeRecording();

    /** Debug view of guest memory. */
    const Memory &memory() const { return mem; }

    /** Debug dump of thread states to stderr. */
    void dumpThreads() const { kernel->debugDump(); }

    /** Recording artifact (valid after run() when recording). */
    const SphereLogs &sphereLogs() const { return _sphereLogs; }

    /** First byte above user memory (digest limit / CBUF base). */
    Addr userTop() const { return _userTop; }

    /** Guest console output, one stream per thread. */
    const OutputMap &outputs() const { return output; }

    /** Access to a core (tests and examples). */
    Core &core(int i) { return *cores[static_cast<std::size_t>(i)]; }

    /** The fault plan driving injected faults (null when disarmed). */
    const FaultPlan *faultPlan() const { return faults.get(); }

    /** Armed bus agents (empty unless recording with devices). */
    const std::vector<std::unique_ptr<BusAgent>> &
    busAgents() const
    {
        return agents;
    }

    const MachineConfig &config() const { return mcfg; }

  private:
    RunMetrics collectMetrics(Tick cycles) const;

    MachineConfig mcfg;
    RecorderConfig rcfg;
    Program prog;
    bool recording;

    Addr _userTop = 0;

    Memory mem;
    Bus bus;
    std::vector<std::unique_ptr<L1Cache>> caches;
    std::vector<std::unique_ptr<Cbuf>> cbufs;
    std::vector<std::unique_ptr<RnrUnit>> rnrUnits;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<std::unique_ptr<BusAgent>> agents;
    OutputMap output;
    std::unique_ptr<Kernel> kernel;
    SphereLogs _sphereLogs;
    std::unique_ptr<FaultPlan> faults;
    std::unique_ptr<Rsm> rsm;
    Tick cycle = 0;
    bool started = false;
    bool finalized = false;
    bool ran = false;
};

} // namespace qr

#endif // QR_CORE_MACHINE_HH
