/**
 * @file
 * Top-level configuration of the QuickRec prototype machine and of the
 * recording extension. Defaults mirror the QuickIA evaluation platform:
 * 4 in-order cores, 32 KB 4-way L1s with 64 B lines on a MESI snooping
 * bus, 8-entry TSO store buffers, and the recording hardware with
 * 1 Ki-bit Bloom filters, 64 Ki-instruction max chunks and 16 Ki-entry
 * CBUFs.
 */

#ifndef QR_CORE_CONFIG_HH
#define QR_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/bus_agent.hh"
#include "capo/cost_model.hh"
#include "cpu/core.hh"
#include "kernel/kernel.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "rnr/cbuf.hh"
#include "rnr/rnr_unit.hh"
#include "sim/types.hh"

namespace qr
{

/** Configuration of the base machine (everything but the recorder). */
struct MachineConfig
{
    int numCores = 4;
    std::uint32_t memBytes = 16u << 20;
    std::uint32_t stackBytes = 64u << 10; //!< main-thread stack
    std::uint64_t maxCycles = 4ull << 30; //!< runaway/deadlock guard

    CoreParams core;
    CacheParams cache;
    BusParams bus;
    KernelParams kernel; //!< heapBase/heapLimit are filled by Machine
};

/**
 * Fault-injection configuration. An empty spec (the default) disarms
 * injection entirely and keeps the record path bit-identical to a
 * build without the fault layer.
 */
struct FaultConfig
{
    std::string spec;        //!< e.g. "cbuf-drop@0.01,io-torn@tick:3"
    std::uint64_t seed = 1;  //!< seeds the per-site Rng streams
};

/** Configuration of the recording extension (hardware + Capo3). */
struct RecorderConfig
{
    RnrParams rnr;
    CbufParams cbuf;
    CostModel costs;
    FaultConfig faults;

    /** Bus agents to arm (empty: no device, legacy sphere format). */
    std::vector<BusAgentConfig> devices;
};

/** Validate a configuration; fatal() on user error. */
void validate(const MachineConfig &mcfg, const RecorderConfig &rcfg);

} // namespace qr

#endif // QR_CORE_CONFIG_HH
