#include "core/config.hh"

#include "fault/fault_plan.hh"
#include "sim/logging.hh"

namespace qr
{

void
validate(const MachineConfig &mcfg, const RecorderConfig &rcfg)
{
    if (mcfg.numCores < 1 || mcfg.numCores > 64)
        fatal("numCores must be in [1,64], got %d", mcfg.numCores);
    if (mcfg.memBytes < (1u << 20))
        fatal("guest memory must be at least 1 MiB");
    if (mcfg.core.sbDepth > 4096)
        fatal("store buffer depth %u is unreasonable", mcfg.core.sbDepth);
    // The recorder's conflict granularity must be at least as coarse
    // as the coherence granularity: finer tracking would miss silent
    // same-line hits. Coarser granularity is sound (only adds false
    // conflicts) and is exposed for the A5 ablation.
    if (rcfg.rnr.lineBytes < mcfg.cache.lineBytes ||
        rcfg.rnr.lineBytes % mcfg.cache.lineBytes != 0)
        fatal("recorder granularity (%u) must be a multiple of the "
              "cache line (%u)",
              rcfg.rnr.lineBytes, mcfg.cache.lineBytes);
    std::uint64_t cbufTotal = static_cast<std::uint64_t>(mcfg.numCores) *
                              rcfg.cbuf.entries * 16ull;
    if (cbufTotal >= mcfg.memBytes / 2)
        fatal("CBUF regions would consume over half of guest memory");
    if (!rcfg.faults.spec.empty()) {
        try {
            FaultPlan::parse(rcfg.faults.spec, rcfg.faults.seed);
        } catch (const ParseError &e) {
            fatal("bad fault spec: %s", e.what());
        }
    }
    for (const BusAgentConfig &d : rcfg.devices) {
        if (d.kind == DeviceKind::None)
            fatal("bus agent %u has no device kind", d.agentId);
        if (d.rate == 0)
            fatal("bus agent %u: delivery rate must be nonzero",
                  d.agentId);
        if (d.slots == 0 || d.slotWords == 0)
            fatal("bus agent %u: empty ring geometry", d.agentId);
        std::uint64_t ringEnd = d.ringBase +
            std::uint64_t(d.slots) * d.slotWords * 4;
        if (ringEnd > mcfg.memBytes || d.doorbell + 4 > mcfg.memBytes)
            fatal("bus agent %u: ring or doorbell outside guest "
                  "memory", d.agentId);
    }
}

} // namespace qr
